bench/harness.ml: Analyze Array Bechamel Benchmark Buffer Float Hashtbl Instance List Measure Printf Stdlib String Time Toolkit Unix
