bench/main.ml: Array Bechamel Float Harness List Option Printf String Sys Txq_core Txq_db Txq_fti Txq_query Txq_store Txq_temporal Txq_vxml Txq_workload Txq_xml Unix
