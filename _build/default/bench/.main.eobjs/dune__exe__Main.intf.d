bench/main.mli:
