examples/change_audit.ml: Printf Txq_db Txq_query Txq_temporal Txq_xml
