examples/change_audit.mli:
