examples/news_archive.ml: List Printf Txq_db Txq_query Txq_temporal Txq_vxml Txq_workload Txq_xml
