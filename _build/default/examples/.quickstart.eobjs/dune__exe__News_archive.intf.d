examples/news_archive.mli:
