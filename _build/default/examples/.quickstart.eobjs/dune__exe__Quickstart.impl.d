examples/quickstart.ml: Txq_db Txq_query Txq_temporal Txq_xml
