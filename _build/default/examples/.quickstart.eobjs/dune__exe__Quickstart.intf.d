examples/quickstart.mli:
