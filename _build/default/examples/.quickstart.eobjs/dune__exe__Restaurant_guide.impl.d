examples/restaurant_guide.ml: List Printf Txq_core Txq_db Txq_query Txq_temporal Txq_vxml Txq_xml
