examples/restaurant_guide.mli:
