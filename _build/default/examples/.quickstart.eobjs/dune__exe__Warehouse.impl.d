examples/warehouse.ml: List Printf Txq_db Txq_query Txq_temporal Txq_workload Txq_xml
