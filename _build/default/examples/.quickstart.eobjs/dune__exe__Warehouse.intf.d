examples/warehouse.mli:
