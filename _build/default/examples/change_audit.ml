(* "Which restaurants increased their prices?" — the Section 7.4 problem.

   Comparing element versions requires choosing what "the same restaurant"
   means.  The paper weighs three semantics and concludes a combination of
   shallow equality and a similarity operator is most practical; this
   example runs all three against a corpus where each is right or wrong in
   a different way:

   - name equality  ("=" on a subelement) is fooled by two restaurants
     sharing a name;
   - EID identity   ("==") is exact for edits in place, but loses an entry
     that was accidentally deleted and reintroduced (fresh EID);
   - similarity     ("~") recovers the reintroduced entry by content.

   Run with: dune exec examples/change_audit.exe *)

module Db = Txq_db.Db
module Timestamp = Txq_temporal.Timestamp

let ts = Timestamp.of_string
let xml = Txq_xml.Parse.parse_exn
let show = Txq_xml.Print.to_pretty
let url = "guide.com/city.xml"

let v1 =
  xml
    "<guide>\
     <restaurant><name>Napoli</name><street>Via-Roma 1</street><price>15</price></restaurant>\
     <restaurant><name>Napoli</name><street>Harbor-Road 9</street><price>12</price></restaurant>\
     <restaurant><name>Sakura</name><street>Main-Street 3</street><price>20</price></restaurant>\
     </guide>"

(* 10/01/2001: the Via-Roma Napoli raises its price; the Sakura entry is
   accidentally dropped by the site. *)
let v2 =
  xml
    "<guide>\
     <restaurant><name>Napoli</name><street>Via-Roma 1</street><price>18</price></restaurant>\
     <restaurant><name>Napoli</name><street>Harbor-Road 9</street><price>12</price></restaurant>\
     </guide>"

(* 20/01/2001: Sakura is reintroduced (new EID!) with a higher price. *)
let v3 =
  xml
    "<guide>\
     <restaurant><name>Napoli</name><street>Via-Roma 1</street><price>18</price></restaurant>\
     <restaurant><name>Napoli</name><street>Harbor-Road 9</street><price>12</price></restaurant>\
     <restaurant><name>Sakura</name><street>Main-Street 3</street><price>24</price></restaurant>\
     </guide>"

let run db q label =
  print_endline label;
  (match Txq_query.Exec.run_string db q with
   | Ok result -> print_string (show result)
   | Error e -> Printf.printf "  error: %s\n" (Txq_query.Exec.error_to_string e));
  print_endline ""

let () =
  let db = Db.create () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") v1);
  ignore (Db.update_document db ~url ~ts:(ts "10/01/2001") v2);
  ignore (Db.update_document db ~url ~ts:(ts "20/01/2001") v3);

  print_endline "Who increased prices since 05/01/2001?\n";

  (* 1. compare by name: both Napolis pair with each other, producing the
     false claim that the Harbor-Road Napoli (still 12) raised prices *)
  run db
    {|SELECT R2/name, R2/street, R1/price, R2/price
      FROM doc("guide.com/city.xml")[05/01/2001]/guide/restaurant R1,
           doc("guide.com/city.xml")/guide/restaurant R2
      WHERE R1/name = R2/name AND R1/price < R2/price|}
    "-- by name equality (R1/name = R2/name): over-reports --";

  (* 2. compare by EID identity: exact for Napoli, but misses Sakura whose
     element was deleted and reintroduced with a fresh EID *)
  run db
    {|SELECT R2/name, R2/street, R1/price, R2/price
      FROM doc("guide.com/city.xml")[05/01/2001]/guide/restaurant R1,
           doc("guide.com/city.xml")/guide/restaurant R2
      WHERE R1 == R2 AND R1/price < R2/price|}
    "-- by EID identity (R1 == R2): exact but misses the reintroduced Sakura --";

  (* 3. similarity: name+street make the entries similar enough to pair
     across the delete/reintroduce, without pairing the two Napolis *)
  run db
    {|SELECT R2/name, R2/street, R1/price, R2/price
      FROM doc("guide.com/city.xml")[05/01/2001]/guide/restaurant R1,
           doc("guide.com/city.xml")/guide/restaurant R2
      WHERE R1 ~ R2 AND R1/price < R2/price|}
    "-- by similarity (R1 ~ R2): catches both real increases --"
