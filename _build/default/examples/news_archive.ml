(* An XML news warehouse, the paper's Section 3.1 setting.

   Articles are *crawled*: versions arrive at irregular instants, some
   intermediate revisions are missed entirely, and articles disappear when
   taken down.  Each article also embeds its own publication timestamp
   (document time, after XMLNews-Meta).  This example shows the three kinds
   of time side by side and runs change-oriented queries over the archive.

   Run with: dune exec examples/news_archive.exe *)

module Db = Txq_db.Db
module Timestamp = Txq_temporal.Timestamp
module Duration = Txq_temporal.Duration
module Workload = Txq_workload

let show = Txq_xml.Print.to_pretty

let () =
  let rng = Workload.Rng.create ~seed:7 in
  let vocab = Workload.Vocab.create ~size:500 (Workload.Rng.split rng) in
  let gen = Workload.News.create ~vocab (Workload.Rng.split rng) in
  (* index the XMLNews-Meta-style publication timestamps (document time) *)
  let config =
    { Txq_db.Config.default with
      Txq_db.Config.document_time_path = Some "//meta/published" }
  in
  let db = Db.create ~config () in
  let base = Timestamp.of_date ~day:1 ~month:6 ~year:2001 in

  (* crawl three news feeds over a month; crawl instants are irregular and
     some revisions happen between crawls (and are lost, as the paper
     notes) *)
  let urls =
    List.mapi
      (fun i topic ->
        let url = Printf.sprintf "news.example.com/%s.xml" topic in
        let published = Timestamp.add base (Duration.hours (6 * i)) in
        let article = Workload.News.article gen ~topic ~published in
        ignore (Db.insert_document db ~url ~ts:published article);
        (url, ref article))
      ["politics"; "economy"; "science"]
  in
  for day = 1 to 30 do
    List.iteri
      (fun i (url, current) ->
        (* each feed is crawled roughly every 2-3 days, offset per feed *)
        if (day + i) mod (2 + i) = 0 then begin
          (* the site may have revised the article several times since the
             last crawl; only the latest state is observed *)
          let revisions = 1 + Workload.Rng.int rng 3 in
          for _ = 1 to revisions do
            current := Workload.News.revise gen !current
          done;
          let crawl_ts =
            Timestamp.add base (Duration.add (Duration.days day) (Duration.hours i))
          in
          ignore (Db.update_document db ~url ~ts:crawl_ts !current)
        end)
      urls
  done;
  (* the science article is taken down at the end of the month *)
  Db.delete_document db ~url:"news.example.com/science.xml"
    ~ts:(Timestamp.add base (Duration.days 31))
    ();

  Printf.printf "Archive: %d documents, %d commits\n\n"
    (Db.document_count db) (Db.stats db).Db.commits;

  (* 1. transaction-time snapshot: the archive as we had crawled it on
     June 10th *)
  print_endline "--- titles as crawled by 10/06/2001 (transaction time) ---";
  List.iter
    (fun (url, _) ->
      match Db.find_at db url (Timestamp.of_string "10/06/2001") with
      | Some (d, v) ->
        let tree = Db.reconstruct db (Txq_db.Docstore.doc_id d) v in
        let title =
          match
            Txq_xml.Path.select_from_children
              (Txq_xml.Path.parse_exn "/title")
              (Txq_vxml.Vnode.to_xml tree)
          with
          | t :: _ -> Txq_xml.Xml.text_content t
          | [] -> "(no title)"
        in
        Printf.printf "  %-34s v%d  %s\n" url v title
      | None -> Printf.printf "  %-34s (not yet crawled)\n" url)
    urls;
  print_endline "";

  (* 2. document time: queryable two ways — through content like any
     value, or through the document-time index (no reconstruction) *)
  print_endline "--- articles published before 02/06/2001 (document time) ---";
  let by_doc_time =
    Txq_query.Exec.run_string_exn db
      {|SELECT A/meta/topic, A/meta/published
        FROM doc("news.example.com/politics.xml")//article A
        WHERE A/meta/published CONTAINS "01/06/2001"|}
  in
  print_string (show by_doc_time);
  print_endline "";

  print_endline "--- document-time index: versions published 01/06 - 03/06 ---";
  List.iter
    (fun (dt, doc, v) ->
      Printf.printf "  published %s  -> doc %d version %d\n"
        (Timestamp.to_string dt) doc v)
    (Db.find_by_document_time db
       ~t1:(Timestamp.of_string "01/06/2001")
       ~t2:(Timestamp.of_string "03/06/2001"));
  print_endline "";

  (* 3. change queries: how often was each feed revised, and when did the
     science article vanish? *)
  print_endline "--- revision counts (whole history) ---";
  List.iter
    (fun (url, _) ->
      match Db.find_all db url with
      | [d] ->
        Printf.printf "  %-34s %d versions%s\n" url
          (Txq_db.Docstore.version_count d)
          (match Txq_db.Docstore.deleted_at d with
           | Some ts -> Printf.sprintf ", deleted %s" (Timestamp.to_string ts)
           | None -> "")
      | _ -> ())
    urls;
  print_endline "";

  print_endline "--- every title the politics feed ever had ---";
  let titles =
    Txq_query.Exec.run_string_exn db
      {|SELECT DISTINCT A/title FROM doc("news.example.com/politics.xml")[EVERY]//article A|}
  in
  print_string (show titles)
