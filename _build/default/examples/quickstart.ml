(* Quickstart: create a temporal XML database, commit a few versions of a
   document, and ask temporal questions about it.

   Run with: dune exec examples/quickstart.exe *)

module Db = Txq_db.Db
module Timestamp = Txq_temporal.Timestamp

let ts = Timestamp.of_string
let xml = Txq_xml.Parse.parse_exn
let show = Txq_xml.Print.to_pretty

let () =
  (* 1. Create a database.  The default configuration is the paper's
     baseline: current version + completed deltas, temporal full-text index
     over version contents, CreTime index on. *)
  let db = Db.create () in

  (* 2. Commit three versions of a document, each at its own transaction
     time. *)
  let url = "example.org/menu.xml" in
  ignore
    (Db.insert_document db ~url ~ts:(ts "01/03/2001")
       (xml "<menu><dish><name>Margherita</name><price>8</price></dish></menu>"));
  ignore
    (Db.update_document db ~url ~ts:(ts "10/03/2001")
       (xml
          "<menu><dish><name>Margherita</name><price>9</price></dish>\
           <dish><name>Calzone</name><price>11</price></dish></menu>"));
  ignore
    (Db.update_document db ~url ~ts:(ts "20/03/2001")
       (xml
          "<menu><dish><name>Margherita</name><price>10</price></dish>\
           <dish><name>Calzone</name><price>11</price></dish></menu>"));

  (* 3. Snapshot query: what did the menu say on 15/03? *)
  let q1 =
    Txq_query.Exec.run_string_exn db
      {|SELECT D/name, D/price FROM doc("example.org/menu.xml")[15/03/2001]/menu/dish D|}
  in
  print_endline "--- menu on 15/03/2001 ---";
  print_string (show q1);

  (* 4. History query: the whole price history of the Margherita. *)
  let q2 =
    Txq_query.Exec.run_string_exn db
      {|SELECT TIME(D), D/price
        FROM doc("example.org/menu.xml")[EVERY]/menu/dish D
        WHERE D/name = "Margherita"|}
  in
  print_endline "--- Margherita price history ---";
  print_string (show q2);

  (* 5. Change query: when did the Calzone appear? *)
  let q3 =
    Txq_query.Exec.run_string_exn db
      {|SELECT CREATE TIME(D) FROM doc("example.org/menu.xml")/menu/dish D
        WHERE D/name = "Calzone"|}
  in
  print_endline "--- Calzone create time ---";
  print_string (show q3);

  (* 6. What changed between the previous version and now? *)
  let q4 =
    Txq_query.Exec.run_string_exn db
      {|SELECT DIFF(PREVIOUS(D), D) FROM doc("example.org/menu.xml")/menu/dish D
        WHERE D/name = "Margherita"|}
  in
  print_endline "--- edit script: previous -> current Margherita ---";
  print_string (show q4)
