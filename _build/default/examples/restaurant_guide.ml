(* The paper's running example, reproduced end to end.

   Figure 1: the restaurant list at guide.com as retrieved on January 1st,
   January 15th and January 31st — then the three example queries of
   Section 6.2 (Q1, Q2, Q3), each annotated with the operators the paper
   says execute it.

   Run with: dune exec examples/restaurant_guide.exe *)

module Db = Txq_db.Db
module Timestamp = Txq_temporal.Timestamp
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern

let ts = Timestamp.of_string
let xml = Txq_xml.Parse.parse_exn
let show = Txq_xml.Print.to_pretty
let url = "guide.com/restaurants.xml"

(* Figure 1.  (The paper draws the document as a forest of restaurant
   trees; well-formed XML needs a single root, so the forest lives under
   <guide>.) *)
let january_1 =
  xml
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"

let january_15 =
  xml
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
     <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let january_31 =
  xml
    "<guide><restaurant><name>Napoli</name><price>18</price></restaurant>\
     <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"

let () =
  let db = Db.create () in
  ignore (Db.insert_document db ~url ~ts:(ts "01/01/2001") january_1);
  ignore (Db.update_document db ~url ~ts:(ts "15/01/2001") january_15);
  ignore (Db.update_document db ~url ~ts:(ts "31/01/2001") january_31);
  print_endline "Loaded Figure 1: three versions of guide.com/restaurants.xml";
  print_endline "";

  (* ---- Q1 (Section 6.2): list all restaurants as of 26/01/2001.
     Operators: TPatternScan, followed by Reconstruct. *)
  print_endline "Q1: SELECT R FROM doc(\"guide.com/restaurants.xml\")[26/01/2001]/guide/restaurant R";
  let q1 =
    Txq_query.Exec.run_string_exn db
      {|SELECT R FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  print_string (show q1);
  print_endline "";

  (* ---- Q2: the number of restaurants at 26/01/2001.
     Operators: TPatternScan followed by the aggregate — and, as the paper
     stresses, *no reconstruction*.  We assert that from the IO counters. *)
  print_endline "Q2: SELECT COUNT(R) FROM doc(\"...\")[26/01/2001]/guide/restaurant R";
  Db.reset_io db;
  let q2 =
    Txq_query.Exec.run_string_exn db
      {|SELECT COUNT(R) FROM doc("guide.com/restaurants.xml")[26/01/2001]/guide/restaurant R|}
  in
  print_string (show q2);
  Printf.printf "(reconstructions performed: %d, deltas read: %d)\n\n"
    (Db.stats db).Db.reconstructions
    (Db.stats db).Db.deltas_read;

  (* ---- Q3: the price history of the restaurant Napoli.
     Operator: TPatternScanAll (the temporal multiway join). *)
  print_endline "Q3: SELECT TIME(R), R/price FROM doc(\"...\")[EVERY]/guide/restaurant R WHERE R/name=\"Napoli\"";
  let q3 =
    Txq_query.Exec.run_string_exn db
      {|SELECT TIME(R), R/price
        FROM doc("guide.com/restaurants.xml")[EVERY]/guide/restaurant R
        WHERE R/name = "Napoli"|}
  in
  print_string (show q3);
  print_endline "";

  (* ---- the same Q1 at the operator level, for readers following
     Section 7.3 *)
  print_endline "Q1 again, directly against the operator algebra:";
  let pattern = Pattern.of_path_exn "/guide/restaurant" in
  let bindings = Scan.tpattern_scan db pattern (ts "26/01/2001") in
  List.iter
    (fun teid ->
      match Txq_core.Reconstruct_op.reconstruct_xml db teid with
      | Some tree ->
        Printf.printf "  %s -> %s\n"
          (Txq_vxml.Eid.Temporal.to_string teid)
          (Txq_xml.Print.to_string tree)
      | None -> ())
    (Scan.to_teids db bindings);
  print_endline "";

  (* ---- element lifetimes: when did Akropolis appear? *)
  (match
     Txq_query.Exec.run_string_exn db
       {|SELECT CREATE TIME(R) FROM doc("guide.com/restaurants.xml")/guide/restaurant R
         WHERE R/name = "Akropolis"|}
   with
   | result ->
     print_endline "CREATE TIME of the Akropolis element:";
     print_string (show result))
