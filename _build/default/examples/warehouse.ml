(* An XML data warehouse: many documents, crawled over time, queried as one
   collection.

   This is the Xyleme-style setting the paper is written for (Section 1):
   the database holds versions of documents collected from the Web, and
   queries range over the whole collection, not one URL.  The example loads
   a generated corpus of city restaurant guides, then runs warehouse-wide
   temporal queries using collection() sources, and finishes with an
   integrity verification of every stored version.

   Run with: dune exec examples/warehouse.exe *)

module Db = Txq_db.Db
module Timestamp = Txq_temporal.Timestamp
module Load = Txq_workload.Load

let show = Txq_xml.Print.to_pretty

let () =
  (* 12 city guides x 16 versions, snapshots every 8 versions *)
  let spec =
    { Load.default_spec with Load.documents = 12; versions = 16 }
  in
  let db =
    Load.load_db
      ~config:(Txq_db.Config.with_snapshots 8 Txq_db.Config.default)
      spec
  in
  Printf.printf "Warehouse: %d documents, %d commits, %d live pages (%d KiB)\n\n"
    (Db.document_count db)
    (Db.stats db).Db.commits (Db.live_pages db)
    (Db.live_pages db * 4);

  (* 1. warehouse-wide current query *)
  print_endline "--- restaurants currently priced under 8, anywhere ---";
  print_string
    (show
       (Txq_query.Exec.run_string_exn db
          {|SELECT R/name, R/price FROM collection("guide.example.org/*")/guide/restaurant R
            WHERE R/price < 8|}));
  print_endline "";

  (* 2. warehouse-wide snapshot: how big was the whole collection halfway
     through the crawl? *)
  let mid = Timestamp.to_string (Load.midpoint_ts spec) in
  Printf.printf "--- collection size at %s vs now ---\n" mid;
  let count q = Txq_xml.Xml.text_content (Txq_query.Exec.run_string_exn db q) in
  Printf.printf "  restaurants at %s : %s\n" mid
    (count
       (Printf.sprintf
          {|SELECT COUNT(R) FROM collection("*")[%s]/guide/restaurant R|} mid));
  Printf.printf "  restaurants now        : %s\n\n"
    (count {|SELECT COUNT(R) FROM collection("*")/guide/restaurant R|});

  (* 3. price history of one chain across every city, by name *)
  let target = Load.target_name spec in
  Printf.printf "--- price history of %S across the warehouse ---\n" target;
  let history =
    Txq_query.Exec.run_string_exn db
      (Printf.sprintf
         {|SELECT TIME(R), R/price FROM collection("*")[EVERY]/guide/restaurant R
           WHERE R/name = "%s"|}
         target)
  in
  print_string (show history);
  print_endline "";

  (* 4. integrity: every version of every document reconstructs *)
  match Db.verify db with
  | Ok versions ->
    Printf.printf "verify: %d stored versions reconstruct cleanly\n" versions
  | Error diagnostics ->
    List.iter (fun d -> Printf.printf "verify FAIL: %s\n" d) diagnostics
