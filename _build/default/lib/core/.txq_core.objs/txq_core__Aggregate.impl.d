lib/core/aggregate.ml: List Reconstruct_op Scan Stdlib String Txq_vxml Vrange
