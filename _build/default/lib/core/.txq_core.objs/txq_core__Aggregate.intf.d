lib/core/aggregate.mli: Scan Txq_db Txq_vxml
