lib/core/diff_op.ml: Printf Reconstruct_op Txq_vxml
