lib/core/diff_op.mli: Txq_db Txq_vxml Txq_xml
