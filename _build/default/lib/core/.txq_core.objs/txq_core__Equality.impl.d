lib/core/equality.ml: Set String Txq_vxml Txq_xml
