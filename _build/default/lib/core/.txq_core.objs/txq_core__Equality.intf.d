lib/core/equality.mli: Txq_vxml
