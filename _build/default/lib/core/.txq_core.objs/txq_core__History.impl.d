lib/core/history.ml: List Txq_db Txq_temporal Txq_vxml
