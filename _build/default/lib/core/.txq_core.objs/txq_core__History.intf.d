lib/core/history.mli: Txq_db Txq_temporal Txq_vxml
