lib/core/lifetime.ml: List Txq_db Txq_temporal Txq_vxml
