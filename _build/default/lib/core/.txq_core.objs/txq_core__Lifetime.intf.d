lib/core/lifetime.mli: Txq_db Txq_temporal Txq_vxml
