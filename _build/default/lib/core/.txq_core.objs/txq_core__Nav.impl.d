lib/core/nav.ml: Option Txq_db Txq_vxml
