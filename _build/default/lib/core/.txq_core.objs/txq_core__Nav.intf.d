lib/core/nav.mli: Txq_db Txq_temporal Txq_vxml
