lib/core/pattern.ml: Format List Printf String Txq_xml
