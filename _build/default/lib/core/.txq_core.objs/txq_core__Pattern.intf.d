lib/core/pattern.mli: Format
