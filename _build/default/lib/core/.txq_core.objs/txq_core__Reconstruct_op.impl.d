lib/core/reconstruct_op.ml: Option Txq_db Txq_vxml
