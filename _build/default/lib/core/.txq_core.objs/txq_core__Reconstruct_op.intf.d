lib/core/reconstruct_op.mli: Txq_db Txq_temporal Txq_vxml Txq_xml
