lib/core/scan.ml: Array Hashtbl Int List Pattern Stdlib Txq_db Txq_fti Txq_temporal Txq_vxml Vrange
