lib/core/scan.mli: Pattern Txq_db Txq_temporal Txq_vxml Vrange
