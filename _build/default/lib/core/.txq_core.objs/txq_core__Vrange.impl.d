lib/core/vrange.ml: Format List Printf Stdlib String
