lib/core/vrange.mli: Format
