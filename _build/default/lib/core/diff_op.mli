(** The Diff operator (Sections 6.1, 7.3.8).

    Computes the changes between two element versions as an edit script.
    "In our context, the edit scripts are XML trees themselves", so the
    operator does not break the closure property of queries: its result can
    be returned, post-processed or queried like any other XML. *)

val diff :
  Txq_db.Db.t ->
  Txq_vxml.Eid.Temporal.t ->
  Txq_vxml.Eid.Temporal.t ->
  (Txq_xml.Xml.t, string) result
(** Edit script between the two element versions (which may belong to
    different documents or subtrees).  Errors if either TEID does not
    resolve. *)

val diff_trees : Txq_vxml.Vnode.t -> Txq_vxml.Vnode.t -> Txq_xml.Xml.t
(** Edit script between two already-materialized trees. *)
