module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid

let deep_equal = Vnode.deep_equal

let shallow_equal a b =
  match (a, b) with
  | Vnode.Text x, Vnode.Text y -> String.equal x.content y.content
  | Vnode.Elem x, Vnode.Elem y ->
    Vnode.deep_equal
      (Vnode.Elem { x with children = [] })
      (Vnode.Elem { y with children = [] })
  | Vnode.Text _, Vnode.Elem _ | Vnode.Elem _, Vnode.Text _ -> false

let identical = Eid.equal

module Words = Set.Make (String)

let token_set tree = Words.of_list (Txq_xml.Xml.words (Vnode.to_xml tree))

let similarity a b =
  let wa = token_set a and wb = token_set b in
  let union = Words.cardinal (Words.union wa wb) in
  if union = 0 then 1.0
  else float_of_int (Words.cardinal (Words.inter wa wb)) /. float_of_int union

let similar ?(threshold = 0.6) a b = similarity a b >= threshold
