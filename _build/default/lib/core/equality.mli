(** Equality, identity and similarity of element versions (Section 7.4).

    The paper contrasts three readings of "the same" for versioned XML:
    content equality ([=], deep or shallow), node identity ([==], via
    persistent EIDs), and similarity (after Theobald & Weikum [14]), and
    concludes a combination of shallow equality and a similarity operator is
    the most practical.  All three are provided. *)

val deep_equal : Txq_vxml.Vnode.t -> Txq_vxml.Vnode.t -> bool
(** [=] with deep semantics: whole subtrees match in elements and values
    ("can be too strict in practice, considering that this is XML data"). *)

val shallow_equal : Txq_vxml.Vnode.t -> Txq_vxml.Vnode.t -> bool
(** [=] with shallow semantics: the nodes themselves match (tag and
    attributes, or text content); children are ignored. *)

val identical : Txq_vxml.Eid.t -> Txq_vxml.Eid.t -> bool
(** [==]: same persistent identity.  Survives updates to the element's
    content, but a deleted-and-reintroduced element compares false — the
    failure mode the paper points out. *)

val similarity : Txq_vxml.Vnode.t -> Txq_vxml.Vnode.t -> float
(** Token-level Jaccard similarity over the two subtrees' words (element
    names included), in [\[0, 1\]].  Two empty trees are similar (1.0). *)

val similar :
  ?threshold:float -> Txq_vxml.Vnode.t -> Txq_vxml.Vnode.t -> bool
(** The [≈] operator: [similarity a b >= threshold] (default 0.6). *)
