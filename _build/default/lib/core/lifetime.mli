(** CreTime and DelTime (Sections 6.1, 7.3.6).

    Both operators come in the two strategies the paper weighs:

    - [`Traverse]: walk the delta chain — backward from the element's
      version for CreTime until the delta that introduced it, forward for
      DelTime until the delta that removed it.  No reconstruction is needed,
      but every delta on the way is read (the availability of the timestamp
      in the TEID is what makes the bounded walk possible, as the paper
      notes).
    - [`Index]: look the EID up in the auxiliary create/delete-time index.

    Experiment E6 measures the trade. *)

type strategy = [ `Traverse | `Index ]

val cre_time :
  Txq_db.Db.t -> ?strategy:strategy -> Txq_vxml.Eid.Temporal.t ->
  Txq_temporal.Timestamp.t option
(** Create time of the element; [None] if the element never existed (or, for
    [`Traverse], did not exist at the TEID's timestamp).  Default strategy:
    [`Index] when the database maintains the index, else [`Traverse]. *)

val del_time :
  Txq_db.Db.t -> ?strategy:strategy -> Txq_vxml.Eid.Temporal.t ->
  Txq_temporal.Timestamp.t option
(** Delete time; [None] while the element is still alive.  If the document
    itself was deleted with the element in its last version, the document's
    deletion time is the element's (Section 7.3.6). *)

val last_traverse_deltas : unit -> int
(** Deltas read by the most recent [`Traverse] call on this thread
    (benchmark instrumentation). *)
