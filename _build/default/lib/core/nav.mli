(** PreviousTS, NextTS, CurrentTS (Sections 6.1, 7.3.7).

    All three are delta-index lookups: the EID names the document, the
    timestamp selects the version, and the previous/next/current timestamps
    come straight out of the per-document version table.  Retrieving the
    version contents afterwards is a Reconstruct. *)

val previous_ts :
  Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_temporal.Timestamp.t option
(** Timestamp of the version preceding the TEID's; [None] for the first. *)

val next_ts :
  Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_temporal.Timestamp.t option
(** Timestamp of the following version; [None] for the current one. *)

val current_ts :
  Txq_db.Db.t -> Txq_vxml.Eid.t -> Txq_temporal.Timestamp.t option
(** Timestamp of the current version — no input timestamp needed, "as this
    is given implicitly".  [None] once the document is deleted. *)

val previous : Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_vxml.Eid.Temporal.t option
(** TEID of the previous version of the element (PREVIOUS(R) in queries). *)

val next : Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_vxml.Eid.Temporal.t option
val current : Txq_db.Db.t -> Txq_vxml.Eid.t -> Txq_vxml.Eid.Temporal.t option
