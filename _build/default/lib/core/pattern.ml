type test =
  | Tag of string
  | Word of string

type axis =
  | Child
  | Descendant

type t = {
  test : test;
  axis : axis;
  output : bool;
  children : t list;
}

let tag ?(axis = Child) ?(output = false) name children =
  { test = Tag name; axis; output; children }

let word ?(axis = Child) w = { test = Word w; axis; output = false; children = [] }

let rec output_count t =
  (if t.output then 1 else 0)
  + List.fold_left (fun acc c -> acc + output_count c) 0 t.children

let has_output t = output_count t > 0

let rec check_words_are_leaves t =
  match t.test with
  | Word _ -> t.children = []
  | Tag _ -> List.for_all check_words_are_leaves t.children

let validate t =
  if output_count t <> 1 then
    Error
      (Printf.sprintf "pattern must have exactly one output node, found %d"
         (output_count t))
  else if not (check_words_are_leaves t) then
    Error "word tests must be leaves"
  else Ok ()

let of_path ?value path =
  match Txq_xml.Path.parse path with
  | Error e -> Error e
  | Ok [] -> Error "empty pattern path"
  | Ok steps ->
    if List.exists (fun s -> String.equal s.Txq_xml.Path.name "*") steps then
      Error "wildcard steps are not supported in patterns"
    else
      let axis_of = function
        | Txq_xml.Path.Child -> Child
        | Txq_xml.Path.Descendant -> Descendant
      in
      let rec build = function
        | [] -> assert false
        | [last] ->
          let children =
            match value with
            | Some v -> [word v]
            | None -> []
          in
          {
            test = Tag last.Txq_xml.Path.name;
            axis = axis_of last.Txq_xml.Path.axis;
            output = true;
            children;
          }
        | step :: rest ->
          {
            test = Tag step.Txq_xml.Path.name;
            axis = axis_of step.Txq_xml.Path.axis;
            output = false;
            children = [build rest];
          }
      in
      Ok (build steps)

let of_path_exn ?value path =
  match of_path ?value path with
  | Ok p -> p
  | Error e -> invalid_arg ("Pattern.of_path_exn: " ^ e)

let rec to_string t =
  let prefix = match t.axis with Child -> "/" | Descendant -> "//" in
  let self =
    match t.test with
    | Tag name -> name
    | Word w -> Printf.sprintf "~%S" w
  in
  let mark = if t.output then "!" else "" in
  let kids =
    match t.children with
    | [] -> ""
    | kids -> "(" ^ String.concat ", " (List.map to_string kids) ^ ")"
  in
  prefix ^ self ^ mark ^ kids

let pp ppf t = Format.pp_print_string ppf (to_string t)
