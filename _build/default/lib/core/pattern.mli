(** Pattern trees (Section 6, after the PatternScan operator of Xyleme [2]).

    A pattern is a tree of node tests connected by [isParentOf] (child axis)
    and [isAscendantOf] (descendant axis) relationships.  Element tests match
    element names; word tests match words occurring in an element's text or
    attributes.  Exactly one node carries the [output] mark: its matches are
    the operator's result (the paper's projection information). *)

type test =
  | Tag of string  (** element-name test *)
  | Word of string  (** word-containment test (leaf only) *)

type axis =
  | Child  (** isParentOf; for a word: contained directly in the element *)
  | Descendant  (** isAscendantOf; for a word: contained anywhere below *)

type t = {
  test : test;
  axis : axis;  (** relation to the parent pattern node (or document root) *)
  output : bool;
  children : t list;
}

val tag : ?axis:axis -> ?output:bool -> string -> t list -> t
(** Element-test node; [axis] defaults to [Child]. *)

val word : ?axis:axis -> string -> t
(** Word-test leaf; [axis] defaults to [Child] (direct containment). *)

val of_path : ?value:string -> string -> (t, string) result
(** Builds a linear pattern from a location path such as
    ["/guide/restaurant//name"]; the last step is the output node, and
    [value], when given, hangs a word test under it.  Rejects wildcard
    steps (["*"]) — the index has no posting list for "any element";
    wildcard patterns go through the navigation operators instead. *)

val of_path_exn : ?value:string -> string -> t

val validate : t -> (unit, string) result
(** Checks the single-output invariant and that word tests are leaves. *)

val output_count : t -> int
val has_output : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
