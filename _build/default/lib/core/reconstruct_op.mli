(** The Reconstruct operator (Sections 6.1, 7.3.3).

    Materializes the tree rooted at a TEID's element in the version its
    timestamp names, by applying completed deltas backward from the current
    version (or the nearest snapshot); the heavy lifting lives in
    [Txq_db.Docstore.reconstruct], this operator adds element addressing. *)

val reconstruct :
  Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_vxml.Vnode.t option
(** The element's subtree at the TEID's time; [None] when the document had
    no version then or the element is absent from it. *)

val reconstruct_xml :
  Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> Txq_xml.Xml.t option
(** Same, stripped of XIDs — result form for query output. *)

val reconstruct_document :
  Txq_db.Db.t -> Txq_vxml.Eid.doc_id -> Txq_temporal.Timestamp.t ->
  Txq_vxml.Vnode.t option
(** Whole-document variant. *)
