module Eid = Txq_vxml.Eid
module Xidpath = Txq_vxml.Xidpath
module Vnode = Txq_vxml.Vnode
module Posting = Txq_fti.Posting
module Fti = Txq_fti.Fti
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Timestamp = Txq_temporal.Timestamp

type binding = {
  b_doc : Eid.doc_id;
  b_path : Xidpath.t;
  b_versions : Vrange.t;
}

let eid_of_binding b =
  match Xidpath.leaf b.b_path with
  | Some xid -> Eid.make ~doc:b.b_doc ~xid
  | None -> invalid_arg "Scan.eid_of_binding: empty path"

(* --- join engine ------------------------------------------------------ *)

(* A candidate: one posting of a pattern node, with the versions in which it
   is valid, the output binding (when the output node lies in this subtree)
   and its XID path. *)
type cand = {
  c_path : Xidpath.t;
  c_out : Xidpath.t option;
  c_versions : Vrange.t;
}

let range_of_posting p =
  Vrange.singleton p.Posting.vstart
    (if Posting.is_open p then max_int else p.Posting.vend)

(* Does candidate [child] stand in the pattern-edge relation to [parent]?
   Tag tests carry the path of the element itself; word tests carry the path
   of the enclosing element (see Vnode.occurrence). *)
let related ~(axis : Pattern.axis) ~(child_test : Pattern.test) parent_path
    child_path =
  match (child_test, axis) with
  | Pattern.Tag _, Pattern.Child -> Xidpath.is_parent parent_path child_path
  | Pattern.Tag _, Pattern.Descendant ->
    Xidpath.is_strict_prefix parent_path child_path
  | Pattern.Word _, Pattern.Child -> Xidpath.equal parent_path child_path
  | Pattern.Word _, Pattern.Descendant ->
    Xidpath.is_prefix parent_path child_path

(* Evaluate a pattern node against the postings of one document.  [fetch]
   returns that document's postings for a word and kind. *)
let rec eval_node ~fetch (p : Pattern.t) : cand list =
  let kind =
    match p.Pattern.test with
    | Pattern.Tag _ -> Vnode.Tag
    | Pattern.Word _ -> Vnode.Word
  in
  let word =
    match p.Pattern.test with
    | Pattern.Tag w | Pattern.Word w -> w
  in
  let own =
    List.map
      (fun posting ->
        {
          c_path = posting.Posting.path;
          c_out = (if p.Pattern.output then Some posting.Posting.path else None);
          c_versions = range_of_posting posting;
        })
      (fetch word kind)
  in
  let children_matches =
    List.map (fun c -> (c, eval_node ~fetch c)) p.Pattern.children
  in
  (* For every candidate, constrain by each child: non-output children
     contribute the union of their matching validities; the output-bearing
     child multiplies the candidate into one row per matching child
     candidate. *)
  List.concat_map
    (fun cand ->
      let constrain rows (child, matches) =
        let child_has_output = Pattern.has_output child in
        List.concat_map
          (fun row ->
            let matching =
              List.filter
                (fun m ->
                  related ~axis:child.Pattern.axis
                    ~child_test:child.Pattern.test row.c_path m.c_path)
                matches
            in
            if child_has_output then
              List.filter_map
                (fun m ->
                  let versions = Vrange.inter row.c_versions m.c_versions in
                  if Vrange.is_empty versions then None
                  else Some { row with c_out = m.c_out; c_versions = versions })
                matching
            else
              let valid =
                List.fold_left
                  (fun acc m -> Vrange.union acc m.c_versions)
                  Vrange.empty matching
              in
              let versions = Vrange.inter row.c_versions valid in
              if Vrange.is_empty versions then []
              else [{ row with c_versions = versions }])
          rows
      in
      List.fold_left constrain [cand] children_matches)
    own

(* Root axis: a [Child] root must be the document root element. *)
let root_ok (p : Pattern.t) cand =
  match p.Pattern.axis with
  | Pattern.Child -> Xidpath.depth cand.c_path = 1
  | Pattern.Descendant -> true

let run ~fetch_doc ~docs pattern =
  (match Pattern.validate pattern with
   | Ok () -> ()
   | Error e -> invalid_arg ("Scan: invalid pattern: " ^ e));
  List.concat_map
    (fun doc ->
      let cands =
        List.filter (root_ok pattern)
          (eval_node ~fetch:(fetch_doc doc) pattern)
      in
      List.filter_map
        (fun c ->
          match c.c_out with
          | Some out ->
            Some { b_doc = doc; b_path = out; b_versions = c.c_versions }
          | None -> None)
        cands)
    docs

(* Dedup bindings (the same output node can be reached through different
   intermediate matches) and merge their version sets. *)
let dedup bindings =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun b ->
      let key = (b.b_doc, Array.map Txq_vxml.Xid.to_int b.b_path) in
      match Hashtbl.find_opt table key with
      | Some prev ->
        Hashtbl.replace table key
          { prev with b_versions = Vrange.union prev.b_versions b.b_versions }
      | None ->
        Hashtbl.replace table key b;
        order := key :: !order)
    bindings;
  List.rev_map (Hashtbl.find table) !order

(* Group a word's postings by doc up front so per-doc fetches are cheap. *)
let by_doc postings =
  let table = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let bucket =
        match Hashtbl.find_opt table p.Posting.doc with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace table p.Posting.doc b;
          b
      in
      bucket := p :: !bucket)
    postings;
  table

let engine pattern ~lookup =
  let cache = Hashtbl.create 16 in
  let postings_for word =
    match Hashtbl.find_opt cache word with
    | Some t -> t
    | None ->
      let t = by_doc (lookup word) in
      Hashtbl.replace cache word t;
      t
  in
  (* candidate documents: those with postings for the root word *)
  let root_word =
    match pattern.Pattern.test with
    | Pattern.Tag w | Pattern.Word w -> w
  in
  let docs =
    Hashtbl.fold (fun doc _ acc -> doc :: acc) (postings_for root_word) []
    |> List.sort Int.compare
  in
  let fetch_doc doc word kind =
    match Hashtbl.find_opt (postings_for word) doc with
    | Some bucket -> List.filter (fun p -> p.Posting.kind = kind) !bucket
    | None -> []
  in
  dedup (run ~fetch_doc ~docs pattern)

(* Restrict each binding's validity to the single version the operator is
   about: postings can span many versions, but a snapshot operator's TEIDs
   must name the version valid at the query time (Section 6.1). *)
let clamp ~version_of bindings =
  List.filter_map
    (fun b ->
      match version_of b.b_doc with
      | None -> None
      | Some v ->
        let versions = Vrange.inter b.b_versions (Vrange.singleton v (v + 1)) in
        if Vrange.is_empty versions then None else Some { b with b_versions = versions })
    bindings

let pattern_scan db pattern =
  let current_version doc =
    let d = Db.doc db doc in
    if Docstore.is_alive d then Some (Docstore.version_count d - 1) else None
  in
  clamp ~version_of:current_version
    (engine pattern ~lookup:(fun w -> Fti.lookup (Db.fti db) w))

let tpattern_scan db pattern ts =
  let version_at doc = Db.version_at db doc ts in
  clamp ~version_of:version_at
    (engine pattern ~lookup:(fun w -> Fti.lookup_t (Db.fti db) w ~version_at))

let tpattern_scan_all db pattern =
  engine pattern ~lookup:(fun w -> Fti.lookup_h (Db.fti db) w)

let binding_intervals db b =
  let d = Db.doc db b.b_doc in
  let n = Docstore.version_count d in
  List.filter_map
    (fun (lo, hi) ->
      let lo = Stdlib.max lo 0 in
      let hi = Stdlib.min hi n in
      if lo >= hi then None
      else
        let start = Docstore.ts_of_version d lo in
        let stop =
          if hi >= n then
            match Docstore.deleted_at d with
            | Some del -> del
            | None -> Timestamp.plus_infinity
          else Docstore.ts_of_version d hi
        in
        Txq_temporal.Interval.make_opt ~start ~stop)
    (Vrange.to_list b.b_versions)

let to_teids db bindings =
  List.concat_map
    (fun b ->
      match Xidpath.leaf b.b_path with
      | None -> []
      | Some xid ->
        let eid = Eid.make ~doc:b.b_doc ~xid in
        List.map
          (fun iv -> Eid.Temporal.make eid (Txq_temporal.Interval.start iv))
          (binding_intervals db b))
    bindings

let count = List.length
