lib/db/config.ml: Txq_store
