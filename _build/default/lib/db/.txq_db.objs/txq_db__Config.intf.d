lib/db/config.mli: Txq_store
