lib/db/cretime_index.ml: Int64 Option Printf Txq_store Txq_temporal Txq_vxml
