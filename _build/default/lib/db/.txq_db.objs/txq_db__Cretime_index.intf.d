lib/db/cretime_index.mli: Txq_store Txq_temporal Txq_vxml
