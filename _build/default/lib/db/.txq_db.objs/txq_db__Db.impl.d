lib/db/db.ml: Config Cretime_index Docstore Hashtbl Int Int64 List Logs Option Printexc Printf Stdlib String Txq_fti Txq_store Txq_temporal Txq_vxml Txq_xml
