lib/db/db.mli: Config Cretime_index Docstore Txq_fti Txq_store Txq_temporal Txq_vxml Txq_xml
