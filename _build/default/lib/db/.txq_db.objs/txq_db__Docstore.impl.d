lib/db/docstore.ml: List Printf Txq_store Txq_temporal Txq_vxml Txq_xml
