lib/db/docstore.mli: Txq_store Txq_temporal Txq_vxml Txq_xml
