module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Bptree = Txq_store.Bptree

type entry = {
  created : Timestamp.t;
  mutable deleted : Timestamp.t option;
}

type t =
  | Memory of entry Eid.Table.t
  | Paged of { tree : Bptree.t; mutable count : int }

let create () = Memory (Eid.Table.create 1024)
let create_paged pool = Paged { tree = Bptree.create pool; count = 0 }

let is_paged = function
  | Paged _ -> true
  | Memory _ -> false

(* (doc, xid) packed into the B+-tree key: doc in the high 31 bits, xid in
   the low 32.  Delete timestamp sentinel: Int64.min_int = alive. *)
let key_of eid =
  Int64.logor
    (Int64.shift_left (Int64.of_int eid.Eid.doc) 32)
    (Int64.of_int (Txq_vxml.Xid.to_int eid.Eid.xid))

let alive_sentinel = Int64.min_int
let ts_to_i64 ts = Int64.of_int (Timestamp.to_seconds ts)
let i64_to_ts v = Timestamp.of_seconds (Int64.to_int v)

let duplicate eid =
  invalid_arg
    (Printf.sprintf "Cretime_index: eid %s created twice" (Eid.to_string eid))

let record_created t eid ts =
  match t with
  | Memory table ->
    if Eid.Table.mem table eid then duplicate eid
    else Eid.Table.replace table eid { created = ts; deleted = None }
  | Paged p ->
    let key = key_of eid in
    (match Bptree.find p.tree key with
     | Some _ -> duplicate eid
     | None ->
       Bptree.insert p.tree ~key (ts_to_i64 ts, alive_sentinel);
       p.count <- p.count + 1)

let record_deleted t eid ts =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some entry -> entry.deleted <- Some ts
    | None -> ())
  | Paged p -> (
    let key = key_of eid in
    match Bptree.find p.tree key with
    | Some (created, _) -> Bptree.insert p.tree ~key (created, ts_to_i64 ts)
    | None -> ())

let create_time t eid =
  match t with
  | Memory table ->
    Option.map (fun e -> e.created) (Eid.Table.find_opt table eid)
  | Paged p ->
    Option.map (fun (created, _) -> i64_to_ts created)
      (Bptree.find p.tree (key_of eid))

let delete_time t eid =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some { deleted; _ } -> deleted
    | None -> None)
  | Paged p -> (
    match Bptree.find p.tree (key_of eid) with
    | Some (_, del) when not (Int64.equal del alive_sentinel) ->
      Some (i64_to_ts del)
    | Some _ | None -> None)

let is_alive t eid =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some { deleted = None; _ } -> true
    | Some { deleted = Some _; _ } | None -> false)
  | Paged p -> (
    match Bptree.find p.tree (key_of eid) with
    | Some (_, del) -> Int64.equal del alive_sentinel
    | None -> false)

let entry_count = function
  | Memory table -> Eid.Table.length table
  | Paged p -> p.count

let index_pages = function
  | Memory _ -> 0
  | Paged p -> Bptree.page_count p.tree
