module Xml = Txq_xml.Xml
module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Clock = Txq_temporal.Clock
module Fti = Txq_fti.Fti
module Delta_fti = Txq_fti.Delta_fti

let log_src = Logs.Src.create "txq.db" ~doc:"Temporal XML database commits"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  mutable commits : int;
  mutable deltas_read : int;
  mutable reconstructions : int;
  mutable reconstruct_cache_hits : int;
}

type cache_entry = { ce_key : Eid.doc_id * int; ce_tree : Vnode.t; mutable ce_use : int }

type t = {
  config : Config.t;
  clock : Clock.t;
  disk : Txq_store.Disk.t;
  pool : Txq_store.Buffer_pool.t;
  blobs : Txq_store.Blob_store.t;
  docs : (Eid.doc_id, Docstore.t) Hashtbl.t;
  urls : (string, Eid.doc_id list ref) Hashtbl.t; (* newest first *)
  fti : Fti.t option;
  dfti : Delta_fti.t option;
  cretime : Cretime_index.t option;
  mutable next_doc_id : int;
  (* Section 3.1 document-time index: a B+-tree keyed by (document time,
     sequence number) so equal publication instants coexist; populated when
     the configuration names a document-time path. *)
  dtime_path : Txq_xml.Path.t option;
  dtime_index : Txq_store.Bptree.t;
  mutable dtime_seq : int;
  stats : stats;
  rcache : (Eid.doc_id * int, cache_entry) Hashtbl.t;
  mutable rcache_tick : int;
}

let create ?(config = Config.default) ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let disk = Txq_store.Disk.create () in
  let pool =
    Txq_store.Buffer_pool.create ~capacity:config.Config.buffer_pool_pages disk
  in
  let blobs = Txq_store.Blob_store.create ~policy:config.Config.placement pool in
  {
    config;
    clock;
    disk;
    pool;
    blobs;
    docs = Hashtbl.create 64;
    urls = Hashtbl.create 64;
    fti =
      (if Config.maintains_version_index config then Some (Fti.create ())
       else None);
    dfti =
      (if Config.maintains_delta_index config then Some (Delta_fti.create ())
       else None);
    cretime =
      (if config.Config.cretime_index then
         Some
           (match config.Config.cretime_backing with
            | `Paged -> Cretime_index.create_paged pool
            | `Memory -> Cretime_index.create ())
       else None);
    next_doc_id = 0;
    dtime_path =
      Option.map Txq_xml.Path.parse_exn config.Config.document_time_path;
    dtime_index = Txq_store.Bptree.create pool;
    dtime_seq = 0;
    stats =
      { commits = 0; deltas_read = 0; reconstructions = 0;
        reconstruct_cache_hits = 0 };
    rcache = Hashtbl.create 64;
    rcache_tick = 0;
  }

let config t = t.config
let clock t = t.clock
let now t = Clock.now t.clock

let commit_ts t = function
  | None -> Clock.tick t.clock
  | Some ts ->
    Clock.set t.clock ts;
    ts

let url_bucket t url =
  match Hashtbl.find_opt t.urls url with
  | Some bucket -> bucket
  | None ->
    let bucket = ref [] in
    Hashtbl.replace t.urls url bucket;
    bucket

let doc t id =
  match Hashtbl.find_opt t.docs id with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Db.doc: unknown document id %d" id)

let find_live t url =
  match Hashtbl.find_opt t.urls url with
  | None -> None
  | Some bucket -> (
    match !bucket with
    | [] -> None
    | newest :: _ ->
      let d = doc t newest in
      if Docstore.is_alive d then Some d else None)

let find_all t url =
  match Hashtbl.find_opt t.urls url with
  | None -> []
  | Some bucket -> List.rev_map (doc t) !bucket

let find_at t url instant =
  List.find_map
    (fun d ->
      match Docstore.version_at d instant with
      | Some v -> Some (d, v)
      | None -> None)
    (find_all t url)

let doc_ids t = List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.docs [])
let document_count t = Hashtbl.length t.docs

let snapshot_due t version =
  match t.config.Config.snapshot_every with
  | Some k -> version mod k = 0
  | None -> false

let record_created_tree t d ts tree =
  match t.cretime with
  | None -> ()
  | Some idx ->
    List.iter
      (fun xid ->
        Cretime_index.record_created idx
          (Eid.make ~doc:(Docstore.doc_id d) ~xid) ts)
      (Vnode.xids tree)

(* Extract the content-embedded document time, when configured. *)
let extract_doc_time t xml =
  match t.dtime_path with
  | None -> None
  | Some path -> (
    match Txq_xml.Path.select_from_children path (Xml.normalize xml) with
    | node :: _ ->
      Timestamp.of_string_opt (String.trim (Xml.text_content node))
    | [] -> None)

(* Document-time keys: seconds in the high bits, a per-database sequence
   number in the low 20, so identical publication instants stay distinct.
   Instants beyond ±2^42 seconds (~139k years) cannot be packed; no real
   document time is. *)
let dtime_key_bits = 20

let dtime_key seconds seq =
  Int64.logor
    (Int64.shift_left (Int64.of_int seconds) dtime_key_bits)
    (Int64.of_int (seq land ((1 lsl dtime_key_bits) - 1)))

let record_doc_time t ~doc ~version = function
  | None -> ()
  | Some dt ->
    let seconds = Timestamp.to_seconds dt in
    if abs seconds < 1 lsl 42 then begin
      Txq_store.Bptree.insert t.dtime_index
        ~key:(dtime_key seconds t.dtime_seq)
        (Int64.of_int doc, Int64.of_int version);
      t.dtime_seq <- t.dtime_seq + 1
    end

let insert_document t ~url ?ts xml =
  (match find_live t url with
   | Some _ ->
     invalid_arg (Printf.sprintf "Db.insert_document: %s already exists" url)
   | None -> ());
  let ts = commit_ts t ts in
  let doc_id = t.next_doc_id in
  t.next_doc_id <- doc_id + 1;
  let doc_time = extract_doc_time t xml in
  let d =
    Docstore.create ~blobs:t.blobs ~doc_id ~url ~ts
      ~snapshot:(snapshot_due t 0) ?doc_time xml
  in
  record_doc_time t ~doc:doc_id ~version:0 doc_time;
  Hashtbl.replace t.docs doc_id d;
  let bucket = url_bucket t url in
  bucket := doc_id :: !bucket;
  let tree = Docstore.current d in
  Option.iter (fun fti -> Fti.index_version fti ~doc:doc_id ~version:0 tree) t.fti;
  Option.iter (fun dfti -> Delta_fti.index_initial dfti ~doc:doc_id tree) t.dfti;
  record_created_tree t d ts tree;
  t.stats.commits <- t.stats.commits + 1;
  Log.debug (fun m ->
      m "insert %s as doc %d at %s (%d nodes)" url doc_id
        (Timestamp.to_string ts) (Vnode.size tree));
  doc_id

let update_document t ~url ?ts xml =
  match find_live t url with
  | None ->
    invalid_arg (Printf.sprintf "Db.update_document: no live document at %s" url)
  | Some d ->
    let ts = commit_ts t ts in
    let version = Docstore.version_count d in
    let doc_time = extract_doc_time t xml in
    let delta, new_tree =
      Docstore.commit d ~ts ~snapshot:(snapshot_due t version) ?doc_time xml
    in
    let doc_id = Docstore.doc_id d in
    record_doc_time t ~doc:doc_id ~version doc_time;
    Option.iter
      (fun fti -> Fti.index_version fti ~doc:doc_id ~version new_tree)
      t.fti;
    Option.iter
      (fun dfti -> Delta_fti.index_delta dfti ~doc:doc_id ~version delta)
      t.dfti;
    (match t.cretime with
     | None -> ()
     | Some idx ->
       List.iter
         (fun xid -> Cretime_index.record_created idx (Eid.make ~doc:doc_id ~xid) ts)
         (Delta.inserted_xids delta);
       List.iter
         (fun xid -> Cretime_index.record_deleted idx (Eid.make ~doc:doc_id ~xid) ts)
         (Delta.deleted_xids delta));
    t.stats.commits <- t.stats.commits + 1;
    Log.debug (fun m ->
        m "update %s -> version %d at %s (%d ops)" url version
          (Timestamp.to_string ts) (Delta.op_count delta));
    delta

let delete_document t ~url ?ts () =
  match find_live t url with
  | None ->
    invalid_arg (Printf.sprintf "Db.delete_document: no live document at %s" url)
  | Some d ->
    let ts = commit_ts t ts in
    let doc_id = Docstore.doc_id d in
    let version = Docstore.version_count d in
    Docstore.mark_deleted d ~ts;
    Option.iter (fun fti -> Fti.delete_document fti ~doc:doc_id ~version) t.fti;
    Option.iter
      (fun dfti ->
        Delta_fti.delete_document dfti ~doc:doc_id ~version (Docstore.current d))
      t.dfti;
    (match t.cretime with
     | None -> ()
     | Some idx ->
       List.iter
         (fun xid -> Cretime_index.record_deleted idx (Eid.make ~doc:doc_id ~xid) ts)
         (Vnode.xids (Docstore.current d)))

(* --- reconstruction --------------------------------------------------- *)

let cache_get t key =
  match Hashtbl.find_opt t.rcache key with
  | Some entry ->
    t.rcache_tick <- t.rcache_tick + 1;
    entry.ce_use <- t.rcache_tick;
    t.stats.reconstruct_cache_hits <- t.stats.reconstruct_cache_hits + 1;
    Some entry.ce_tree
  | None -> None

let cache_put t key tree =
  let cap = t.config.Config.reconstruct_cache in
  if cap > 0 then begin
    if Hashtbl.length t.rcache >= cap then begin
      let victim = ref None in
      Hashtbl.iter
        (fun _ entry ->
          match !victim with
          | Some v when v.ce_use <= entry.ce_use -> ()
          | _ -> victim := Some entry)
        t.rcache;
      match !victim with
      | Some v -> Hashtbl.remove t.rcache v.ce_key
      | None -> ()
    end;
    t.rcache_tick <- t.rcache_tick + 1;
    Hashtbl.replace t.rcache key { ce_key = key; ce_tree = tree; ce_use = t.rcache_tick }
  end

let reconstruct t doc_id version =
  let key = (doc_id, version) in
  match cache_get t key with
  | Some tree -> tree
  | None ->
    let d = doc t doc_id in
    let tree, cost = Docstore.reconstruct d version in
    t.stats.reconstructions <- t.stats.reconstructions + 1;
    t.stats.deltas_read <- t.stats.deltas_read + cost.Docstore.deltas_applied;
    cache_put t key tree;
    tree

let read_delta t doc_id v =
  let delta = Docstore.read_delta (doc t doc_id) v in
  t.stats.deltas_read <- t.stats.deltas_read + 1;
  delta

let version_at t doc_id instant = Docstore.version_at (doc t doc_id) instant

let reconstruct_at t doc_id instant =
  match version_at t doc_id instant with
  | None -> None
  | Some v -> Some (v, reconstruct t doc_id v)

(* --- index access ----------------------------------------------------- *)

let fti t =
  match t.fti with
  | Some fti -> fti
  | None -> invalid_arg "Db.fti: no version-content index in this configuration"

let delta_fti t =
  match t.dfti with
  | Some dfti -> dfti
  | None -> invalid_arg "Db.delta_fti: no delta-operation index in this configuration"

let cretime t = t.cretime

let document_time t doc_id v = Docstore.doc_time_of_version (doc t doc_id) v

let find_by_document_time t ~t1 ~t2 =
  let clamp ts = Stdlib.max (-(1 lsl 42)) (Stdlib.min (1 lsl 42) (Timestamp.to_seconds ts)) in
  let lo = dtime_key (clamp t1) 0 in
  let hi = dtime_key (clamp t2) 0 in
  List.map
    (fun (key, (doc, v)) ->
      let seconds = Int64.to_int (Int64.shift_right key dtime_key_bits) in
      (Timestamp.of_seconds seconds, Int64.to_int doc, Int64.to_int v))
    (Txq_store.Bptree.range t.dtime_index ~lo ~hi)

(* --- integrity --------------------------------------------------------- *)

let verify t =
  let errors = ref [] in
  let checked = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Hashtbl.iter
    (fun id d ->
      let n = Docstore.version_count d in
      (* timestamps strictly monotone *)
      for v = 1 to n - 1 do
        if
          Timestamp.(Docstore.ts_of_version d v <= Docstore.ts_of_version d (v - 1))
        then note "doc %d: version %d timestamp does not advance" id v
      done;
      (* every version reconstructs; cache bypassed for a true readback *)
      for v = 0 to n - 1 do
        match Docstore.reconstruct d v with
        | tree, _ ->
          incr checked;
          if v = n - 1 && not (Vnode.equal_with_xids tree (Docstore.current d))
          then
            note "doc %d: reconstructed newest version differs from current" id
        | exception e ->
          note "doc %d: version %d does not reconstruct: %s" id v
            (Printexc.to_string e)
      done)
    t.docs;
  if !errors = [] then Ok !checked else Error (List.rev !errors)

(* --- accounting ------------------------------------------------------- *)

let stats t = t.stats
let io_stats t = Txq_store.Buffer_pool.stats t.pool

let reset_io t =
  Txq_store.Io_stats.reset (io_stats t);
  t.stats.deltas_read <- 0;
  t.stats.reconstructions <- 0;
  t.stats.reconstruct_cache_hits <- 0

let flush_cache t =
  Txq_store.Buffer_pool.flush t.pool;
  Hashtbl.reset t.rcache

let live_pages t = Txq_store.Blob_store.live_pages t.blobs
let blobs t = t.blobs
let disk t = t.disk
