lib/fti/delta_fti.ml: Hashtbl List String Txq_vxml
