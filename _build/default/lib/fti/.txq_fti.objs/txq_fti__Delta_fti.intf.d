lib/fti/delta_fti.mli: Txq_vxml
