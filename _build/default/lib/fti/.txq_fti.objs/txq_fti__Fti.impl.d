lib/fti/fti.ml: Array Hashtbl List Posting Printf Txq_vxml
