lib/fti/fti.mli: Posting Txq_vxml
