lib/fti/posting.ml: Format Int Txq_vxml
