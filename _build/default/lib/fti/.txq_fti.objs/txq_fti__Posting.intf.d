lib/fti/posting.mli: Format Txq_vxml
