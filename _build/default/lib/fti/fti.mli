(** Temporal free-text index — alternative A1 of Section 7.2: index the
    contents of the versions.

    Every word of every document version is indexed, including element names
    (as [Tag] occurrences) and attribute names/values; a posting carries the
    document id, the XID path giving hierarchy information, and the version
    interval over which the occurrence persisted.

    The three lookups of Section 7.2 are provided:
    [lookup] (current snapshot), [lookup_t] (snapshot at a time, resolved to
    per-document version numbers by the caller), and [lookup_h] (whole
    history). *)

type t

val create : unit -> t

val index_version :
  t -> doc:Txq_vxml.Eid.doc_id -> version:int -> Txq_vxml.Vnode.t -> unit
(** Incremental maintenance on commit of [version] (0-based) of [doc]:
    occurrences present in the previous version but absent from this one are
    closed at [version]; new occurrences open at [version].  Versions of a
    document must be indexed in increasing order. *)

val delete_document : t -> doc:Txq_vxml.Eid.doc_id -> version:int -> unit
(** Closes every open posting of the document: the delete "version" bound.
    [version] is the number the next version {e would} have had. *)

val lookup : t -> string -> Posting.t list
(** Postings of current versions only (open postings). *)

val lookup_t :
  t -> string -> version_at:(Txq_vxml.Eid.doc_id -> int option) -> Posting.t list
(** Snapshot lookup: [version_at doc] gives the version number of [doc]
    valid at the query time ([None] when the document did not exist); the
    database derives it from the delta index. *)

val lookup_h : t -> string -> Posting.t list
(** Every posting ever recorded for the word. *)

val lookup_h_doc : t -> string -> doc:Txq_vxml.Eid.doc_id -> Posting.t list
(** History lookup restricted to one document. *)

val word_count : t -> int
val posting_count : t -> int

val vocabulary : t -> string list
(** All indexed words (unordered). *)
