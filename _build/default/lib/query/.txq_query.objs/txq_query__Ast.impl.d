lib/query/ast.ml: Float List Printf String Txq_temporal Txq_xml
