lib/query/ast.mli: Txq_temporal Txq_xml
