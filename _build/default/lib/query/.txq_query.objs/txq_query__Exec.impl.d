lib/query/exec.ml: Ast Buffer Float Fun Glob Hashtbl Lazy List Option Parser Printf Seq String Txq_core Txq_db Txq_temporal Txq_vxml Txq_xml
