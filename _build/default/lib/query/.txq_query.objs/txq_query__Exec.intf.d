lib/query/exec.mli: Ast Txq_db Txq_xml
