lib/query/glob.mli:
