lib/query/lexer.ml: Buffer List Printf String
