lib/query/lexer.mli:
