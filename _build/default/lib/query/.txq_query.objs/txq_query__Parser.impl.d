lib/query/parser.ml: Array Ast Lexer List Printf Stdlib Txq_temporal Txq_xml
