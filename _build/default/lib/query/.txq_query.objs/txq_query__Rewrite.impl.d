lib/query/rewrite.ml: Ast Exec List Parser Txq_db Txq_temporal
