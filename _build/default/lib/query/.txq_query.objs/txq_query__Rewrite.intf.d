lib/query/rewrite.mli: Ast Exec Txq_db Txq_temporal Txq_xml
