lib/query/stratum.ml: Ast Exec Float Fun Glob Hashtbl List Parser Printf Seq Set String Txq_temporal Txq_xml
