lib/query/stratum.mli: Ast Exec Txq_temporal Txq_xml
