(** Hand-written lexer for the query language. *)

type token =
  | KW of string  (** keyword, normalized to uppercase *)
  | IDENT of string
  | STRING of string  (** double-quoted literal, quotes stripped *)
  | NUMBER of string  (** raw digits (kept textual so dates such as
                          [26/01/2001] can be reassembled losslessly) *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SLASH
  | DSLASH  (** [//] *)
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | IDEQ  (** [==] *)
  | TILDE
  | PLUS
  | MINUS
  | EOF

val token_to_string : token -> string

val tokenize : string -> (token list, string) result
(** Keywords are recognized case-insensitively. *)
