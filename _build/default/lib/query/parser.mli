(** Recursive-descent parser for the query language of Section 5.

    Accepted shape:
    {v
    SELECT [DISTINCT] expr, …
    FROM doc("url")[timespec]/path/steps VAR, …
    [WHERE cond [AND|OR cond]…]
    v}
    where [timespec] is a date ([26/01/2001]), relative time
    ([NOW - 14 DAYS]) or [EVERY]; expressions include [VAR/path],
    [TIME(VAR)], [CREATE TIME(VAR)], [DELETE TIME(VAR)], [PREVIOUS(VAR)],
    [NEXT(VAR)], [CURRENT(VAR)], [DIFF(a,b)], [COUNT]/[SUM]/[AVG]; and
    comparison operators are [= != < <= > >= == ~ CONTAINS]. *)

val parse : string -> (Ast.query, string) result
val parse_exn : string -> Ast.query
