(** The stratum baseline (Section 1).

    "The easiest way to realize this is to store all versions of all
    documents in the database, and use a middleware layer to convert
    temporal query language statements into conventional statements,
    executed by an underlying database system (also called a stratum
    approach)."

    This module is that architecture: every version is stored as a complete
    serialized document in a conventional (non-temporal) store; temporal
    queries are answered by scanning, parsing and path-matching the relevant
    full versions.  There are no persistent element identities, no deltas,
    no temporal index — which is why CREATE TIME, DELETE TIME, PREVIOUS,
    NEXT, CURRENT, DIFF and [==] are {e unsupported} here (Section 3.2's
    identity argument), and why experiments E1/E3/E7 compare against it. *)

type t

val create : ?clock:Txq_temporal.Clock.t -> unit -> t

val insert_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> Txq_xml.Xml.t -> unit

val update_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> Txq_xml.Xml.t -> unit

val delete_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> unit -> unit

val stored_bytes : t -> int
(** Total size of all stored full versions. *)

val stored_pages : t -> int
(** [stored_bytes] in 4 KiB pages (storage comparison, E7). *)

val versions_parsed : t -> int
(** Full documents parsed since the last reset — the stratum's unit of
    work. *)

val reset_counters : t -> unit

val run : t -> Ast.query -> (Txq_xml.Xml.t, Exec.error) result
(** Same language, same [<results>] output shape as {!Exec.run}, evaluated
    by full-version scans. *)

val run_string : t -> string -> (Txq_xml.Xml.t, Exec.error) result
