lib/store/blob_store.ml: Array Buffer Buffer_pool Bytes Disk Hashtbl List Stdlib String
