lib/store/blob_store.mli: Buffer_pool
