lib/store/bptree.ml: Array Buffer_pool Bytes Char Disk Int32 Int64 List
