lib/store/bptree.mli: Buffer_pool
