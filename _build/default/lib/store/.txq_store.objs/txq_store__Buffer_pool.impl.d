lib/store/buffer_pool.ml: Bytes Disk Hashtbl Io_stats
