lib/store/buffer_pool.mli: Disk Io_stats
