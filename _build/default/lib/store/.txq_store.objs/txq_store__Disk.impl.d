lib/store/disk.ml: Array Bytes Io_stats Printf Stdlib
