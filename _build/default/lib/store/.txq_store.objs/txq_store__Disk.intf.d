lib/store/disk.mli: Io_stats
