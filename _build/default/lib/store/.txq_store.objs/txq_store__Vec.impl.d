lib/store/vec.ml: Array List Printf Stdlib
