lib/store/vec.mli:
