type value = int64 * int64

(* Page layout (4096 bytes):
   offset 0      : tag (0 = leaf, 1 = internal)
   offset 2..3   : entry count n (16-bit LE)
   offset 4..7   : leaf only: next-leaf page id (int32 LE, -1 = none)
   offset 8..    : payload
     leaf        : n entries of 24 bytes (key, v1, v2; int64 LE each)
     internal    : keys at 8 (cap-1 slots of 8 bytes), then child page ids
                   (cap slots of 4 bytes) *)

let header_bytes = 8
let leaf_entry_bytes = 24
let leaf_capacity = (Disk.page_size - header_bytes) / leaf_entry_bytes

(* internal: (cap-1)*8 + cap*4 <= page - header  =>  cap <= (page-header+8)/12 *)
let internal_capacity = (Disk.page_size - header_bytes + 8) / 12
let internal_keys_offset = header_bytes
let internal_children_offset = header_bytes + ((internal_capacity - 1) * 8)

type node =
  | Leaf of {
      mutable keys : int64 array; (* length n *)
      mutable vals : value array;
      mutable next : int; (* page id of the right sibling, -1 = none *)
    }
  | Internal of {
      mutable keys : int64 array; (* length n *)
      mutable children : int array; (* length n + 1 *)
    }

type t = {
  pool : Buffer_pool.t;
  mutable root : int;
  mutable entries : int;
  mutable height : int;
  mutable pages : int;
}

(* --- page codec --------------------------------------------------------- *)

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let encode node =
  let b = Bytes.make Disk.page_size '\000' in
  (match node with
   | Leaf l ->
     Bytes.set b 0 '\000';
     set_u16 b 2 (Array.length l.keys);
     Bytes.set_int32_le b 4 (Int32.of_int l.next);
     Array.iteri
       (fun i k ->
         let off = header_bytes + (i * leaf_entry_bytes) in
         let v1, v2 = l.vals.(i) in
         Bytes.set_int64_le b off k;
         Bytes.set_int64_le b (off + 8) v1;
         Bytes.set_int64_le b (off + 16) v2)
       l.keys
   | Internal n ->
     Bytes.set b 0 '\001';
     set_u16 b 2 (Array.length n.keys);
     Array.iteri
       (fun i k -> Bytes.set_int64_le b (internal_keys_offset + (i * 8)) k)
       n.keys;
     Array.iteri
       (fun i c ->
         Bytes.set_int32_le b (internal_children_offset + (i * 4)) (Int32.of_int c))
       n.children);
  b

let decode b =
  let n = get_u16 b 2 in
  match Bytes.get b 0 with
  | '\000' ->
    let keys = Array.make n 0L and vals = Array.make n (0L, 0L) in
    for i = 0 to n - 1 do
      let off = header_bytes + (i * leaf_entry_bytes) in
      keys.(i) <- Bytes.get_int64_le b off;
      vals.(i) <- (Bytes.get_int64_le b (off + 8), Bytes.get_int64_le b (off + 16))
    done;
    Leaf { keys; vals; next = Int32.to_int (Bytes.get_int32_le b 4) }
  | '\001' ->
    let keys = Array.init n (fun i -> Bytes.get_int64_le b (internal_keys_offset + (i * 8))) in
    let children =
      Array.init (n + 1) (fun i ->
          Int32.to_int (Bytes.get_int32_le b (internal_children_offset + (i * 4))))
    in
    Internal { keys; children }
  | _ -> failwith "Bptree: corrupt page tag"

let read_node t page = decode (Buffer_pool.read t.pool page)
let write_node t page node = Buffer_pool.write t.pool page (encode node)

let alloc_page t =
  t.pages <- t.pages + 1;
  Buffer_pool.alloc t.pool

(* --- construction -------------------------------------------------------- *)

let create pool =
  let t = { pool; root = 0; entries = 0; height = 1; pages = 0 } in
  let root = alloc_page t in
  t.root <- root;
  write_node t root (Leaf { keys = [||]; vals = [||]; next = -1 });
  t

(* --- search --------------------------------------------------------------- *)

(* first index i with keys.(i) > key (for child descent) *)
let child_slot keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* index of key in a leaf, or the insertion point *)
let leaf_slot keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf t page key =
  match read_node t page with
  | Leaf _ as leaf -> (page, leaf)
  | Internal n -> find_leaf t n.children.(child_slot n.keys key) key

let find t key =
  match find_leaf t t.root key with
  | _, Leaf l ->
    let i = leaf_slot l.keys key in
    if i < Array.length l.keys && Int64.equal l.keys.(i) key then Some l.vals.(i)
    else None
  | _, Internal _ -> assert false

(* --- insertion -------------------------------------------------------------- *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

(* Insert into the subtree rooted at [page]; returns [Some (sep, right)]
   when the node split, with [sep] the smallest key of [right]'s subtree. *)
let rec insert_into t page key value : (int64 * int) option =
  match read_node t page with
  | Leaf l ->
    let i = leaf_slot l.keys key in
    if i < Array.length l.keys && Int64.equal l.keys.(i) key then begin
      l.vals.(i) <- value;
      write_node t page (Leaf l);
      None
    end
    else begin
      t.entries <- t.entries + 1;
      let keys = array_insert l.keys i key in
      let vals = array_insert l.vals i value in
      if Array.length keys <= leaf_capacity then begin
        write_node t page (Leaf { l with keys; vals });
        None
      end
      else begin
        (* split in half; right leaf takes the upper entries *)
        let mid = Array.length keys / 2 in
        let right_page = alloc_page t in
        let right =
          Leaf
            {
              keys = Array.sub keys mid (Array.length keys - mid);
              vals = Array.sub vals mid (Array.length vals - mid);
              next = l.next;
            }
        in
        write_node t right_page right;
        write_node t page
          (Leaf { keys = Array.sub keys 0 mid; vals = Array.sub vals 0 mid;
                  next = right_page });
        Some (keys.(mid), right_page)
      end
    end
  | Internal n -> (
    let slot = child_slot n.keys key in
    match insert_into t n.children.(slot) key value with
    | None -> None
    | Some (sep, right) ->
      let keys = array_insert n.keys slot sep in
      let children = array_insert n.children (slot + 1) right in
      if Array.length children <= internal_capacity then begin
        write_node t page (Internal { keys; children });
        None
      end
      else begin
        (* split: middle key moves up *)
        let mid = Array.length keys / 2 in
        let up = keys.(mid) in
        let right_page = alloc_page t in
        write_node t right_page
          (Internal
             {
               keys = Array.sub keys (mid + 1) (Array.length keys - mid - 1);
               children =
                 Array.sub children (mid + 1) (Array.length children - mid - 1);
             });
        write_node t page
          (Internal
             { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) });
        Some (up, right_page)
      end)

let insert t ~key value =
  match insert_into t t.root key value with
  | None -> ()
  | Some (sep, right) ->
    let new_root = alloc_page t in
    write_node t new_root (Internal { keys = [| sep |]; children = [| t.root; right |] });
    t.root <- new_root;
    t.height <- t.height + 1

(* --- scans ---------------------------------------------------------------- *)

let range t ~lo ~hi =
  if Int64.compare lo hi >= 0 then []
  else begin
    let out = ref [] in
    let rec walk page start_slot =
      match read_node t page with
      | Internal _ -> assert false
      | Leaf l ->
        let n = Array.length l.keys in
        let rec emit i =
          if i >= n then if l.next >= 0 then walk l.next 0 else ()
          else if Int64.compare l.keys.(i) hi >= 0 then ()
          else begin
            out := (l.keys.(i), l.vals.(i)) :: !out;
            emit (i + 1)
          end
        in
        emit start_slot
    in
    let page, leaf = find_leaf t t.root lo in
    (match leaf with
     | Leaf l -> walk page (leaf_slot l.keys lo)
     | Internal _ -> assert false);
    List.rev !out
  end

let iter t f =
  let rec walk page =
    match read_node t page with
    | Internal _ -> assert false
    | Leaf l ->
      Array.iteri (fun i k -> f k l.vals.(i)) l.keys;
      if l.next >= 0 then walk l.next
  in
  let page, _ = find_leaf t t.root Int64.min_int in
  walk page

let entry_count t = t.entries
let height t = t.height
let page_count t = t.pages
