(** Page-backed B+-tree.

    The paper's auxiliary access structures — the CreTime/DelTime index of
    Section 7.3.6 and the document-time index of Section 3.1 — are ordered
    indexes that live on disk in a real system.  This B+-tree stores
    fixed-size entries (an [int64] key, a pair of [int64]s as value) in
    4 KiB pages of the simulated store, so index lookups and maintenance
    show up in the IO counters like every other access.

    Keys are unique ([insert] is an upsert); there is no delete — in a
    transaction-time database nothing is ever physically removed, deletion
    is an update that closes a validity bound.  Leaves are chained for
    range scans. *)

type t

type value = int64 * int64

val create : Buffer_pool.t -> t
(** An empty tree; allocates its root page. *)

val insert : t -> key:int64 -> value -> unit
(** Inserts or overwrites. *)

val find : t -> int64 -> value option

val range : t -> lo:int64 -> hi:int64 -> (int64 * value) list
(** Entries with [lo <= key < hi], in key order. *)

val iter : t -> (int64 -> value -> unit) -> unit
(** All entries, in key order. *)

val entry_count : t -> int
val height : t -> int
val page_count : t -> int
(** Pages owned by the tree (its storage footprint). *)

val leaf_capacity : int
val internal_capacity : int
(** Entries per leaf / children per internal node, fixed by the page
    size. *)
