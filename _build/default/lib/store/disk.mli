(** Simulated disk: a growable array of fixed-size pages.

    Stands in for the Xyleme repository's disk (see DESIGN.md substitutions).
    Reads and writes update {!Io_stats}; an access to a page that is not
    adjacent to the previously accessed page counts as a seek, which is the
    cost model behind the paper's clustering discussion (Section 7.2). *)

type t

val page_size : int
(** Bytes per page (4096). *)

val create : unit -> t

val page_count : t -> int

val alloc : t -> int
(** Appends a fresh zeroed page and returns its id. *)

val read : t -> int -> bytes
(** Copy of the page contents.  Raises [Invalid_argument] on a bad id. *)

val write : t -> int -> bytes -> unit
(** Overwrites a page.  The buffer must be at most [page_size] bytes; shorter
    buffers are zero-padded. *)

val stats : t -> Io_stats.t
