type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable seeks : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create () =
  { page_reads = 0; page_writes = 0; seeks = 0; cache_hits = 0; cache_misses = 0 }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.seeks <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0

let copy t =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    seeks = t.seeks;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
  }

let diff ~after ~before =
  {
    page_reads = after.page_reads - before.page_reads;
    page_writes = after.page_writes - before.page_writes;
    seeks = after.seeks - before.seeks;
    cache_hits = after.cache_hits - before.cache_hits;
    cache_misses = after.cache_misses - before.cache_misses;
  }

let add acc x =
  acc.page_reads <- acc.page_reads + x.page_reads;
  acc.page_writes <- acc.page_writes + x.page_writes;
  acc.seeks <- acc.seeks + x.seeks;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses

let to_string t =
  Printf.sprintf
    "reads=%d writes=%d seeks=%d cache_hits=%d cache_misses=%d" t.page_reads
    t.page_writes t.seeks t.cache_hits t.cache_misses

let pp ppf t = Format.pp_print_string ppf (to_string t)
