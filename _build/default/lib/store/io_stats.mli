(** IO accounting.

    The paper argues about operator cost in terms of delta reads and disk
    seeks ("each delta read will involve a disk seek in the worst case",
    Section 7.2).  Every layer of the storage simulator feeds these counters
    so the benchmarks can report exactly those quantities. *)

type t = {
  mutable page_reads : int;  (** pages fetched from the simulated disk *)
  mutable page_writes : int;
  mutable seeks : int;
      (** non-adjacent page accesses, the simulator's proxy for arm moves *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val diff : after:t -> before:t -> t
(** Counter deltas between two snapshots. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
