lib/temporal/clock.ml: Duration Timestamp
