lib/temporal/clock.mli: Duration Timestamp
