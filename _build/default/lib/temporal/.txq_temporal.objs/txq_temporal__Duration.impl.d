lib/temporal/duration.ml: Format Int Printf String
