lib/temporal/duration.mli: Format
