lib/temporal/interval.ml: Format Fun List Printf Timestamp
