lib/temporal/interval.mli: Format Timestamp
