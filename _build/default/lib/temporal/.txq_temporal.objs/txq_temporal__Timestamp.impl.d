lib/temporal/timestamp.ml: Duration Format Int Printf Stdlib String
