lib/temporal/timestamp.mli: Duration Format
