type t = { mutable now : Timestamp.t }

let default_start = Timestamp.of_date ~day:1 ~month:1 ~year:2001
let create ?(start = default_start) () = { now = start }
let now t = t.now

let advance t d =
  t.now <- Timestamp.add t.now d;
  t.now

let tick t = advance t (Duration.seconds 1)

let set t ts =
  if Timestamp.(ts < t.now) then
    invalid_arg "Clock.set: transaction time cannot move backwards"
  else t.now <- ts
