(** Logical transaction-time clock.

    A temporal database needs a monotonically increasing notion of NOW when
    it stamps commits (Section 3.1).  Tests and the workload generator drive
    this clock explicitly so that every run is deterministic. *)

type t

val create : ?start:Timestamp.t -> unit -> t
(** Starts at [start] (default [01/01/2001]). *)

val now : t -> Timestamp.t

val advance : t -> Duration.t -> Timestamp.t
(** Moves the clock forward and returns the new NOW. *)

val tick : t -> Timestamp.t
(** [advance] by one second; the smallest distinguishable step. *)

val set : t -> Timestamp.t -> unit
(** Jumps to an instant.  Raises [Invalid_argument] if it would move the
    clock backwards (transaction time never decreases). *)
