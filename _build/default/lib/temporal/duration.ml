type t = int

let seconds n =
  if n < 0 then invalid_arg "Duration.seconds: negative span" else n

let minutes n = seconds (n * 60)
let hours n = seconds (n * 3600)
let days n = seconds (n * 86_400)
let weeks n = seconds (n * 7 * 86_400)

let to_seconds t = t
let zero = 0
let add a b = a + b
let scale k t = seconds (k * t)
let compare = Int.compare
let equal = Int.equal

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Duration.of_string: %S" s) in
  match String.split_on_char ' ' (String.trim s) with
  | [n; unit] ->
    let n = match int_of_string_opt n with Some n -> n | None -> fail () in
    let mk f = (try f n with Invalid_argument _ -> fail ()) in
    (match String.uppercase_ascii unit with
     | "SECOND" | "SECONDS" -> mk seconds
     | "MINUTE" | "MINUTES" -> mk minutes
     | "HOUR" | "HOURS" -> mk hours
     | "DAY" | "DAYS" -> mk days
     | "WEEK" | "WEEKS" -> mk weeks
     | _ -> fail ())
  | _ -> fail ()

let to_string t =
  let exact size = t mod size = 0 && t / size > 0 in
  if t = 0 then "0 SECONDS"
  else if exact (7 * 86_400) then Printf.sprintf "%d WEEKS" (t / (7 * 86_400))
  else if exact 86_400 then Printf.sprintf "%d DAYS" (t / 86_400)
  else if exact 3600 then Printf.sprintf "%d HOURS" (t / 3600)
  else if exact 60 then Printf.sprintf "%d MINUTES" (t / 60)
  else Printf.sprintf "%d SECONDS" t

let pp ppf t = Format.pp_print_string ppf (to_string t)
