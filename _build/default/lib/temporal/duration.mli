(** Durations for relative-time expressions.

    The paper's query syntax (Section 5) allows expressions such as
    [NOW - 14 DAYS] and [26/01/2001 + 2 WEEKS]; a duration is the span these
    expressions add to or subtract from an instant. *)

type t = private int
(** A span of time in seconds; always non-negative. *)

val seconds : int -> t
(** Raises [Invalid_argument] on a negative span. *)

val minutes : int -> t
val hours : int -> t
val days : int -> t
val weeks : int -> t

val to_seconds : t -> int

val zero : t
val add : t -> t -> t
val scale : int -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val of_string : string -> t
(** Parses ["<n> SECONDS|MINUTES|HOURS|DAYS|WEEKS"] (case-insensitive,
    singular unit names also accepted).  Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string
(** Largest exact unit, e.g. [to_string (days 14)] = ["14 DAYS"]. *)

val pp : Format.formatter -> t -> unit
