type t = { start : Timestamp.t; stop : Timestamp.t }

let make ~start ~stop =
  if Timestamp.(stop <= start) then
    invalid_arg
      (Printf.sprintf "Interval.make: empty interval [%s, %s)"
         (Timestamp.to_string start) (Timestamp.to_string stop))
  else { start; stop }

let make_opt ~start ~stop =
  if Timestamp.(stop <= start) then None else Some { start; stop }

let since start = { start; stop = Timestamp.plus_infinity }
let always = { start = Timestamp.minus_infinity; stop = Timestamp.plus_infinity }
let start t = t.start
let stop t = t.stop
let is_current t = Timestamp.equal t.stop Timestamp.plus_infinity
let contains t ts = Timestamp.(t.start <= ts) && Timestamp.(ts < t.stop)
let overlaps a b = Timestamp.(a.start < b.stop) && Timestamp.(b.start < a.stop)

let intersect a b =
  make_opt ~start:(Timestamp.max a.start b.start)
    ~stop:(Timestamp.min a.stop b.stop)

let meets a b = Timestamp.equal a.stop b.start

let duration_seconds t =
  if is_current t || Timestamp.equal t.start Timestamp.minus_infinity then
    max_int
  else Timestamp.diff_seconds t.stop t.start

let equal a b = Timestamp.equal a.start b.start && Timestamp.equal a.stop b.stop

let compare a b =
  match Timestamp.compare a.start b.start with
  | 0 -> Timestamp.compare a.stop b.stop
  | c -> c

let coalesce intervals =
  let sorted = List.sort compare intervals in
  let rec merge acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
      match acc with
      | prev :: acc' when Timestamp.(iv.start <= prev.stop) ->
        merge ({ prev with stop = Timestamp.max prev.stop iv.stop } :: acc')
          rest
      | _ -> merge (iv :: acc) rest)
  in
  merge [] sorted

let subtract a b =
  if not (overlaps a b) then [a]
  else
    let left = make_opt ~start:a.start ~stop:b.start in
    let right = make_opt ~start:b.stop ~stop:a.stop in
    List.filter_map Fun.id [left; right]

let to_string t =
  Printf.sprintf "[%s, %s)" (Timestamp.to_string t.start)
    (Timestamp.to_string t.stop)

let pp ppf t = Format.pp_print_string ppf (to_string t)
