(** Half-open time intervals [\[start, stop)].

    The paper writes the interval from [t1] to [t2] "including [t1] but not
    [t2] (open-ended upper bound)" (Section 6.1); every validity range in the
    system is such a half-open interval.  A version that is still current has
    [stop = Timestamp.plus_infinity]. *)

type t = private { start : Timestamp.t; stop : Timestamp.t }

val make : start:Timestamp.t -> stop:Timestamp.t -> t
(** Raises [Invalid_argument] if [stop <= start] (intervals are non-empty). *)

val make_opt : start:Timestamp.t -> stop:Timestamp.t -> t option

val since : Timestamp.t -> t
(** [\[start, +inf)] — the validity of a current version. *)

val always : t
(** [\[-inf, +inf)]. *)

val start : t -> Timestamp.t
val stop : t -> Timestamp.t
val is_current : t -> bool

val contains : t -> Timestamp.t -> bool
val overlaps : t -> t -> bool
val intersect : t -> t -> t option
val meets : t -> t -> bool
(** [meets a b] iff [a.stop = b.start] (adjacent, in order). *)

val duration_seconds : t -> int
(** Length in seconds; [max_int] when unbounded. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by start, then stop. *)

val coalesce : t list -> t list
(** Merges overlapping and adjacent intervals; the result is sorted, pairwise
    disjoint and non-adjacent.  This is the coalescing operator Section 3.1
    says a valid-time deployment additionally needs. *)

val subtract : t -> t -> t list
(** [subtract a b] is the (0, 1 or 2) parts of [a] not covered by [b]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
