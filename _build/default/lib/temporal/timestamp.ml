type t = int

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

(* Infinities are kept well inside [min_int, max_int] so that duration
   arithmetic near them cannot wrap around. *)
let minus_infinity = min_int / 4
let plus_infinity = max_int / 4

let of_seconds s =
  if Stdlib.( <= ) s minus_infinity || Stdlib.( >= ) s plus_infinity then
    invalid_arg "Timestamp.of_seconds: out of range"
  else s

let to_seconds t = t
let epoch = 0

(* Civil-date conversion: proleptic Gregorian calendar, epoch 01/01/1970.
   Standard era-based algorithm (Hinnant, "chrono-Compatible Low-Level Date
   Algorithms"). *)

let days_from_civil ~year ~month ~day =
  let y = if Stdlib.( <= ) month 2 then year - 1 else year in
  let era = (if Stdlib.( >= ) y 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + day - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146_097 + doe - 719_468

let civil_from_days z =
  let z = z + 719_468 in
  let era = (if Stdlib.( >= ) z 0 then z else z - 146_096) / 146_097 in
  let doe = z - era * 146_097 in
  let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let day = doy - (153 * mp + 2) / 5 + 1 in
  let month = if Stdlib.( < ) mp 10 then mp + 3 else mp - 9 in
  let year = if Stdlib.( <= ) month 2 then y + 1 else y in
  (day, month, year)

let is_leap_year y = y mod 4 = 0 && (y mod 100 <> 0 || y mod 400 = 0)

let days_in_month ~month ~year =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> invalid_arg "Timestamp.days_in_month"

let of_date ~day ~month ~year =
  if
    Stdlib.( < ) month 1 || Stdlib.( > ) month 12 || Stdlib.( < ) day 1
    || Stdlib.( > ) day (days_in_month ~month ~year)
  then
    invalid_arg
      (Printf.sprintf "Timestamp.of_date: invalid date %02d/%02d/%04d" day
         month year)
  else of_seconds (days_from_civil ~year ~month ~day * 86_400)

let to_date t =
  let days =
    if Stdlib.( >= ) t 0 then t / 86_400
    else (t - 86_399) / 86_400 (* floor division *)
  in
  civil_from_days days

let of_string_opt s =
  let s = String.trim s in
  let date_of d m y =
    match (int_of_string_opt d, int_of_string_opt m, int_of_string_opt y) with
    | Some day, Some month, Some year ->
      (try Some (of_date ~day ~month ~year) with Invalid_argument _ -> None)
    | _ -> None
  in
  let time_of hh mm ss =
    match
      (int_of_string_opt hh, int_of_string_opt mm, int_of_string_opt ss)
    with
    | Some h, Some m, Some sec
      when Stdlib.( >= ) h 0
           && Stdlib.( < ) h 24
           && Stdlib.( >= ) m 0
           && Stdlib.( < ) m 60
           && Stdlib.( >= ) sec 0
           && Stdlib.( < ) sec 60 -> Some ((h * 3600) + (m * 60) + sec)
    | _ -> None
  in
  match String.split_on_char ' ' s with
  | [date] -> (
    match String.split_on_char '/' date with
    | [d; m; y] -> date_of d m y
    | _ -> None)
  | [date; time] -> (
    match
      (String.split_on_char '/' date, String.split_on_char ':' time)
    with
    | [d; m; y], [hh; mm; ss] -> (
      match (date_of d m y, time_of hh mm ss) with
      | Some base, Some secs -> Some (of_seconds (to_seconds base + secs))
      | _ -> None)
    | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Timestamp.of_string: %S" s)

let to_string t =
  if equal t minus_infinity then "BOT"
  else if equal t plus_infinity then "UC"
  else
    let day, month, year = to_date t in
    let secs = ((t mod 86_400) + 86_400) mod 86_400 in
    if secs = 0 then Printf.sprintf "%02d/%02d/%04d" day month year
    else
      Printf.sprintf "%02d/%02d/%04d %02d:%02d:%02d" day month year
        (secs / 3600)
        (secs mod 3600 / 60)
        (secs mod 60)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let add t d = of_seconds (t + Duration.to_seconds d)
let sub t d = of_seconds (t - Duration.to_seconds d)
let diff_seconds later earlier = later - earlier
