(** Transaction-time timestamps.

    The paper (Section 3.1) works in a transaction-time setting where
    timestamps are totally ordered instants.  We model an instant as a number
    of seconds since the epoch 01/01/1970, stored in an [int].  Dates in the
    paper's query syntax are written [DD/MM/YYYY] (e.g. [26/01/2001]) and
    parse to the midnight instant of that civil day. *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val of_seconds : int -> t
(** [of_seconds s] is the instant [s] seconds after the epoch.  Negative
    values denote instants before the epoch. *)

val to_seconds : t -> int

val epoch : t

val minus_infinity : t
(** An instant before every other instant; used as the lower bound of
    "since the beginning" intervals. *)

val plus_infinity : t
(** An instant after every other instant; the "until changed" upper bound of
    a current version's validity interval, also printed as [UC]. *)

val of_date : day:int -> month:int -> year:int -> t
(** Midnight (00:00:00) of the given civil date, proleptic Gregorian
    calendar.  Raises [Invalid_argument] on an invalid date. *)

val to_date : t -> int * int * int
(** [(day, month, year)] of the civil day containing the instant. *)

val of_string : string -> t
(** Parses the paper's syntax: ["DD/MM/YYYY"] or ["DD/MM/YYYY hh:mm:ss"].
    Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Prints ["DD/MM/YYYY"] when the instant is a civil midnight and
    ["DD/MM/YYYY hh:mm:ss"] otherwise.  [minus_infinity] prints ["BOT"],
    [plus_infinity] prints ["UC"]. *)

val pp : Format.formatter -> t -> unit

val min : t -> t -> t
val max : t -> t -> t

val add : t -> Duration.t -> t
val sub : t -> Duration.t -> t

val diff_seconds : t -> t -> int
(** [diff_seconds later earlier] = seconds from [earlier] to [later]. *)
