lib/vxml/codec.ml: List Option Printf Result String Txq_xml Vnode Xid
