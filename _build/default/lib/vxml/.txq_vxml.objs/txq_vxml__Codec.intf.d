lib/vxml/codec.mli: Txq_xml Vnode
