lib/vxml/delta.ml: Codec Format List Option Printf Result Txq_xml Vnode Xid Xidmap
