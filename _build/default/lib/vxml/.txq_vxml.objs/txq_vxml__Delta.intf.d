lib/vxml/delta.mli: Format Txq_xml Vnode Xid Xidmap
