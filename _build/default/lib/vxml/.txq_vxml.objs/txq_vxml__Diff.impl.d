lib/vxml/diff.ml: Array Delta Hashtbl List Queue Stdlib String Txq_xml Vnode Xid Xidmap
