lib/vxml/diff.mli: Delta Txq_xml Vnode Xid
