lib/vxml/eid.ml: Format Hashtbl Int Map Printf Set Txq_temporal Xid
