lib/vxml/eid.mli: Format Hashtbl Map Set Txq_temporal Xid
