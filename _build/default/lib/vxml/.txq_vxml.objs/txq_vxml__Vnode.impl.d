lib/vxml/vnode.ml: Array Buffer Format Hashtbl List Set Stdlib String Txq_xml Xid Xidpath
