lib/vxml/vnode.mli: Format Set Txq_xml Xid
