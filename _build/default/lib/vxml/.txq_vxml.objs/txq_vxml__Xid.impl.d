lib/vxml/xid.ml: Format Hashtbl Int Map Printf Set
