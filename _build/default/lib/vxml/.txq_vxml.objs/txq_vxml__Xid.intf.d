lib/vxml/xid.mli: Format Hashtbl Map Set
