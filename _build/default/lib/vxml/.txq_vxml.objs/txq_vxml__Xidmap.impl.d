lib/vxml/xidmap.ml: List Printf String Vnode Xid
