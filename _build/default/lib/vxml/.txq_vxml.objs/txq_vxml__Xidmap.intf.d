lib/vxml/xidmap.mli: Vnode Xid
