lib/vxml/xidpath.ml: Array Format Int String Xid
