lib/vxml/xidpath.mli: Format Xid
