let reserved_xid_attr = "_xid"
let reserved_text_attr = "_tx"
let reserved_text_tag = "_text"

let reserved_name name = String.length name > 0 && name.[0] = '_'

let check_plain root =
  let bad = ref None in
  let note msg = if !bad = None then bad := Some msg in
  let rec go = function
    | Txq_xml.Xml.Text _ -> ()
    | Txq_xml.Xml.Element e ->
      if reserved_name e.tag then
        note (Printf.sprintf "reserved element name <%s>" e.tag);
      List.iter
        (fun { Txq_xml.Xml.attr_name; _ } ->
          if reserved_name attr_name then
            note (Printf.sprintf "reserved attribute name %S" attr_name))
        e.attrs;
      List.iter go e.children
  in
  go root;
  match !bad with
  | Some msg -> Error msg
  | None -> Ok ()

let xid_string xid = string_of_int (Xid.to_int xid)

let wrap_text xid content =
  Txq_xml.Xml.element
    ~attrs:[(reserved_xid_attr, xid_string xid)]
    reserved_text_tag
    (if String.equal content "" then [] else [Txq_xml.Xml.text content])

let rec encode_xml node =
  match node with
  | Vnode.Text { xid; content } ->
    (* bare text at the root: always wrapped *)
    wrap_text xid content
  | Vnode.Elem e ->
    (* Decide per text child whether raw serialization round-trips: it does
       unless the text is empty or directly follows another raw text. *)
    let rec build prev_raw_text tx_rev out_rev = function
      | [] -> (List.rev tx_rev, List.rev out_rev)
      | Vnode.Text { xid; content } :: rest ->
        if String.equal content "" || prev_raw_text then
          build false tx_rev (wrap_text xid content :: out_rev) rest
        else
          build true (xid_string xid :: tx_rev)
            (Txq_xml.Xml.text content :: out_rev)
            rest
      | (Vnode.Elem _ as child) :: rest ->
        build false tx_rev (encode_child child :: out_rev) rest
    in
    let text_xids, children = build false [] [] e.children in
    let attrs =
      ((reserved_xid_attr, xid_string e.xid)
       ::
       (if text_xids = [] then []
        else [(reserved_text_attr, String.concat " " text_xids)]))
      @ e.attrs
    in
    Txq_xml.Xml.element ~attrs e.tag children

and encode_child child =
  match child with
  | Vnode.Elem _ -> encode_xml child
  | Vnode.Text _ -> assert false (* handled inline above *)

let ( let* ) = Result.bind

let parse_xid s =
  match int_of_string_opt s with
  | Some i when i >= 0 -> Ok (Xid.of_int i)
  | Some _ | None -> Error (Printf.sprintf "codec: malformed xid %S" s)

let required_xid node =
  match Txq_xml.Xml.attr node reserved_xid_attr with
  | Some s -> parse_xid s
  | None ->
    Error
      (Printf.sprintf "codec: element <%s> lacks %s"
         (Option.value ~default:"?" (Txq_xml.Xml.tag node))
         reserved_xid_attr)

let rec decode_xml node =
  match node with
  | Txq_xml.Xml.Text _ -> Error "codec: text node outside an element"
  | Txq_xml.Xml.Element e when String.equal e.tag reserved_text_tag ->
    let* xid = required_xid node in
    Ok (Vnode.Text { xid; content = Txq_xml.Xml.text_content node })
  | Txq_xml.Xml.Element e ->
    let* xid = required_xid node in
    let* text_xids =
      match Txq_xml.Xml.attr node reserved_text_attr with
      | None -> Ok []
      | Some s ->
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | w :: rest ->
            let* x = parse_xid w in
            all (x :: acc) rest
        in
        all []
          (List.filter
             (fun w -> not (String.equal w ""))
             (String.split_on_char ' ' s))
    in
    let attrs =
      List.filter_map
        (fun { Txq_xml.Xml.attr_name; attr_value } ->
          if
            String.equal attr_name reserved_xid_attr
            || String.equal attr_name reserved_text_attr
          then None
          else Some (attr_name, attr_value))
        e.attrs
    in
    let rec children remaining_tx acc = function
      | [] ->
        if remaining_tx = [] then Ok (List.rev acc)
        else Error "codec: more text xids than text children"
      | Txq_xml.Xml.Text content :: rest -> (
        match remaining_tx with
        | x :: tx -> children tx (Vnode.Text { xid = x; content } :: acc) rest
        | [] -> Error "codec: text child without a recorded xid")
      | (Txq_xml.Xml.Element _ as child) :: rest ->
        let* v = decode_xml child in
        children remaining_tx (v :: acc) rest
    in
    let* children = children text_xids [] e.children in
    Ok (Vnode.Elem { xid; tag = e.tag; attrs; children })

let encode node = Txq_xml.Print.to_string (encode_xml node)

let decode s =
  match Txq_xml.Parse.parse ~keep_whitespace:true s with
  | Error e -> Error (Txq_xml.Parse.error_to_string e)
  | Ok xml -> decode_xml xml

let decode_exn s =
  match decode s with
  | Ok v -> v
  | Error msg -> failwith msg
