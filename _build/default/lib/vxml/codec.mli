(** XID-preserving XML serialization of versioned trees.

    Stored versions, snapshots and the subtrees embedded in delta documents
    must keep their XIDs, since reconstruction must reproduce identities
    (Section 3.2).  The encoding is ordinary XML:

    - every element carries a reserved [_xid] attribute;
    - text children are normally serialized raw, their XIDs collected in the
      parent's [_tx] attribute (space-separated, child order);
    - a text child that raw serialization could not round-trip — empty, or
      immediately following another text child (adjacent texts merge on
      parse) — is wrapped in a reserved [<_text _xid="…">] element instead;
    - a bare text node at the root is always wrapped.

    Names beginning with [_] are therefore reserved; {!check_plain} rejects
    documents that use them, and the database applies it on ingestion. *)

val reserved_xid_attr : string
val reserved_text_attr : string
val reserved_text_tag : string

val check_plain : Txq_xml.Xml.t -> (unit, string) result
(** Fails if the document uses a reserved tag or attribute name. *)

val encode_xml : Vnode.t -> Txq_xml.Xml.t
(** The annotated plain-XML form. *)

val decode_xml : Txq_xml.Xml.t -> (Vnode.t, string) result
(** Inverse of {!encode_xml}.  Fails on missing or malformed annotations. *)

val encode : Vnode.t -> string
(** [encode] = serialize ∘ {!encode_xml}; the persisted blob format. *)

val decode : string -> (Vnode.t, string) result

val decode_exn : string -> Vnode.t
(** Raises [Failure] with a diagnostic on corrupt input; the failure
    injection tests exercise this. *)
