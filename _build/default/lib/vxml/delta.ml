type op =
  | Insert of { parent : Xid.t; after : Xid.t option; tree : Vnode.t }
  | Delete of { parent : Xid.t; after : Xid.t option; tree : Vnode.t }
  | Update of { xid : Xid.t; old_text : string; new_text : string }
  | Rename of { xid : Xid.t; old_tag : string; new_tag : string }
  | Set_attr of {
      xid : Xid.t;
      name : string;
      old_value : string option;
      new_value : string option;
    }
  | Move of {
      xid : Xid.t;
      old_parent : Xid.t;
      old_after : Xid.t option;
      new_parent : Xid.t;
      new_after : Xid.t option;
    }

type t = { from_version : int; to_version : int; ops : op list }

let make ~from_version ~to_version ops = { from_version; to_version; ops }
let op_count t = List.length t.ops
let is_empty t = t.ops = []

let invert_op = function
  | Insert { parent; after; tree } -> Delete { parent; after; tree }
  | Delete { parent; after; tree } -> Insert { parent; after; tree }
  | Update { xid; old_text; new_text } ->
    Update { xid; old_text = new_text; new_text = old_text }
  | Rename { xid; old_tag; new_tag } ->
    Rename { xid; old_tag = new_tag; new_tag = old_tag }
  | Set_attr { xid; name; old_value; new_value } ->
    Set_attr { xid; name; old_value = new_value; new_value = old_value }
  | Move { xid; old_parent; old_after; new_parent; new_after } ->
    Move
      {
        xid;
        old_parent = new_parent;
        old_after = new_after;
        new_parent = old_parent;
        new_after = old_after;
      }

let invert t =
  {
    from_version = t.to_version;
    to_version = t.from_version;
    ops = List.rev_map invert_op t.ops;
  }

let apply_op map = function
  | Insert { parent; after; tree } -> Xidmap.insert_tree map ~parent ~after tree
  | Delete { parent = _; after = _; tree } ->
    ignore (Xidmap.delete_subtree map (Vnode.xid tree))
  | Update { xid; new_text; _ } -> Xidmap.update_text map xid new_text
  | Rename { xid; new_tag; _ } -> Xidmap.rename map xid new_tag
  | Set_attr { xid; name; new_value; _ } ->
    Xidmap.set_attr map xid ~name ~value:new_value
  | Move { xid; new_parent; new_after; _ } ->
    Xidmap.move map xid ~parent:new_parent ~after:new_after

let apply_forward map t = List.iter (apply_op map) t.ops
let apply_backward map t = apply_forward map (invert t)

let dedup_xids xids =
  let seen = Xid.Table.create 16 in
  List.filter
    (fun x ->
      if Xid.Table.mem seen x then false
      else begin
        Xid.Table.replace seen x ();
        true
      end)
    xids

let inserted_xids t =
  dedup_xids
    (List.concat_map
       (function
         | Insert { tree; _ } -> Vnode.xids tree
         | Delete _ | Update _ | Rename _ | Set_attr _ | Move _ -> [])
       t.ops)

let deleted_xids t =
  dedup_xids
    (List.concat_map
       (function
         | Delete { tree; _ } -> Vnode.xids tree
         | Insert _ | Update _ | Rename _ | Set_attr _ | Move _ -> [])
       t.ops)

(* --- XML form --------------------------------------------------------- *)

let xid_attr name xid = (name, string_of_int (Xid.to_int xid))

(* Embedded subtrees use the codec, which handles bare text roots via its
   reserved <_text> wrapper. *)
let tree_to_xml = Codec.encode_xml
let tree_of_xml = Codec.decode_xml

let anchor_attrs after =
  match after with
  | None -> []
  | Some a -> [xid_attr "after" a]

let op_to_xml = function
  | Insert { parent; after; tree } ->
    Txq_xml.Xml.element
      ~attrs:(xid_attr "parent" parent :: anchor_attrs after)
      "insert"
      [tree_to_xml tree]
  | Delete { parent; after; tree } ->
    Txq_xml.Xml.element
      ~attrs:(xid_attr "parent" parent :: anchor_attrs after)
      "delete"
      [tree_to_xml tree]
  | Update { xid; old_text; new_text } ->
    Txq_xml.Xml.element
      ~attrs:[xid_attr "xid" xid]
      "update"
      [
        Txq_xml.Xml.element "old" [Txq_xml.Xml.text old_text];
        Txq_xml.Xml.element "new" [Txq_xml.Xml.text new_text];
      ]
  | Rename { xid; old_tag; new_tag } ->
    Txq_xml.Xml.element
      ~attrs:[xid_attr "xid" xid; ("old", old_tag); ("new", new_tag)]
      "rename" []
  | Set_attr { xid; name; old_value; new_value } ->
    let value_elem label = function
      | None -> []
      | Some v -> [Txq_xml.Xml.element label [Txq_xml.Xml.text v]]
    in
    Txq_xml.Xml.element
      ~attrs:[xid_attr "xid" xid; ("name", name)]
      "setattr"
      (value_elem "old" old_value @ value_elem "new" new_value)
  | Move { xid; old_parent; old_after; new_parent; new_after } ->
    let opt_attr name = function
      | None -> []
      | Some a -> [xid_attr name a]
    in
    Txq_xml.Xml.element
      ~attrs:
        ([xid_attr "xid" xid; xid_attr "oldparent" old_parent]
        @ opt_attr "oldafter" old_after
        @ [xid_attr "newparent" new_parent]
        @ opt_attr "newafter" new_after)
      "move" []

let to_xml t =
  Txq_xml.Xml.element
    ~attrs:
      [
        ("from", string_of_int t.from_version);
        ("to", string_of_int t.to_version);
      ]
    "delta" (List.map op_to_xml t.ops)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let required_xid node name =
  match Txq_xml.Xml.attr node name with
  | None -> Error (Printf.sprintf "delta: missing attribute %S" name)
  | Some s -> (
    match int_of_string_opt s with
    | Some i when i >= 0 -> Ok (Xid.of_int i)
    | Some _ | None -> Error (Printf.sprintf "delta: malformed xid %S" s))

let optional_xid node name =
  match Txq_xml.Xml.attr node name with
  | None -> Ok None
  | Some s -> (
    match int_of_string_opt s with
    | Some i when i >= 0 -> Ok (Some (Xid.of_int i))
    | Some _ | None -> Error (Printf.sprintf "delta: malformed xid %S" s))

let required_attr node name =
  match Txq_xml.Xml.attr node name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "delta: missing attribute %S" name)

let child_text node name =
  match Txq_xml.Xml.find_child node name with
  | Some child -> Some (Txq_xml.Xml.text_content child)
  | None -> None

let single_tree node =
  match Txq_xml.Xml.child_elements node with
  | [child] -> tree_of_xml child
  | _ -> Error "delta: expected exactly one embedded tree"

let op_of_xml node =
  match Txq_xml.Xml.tag node with
  | Some "insert" ->
    let* parent = required_xid node "parent" in
    let* after = optional_xid node "after" in
    let* tree = single_tree node in
    Ok (Insert { parent; after; tree })
  | Some "delete" ->
    let* parent = required_xid node "parent" in
    let* after = optional_xid node "after" in
    let* tree = single_tree node in
    Ok (Delete { parent; after; tree })
  | Some "update" ->
    let* xid = required_xid node "xid" in
    let old_text = Option.value ~default:"" (child_text node "old") in
    let new_text = Option.value ~default:"" (child_text node "new") in
    Ok (Update { xid; old_text; new_text })
  | Some "rename" ->
    let* xid = required_xid node "xid" in
    let* old_tag = required_attr node "old" in
    let* new_tag = required_attr node "new" in
    Ok (Rename { xid; old_tag; new_tag })
  | Some "setattr" ->
    let* xid = required_xid node "xid" in
    let* name = required_attr node "name" in
    Ok
      (Set_attr
         {
           xid;
           name;
           old_value = child_text node "old";
           new_value = child_text node "new";
         })
  | Some "move" ->
    let* xid = required_xid node "xid" in
    let* old_parent = required_xid node "oldparent" in
    let* old_after = optional_xid node "oldafter" in
    let* new_parent = required_xid node "newparent" in
    let* new_after = optional_xid node "newafter" in
    Ok (Move { xid; old_parent; old_after; new_parent; new_after })
  | Some other -> Error (Printf.sprintf "delta: unknown operation <%s>" other)
  | None -> Error "delta: text where an operation was expected"

let of_xml node =
  match Txq_xml.Xml.tag node with
  | Some "delta" ->
    let version name =
      match Txq_xml.Xml.attr node name with
      | Some s -> (
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "delta: malformed version %S" s))
      | None -> Error (Printf.sprintf "delta: missing attribute %S" name)
    in
    let* from_version = version "from" in
    let* to_version = version "to" in
    let* ops = map_result op_of_xml (Txq_xml.Xml.child_elements node) in
    Ok { from_version; to_version; ops }
  | _ -> Error "delta: root element must be <delta>"

let encode t = Txq_xml.Print.to_string (to_xml t)

let decode s =
  match Txq_xml.Parse.parse ~keep_whitespace:true s with
  | Error e -> Error (Txq_xml.Parse.error_to_string e)
  | Ok xml -> of_xml xml

let decode_exn s =
  match decode s with
  | Ok t -> t
  | Error msg -> failwith msg

let pp ppf t =
  Format.fprintf ppf "delta v%d->v%d (%d ops)" t.from_version t.to_version
    (op_count t)
