(** Completed deltas.

    A delta documents the change between two consecutive document versions.
    Deltas here are {e completed} in the sense of Section 7.1: every
    operation carries enough material (deleted subtrees, previous text and
    attribute values) to be applied {e forward} (v{_ i} → v{_ i+1}) as well
    as {e backward} (v{_ i+1} → v{_ i}).  A delta serializes to an ordinary
    XML document, so the [Diff] operator stays closed over XML
    (Section 6.1); each delta is stored in the repository as a separate XML
    document, exactly as the paper prescribes. *)

type op =
  | Insert of { parent : Xid.t; after : Xid.t option; tree : Vnode.t }
      (** Insert [tree] (XIDs pre-assigned) under [parent], following the
          [after] sibling ([None] = first child). *)
  | Delete of { parent : Xid.t; after : Xid.t option; tree : Vnode.t }
      (** Delete the subtree rooted at [tree]'s XID; the full subtree is
          retained for backward application. *)
  | Update of { xid : Xid.t; old_text : string; new_text : string }
  | Rename of { xid : Xid.t; old_tag : string; new_tag : string }
  | Set_attr of {
      xid : Xid.t;
      name : string;
      old_value : string option;
      new_value : string option;
    }
  | Move of {
      xid : Xid.t;
      old_parent : Xid.t;
      old_after : Xid.t option;
      new_parent : Xid.t;
      new_after : Xid.t option;
    }

type t = {
  from_version : int;
  to_version : int;
  ops : op list;  (** Applied first-to-last going forward. *)
}

val make : from_version:int -> to_version:int -> op list -> t

val op_count : t -> int
val is_empty : t -> bool

val invert_op : op -> op
val invert : t -> t

val apply_op : Xidmap.t -> op -> unit
(** Applies one operation; the diff's script generator builds its working
    copy with this. *)

val apply_forward : Xidmap.t -> t -> unit
(** Raises [Invalid_argument] if the delta does not fit the document (wrong
    base version content). *)

val apply_backward : Xidmap.t -> t -> unit

val inserted_xids : t -> Xid.t list
(** XIDs that come into existence going forward (insert trees), duplicates
    removed.  Feeds the CreTime index. *)

val deleted_xids : t -> Xid.t list
(** XIDs that cease to exist going forward. *)

val to_xml : t -> Txq_xml.Xml.t
val of_xml : Txq_xml.Xml.t -> (t, string) result

val encode : t -> string
(** Serialized delta document; what the blob store persists. *)

val decode : string -> (t, string) result
val decode_exn : string -> t

val pp : Format.formatter -> t -> unit
