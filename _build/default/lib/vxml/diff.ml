let min_hash_match_size = 3

(* Indexed copy of the new (plain XML) tree: every node gets an integer
   index, a shallow shape, a structural hash and a size, so matching state
   can live in arrays keyed by index. *)
type shape =
  | Selem of string * (string * string) list
  | Stext of string

type nnode = {
  idx : int;
  shape : shape;
  kids : nnode list;
  nhash : int;
  nsize : int;
}

let index_new_tree xml =
  let counter = ref 0 in
  let combine h x = (h * 1_000_003) lxor x in
  let hash_string h s = combine h (Hashtbl.hash s) in
  let rec build node =
    let idx = !counter in
    incr counter;
    match node with
    | Txq_xml.Xml.Text content ->
      { idx; shape = Stext content; kids = []; nhash = hash_string 7 content;
        nsize = 1 }
    | Txq_xml.Xml.Element e ->
      let attrs =
        List.map
          (fun { Txq_xml.Xml.attr_name; attr_value } -> (attr_name, attr_value))
          e.attrs
      in
      let kids = List.map build e.children in
      let sorted_attrs =
        List.sort
          (fun (n1, v1) (n2, v2) ->
            match String.compare n1 n2 with
            | 0 -> String.compare v1 v2
            | c -> c)
          attrs
      in
      let h = hash_string 11 e.tag in
      let h =
        List.fold_left
          (fun h (n, v) -> hash_string (hash_string h n) v)
          h sorted_attrs
      in
      let nhash = List.fold_left (fun h k -> combine h k.nhash) h kids in
      let nsize = List.fold_left (fun acc k -> acc + k.nsize) 1 kids in
      { idx; shape = Selem (e.tag, attrs); kids; nhash; nsize }
  in
  let root = build xml in
  (root, !counter)

(* Structural equality between an old subtree and a new subtree, guarding
   hash-based matches against collisions. *)
let rec equal_shape (v : Vnode.t) (n : nnode) =
  match (v, n.shape) with
  | Vnode.Text { content; _ }, Stext s -> String.equal content s
  | Vnode.Elem e, Selem (tag, attrs) ->
    String.equal e.tag tag
    && Vnode.deep_equal
         (Vnode.Elem { e with children = [] })
         (Vnode.Elem { xid = e.xid; tag; attrs; children = [] })
    && List.compare_lengths e.children n.kids = 0
    && List.for_all2 equal_shape e.children n.kids
  | Vnode.Text _, Selem _ | Vnode.Elem _, Stext _ -> false

let shallow_key = function
  | Stext _ -> "#text"
  | Selem (tag, _) -> tag

let vnode_key = function
  | Vnode.Text _ -> "#text"
  | Vnode.Elem e -> e.tag

(* Longest common subsequence over two arrays under a caller-supplied
   equality; returns the matched index pairs, leftmost-first. *)
let lcs ~equal a b =
  let la = Array.length a and lb = Array.length b in
  let table = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = la - 1 downto 0 do
    for j = lb - 1 downto 0 do
      table.(i).(j) <-
        (if equal a.(i) b.(j) then 1 + table.(i + 1).(j + 1)
         else Stdlib.max table.(i + 1).(j) table.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= la || j >= lb then List.rev acc
    else if equal a.(i) b.(j) && table.(i).(j) = 1 + table.(i + 1).(j + 1) then
      walk (i + 1) (j + 1) ((i, j) :: acc)
    else if table.(i + 1).(j) >= table.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

type matching = {
  old_of_new : (int, Xid.t) Hashtbl.t;
  new_of_old : int Xid.Table.t;
  (* New indices whose whole subtree was matched exactly in phase A; their
     descendants need no alignment. *)
  exact : (int, unit) Hashtbl.t;
}

let match_subtrees m (v : Vnode.t) (n : nnode) =
  let rec go v n =
    Hashtbl.replace m.old_of_new n.idx (Vnode.xid v);
    Xid.Table.replace m.new_of_old (Vnode.xid v) n.idx;
    List.iter2 go (Vnode.children v) n.kids
  in
  go v n

(* Phase A: exact-subtree matching by structural hash, new-tree pre-order,
   largest-first by construction (a parent is visited before its children
   and a match skips the whole subtree). *)
let phase_exact m ~old_root ~new_root =
  let by_hash = Hashtbl.create 256 in
  let rec index_old v =
    if (not (Xid.equal (Vnode.xid v) (Vnode.xid old_root)))
       && Vnode.size v >= min_hash_match_size
    then begin
      let h = Vnode.structural_hash v in
      let bucket = try Hashtbl.find by_hash h with Not_found -> [] in
      Hashtbl.replace by_hash h (bucket @ [v])
    end;
    List.iter index_old (Vnode.children v)
  in
  index_old old_root;
  let old_free v =
    List.for_all
      (fun x -> not (Xid.Table.mem m.new_of_old x))
      (Vnode.xids v)
  in
  let rec visit n =
    if n.idx <> new_root.idx && n.nsize >= min_hash_match_size
       && not (Hashtbl.mem m.old_of_new n.idx)
    then begin
      let candidates = try Hashtbl.find by_hash n.nhash with Not_found -> [] in
      match
        List.find_opt (fun v -> old_free v && equal_shape v n) candidates
      with
      | Some v ->
        match_subtrees m v n;
        Hashtbl.replace m.exact n.idx ()
      | None -> List.iter visit n.kids
    end
    else if not (Hashtbl.mem m.old_of_new n.idx) then List.iter visit n.kids
  in
  List.iter visit new_root.kids

(* Phase B: top-down child alignment of matched pairs.  LCS pins the common
   order; a greedy same-key pass afterwards turns reorders into moves rather
   than delete+insert pairs. *)
let phase_align m ~old_root ~new_root =
  (* old nodes by xid, for children lookup *)
  let old_by_xid = Xid.Table.create 64 in
  let rec index v =
    Xid.Table.replace old_by_xid (Vnode.xid v) v;
    List.iter index (Vnode.children v)
  in
  index old_root;
  let queue = Queue.create () in
  let enqueue oxid nidx = Queue.add (oxid, nidx) queue in
  (* roots are force-matched *)
  Hashtbl.replace m.old_of_new new_root.idx (Vnode.xid old_root);
  Xid.Table.replace m.new_of_old (Vnode.xid old_root) new_root.idx;
  enqueue (Vnode.xid old_root) new_root.idx;
  let new_by_idx = Hashtbl.create 64 in
  let rec index_new n =
    Hashtbl.replace new_by_idx n.idx n;
    List.iter index_new n.kids
  in
  index_new new_root;
  while not (Queue.is_empty queue) do
    let oxid, nidx = Queue.pop queue in
    let n = Hashtbl.find new_by_idx nidx in
    if not (Hashtbl.mem m.exact nidx) then begin
      let o = Xid.Table.find old_by_xid oxid in
      let old_kids = Array.of_list (Vnode.children o) in
      let new_kids = Array.of_list n.kids in
      (* Pair equality for the LCS: two already-matched nodes are equal iff
         matched to each other; two unmatched nodes are equal iff their
         shallow keys agree. *)
      let equal ov nk =
        let oid = Vnode.xid ov in
        match (Xid.Table.find_opt m.new_of_old oid,
               Hashtbl.find_opt m.old_of_new nk.idx) with
        | Some i, _ -> i = nk.idx
        | None, Some _ -> false
        | None, None -> String.equal (vnode_key ov) (shallow_key nk.shape)
      in
      let pairs = lcs ~equal old_kids new_kids in
      List.iter
        (fun (i, j) ->
          let ov = old_kids.(i) and nk = new_kids.(j) in
          let oid = Vnode.xid ov in
          if not (Xid.Table.mem m.new_of_old oid) then begin
            Hashtbl.replace m.old_of_new nk.idx oid;
            Xid.Table.replace m.new_of_old oid nk.idx;
            enqueue oid nk.idx
          end
          else if Hashtbl.mem m.exact nk.idx then ()
          else enqueue oid nk.idx)
        pairs;
      (* Greedy same-key matching of the leftovers (reorders). *)
      let bind ov nk =
        let oid = Vnode.xid ov in
        Hashtbl.replace m.old_of_new nk.idx oid;
        Xid.Table.replace m.new_of_old oid nk.idx;
        enqueue oid nk.idx
      in
      Array.iter
        (fun ov ->
          let oid = Vnode.xid ov in
          if not (Xid.Table.mem m.new_of_old oid) then
            let key = vnode_key ov in
            let candidate =
              Array.to_list new_kids
              |> List.find_opt (fun nk ->
                     (not (Hashtbl.mem m.old_of_new nk.idx))
                     && String.equal key (shallow_key nk.shape))
            in
            match candidate with
            | Some nk -> bind ov nk
            | None -> ())
        old_kids;
      (* Positional fallback: pair leftover old elements with leftover new
         elements in order, so a renamed element keeps its identity (one
         Rename op) instead of becoming a delete+insert pair. *)
      let leftover_old =
        Array.to_list old_kids
        |> List.filter (fun ov ->
               (match ov with Vnode.Elem _ -> true | Vnode.Text _ -> false)
               && not (Xid.Table.mem m.new_of_old (Vnode.xid ov)))
      in
      let leftover_new =
        Array.to_list new_kids
        |> List.filter (fun nk ->
               (match nk.shape with Selem _ -> true | Stext _ -> false)
               && not (Hashtbl.mem m.old_of_new nk.idx))
      in
      let rec pair_up olds news =
        match (olds, news) with
        | ov :: olds', nk :: news' ->
          bind ov nk;
          pair_up olds' news'
        | _, [] | [], _ -> ()
      in
      pair_up leftover_old leftover_new
    end
  done

(* Phase C: script generation against a working copy of the old version. *)
let phase_script m ~gen ~old_tree ~new_root =
  let work = Xidmap.of_vnode old_tree in
  let ops = ref [] in
  let emit op =
    Delta.apply_op work op;
    ops := op :: !ops
  in
  (* has_match.(idx): the new subtree contains at least one matched node. *)
  let has_match = Hashtbl.create 64 in
  let rec compute n =
    let own = Hashtbl.mem m.old_of_new n.idx in
    let any = List.fold_left (fun acc k -> compute k || acc) own n.kids in
    Hashtbl.replace has_match n.idx any;
    any
  in
  ignore (compute new_root);
  let rec fresh_tree n =
    let xid = Xid.Gen.next gen in
    match n.shape with
    | Stext content -> Vnode.Text { xid; content }
    | Selem (tag, attrs) ->
      Vnode.Elem { xid; tag; attrs; children = List.map fresh_tree n.kids }
  in
  let reconcile_shape oxid (n : nnode) =
    match (n.shape, Xidmap.content work oxid) with
    | Stext new_text, Xidmap.Text old_text ->
      if not (String.equal old_text new_text) then
        emit (Delta.Update { xid = oxid; old_text; new_text })
    | Selem (new_tag, new_attrs), Xidmap.Element { tag = old_tag; attrs = old_attrs }
      ->
      if not (String.equal old_tag new_tag) then
        emit (Delta.Rename { xid = oxid; old_tag; new_tag });
      List.iter
        (fun (name, old_value) ->
          match List.assoc_opt name new_attrs with
          | None ->
            emit
              (Delta.Set_attr
                 { xid = oxid; name; old_value = Some old_value; new_value = None })
          | Some v when not (String.equal v old_value) ->
            emit
              (Delta.Set_attr
                 {
                   xid = oxid;
                   name;
                   old_value = Some old_value;
                   new_value = Some v;
                 })
          | Some _ -> ())
        old_attrs;
      List.iter
        (fun (name, new_value) ->
          if not (List.mem_assoc name old_attrs) then
            emit
              (Delta.Set_attr
                 { xid = oxid; name; old_value = None; new_value = Some new_value }))
        new_attrs
    | Stext _, Xidmap.Element _ | Selem _, Xidmap.Text _ ->
      (* Shallow keys agree for every matched pair, so kinds agree. *)
      assert false
  in
  let opt_xid_equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> Xid.equal x y
    | None, Some _ | Some _, None -> false
  in
  let rec realize (n : nnode) ~parent ~after : Xid.t * Vnode.t =
    match Hashtbl.find_opt m.old_of_new n.idx with
    | Some oxid ->
      reconcile_shape oxid n;
      let cur_parent = Xidmap.parent work oxid in
      let cur_left = Xidmap.left_sibling work oxid in
      (if (not (opt_xid_equal cur_parent (Some parent)))
          || not (opt_xid_equal cur_left after)
       then
         match cur_parent with
         | Some old_parent ->
           emit
             (Delta.Move
                {
                  xid = oxid;
                  old_parent;
                  old_after = cur_left;
                  new_parent = parent;
                  new_after = after;
                })
         | None -> assert false (* only the root has no parent; never moved *));
      let kids = realize_children n oxid in
      let v =
        match n.shape with
        | Stext content -> Vnode.Text { xid = oxid; content }
        | Selem (tag, attrs) -> Vnode.Elem { xid = oxid; tag; attrs; children = kids }
      in
      (oxid, v)
    | None ->
      if not (Hashtbl.find has_match n.idx) then begin
        (* Clean insert: the whole new subtree is fresh. *)
        let tree = fresh_tree n in
        emit (Delta.Insert { parent; after; tree });
        (Vnode.xid tree, tree)
      end
      else begin
        (* The subtree contains matched nodes that must be moved in; insert
           this node alone, then realize children under it. *)
        let xid = Xid.Gen.next gen in
        let single =
          match n.shape with
          | Stext content -> Vnode.Text { xid; content }
          | Selem (tag, attrs) -> Vnode.Elem { xid; tag; attrs; children = [] }
        in
        emit (Delta.Insert { parent; after; tree = single });
        let kids = realize_children n xid in
        let v =
          match n.shape with
          | Stext content -> Vnode.Text { xid; content }
          | Selem (tag, attrs) -> Vnode.Elem { xid; tag; attrs; children = kids }
        in
        (xid, v)
      end
  and realize_children (n : nnode) parent =
    let _, rev_kids =
      List.fold_left
        (fun (after, acc) kid ->
          let kid_xid, v = realize kid ~parent ~after in
          (Some kid_xid, v :: acc))
        (None, []) n.kids
    in
    List.rev rev_kids
  in
  (* Root: fix shape in place, realize children. *)
  let root_xid = Vnode.xid old_tree in
  reconcile_shape root_xid new_root;
  let root_kids = realize_children new_root root_xid in
  let new_version =
    match new_root.shape with
    | Stext content -> Vnode.Text { xid = root_xid; content }
    | Selem (tag, attrs) ->
      Vnode.Elem { xid = root_xid; tag; attrs; children = root_kids }
  in
  (* Deletes: every old node with no match, removed as maximal subtrees.
     After the walk, matched nodes sit under realized parents, so unmatched
     subtrees contain only unmatched nodes. *)
  let unmatched =
    List.filter
      (fun x -> not (Xid.Table.mem m.new_of_old x))
      (Vnode.xids old_tree)
  in
  let rec delete_maximal x =
    if Xidmap.mem work x then begin
      match Xidmap.parent work x with
      | None -> assert false (* root is always matched *)
      | Some parent ->
        if Xid.Table.mem m.new_of_old parent then begin
          let after = Xidmap.left_sibling work x in
          let tree = Xidmap.subtree work x in
          emit (Delta.Delete { parent; after; tree })
        end
        else
          (* Parent is itself unmatched; delete it first. *)
          delete_maximal parent
    end
  in
  List.iter delete_maximal unmatched;
  (List.rev !ops, new_version, work)

let diff ~gen ~old_tree ~new_tree =
  (match new_tree with
   | Txq_xml.Xml.Text _ -> invalid_arg "Diff.diff: new document root is a text node"
   | Txq_xml.Xml.Element _ -> ());
  let new_root, _count = index_new_tree new_tree in
  let m =
    {
      old_of_new = Hashtbl.create 256;
      new_of_old = Xid.Table.create 256;
      exact = Hashtbl.create 64;
    }
  in
  (* Roots are matched up front so phase A cannot capture either root. *)
  Hashtbl.replace m.old_of_new new_root.idx (Vnode.xid old_tree);
  Xid.Table.replace m.new_of_old (Vnode.xid old_tree) new_root.idx;
  phase_exact m ~old_root:old_tree ~new_root;
  phase_align m ~old_root:old_tree ~new_root;
  let ops, new_version, _work = phase_script m ~gen ~old_tree ~new_root in
  (Delta.make ~from_version:0 ~to_version:1 ops, new_version)

let diff_vnodes ~gen old_tree new_vnode =
  let delta, _ = diff ~gen ~old_tree ~new_tree:(Vnode.to_xml new_vnode) in
  delta
