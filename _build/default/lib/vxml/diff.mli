(** Tree diff: derive a completed delta between an identified (XID-carrying)
    old version and a plain new version.

    Plays the role XyDiff (Cobena et al. [7]) plays for Xyleme: the commit
    path of the database diffs each incoming document revision against the
    stored current version, propagating XIDs to the nodes that persist and
    allocating fresh XIDs for inserted ones.

    The algorithm is match-then-script, in the style of Chawathe et al.:
    + exact-subtree matching by structural hash catches unchanged and moved
      subtrees;
    + top-down alignment matches remaining children of matched parents by an
      LCS over shallow signatures (tag, or [#text]);
    + script generation walks the new tree in pre-order, emitting renames,
      attribute updates, text updates, moves and inserts against a working
      copy of the old version, then deletes the unmatched remains bottom-up.

    The produced delta applied forward to the old version yields a tree that
    is [deep_equal] to the new document; applied backward to the new version
    it restores the old one exactly (including XIDs). *)

val min_hash_match_size : int
(** Smallest subtree size eligible for exact-hash matching (3). *)

val diff :
  gen:Xid.Gen.t ->
  old_tree:Vnode.t ->
  new_tree:Txq_xml.Xml.t ->
  Delta.t * Vnode.t
(** [diff ~gen ~old_tree ~new_tree] is [(delta, new_version)] where
    [new_version] is [new_tree] with XIDs assigned (persisting XIDs of
    matched nodes) and [delta] the completed edit script from [old_tree] to
    [new_version].  Fresh XIDs are drawn from [gen].  The [from_version] and
    [to_version] fields of the delta are set to [0]/[1]; callers renumber. *)

val diff_vnodes : gen:Xid.Gen.t -> Vnode.t -> Vnode.t -> Delta.t
(** Diff between two already-identified trees, {e ignoring} their XIDs on
    the new side (the right tree is treated as plain XML).  Backs the
    [Diff] query operator, which compares two reconstructed versions. *)
