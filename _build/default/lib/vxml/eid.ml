type doc_id = int
type t = { doc : doc_id; xid : Xid.t }

let make ~doc ~xid = { doc; xid }

let compare a b =
  match Int.compare a.doc b.doc with
  | 0 -> Xid.compare a.xid b.xid
  | c -> c

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.doc, Xid.to_int t.xid)
let to_string t = Printf.sprintf "d%d#%d" t.doc (Xid.to_int t.xid)
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Temporal = struct
  type eid = t
  type nonrec t = { eid : eid; ts : Txq_temporal.Timestamp.t }

  let make eid ts = { eid; ts }

  let compare a b =
    match compare a.eid b.eid with
    | 0 -> Txq_temporal.Timestamp.compare a.ts b.ts
    | c -> c

  let equal a b = compare a b = 0

  let to_string t =
    Printf.sprintf "%s@%s" (to_string t.eid)
      (Txq_temporal.Timestamp.to_string t.ts)

  let pp ppf t = Format.pp_print_string ppf (to_string t)
end
