(** Element identities across time.

    Section 3.2: an {b EID} is the concatenation of document id and XID and
    "identifies uniquely a particular element in a particular document"; a
    {b TEID} (temporal EID) additionally carries a timestamp and identifies
    one {e version} of that element. *)

type doc_id = int

type t = { doc : doc_id; xid : Xid.t }

val make : doc:doc_id -> xid:Xid.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t

module Temporal : sig
  type eid := t

  type t = { eid : eid; ts : Txq_temporal.Timestamp.t }
  (** The timestamp names the version of the element valid at [ts]. *)

  val make : eid -> Txq_temporal.Timestamp.t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
