type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_int t = t

let of_int i =
  if i < 0 then invalid_arg (Printf.sprintf "Xid.of_int: negative id %d" i)
  else i

let pp ppf t = Format.fprintf ppf "#%d" t

module Gen = struct
  type nonrec t = { mutable next_id : int }

  let create () = { next_id = 1 }

  let next g =
    let id = g.next_id in
    g.next_id <- g.next_id + 1;
    id

  let mark_used g xid = if xid >= g.next_id then g.next_id <- xid + 1
  let used g = g.next_id - 1
end

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
