(** Persistent element identifiers.

    Following Xyleme's XIDs (Section 3.2): an XID identifies an element of a
    particular document "in a time independent manner, and will not be reused
    when an element is deleted".  XIDs are allocated per document by a
    monotonic generator that is part of the document's persistent state. *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_int : t -> int
val of_int : int -> t
(** Raises [Invalid_argument] on a negative id (used when decoding persisted
    deltas and snapshots). *)

val pp : Format.formatter -> t -> unit

module Gen : sig
  type xid := t
  type t

  val create : unit -> t
  val next : t -> xid
  (** Strictly increasing; never reuses an id. *)

  val mark_used : t -> xid -> unit
  (** Informs the generator that [xid] is in use, so future [next] calls
      return larger ids.  Needed when rebuilding a document from persisted
      deltas. *)

  val used : t -> int
  (** Number of ids handed out so far. *)
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
