type content =
  | Element of { tag : string; attrs : (string * string) list }
  | Text of string

type node = {
  mutable node_content : content;
  mutable node_children : Xid.t list;
  mutable node_parent : Xid.t option;
}

type t = { nodes : node Xid.Table.t; map_root : Xid.t }

let fail fmt = Printf.ksprintf invalid_arg fmt

let of_vnode vroot =
  let nodes = Xid.Table.create 64 in
  let rec add parent v =
    let xid = Vnode.xid v in
    if Xid.Table.mem nodes xid then
      fail "Xidmap.of_vnode: duplicate xid %d" (Xid.to_int xid);
    (match v with
     | Vnode.Text { content; _ } ->
       Xid.Table.replace nodes xid
         { node_content = Text content; node_children = []; node_parent = parent }
     | Vnode.Elem e ->
       Xid.Table.replace nodes xid
         {
           node_content = Element { tag = e.tag; attrs = e.attrs };
           node_children = List.map Vnode.xid e.children;
           node_parent = parent;
         };
       List.iter (add (Some xid)) e.children)
  in
  add None vroot;
  { nodes; map_root = Vnode.xid vroot }

let get t xid =
  match Xid.Table.find_opt t.nodes xid with
  | Some n -> n
  | None -> fail "Xidmap: unknown xid %d" (Xid.to_int xid)

let root t = t.map_root
let mem t xid = Xid.Table.mem t.nodes xid
let content t xid = (get t xid).node_content
let children t xid = (get t xid).node_children
let parent t xid = (get t xid).node_parent
let size t = Xid.Table.length t.nodes

let left_sibling t xid =
  match (get t xid).node_parent with
  | None -> None
  | Some p ->
    let rec go prev = function
      | [] -> fail "Xidmap: broken child list for xid %d" (Xid.to_int xid)
      | c :: rest -> if Xid.equal c xid then prev else go (Some c) rest
    in
    go None (get t p).node_children

let rec subtree t xid =
  let n = get t xid in
  match n.node_content with
  | Text content -> Vnode.Text { xid; content }
  | Element { tag; attrs } ->
    Vnode.Elem { xid; tag; attrs; children = List.map (subtree t) n.node_children }

let to_vnode t = subtree t t.map_root

let is_ancestor t anc xid =
  let rec go cur =
    Xid.equal cur anc
    ||
    match (get t cur).node_parent with
    | None -> false
    | Some p -> go p
  in
  go xid

let splice_in t ~parent ~after child_xid =
  let pnode = get t parent in
  (match pnode.node_content with
   | Text _ -> fail "Xidmap: xid %d is a text node, cannot hold children"
                 (Xid.to_int parent)
   | Element _ -> ());
  let rec insert = function
    | [] -> (
      match after with
      | None -> [child_xid]
      | Some a -> fail "Xidmap: anchor %d is not a child of %d" (Xid.to_int a)
                    (Xid.to_int parent))
    | c :: rest -> (
      match after with
      | Some a when Xid.equal c a -> c :: child_xid :: rest
      | _ -> c :: insert rest)
  in
  let new_children =
    match after with
    | None -> child_xid :: pnode.node_children
    | Some _ -> insert pnode.node_children
  in
  pnode.node_children <- new_children;
  (get t child_xid).node_parent <- Some parent

let unsplice t xid =
  match (get t xid).node_parent with
  | None -> fail "Xidmap: cannot detach the root (xid %d)" (Xid.to_int xid)
  | Some p ->
    let pnode = get t p in
    pnode.node_children <-
      List.filter (fun c -> not (Xid.equal c xid)) pnode.node_children;
    (get t xid).node_parent <- None

let insert_tree t ~parent ~after vnode =
  ignore (get t parent);
  (match after with
   | Some a ->
     if not (List.exists (Xid.equal a) (get t parent).node_children) then
       fail "Xidmap.insert_tree: anchor %d is not a child of %d"
         (Xid.to_int a) (Xid.to_int parent)
   | None -> ());
  List.iter
    (fun xid ->
      if mem t xid then
        fail "Xidmap.insert_tree: xid %d already present" (Xid.to_int xid))
    (Vnode.xids vnode);
  (* Register the subtree's nodes, then link its root into the parent. *)
  let rec add p v =
    let xid = Vnode.xid v in
    match v with
    | Vnode.Text { content; _ } ->
      Xid.Table.replace t.nodes xid
        { node_content = Text content; node_children = []; node_parent = p }
    | Vnode.Elem e ->
      Xid.Table.replace t.nodes xid
        {
          node_content = Element { tag = e.tag; attrs = e.attrs };
          node_children = List.map Vnode.xid e.children;
          node_parent = p;
        };
      List.iter (add (Some xid)) e.children
  in
  add None vnode;
  splice_in t ~parent ~after (Vnode.xid vnode)

let delete_subtree t xid =
  if Xid.equal xid t.map_root then
    fail "Xidmap.delete_subtree: cannot delete the root";
  let tree = subtree t xid in
  unsplice t xid;
  List.iter (Xid.Table.remove t.nodes) (Vnode.xids tree);
  tree

let move t xid ~parent ~after =
  if Xid.equal xid t.map_root then fail "Xidmap.move: cannot move the root";
  ignore (get t parent);
  if is_ancestor t xid parent then
    fail "Xidmap.move: xid %d is an ancestor of target parent %d"
      (Xid.to_int xid) (Xid.to_int parent);
  (match after with
   | Some a when Xid.equal a xid -> fail "Xidmap.move: node anchored on itself"
   | _ -> ());
  unsplice t xid;
  splice_in t ~parent ~after xid

let update_text t xid text =
  let n = get t xid in
  match n.node_content with
  | Text _ -> n.node_content <- Text text
  | Element _ ->
    fail "Xidmap.update_text: xid %d is an element" (Xid.to_int xid)

let rename t xid tag =
  let n = get t xid in
  match n.node_content with
  | Element { attrs; _ } -> n.node_content <- Element { tag; attrs }
  | Text _ -> fail "Xidmap.rename: xid %d is a text node" (Xid.to_int xid)

let set_attr t xid ~name ~value =
  let n = get t xid in
  match n.node_content with
  | Text _ -> fail "Xidmap.set_attr: xid %d is a text node" (Xid.to_int xid)
  | Element { tag; attrs } ->
    let attrs =
      match value with
      | None -> List.filter (fun (k, _) -> not (String.equal k name)) attrs
      | Some v ->
        if List.exists (fun (k, _) -> String.equal k name) attrs then
          List.map (fun (k, old) -> if String.equal k name then (k, v) else (k, old))
            attrs
        else attrs @ [(name, v)]
    in
    n.node_content <- Element { tag; attrs }
