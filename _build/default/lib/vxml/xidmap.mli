(** Mutable, XID-addressed form of one document version.

    Delta application and diff-script generation need efficient node lookup
    by XID, parent pointers, and in-place child-list surgery; this module is
    that working form.  Convert with {!of_vnode} / {!to_vnode}. *)

type t

type content =
  | Element of { tag : string; attrs : (string * string) list }
  | Text of string

val of_vnode : Vnode.t -> t
(** Raises [Invalid_argument] if the tree contains duplicate XIDs. *)

val to_vnode : t -> Vnode.t

val root : t -> Xid.t
val mem : t -> Xid.t -> bool
val content : t -> Xid.t -> content
val children : t -> Xid.t -> Xid.t list
val parent : t -> Xid.t -> Xid.t option
val size : t -> int

val left_sibling : t -> Xid.t -> Xid.t option
(** The sibling immediately before the node, [None] if first child. *)

val subtree : t -> Xid.t -> Vnode.t
(** The subtree rooted at the node, as an immutable tree. *)

(** The mutators below raise [Invalid_argument] on a nonexistent XID, on
    XID collisions, or on surgery that would detach the root or create a
    cycle; a raising mutator leaves the map unchanged.  [after] designates
    the left sibling; [None] inserts as first child. *)

val insert_tree : t -> parent:Xid.t -> after:Xid.t option -> Vnode.t -> unit
val delete_subtree : t -> Xid.t -> Vnode.t
(** Removes and returns the subtree. *)

val move : t -> Xid.t -> parent:Xid.t -> after:Xid.t option -> unit
val update_text : t -> Xid.t -> string -> unit
val rename : t -> Xid.t -> string -> unit

val set_attr : t -> Xid.t -> name:string -> value:string option -> unit
(** [Some v] adds or replaces; [None] removes.  Attribute order: a replaced
    attribute keeps its position, a new one is appended. *)
