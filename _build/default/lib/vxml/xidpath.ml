type t = Xid.t array

let compare p q =
  let lp = Array.length p and lq = Array.length q in
  let rec go i =
    if i >= lp || i >= lq then Int.compare lp lq
    else
      match Xid.compare p.(i) q.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

let equal p q = compare p q = 0

let is_prefix p q =
  let lp = Array.length p and lq = Array.length q in
  if lp > lq then false
  else
    let rec go i = i >= lp || (Xid.equal p.(i) q.(i) && go (i + 1)) in
    go 0

let is_strict_prefix p q = Array.length p < Array.length q && is_prefix p q
let is_parent p q = Array.length q = Array.length p + 1 && is_prefix p q

let leaf p =
  let n = Array.length p in
  if n = 0 then None else Some p.(n - 1)

let depth = Array.length

let to_string p =
  "/"
  ^ String.concat "/"
      (Array.to_list (Array.map (fun x -> string_of_int (Xid.to_int x)) p))

let pp ppf p = Format.pp_print_string ppf (to_string p)
