(** XID paths: the hierarchy encoding carried by index postings.

    A path is the sequence of XIDs from the document root down to a node.
    Because XIDs are persistent, [isParentOf] and [isAscendantOf] tests
    between postings reduce to prefix tests on these paths, independent of
    the version being considered (as long as the node has not moved, which
    the incremental indexer handles by closing and reopening postings). *)

type t = Xid.t array

val compare : t -> t -> int
(** Lexicographic; a proper prefix sorts before its extensions, so the
    descendants of a node form a contiguous run in sorted posting lists. *)

val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix p q]: [p] is a (possibly equal) prefix of [q]. *)

val is_strict_prefix : t -> t -> bool

val is_parent : t -> t -> bool
(** [is_parent p q]: [q] = [p] plus exactly one trailing XID. *)

val leaf : t -> Xid.t option
(** Last component — the node's own XID. *)

val depth : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
