lib/workload/load.ml: Array List Printf Restaurant Rng Txq_db Txq_query Txq_temporal Vocab
