lib/workload/load.mli: Restaurant Txq_db Txq_query Txq_temporal
