lib/workload/news.ml: List Printf Rng Txq_temporal Txq_xml Vocab
