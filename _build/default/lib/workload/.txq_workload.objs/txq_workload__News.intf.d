lib/workload/news.mli: Rng Txq_temporal Txq_xml Vocab
