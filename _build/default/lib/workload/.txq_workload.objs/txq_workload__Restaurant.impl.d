lib/workload/restaurant.ml: Array Float List Printf Rng String Txq_xml Vocab
