lib/workload/restaurant.mli: Rng Txq_xml Vocab
