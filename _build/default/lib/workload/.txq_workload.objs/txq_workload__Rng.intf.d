lib/workload/rng.mli:
