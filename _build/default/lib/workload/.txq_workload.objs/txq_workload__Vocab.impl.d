lib/workload/vocab.ml: Array Float Hashtbl List Rng String
