lib/workload/vocab.mli: Rng
