module Timestamp = Txq_temporal.Timestamp
module Duration = Txq_temporal.Duration

type spec = {
  seed : int;
  documents : int;
  versions : int;
  params : Restaurant.params;
  commit_gap : Duration.t;
}

let default_spec =
  {
    seed = 42;
    documents = 10;
    versions = 20;
    params = Restaurant.default_params;
    commit_gap = Duration.days 1;
  }

let url_of i = Printf.sprintf "guide.example.org/city-%d.xml" i
let base_ts = Timestamp.of_date ~day:1 ~month:1 ~year:2001

(* Generate the full history once so db and stratum ingest identical bytes. *)
let histories spec =
  let rng = Rng.create ~seed:spec.seed in
  let vocab = Vocab.create (Rng.split rng) in
  List.init spec.documents (fun d ->
      let gen = Restaurant.create ~params:spec.params ~vocab (Rng.split rng) in
      let v0 = Restaurant.initial gen in
      let rec versions acc prev k =
        if k = 0 then List.rev acc
        else
          let next = Restaurant.evolve gen prev in
          versions (next :: acc) next (k - 1)
      in
      (url_of d, v0 :: versions [] v0 (spec.versions - 1)))

let ts_of_commit spec ~doc ~version =
  (* interleave commits across documents so deltas of different documents
     mix in the store, as on a real site *)
  Timestamp.add base_ts
    (Duration.scale ((version * spec.documents) + doc) spec.commit_gap)

let load_db ?config spec =
  let db = Txq_db.Db.create ?config () in
  let hs = histories spec in
  (* commit round-robin: version v of every document before version v+1 *)
  for v = 0 to spec.versions - 1 do
    List.iteri
      (fun d (url, versions) ->
        let xml = List.nth versions v in
        let ts = ts_of_commit spec ~doc:d ~version:v in
        if v = 0 then ignore (Txq_db.Db.insert_document db ~url ~ts xml)
        else ignore (Txq_db.Db.update_document db ~url ~ts xml))
      hs
  done;
  db

let load_stratum spec =
  let s = Txq_query.Stratum.create () in
  let hs = histories spec in
  for v = 0 to spec.versions - 1 do
    List.iteri
      (fun d (url, versions) ->
        let xml = List.nth versions v in
        let ts = ts_of_commit spec ~doc:d ~version:v in
        if v = 0 then Txq_query.Stratum.insert_document s ~url ~ts xml
        else Txq_query.Stratum.update_document s ~url ~ts xml)
      hs
  done;
  s

let load_both ?config spec = (load_db ?config spec, load_stratum spec)

let midpoint_ts spec =
  ts_of_commit spec ~doc:0 ~version:(spec.versions / 2)

let target_name _spec = Vocab.restaurant_names.(0)
