(** Database loaders: build whole temporal databases from the corpus
    generators, deterministically from a seed.  Shared by the benchmarks,
    the examples and the CLI. *)

type spec = {
  seed : int;
  documents : int;  (** guide documents *)
  versions : int;  (** versions per document *)
  params : Restaurant.params;
  commit_gap : Txq_temporal.Duration.t;  (** time between commits *)
}

val default_spec : spec
(** seed 42, 10 documents, 20 versions, default restaurant parameters, one
    day between commits. *)

val url_of : int -> string
(** URL of the i-th generated guide document. *)

val load_db :
  ?config:Txq_db.Config.t -> spec -> Txq_db.Db.t
(** Builds a temporal database from the spec; the clock starts 01/01/2001
    and every commit advances it by [commit_gap]. *)

val load_stratum : spec -> Txq_query.Stratum.t
(** The same history loaded into the stratum baseline (identical documents
    and timestamps, byte for byte). *)

val load_both :
  ?config:Txq_db.Config.t -> spec -> Txq_db.Db.t * Txq_query.Stratum.t

val midpoint_ts : spec -> Txq_temporal.Timestamp.t
(** An instant in the middle of the generated history (snapshot-query
    target). *)

val target_name : spec -> string
(** A restaurant name present from version 0 on (query target). *)
