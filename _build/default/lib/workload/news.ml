module Xml = Txq_xml.Xml

type params = {
  paragraphs : int;
  paragraph_words : int;
  p_revise_body : float;
  p_revise_title : float;
}

let default_params =
  { paragraphs = 4; paragraph_words = 30; p_revise_body = 0.5; p_revise_title = 0.15 }

type t = { params : params; vocab : Vocab.t; rng : Rng.t }

let create ?(params = default_params) ~vocab rng = { params; vocab; rng }

let title t topic = Printf.sprintf "%s %s" topic (Vocab.words t.vocab 4)

let paragraph t =
  Xml.element "p" [Xml.text (Vocab.words t.vocab t.params.paragraph_words)]

let article t ~topic ~published =
  Xml.element "article"
    [
      Xml.element "meta"
        [
          Xml.element "topic" [Xml.text topic];
          Xml.element "published"
            [Xml.text (Txq_temporal.Timestamp.to_string published)];
          Xml.element "agency" [Xml.text "txq-news"];
        ];
      Xml.element "title" [Xml.text (title t topic)];
      Xml.element "body"
        (List.init t.params.paragraphs (fun _ -> paragraph t));
    ]

let revise t article =
  match article with
  | Xml.Text _ -> article
  | Xml.Element e ->
    let children =
      List.map
        (fun c ->
          match Xml.tag c with
          | Some "title" when Rng.bool t.rng t.params.p_revise_title ->
            let topic =
              match
                Txq_xml.Path.select_from_children
                  (Txq_xml.Path.parse_exn "/meta/topic")
                  article
              with
              | node :: _ -> Xml.text_content node
              | [] -> "news"
            in
            Xml.element "title" [Xml.text (title t topic)]
          | Some "body" when Rng.bool t.rng t.params.p_revise_body ->
            let paragraphs = Xml.children c in
            let n = List.length paragraphs in
            if n = 0 then Xml.element "body" [paragraph t]
            else begin
              (* revise one paragraph, sometimes append another *)
              let victim = Rng.int t.rng n in
              let revised =
                List.mapi
                  (fun i p -> if i = victim then paragraph t else p)
                  paragraphs
              in
              let revised =
                if Rng.bool t.rng 0.3 then revised @ [paragraph t] else revised
              in
              Xml.element "body" revised
            end
          | _ -> c)
        e.Xml.children
    in
    Xml.Element { e with Xml.children }
