(** News-archive corpus.

    Models the paper's XML-warehouse setting (Section 3.1): documents are
    {e crawled} from the Web rather than committed locally — retrieval times
    are irregular, intermediate versions can be missed, and each document
    carries its own publication timestamp in content (document time, after
    XMLNews-Meta).  Articles are created, revised a few times, and taken
    down. *)

type params = {
  paragraphs : int;  (** body paragraphs per article *)
  paragraph_words : int;
  p_revise_body : float;  (** per-crawl probability the body changed *)
  p_revise_title : float;
}

val default_params : params

type t

val create : ?params:params -> vocab:Vocab.t -> Rng.t -> t

val article :
  t -> topic:string -> published:Txq_temporal.Timestamp.t -> Txq_xml.Xml.t
(** A fresh article; the [published] instant is embedded as document time in
    a [<meta><published>…] element. *)

val revise : t -> Txq_xml.Xml.t -> Txq_xml.Xml.t
(** The article as the next crawl would see it. *)
