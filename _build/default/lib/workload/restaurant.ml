module Xml = Txq_xml.Xml

type params = {
  restaurants : int;
  review_words : int;
  p_price_update : float;
  p_review_update : float;
  p_insert : float;
  p_delete : float;
  p_move : float;
}

let default_params =
  {
    restaurants = 20;
    review_words = 12;
    p_price_update = 0.2;
    p_review_update = 0.1;
    p_insert = 0.15;
    p_delete = 0.15;
    p_move = 0.1;
  }

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let change_rate r =
  let d = default_params in
  {
    d with
    p_price_update = clamp01 (d.p_price_update *. r);
    p_review_update = clamp01 (d.p_review_update *. r);
    p_insert = clamp01 (d.p_insert *. r);
    p_delete = clamp01 (d.p_delete *. r);
    p_move = clamp01 (d.p_move *. r);
  }

type t = { params : params; vocab : Vocab.t; rng : Rng.t; mutable minted : int }

let create ?(params = default_params) ~vocab rng =
  { params; vocab; rng; minted = 0 }

let price t = string_of_int (5 + Rng.int t.rng 45)

let fresh_name t =
  t.minted <- t.minted + 1;
  Printf.sprintf "%s-%d" (Rng.pick t.rng Vocab.restaurant_names) t.minted

let restaurant t ~name =
  Xml.element "restaurant"
    [
      Xml.element "name" [Xml.text name];
      Xml.element "price" [Xml.text (price t)];
      Xml.element "address"
        [
          Xml.element "street"
            [Xml.text (Printf.sprintf "%s %d" (Rng.pick t.rng Vocab.street_names)
                         (1 + Rng.int t.rng 120))];
          Xml.element "city" [Xml.text (Rng.pick t.rng Vocab.cities)];
        ];
      Xml.element "cuisine" [Xml.text (Rng.pick t.rng Vocab.cuisines)];
      Xml.element "rating" [Xml.text (string_of_int (1 + Rng.int t.rng 5))];
      Xml.element "review" [Xml.text (Vocab.words t.vocab t.params.review_words)];
    ]

let known_name t = ignore t; Vocab.restaurant_names.(0)

let initial t =
  let names =
    Array.init t.params.restaurants (fun i ->
        if i = 0 then Vocab.restaurant_names.(0) else fresh_name t)
  in
  Xml.element "guide"
    (Array.to_list (Array.map (fun name -> restaurant t ~name) names))

(* One evolution step: rebuild the child list with localized changes. *)
let evolve t guide =
  let children = Array.of_list (Xml.children guide) in
  let replace tag make children =
    List.map
      (fun c ->
        match Xml.tag c with
        | Some ct when String.equal ct tag -> make ()
        | _ -> c)
      children
  in
  let mutate_restaurant node =
    match node with
    | Xml.Element e ->
      let children = e.Xml.children in
      let children =
        if Rng.bool t.rng t.params.p_price_update then
          replace "price" (fun () -> Xml.element "price" [Xml.text (price t)])
            children
        else children
      in
      let children =
        if Rng.bool t.rng t.params.p_review_update then
          replace "review"
            (fun () ->
              Xml.element "review"
                [Xml.text (Vocab.words t.vocab t.params.review_words)])
            children
        else children
      in
      Xml.Element { e with Xml.children }
    | Xml.Text _ -> node
  in
  let mutated = Array.map mutate_restaurant children in
  let as_list = ref (Array.to_list mutated) in
  if Rng.bool t.rng t.params.p_delete && List.length !as_list > 1 then begin
    let victim = Rng.int t.rng (List.length !as_list) in
    as_list := List.filteri (fun i _ -> i <> victim) !as_list
  end;
  if Rng.bool t.rng t.params.p_insert then begin
    let pos = Rng.int t.rng (List.length !as_list + 1) in
    let fresh = restaurant t ~name:(fresh_name t) in
    let before = List.filteri (fun i _ -> i < pos) !as_list in
    let after = List.filteri (fun i _ -> i >= pos) !as_list in
    as_list := before @ [fresh] @ after
  end;
  if Rng.bool t.rng t.params.p_move && List.length !as_list > 1 then begin
    let arr = Array.of_list !as_list in
    let i = Rng.int t.rng (Array.length arr) in
    let j = Rng.int t.rng (Array.length arr) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    as_list := Array.to_list arr
  end;
  match guide with
  | Xml.Element e -> Xml.Element { e with Xml.children = !as_list }
  | Xml.Text _ -> guide
