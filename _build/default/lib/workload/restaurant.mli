(** Restaurant-guide corpus: the paper's running example (Figure 1) scaled
    up.

    A guide document holds a list of restaurants, each with name, price,
    address, cuisine, rating and a free-text review.  The evolver applies a
    parameterized mix of updates (price changes dominate, as in the paper's
    narrative), insertions, deletions and moves, producing the next version
    of the document as plain XML — the shape a crawler would deliver. *)

type params = {
  restaurants : int;  (** restaurants in the initial version *)
  review_words : int;  (** words per review (document "weight") *)
  p_price_update : float;  (** per-restaurant probability of a price change *)
  p_review_update : float;
  p_insert : float;  (** probability of inserting one restaurant per commit *)
  p_delete : float;
  p_move : float;  (** probability of reordering one restaurant *)
}

val default_params : params
(** 20 restaurants, 12-word reviews, price churn 0.2, review churn 0.1,
    insert/delete 0.15, move 0.1. *)

val change_rate : float -> params
(** [change_rate r] scales all churn probabilities by [r] relative to
    {!default_params} (clamped to [\[0,1\]]); the E7/E8 sweep parameter. *)

type t

val create : ?params:params -> vocab:Vocab.t -> Rng.t -> t
val initial : t -> Txq_xml.Xml.t
val evolve : t -> Txq_xml.Xml.t -> Txq_xml.Xml.t
(** Next version of a guide document. *)

val known_name : t -> string
(** A restaurant name guaranteed to appear in the initial version (query
    target). *)
