(** Deterministic random numbers (splitmix64).

    Every benchmark and generated corpus must be reproducible from a seed,
    independent of the OCaml stdlib's generator evolution. *)

type t

val create : seed:int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform in [\[0, bound)]; [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** True with the given probability. *)

val pick : t -> 'a array -> 'a
(** Uniform choice; the array must be non-empty. *)

val shuffle : t -> 'a array -> unit

val split : t -> t
(** Independent child generator (for parallel streams). *)
