type t = {
  rng : Rng.t;
  words : string array;
  (* cumulative Zipf mass, for binary-search sampling *)
  cumulative : float array;
}

let syllables =
  [| "ba"; "re"; "mo"; "ta"; "li"; "ku"; "so"; "ne"; "vi"; "da"; "po"; "ze" |]

let mint_word rng =
  let n = 2 + Rng.int rng 3 in
  String.concat "" (List.init n (fun _ -> Rng.pick rng syllables))

let create ?(size = 2000) ?(exponent = 1.1) rng =
  if size <= 0 then invalid_arg "Vocab.create: size must be positive";
  let seen = Hashtbl.create size in
  let words =
    Array.init size (fun i ->
        let rec fresh () =
          let w = mint_word rng ^ string_of_int i in
          if Hashtbl.mem seen w then fresh ()
          else begin
            Hashtbl.replace seen w ();
            w
          end
        in
        fresh ())
  in
  let cumulative = Array.make size 0.0 in
  let total = ref 0.0 in
  for i = 0 to size - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) exponent);
    cumulative.(i) <- !total
  done;
  for i = 0 to size - 1 do
    cumulative.(i) <- cumulative.(i) /. !total
  done;
  { rng; words; cumulative }

let word t =
  let u = Rng.float t.rng in
  (* first index with cumulative >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  t.words.(!lo)

let words t n = String.concat " " (List.init n (fun _ -> word t))
let size t = Array.length t.words

let restaurant_names =
  [|
    "Napoli"; "Akropolis"; "Golden-Dragon"; "Chez-Marcel"; "La-Pergola";
    "Sakura"; "El-Toro"; "Taj-Mahal"; "Brasserie-Lipp"; "Trattoria-Roma";
    "Blue-Lagoon"; "The-Old-Mill"; "Casa-Bonita"; "Petit-Jardin"; "Meze-House";
    "Pho-Saigon"; "Alpenhof"; "Smoky-Joes"; "Mar-Azul"; "Kebabistan";
  |]

let street_names =
  [|
    "Via-Roma"; "Rue-de-Rivoli"; "Main-Street"; "Kongensgate"; "Elm-Avenue";
    "Marktplatz"; "Harbor-Road"; "Station-Square"; "Oak-Lane"; "River-Walk";
  |]

let cuisines =
  [|
    "italian"; "greek"; "chinese"; "french"; "japanese"; "spanish"; "indian";
    "vietnamese"; "norwegian"; "mexican";
  |]

let cities =
  [| "Trondheim"; "Paris"; "Roma"; "Oslo"; "Athens"; "Madrid"; "Lyon" |]

let news_topics =
  [|
    "politics"; "economy"; "science"; "sports"; "culture"; "technology";
    "weather"; "health";
  |]
