(** Vocabulary with a Zipfian word distribution.

    Document text in real corpora is heavily skewed; posting-list lengths —
    and therefore pattern-scan join costs — depend on that skew, so the
    generators draw words Zipf-distributed over a synthetic vocabulary. *)

type t

val create : ?size:int -> ?exponent:float -> Rng.t -> t
(** [size] words (default 2000), Zipf [exponent] (default 1.1). *)

val word : t -> string
(** One word, Zipf-ranked. *)

val words : t -> int -> string
(** A sentence of [n] words, space-separated. *)

val size : t -> int

val restaurant_names : string array
val street_names : string array
val cuisines : string array
val cities : string array
val news_topics : string array
