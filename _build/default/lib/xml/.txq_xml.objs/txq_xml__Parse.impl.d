lib/xml/parse.ml: Buffer Char List Printf String Xml
