lib/xml/parse.mli: Xml
