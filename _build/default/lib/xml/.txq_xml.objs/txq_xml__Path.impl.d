lib/xml/path.ml: List Printf String Xml
