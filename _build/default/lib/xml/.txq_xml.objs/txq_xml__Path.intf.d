lib/xml/path.mli: Xml
