lib/xml/print.ml: Buffer Format List String Xml
