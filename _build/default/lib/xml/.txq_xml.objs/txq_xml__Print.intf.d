lib/xml/print.mli: Format Xml
