lib/xml/xml.ml: Buffer List Stdlib String
