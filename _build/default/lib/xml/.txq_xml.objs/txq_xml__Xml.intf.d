lib/xml/xml.mli:
