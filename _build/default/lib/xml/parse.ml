type error = { line : int; column : int; message : string }

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "XML parse error at line %d, column %d: %s" e.line e.column
    e.message

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable column : int;
  keep_whitespace : bool;
}

let fail st message =
  raise (Parse_error { line = st.line; column = st.column; message })

let at_end st = st.pos >= String.length st.input
let peek st = if at_end st then '\000' else st.input.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.input then '\000'
  else st.input.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    (if Char.equal st.input.[st.pos] '\n' then begin
       st.line <- st.line + 1;
       st.column <- 1
     end
     else st.column <- st.column + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if Char.equal (peek st) c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input
  && String.equal (String.sub st.input st.pos n) s

let skip_string st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" s)

let skip_until st s =
  let rec go () =
    if at_end st then fail st (Printf.sprintf "unterminated construct, expected %S" s)
    else if looking_at st s then skip_string st s
    else begin
      advance st;
      go ()
    end
  in
  go ()

let is_space c =
  match c with
  | ' ' | '\t' | '\n' | '\r' -> true
  | _ -> false

let skip_spaces st =
  while (not (at_end st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || Char.equal c '_' || Char.equal c ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || Char.equal c '-'
  || Char.equal c '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    fail st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (at_end st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_reference st =
  (* at '&' *)
  advance st;
  let start = st.pos in
  while (not (at_end st)) && not (Char.equal (peek st) ';') do
    advance st
  done;
  if at_end st then fail st "unterminated entity reference";
  let name = String.sub st.input start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    let codepoint =
      if String.length name > 2 && name.[0] = '#' && (name.[1] = 'x' || name.[1] = 'X')
      then int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
      else if String.length name > 1 && name.[0] = '#' then
        int_of_string_opt (String.sub name 1 (String.length name - 1))
      else None
    in
    (match codepoint with
     | Some cp when cp >= 0 && cp < 0x110000 ->
       (* encode as UTF-8 *)
       let b = Buffer.create 4 in
       if cp < 0x80 then Buffer.add_char b (Char.chr cp)
       else if cp < 0x800 then begin
         Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
         Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
       end
       else if cp < 0x10000 then begin
         Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
         Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
       end
       else begin
         Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
         Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
       end;
       Buffer.contents b
     | _ -> fail st (Printf.sprintf "unknown entity &%s;" name))

let parse_attr_value st =
  let quote = peek st in
  if not (Char.equal quote '"' || Char.equal quote '\'') then
    fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then fail st "unterminated attribute value"
    else if Char.equal (peek st) quote then advance st
    else if Char.equal (peek st) '&' then begin
      Buffer.add_string buf (parse_reference st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_spaces st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let value = parse_attr_value st in
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let is_all_whitespace s =
  let n = String.length s in
  let rec go i = i >= n || (is_space s.[i] && go (i + 1)) in
  go 0

(* Misc constructs allowed between nodes: comments and PIs. Returns true if
   one was consumed. *)
let try_skip_misc st =
  if looking_at st "<!--" then begin
    skip_string st "<!--";
    skip_until st "-->";
    true
  end
  else if looking_at st "<?" then begin
    skip_string st "<?";
    skip_until st "?>";
    true
  end
  else false

let rec parse_element st =
  expect st '<';
  let name = parse_name st in
  let attrs = parse_attributes st in
  skip_spaces st;
  if looking_at st "/>" then begin
    skip_string st "/>";
    Xml.element ~attrs name []
  end
  else begin
    expect st '>';
    let children = parse_content st name in
    Xml.element ~attrs name children
  end

and parse_content st parent_name =
  let nodes = ref [] in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if st.keep_whitespace || not (is_all_whitespace s) then
        nodes := Xml.text s :: !nodes
    end
  in
  let rec go () =
    if at_end st then fail st (Printf.sprintf "unterminated element <%s>" parent_name)
    else if looking_at st "</" then begin
      flush_text ();
      skip_string st "</";
      let name = parse_name st in
      if not (String.equal name parent_name) then
        fail st
          (Printf.sprintf "mismatched closing tag </%s>, expected </%s>" name
             parent_name);
      skip_spaces st;
      expect st '>'
    end
    else if looking_at st "<![CDATA[" then begin
      skip_string st "<![CDATA[";
      let start = st.pos in
      let rec find () =
        if at_end st then fail st "unterminated CDATA section"
        else if looking_at st "]]>" then begin
          Buffer.add_string text_buf (String.sub st.input start (st.pos - start));
          skip_string st "]]>"
        end
        else begin
          advance st;
          find ()
        end
      in
      find ();
      go ()
    end
    else if try_skip_misc st then go ()
    else if Char.equal (peek st) '<' then begin
      if not (is_name_start (peek2 st)) then fail st "malformed markup";
      flush_text ();
      let child = parse_element st in
      nodes := child :: !nodes;
      go ()
    end
    else if Char.equal (peek st) '&' then begin
      Buffer.add_string text_buf (parse_reference st);
      go ()
    end
    else begin
      Buffer.add_char text_buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !nodes

let parse_document st =
  skip_spaces st;
  if looking_at st "<?xml" then begin
    skip_string st "<?xml";
    skip_until st "?>"
  end;
  let rec prolog () =
    skip_spaces st;
    if looking_at st "<!DOCTYPE" then begin
      skip_string st "<!DOCTYPE";
      skip_until st ">";
      prolog ()
    end
    else if try_skip_misc st then prolog ()
  in
  prolog ();
  skip_spaces st;
  if not (Char.equal (peek st) '<') then fail st "expected root element";
  let root = parse_element st in
  let rec epilogue () =
    skip_spaces st;
    if try_skip_misc st then epilogue ()
    else if not (at_end st) then fail st "trailing content after root element"
  in
  epilogue ();
  root

let parse ?(keep_whitespace = false) input =
  let st = { input; pos = 0; line = 1; column = 1; keep_whitespace } in
  match parse_document st with
  | root -> Ok root
  | exception Parse_error e -> Error e

let parse_exn ?keep_whitespace input =
  match parse ?keep_whitespace input with
  | Ok root -> root
  | Error e -> raise (Parse_error e)
