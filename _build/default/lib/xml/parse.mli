(** From-scratch XML parser.

    The sealed build environment has no XML library, so the substrate parses
    its own documents and deltas.  Supported: elements, attributes (single or
    double quoted), character data, the five predefined entities plus decimal
    and hexadecimal character references, comments, processing instructions,
    an XML declaration, a DOCTYPE line (skipped), and CDATA sections.
    Whitespace-only text between elements is dropped unless
    [keep_whitespace] is set. *)

type error = { line : int; column : int; message : string }

exception Parse_error of error

val error_to_string : error -> string

val parse : ?keep_whitespace:bool -> string -> (Xml.t, error) result
(** Parses a complete document with a single root element. *)

val parse_exn : ?keep_whitespace:bool -> string -> Xml.t
(** @raise Parse_error on malformed input. *)
