type axis =
  | Child
  | Descendant

type step = { axis : axis; name : string }
type t = step list

let parse input =
  let s = String.trim input in
  if String.equal s "" then Ok []
  else
    let n = String.length s in
    let rec steps acc i =
      if i >= n then Ok (List.rev acc)
      else
        let axis, i =
          if i + 1 < n && s.[i] = '/' && s.[i + 1] = '/' then (Descendant, i + 2)
          else if s.[i] = '/' then (Child, i + 1)
          else (Child, i)
        in
        let start = i in
        let rec name_end j = if j < n && s.[j] <> '/' then name_end (j + 1) else j in
        let stop = name_end start in
        if stop = start then Error (Printf.sprintf "empty step in path %S" input)
        else
          let name = String.sub s start (stop - start) in
          steps ({ axis; name } :: acc) stop
    in
    steps [] 0

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error msg -> invalid_arg ("Path.parse_exn: " ^ msg)

let to_string path =
  String.concat ""
    (List.map
       (fun { axis; name } ->
         match axis with
         | Child -> "/" ^ name
         | Descendant -> "//" ^ name)
       path)

let name_matches name node =
  match Xml.tag node with
  | Some t -> String.equal name "*" || String.equal t name
  | None -> false

let rec descendants_or_self node =
  node :: List.concat_map descendants_or_self (Xml.children node)

(* Evaluate steps against a candidate set; each step maps the set to the
   nodes reached by that step.  Document order is preserved and duplicates
   (possible with // over nested same-name elements) removed by physical
   identity. *)
let dedup nodes =
  (* List.memq-based dedup is quadratic but per-document candidate sets are
     small. *)
  let seen = ref [] in
  List.filter
    (fun n ->
      if List.memq n !seen then false
      else begin
        seen := n :: !seen;
        true
      end)
    nodes

let apply_step candidates { axis; name } =
  let next =
    match axis with
    | Child ->
      List.concat_map
        (fun node -> List.filter (name_matches name) (Xml.children node))
        candidates
    | Descendant ->
      List.concat_map
        (fun node ->
          List.filter (name_matches name)
            (List.concat_map descendants_or_self (Xml.children node)))
        candidates
  in
  dedup next

let select path root =
  match path with
  | [] -> [root]
  | first :: rest ->
    let initial =
      match first.axis with
      | Child -> if name_matches first.name root then [root] else []
      | Descendant ->
        List.filter (name_matches first.name) (descendants_or_self root)
    in
    List.fold_left apply_step initial rest

let select_from_children path root = List.fold_left apply_step [root] path
