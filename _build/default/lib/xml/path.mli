(** Simple location paths.

    The paper's queries use rooted paths with child ([/]) and descendant
    ([//]) steps, e.g. [doc("…")/restaurant/name] (Section 5).  This module
    evaluates such paths against plain XML trees; it is used for value
    extraction in the query executor and as the matching engine of the
    stratum baseline. *)

type axis =
  | Child
  | Descendant

type step = { axis : axis; name : string }
(** [name = "*"] matches any element. *)

type t = step list

val parse : string -> (t, string) result
(** Parses ["/a//b/*"] or ["a/b"] (a leading [/] is implicit).  Empty string
    parses to the empty path. *)

val parse_exn : string -> t

val to_string : t -> string

val select : t -> Xml.t -> Xml.t list
(** Nodes reached from the root by the path, in document order.  The empty
    path selects the root itself.  The first step applies to the root node:
    [/restaurant] selects the root if the root's tag is [restaurant], mirroring
    how the paper's [doc("guide.com/restaurants.xml")/restaurant R] binds the
    root elements of the guide. *)

val select_from_children : t -> Xml.t -> Xml.t list
(** Like {!select} but the first step applies to the node's children, the
    usual XPath reading of a path applied to a document node. *)
