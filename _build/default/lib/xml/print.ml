let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun { Xml.attr_name; attr_value } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf attr_name;
      Buffer.add_string buf "=\"";
      escape buf ~quot:true attr_value;
      Buffer.add_char buf '"')
    attrs

let to_string node =
  let buf = Buffer.create 256 in
  let rec go = function
    | Xml.Text s -> escape buf ~quot:false s
    | Xml.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter go e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>'
      end
  in
  go node;
  Buffer.contents buf

let to_pretty node =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go level = function
    | Xml.Text s ->
      indent level;
      escape buf ~quot:false s;
      Buffer.add_char buf '\n'
    | Xml.Element e -> (
      indent level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | [Xml.Text s] ->
        Buffer.add_char buf '>';
        escape buf ~quot:false s;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n"
      | children ->
        Buffer.add_string buf ">\n";
        List.iter (go (level + 1)) children;
        indent level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n")
  in
  go 0 node;
  Buffer.contents buf

let pp ppf node = Format.pp_print_string ppf (to_pretty node)
let document node = "<?xml version=\"1.0\"?>" ^ to_string node
