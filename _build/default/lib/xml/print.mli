(** XML serialization.

    [to_string] produces a compact form whose round-trip through
    {!Parse.parse} is the identity (texts are escaped; whitespace-only text
    nodes are never emitted by the library's own constructors).  [to_pretty]
    is an indented human-readable form for examples and the CLI. *)

val escape_text : string -> string
val escape_attr : string -> string

val to_string : Xml.t -> string
(** Compact serialization, no added whitespace. *)

val to_pretty : Xml.t -> string
(** Indented serialization (2 spaces per level).  Elements whose children
    are a single text node stay on one line. *)

val pp : Format.formatter -> Xml.t -> unit
(** Pretty form, via {!to_pretty}. *)

val document : Xml.t -> string
(** Compact serialization prefixed by an XML declaration. *)
