type attribute = { attr_name : string; attr_value : string }

type t =
  | Element of element
  | Text of string

and element = { tag : string; attrs : attribute list; children : t list }

let element ?(attrs = []) tag children =
  let attrs =
    List.map (fun (attr_name, attr_value) -> { attr_name; attr_value }) attrs
  in
  Element { tag; attrs; children }

let text s = Text s

let tag = function
  | Element e -> Some e.tag
  | Text _ -> None

let attrs = function
  | Element e -> e.attrs
  | Text _ -> []

let children = function
  | Element e -> e.children
  | Text _ -> []

let attr node name =
  match node with
  | Text _ -> None
  | Element e ->
    List.find_map
      (fun a -> if String.equal a.attr_name name then Some a.attr_value else None)
      e.attrs

let is_element = function
  | Element _ -> true
  | Text _ -> false

let is_text = function
  | Text _ -> true
  | Element _ -> false

let rec text_content = function
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let child_elements node = List.filter is_element (children node)

let find_child node name =
  List.find_opt
    (fun c -> match tag c with Some t -> String.equal t name | None -> false)
    (children node)

let find_children node name =
  List.filter
    (fun c -> match tag c with Some t -> String.equal t name | None -> false)
    (children node)

let attribute_equal a b =
  String.equal a.attr_name b.attr_name && String.equal a.attr_value b.attr_value

(* Attribute order is insignificant per the XML recommendation; compare
   attribute lists as sets. *)
let sort_attrs attrs =
  List.sort
    (fun a b ->
      match String.compare a.attr_name b.attr_name with
      | 0 -> String.compare a.attr_value b.attr_value
      | c -> c)
    attrs

let attrs_equal a b =
  List.compare_lengths a b = 0
  && List.for_all2 attribute_equal (sort_attrs a) (sort_attrs b)

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.tag y.tag
    && attrs_equal x.attrs y.attrs
    && List.compare_lengths x.children y.children = 0
    && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

let shallow_equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.tag y.tag && attrs_equal x.attrs y.attrs
  | Text _, Element _ | Element _, Text _ -> false

let rec compare a b =
  match (a, b) with
  | Text x, Text y -> String.compare x y
  | Text _, Element _ -> -1
  | Element _, Text _ -> 1
  | Element x, Element y -> (
    match String.compare x.tag y.tag with
    | 0 -> (
      let attr_compare p q =
        match String.compare p.attr_name q.attr_name with
        | 0 -> String.compare p.attr_value q.attr_value
        | c -> c
      in
      match List.compare attr_compare x.attrs y.attrs with
      | 0 -> List.compare compare x.children y.children
      | c -> c)
    | c -> c)

let rec size = function
  | Text _ -> 1
  | Element e -> 1 + List.fold_left (fun acc c -> acc + size c) 0 e.children

let rec depth = function
  | Text _ -> 1
  | Element e ->
    1 + List.fold_left (fun acc c -> Stdlib.max acc (depth c)) 0 e.children

let rec fold f acc node =
  let acc = f acc node in
  List.fold_left (fold f) acc (children node)

let iter f node = fold (fun () n -> f n) () node

let split_words s =
  let is_sep c =
    match c with
    | ' ' | '\t' | '\n' | '\r' | ',' | ';' | '.' | '!' | '?' | '(' | ')' | '"'
      -> true
    | _ -> false
  in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_sep c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let words node =
  let acc = ref [] in
  let add w = acc := w :: !acc in
  let rec go = function
    | Text s -> List.iter add (split_words s)
    | Element e ->
      add e.tag;
      List.iter
        (fun a ->
          add a.attr_name;
          List.iter add (split_words a.attr_value))
        e.attrs;
      List.iter go e.children
  in
  go node;
  List.rev !acc

let rec map_text f = function
  | Text s -> Text (f s)
  | Element e -> Element { e with children = List.map (map_text f) e.children }

let rec normalize = function
  | Text s -> Text s
  | Element e ->
    let rec merge = function
      | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
      | Text "" :: rest -> merge rest
      | node :: rest -> normalize node :: merge rest
      | [] -> []
    in
    Element { e with children = merge e.children }

let rec is_normalized = function
  | Text s -> not (String.equal s "")
  | Element e ->
    let rec no_adjacent = function
      | Text _ :: Text _ :: _ -> false
      | _ :: rest -> no_adjacent rest
      | [] -> true
    in
    no_adjacent e.children && List.for_all is_normalized e.children
