(** Plain (unversioned) XML trees.

    This is the value space of query inputs and results: the paper assumes
    documents are forests of trees (Section 4), queries return their results
    wrapped in a [<results>] document (Section 5), and edit scripts are
    themselves XML (Section 6.1). *)

type attribute = { attr_name : string; attr_value : string }

type t =
  | Element of element
  | Text of string

and element = { tag : string; attrs : attribute list; children : t list }

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val tag : t -> string option
val attrs : t -> attribute list
val children : t -> t list

val attr : t -> string -> string option
(** Value of the named attribute, if the node is an element carrying it. *)

val is_element : t -> bool
val is_text : t -> bool

val text_content : t -> string
(** Concatenation of all text descendants, in document order. *)

val child_elements : t -> t list

val find_child : t -> string -> t option
(** First child element with the given tag. *)

val find_children : t -> string -> t list

val equal : t -> t -> bool
(** Deep structural equality: same tags, attributes (order-insensitive, per
    the XML recommendation), text, and children.  This is the "deep
    equality" reading of [=] discussed in Section 7.4. *)

val shallow_equal : t -> t -> bool
(** Equality of the node itself only: same tag and attributes for elements
    (children ignored), same content for texts. *)

val compare : t -> t -> int
(** An arbitrary total order (for use in sets/maps).  Unlike {!equal} it is
    sensitive to attribute order: [equal a b] does not imply
    [compare a b = 0]. *)

val size : t -> int
(** Number of nodes in the tree. *)

val depth : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val iter : (t -> unit) -> t -> unit

val words : t -> string list
(** All words occurring in the tree, in document order: element names,
    attribute names and values, and whitespace-split text tokens — "all
    words in the documents, including element names" (Section 7.2). *)

val map_text : (string -> string) -> t -> t

val normalize : t -> t
(** DOM-style normalization: merges adjacent text children and drops empty
    text nodes, recursively.  Serialization cannot distinguish adjacent text
    nodes, so the database normalizes every document on ingestion. *)

val is_normalized : t -> bool
