test/test_db.ml: Alcotest Bytes Config Cretime_index Db Docstore Fun List Option Printf QCheck QCheck_alcotest String Txq_db Txq_fti Txq_query Txq_store Txq_temporal Txq_test_support Txq_vxml Txq_xml
