test/test_fti.ml: Alcotest Array Delta_fti Fti Fun List Posting QCheck QCheck_alcotest String Txq_fti Txq_test_support Txq_vxml Txq_xml
