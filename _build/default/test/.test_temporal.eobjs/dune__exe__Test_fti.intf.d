test/test_fti.mli:
