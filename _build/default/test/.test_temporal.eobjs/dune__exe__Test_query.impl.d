test/test_query.ml: Alcotest Ast Exec Fun Glob List Parser Printf QCheck QCheck_alcotest Stratum String Txq_db Txq_query Txq_temporal Txq_test_support Txq_xml
