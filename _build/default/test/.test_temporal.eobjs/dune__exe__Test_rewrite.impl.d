test/test_rewrite.ml: Alcotest Ast Exec List Parser QCheck QCheck_alcotest Rewrite String Txq_db Txq_query Txq_temporal Txq_test_support Txq_xml
