test/test_store.ml: Alcotest Blob_store Bptree Buffer_pool Bytes Char Disk Int64 Io_stats List Map Printf QCheck QCheck_alcotest String Txq_store Vec
