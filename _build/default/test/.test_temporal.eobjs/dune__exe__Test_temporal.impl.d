test/test_temporal.ml: Alcotest Bool Clock Duration Interval List QCheck QCheck_alcotest Timestamp Txq_temporal
