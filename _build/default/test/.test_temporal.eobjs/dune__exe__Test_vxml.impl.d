test/test_vxml.ml: Alcotest Array Codec Delta Diff Gen List Printf QCheck QCheck_alcotest Stdlib String Txq_test_support Txq_vxml Txq_xml Vnode Xid Xidmap Xidpath
