test/test_vxml.mli:
