test/test_workload.ml: Alcotest Array Fun Hashtbl Int List Load News Option Printf Restaurant Result Rng Stdlib String Txq_db Txq_query Txq_temporal Txq_vxml Txq_workload Txq_xml Vocab
