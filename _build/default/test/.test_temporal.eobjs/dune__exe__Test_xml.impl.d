test/test_xml.ml: Alcotest List Option QCheck QCheck_alcotest String Txq_test_support Txq_xml
