test/support/gen_xml.ml: Array Hashtbl List Printf QCheck String Txq_xml
