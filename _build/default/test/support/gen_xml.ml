(* QCheck generators for random XML documents and for random evolutions of a
   document, shared by the property tests of several modules.  A small
   alphabet of tags and words is used on purpose: collisions stress the
   diff's matching heuristics. *)

module Xml = Txq_xml.Xml

let tags = [| "doc"; "item"; "name"; "price"; "review"; "addr"; "b" |]
let words = [| "napoli"; "akropolis"; "pizza"; "15"; "18"; "rome"; "fine" |]
let attr_names = [| "id"; "lang"; "kind" |]

let gen_word = QCheck.Gen.oneofa words
let gen_tag = QCheck.Gen.oneofa tags

let gen_text =
  QCheck.Gen.(
    map
      (fun ws -> String.concat " " ws)
      (list_size (int_range 1 3) gen_word))

let gen_attrs =
  QCheck.Gen.(
    let attr = pair (oneofa attr_names) gen_word in
    map
      (fun attrs ->
        (* attribute names must be unique within an element *)
        let seen = Hashtbl.create 4 in
        List.filter
          (fun (name, _) ->
            if Hashtbl.mem seen name then false
            else begin
              Hashtbl.replace seen name ();
              true
            end)
          attrs)
      (list_size (int_range 0 2) attr))

let rec gen_tree depth st =
  let open QCheck.Gen in
  if depth <= 0 then map Xml.text gen_text st
  else
    frequency
      [
        (1, map Xml.text gen_text);
        ( 3,
          map3
            (fun tag attrs children -> Xml.element ~attrs tag children)
            gen_tag gen_attrs
            (list_size (int_range 0 4) (gen_tree (depth - 1))) );
      ]
      st

let gen_doc =
  QCheck.Gen.(
    map3
      (fun tag attrs children ->
        (* normalize: serialization cannot represent adjacent text nodes *)
        Xml.normalize (Xml.element ~attrs tag children))
      gen_tag gen_attrs
      (list_size (int_range 0 5) (gen_tree 3)))

let arb_doc = QCheck.make ~print:Txq_xml.Print.to_string gen_doc

(* --- random evolution ------------------------------------------------- *)

(* A structured random edit of a document: rebuilds the tree, applying one
   local change at a randomly chosen position.  Chaining several mutations
   simulates successive versions of the same document. *)

let count_nodes = Xml.size

let mutate_once doc st =
  let open QCheck.Gen in
  let n = count_nodes doc in
  let target = int_range 0 (n - 1) st in
  let counter = ref (-1) in
  let pick () =
    incr counter;
    !counter = target
  in
  let rec go node =
    let here = pick () in
    match node with
    | Xml.Text _ when here ->
      (* replace the text *)
      Xml.text (gen_text st)
    | Xml.Text _ -> node
    | Xml.Element e ->
      let node' =
        if here then
          match int_range 0 4 st with
          | 0 ->
            (* insert a child at a random position *)
            let child = gen_tree 1 st in
            let pos = int_range 0 (List.length e.children) st in
            let before = List.filteri (fun i _ -> i < pos) e.children in
            let after = List.filteri (fun i _ -> i >= pos) e.children in
            Xml.Element { e with children = before @ [child] @ after }
          | 1 when e.children <> [] ->
            (* delete a child *)
            let pos = int_range 0 (List.length e.children - 1) st in
            Xml.Element
              { e with children = List.filteri (fun i _ -> i <> pos) e.children }
          | 2 ->
            (* rename *)
            Xml.Element { e with tag = gen_tag st }
          | 3 ->
            (* change attributes *)
            let attrs =
              List.map
                (fun (name, _) -> { Xml.attr_name = name; attr_value = gen_word st })
                (List.map (fun a -> (a.Xml.attr_name, a.Xml.attr_value)) e.attrs)
            in
            Xml.Element { e with attrs }
          | _ when List.length e.children >= 2 ->
            (* swap two children (a reorder, hence a move) *)
            let arr = Array.of_list e.children in
            let i = int_range 0 (Array.length arr - 1) st in
            let j = int_range 0 (Array.length arr - 1) st in
            let tmp = arr.(i) in
            arr.(i) <- arr.(j);
            arr.(j) <- tmp;
            Xml.Element { e with children = Array.to_list arr }
          | _ -> node
        else node
      in
      (match node' with
       | Xml.Element e' ->
         Xml.Element { e' with children = List.map go e'.children }
       | Xml.Text _ -> node')
  in
  go doc

let mutate ~rounds doc st =
  let rec go doc k =
    if k <= 0 then doc else go (Xml.normalize (mutate_once doc st)) (k - 1)
  in
  go doc rounds

let gen_doc_pair =
  QCheck.Gen.(
    gen_doc >>= fun doc ->
    int_range 1 6 >>= fun rounds st -> (doc, mutate ~rounds doc st))

let arb_doc_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "old: %s\nnew: %s" (Txq_xml.Print.to_string a)
        (Txq_xml.Print.to_string b))
    gen_doc_pair

(* A whole random history: an initial document and a list of successors. *)
let gen_history ~max_versions =
  QCheck.Gen.(
    gen_doc >>= fun doc ->
    int_range 1 max_versions >>= fun n st ->
    let rec build acc prev k =
      if k = 0 then List.rev acc
      else
        let next = mutate ~rounds:(int_range 1 3 st) prev st in
        build (next :: acc) next (k - 1)
    in
    (doc, build [] doc n))

let arb_history ~max_versions =
  QCheck.make
    ~print:(fun (d, vs) ->
      String.concat "\n---\n" (List.map Txq_xml.Print.to_string (d :: vs)))
    (gen_history ~max_versions)
