open Txq_temporal

let ts = Timestamp.of_string
let check_ts = Alcotest.testable Timestamp.pp Timestamp.equal

(* --- Timestamp -------------------------------------------------------- *)

let test_date_roundtrip () =
  let t = Timestamp.of_date ~day:26 ~month:1 ~year:2001 in
  Alcotest.(check (triple int int int))
    "to_date" (26, 1, 2001) (Timestamp.to_date t);
  Alcotest.(check string) "to_string" "26/01/2001" (Timestamp.to_string t)

let test_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Timestamp.to_string (ts s)))
    ["01/01/1970"; "26/01/2001"; "29/02/2000"; "31/12/1999"; "15/06/2026";
     "26/01/2001 13:45:10"]

let test_parse_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check (option check_ts)) s None (Timestamp.of_string_opt s))
    ["30/02/2001"; "32/01/2001"; "01/13/2001"; "29/02/2001"; "foo";
     "1/2"; "01/01/2001 25:00:00"; ""]

let test_epoch () =
  Alcotest.check check_ts "epoch is 01/01/1970"
    (Timestamp.of_date ~day:1 ~month:1 ~year:1970)
    Timestamp.epoch

let test_before_epoch () =
  let t = Timestamp.of_date ~day:31 ~month:12 ~year:1969 in
  Alcotest.(check bool) "before epoch" true Timestamp.(t < Timestamp.epoch);
  Alcotest.(check (triple int int int))
    "civil date preserved" (31, 12, 1969) (Timestamp.to_date t)

let test_ordering () =
  let a = ts "01/01/2001" and b = ts "15/01/2001" in
  Alcotest.(check bool) "a < b" true Timestamp.(a < b);
  Alcotest.(check bool) "b > a" true Timestamp.(b > a);
  Alcotest.(check bool) "a <= a" true Timestamp.(a <= a);
  Alcotest.(check bool) "minus_inf < a" true
    Timestamp.(Timestamp.minus_infinity < a);
  Alcotest.(check bool) "a < plus_inf" true
    Timestamp.(a < Timestamp.plus_infinity)

let test_arithmetic () =
  let a = ts "26/01/2001" in
  Alcotest.check check_ts "NOW - 14 DAYS style arithmetic" (ts "12/01/2001")
    (Timestamp.sub a (Duration.days 14));
  Alcotest.check check_ts "26/01/2001 + 2 WEEKS" (ts "09/02/2001")
    (Timestamp.add a (Duration.weeks 2));
  Alcotest.(check int) "diff_seconds" (14 * 86_400)
    (Timestamp.diff_seconds a (ts "12/01/2001"))

let test_leap_years () =
  Alcotest.check check_ts "leap day parses" (ts "29/02/2024")
    (Timestamp.of_date ~day:29 ~month:2 ~year:2024);
  Alcotest.(check int) "2000-03-01 minus 2000-02-28 is 2 days" (2 * 86_400)
    (Timestamp.diff_seconds (ts "01/03/2000") (ts "28/02/2000"));
  Alcotest.(check int) "1900 is not leap (Gregorian)" 86_400
    (Timestamp.diff_seconds
       (Timestamp.of_date ~day:1 ~month:3 ~year:1900)
       (Timestamp.of_date ~day:28 ~month:2 ~year:1900))

let test_infinities_print () =
  Alcotest.(check string) "BOT" "BOT" (Timestamp.to_string Timestamp.minus_infinity);
  Alcotest.(check string) "UC" "UC" (Timestamp.to_string Timestamp.plus_infinity)

(* --- Duration --------------------------------------------------------- *)

let test_duration_units () =
  Alcotest.(check int) "weeks" (7 * 86_400) (Duration.to_seconds (Duration.weeks 1));
  Alcotest.(check int) "days" 86_400 (Duration.to_seconds (Duration.days 1));
  Alcotest.(check int) "hours" 3600 (Duration.to_seconds (Duration.hours 1));
  Alcotest.(check int) "minutes" 60 (Duration.to_seconds (Duration.minutes 1))

let test_duration_parse () =
  Alcotest.(check int) "14 DAYS" (14 * 86_400)
    (Duration.to_seconds (Duration.of_string "14 DAYS"));
  Alcotest.(check int) "2 weeks, case-insensitive" (14 * 86_400)
    (Duration.to_seconds (Duration.of_string "2 weeks"));
  Alcotest.(check int) "1 DAY singular" 86_400
    (Duration.to_seconds (Duration.of_string "1 DAY"));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Duration.of_string: \"-3 DAYS\"") (fun () ->
      ignore (Duration.of_string "-3 DAYS"))

let test_duration_print () =
  Alcotest.(check string) "13 DAYS" "13 DAYS" (Duration.to_string (Duration.days 13));
  Alcotest.(check string) "14 days prints as weeks" "2 WEEKS"
    (Duration.to_string (Duration.days 14));
  Alcotest.(check string) "90 MINUTES" "90 MINUTES"
    (Duration.to_string (Duration.minutes 90));
  Alcotest.(check string) "zero" "0 SECONDS" (Duration.to_string Duration.zero)

(* --- Interval --------------------------------------------------------- *)

let iv a b = Interval.make ~start:(ts a) ~stop:(ts b)
let check_iv = Alcotest.testable Interval.pp Interval.equal

let test_interval_basics () =
  let i = iv "01/01/2001" "15/01/2001" in
  Alcotest.(check bool) "contains start" true (Interval.contains i (ts "01/01/2001"));
  Alcotest.(check bool) "open upper bound" false
    (Interval.contains i (ts "15/01/2001"));
  Alcotest.(check bool) "contains middle" true (Interval.contains i (ts "07/01/2001"));
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument
       "Interval.make: empty interval [15/01/2001, 15/01/2001)") (fun () ->
      ignore (iv "15/01/2001" "15/01/2001"))

let test_interval_current () =
  let i = Interval.since (ts "01/01/2001") in
  Alcotest.(check bool) "is_current" true (Interval.is_current i);
  Alcotest.(check bool) "contains far future" true
    (Interval.contains i (ts "01/01/2100"))

let test_interval_overlap () =
  let a = iv "01/01/2001" "15/01/2001" in
  let b = iv "10/01/2001" "20/01/2001" in
  let c = iv "15/01/2001" "20/01/2001" in
  Alcotest.(check bool) "overlapping" true (Interval.overlaps a b);
  Alcotest.(check bool) "meeting intervals do not overlap" false
    (Interval.overlaps a c);
  Alcotest.(check bool) "meets" true (Interval.meets a c);
  Alcotest.(check (option check_iv))
    "intersect" (Some (iv "10/01/2001" "15/01/2001")) (Interval.intersect a b);
  Alcotest.(check (option check_iv)) "disjoint intersect" None
    (Interval.intersect a c)

let test_interval_subtract () =
  let a = iv "01/01/2001" "31/01/2001" in
  Alcotest.(check (list check_iv))
    "carve middle"
    [iv "01/01/2001" "10/01/2001"; iv "20/01/2001" "31/01/2001"]
    (Interval.subtract a (iv "10/01/2001" "20/01/2001"));
  Alcotest.(check (list check_iv))
    "disjoint" [a]
    (Interval.subtract a (iv "01/03/2001" "02/03/2001"));
  Alcotest.(check (list check_iv))
    "swallowed" []
    (Interval.subtract a (iv "01/12/2000" "01/03/2001"))

let test_coalesce () =
  let input =
    [iv "10/01/2001" "15/01/2001"; iv "01/01/2001" "05/01/2001";
     iv "05/01/2001" "10/01/2001"; iv "20/01/2001" "25/01/2001"]
  in
  Alcotest.(check (list check_iv))
    "adjacent and out-of-order merge"
    [iv "01/01/2001" "15/01/2001"; iv "20/01/2001" "25/01/2001"]
    (Interval.coalesce input)

let prop_coalesce_invariants =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 12)
        (map2
           (fun a len ->
             Interval.make
               ~start:(Timestamp.of_seconds (a * 86_400))
               ~stop:(Timestamp.of_seconds ((a + 1 + len) * 86_400)))
           (int_range 0 50) (int_range 0 10)))
  in
  QCheck.Test.make ~count:300 ~name:"coalesce: disjoint, sorted, same coverage"
    (QCheck.make gen) (fun ivs ->
      let out = Interval.coalesce ivs in
      (* sorted and pairwise disjoint, non-adjacent *)
      let rec sorted_disjoint = function
        | a :: (b :: _ as rest) ->
          Timestamp.(Interval.stop a < Interval.start b) && sorted_disjoint rest
        | [_] | [] -> true
      in
      (* coverage preserved: probe day boundaries *)
      let covered intervals t = List.exists (fun i -> Interval.contains i t) intervals in
      let probes = List.init 70 (fun d -> Timestamp.of_seconds (d * 86_400)) in
      sorted_disjoint out
      && List.for_all (fun t -> Bool.equal (covered ivs t) (covered out t)) probes)

let test_interval_duration () =
  Alcotest.(check int) "two weeks" (14 * 86_400)
    (Interval.duration_seconds (iv "01/01/2001" "15/01/2001"));
  Alcotest.(check int) "open-ended is unbounded" max_int
    (Interval.duration_seconds (Interval.since (ts "01/01/2001")));
  Alcotest.(check int) "always is unbounded" max_int
    (Interval.duration_seconds Interval.always)

let test_timestamp_min_max () =
  let a = ts "01/01/2001" and b = ts "15/01/2001" in
  Alcotest.check check_ts "min" a (Timestamp.min a b);
  Alcotest.check check_ts "max" b (Timestamp.max b a)

(* --- Clock ------------------------------------------------------------ *)

let test_clock () =
  let c = Clock.create ~start:(ts "01/01/2001") () in
  Alcotest.check check_ts "initial" (ts "01/01/2001") (Clock.now c);
  let t2 = Clock.advance c (Duration.days 14) in
  Alcotest.check check_ts "advanced" (ts "15/01/2001") t2;
  let t3 = Clock.tick c in
  Alcotest.(check int) "tick is one second" 1
    (Timestamp.diff_seconds t3 t2);
  Alcotest.check_raises "no travel to the past"
    (Invalid_argument "Clock.set: transaction time cannot move backwards")
    (fun () -> Clock.set c (ts "01/01/2000"))

let () =
  Alcotest.run "temporal"
    [
      ( "timestamp",
        [
          Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "parse/print" `Quick test_parse_print;
          Alcotest.test_case "invalid dates" `Quick test_parse_invalid;
          Alcotest.test_case "epoch" `Quick test_epoch;
          Alcotest.test_case "before epoch" `Quick test_before_epoch;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "leap years" `Quick test_leap_years;
          Alcotest.test_case "infinities print" `Quick test_infinities_print;
        ] );
      ( "duration",
        [
          Alcotest.test_case "units" `Quick test_duration_units;
          Alcotest.test_case "parse" `Quick test_duration_parse;
          Alcotest.test_case "print" `Quick test_duration_print;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "current" `Quick test_interval_current;
          Alcotest.test_case "overlap/intersect" `Quick test_interval_overlap;
          Alcotest.test_case "subtract" `Quick test_interval_subtract;
          Alcotest.test_case "coalesce" `Quick test_coalesce;
          Alcotest.test_case "duration" `Quick test_interval_duration;
          Alcotest.test_case "min/max" `Quick test_timestamp_min_max;
          QCheck_alcotest.to_alcotest prop_coalesce_invariants;
        ] );
      ("clock", [Alcotest.test_case "monotonic clock" `Quick test_clock]);
    ]
