module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
open Txq_vxml

let xml_testable = Alcotest.testable Print.pp Xml.equal

let parse s = Parse.parse_exn s

let vnode_of_string s =
  let gen = Xid.Gen.create () in
  Vnode.of_xml gen (parse s)

let guide_v0 =
  "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"

(* --- Vnode ------------------------------------------------------------ *)

let test_vnode_of_to_xml () =
  let v = vnode_of_string guide_v0 in
  Alcotest.check xml_testable "to_xml inverts of_xml" (parse guide_v0)
    (Vnode.to_xml v);
  Alcotest.(check int) "size" 6 (Vnode.size v)

let test_vnode_fresh_xids () =
  let v = vnode_of_string guide_v0 in
  let ids = List.map Xid.to_int (Vnode.xids v) in
  Alcotest.(check (list int)) "document-order ids" [1; 2; 3; 4; 5; 6] ids

let test_vnode_find () =
  let v = vnode_of_string guide_v0 in
  (match Vnode.find v (Xid.of_int 3) with
   | Some node ->
     Alcotest.(check (option string)) "find name elem" (Some "name")
       (Vnode.tag node)
   | None -> Alcotest.fail "xid 3 not found");
  Alcotest.(check bool) "missing xid" true (Vnode.find v (Xid.of_int 99) = None)

let test_deep_equal_ignores_xids () =
  let a = vnode_of_string guide_v0 and b = vnode_of_string guide_v0 in
  Alcotest.(check bool) "deep_equal" true (Vnode.deep_equal a b);
  Alcotest.(check bool) "equal_with_xids" true (Vnode.equal_with_xids a b);
  let gen = Xid.Gen.create () in
  ignore (Xid.Gen.next gen);
  let c = Vnode.of_xml gen (parse guide_v0) in
  Alcotest.(check bool) "shifted xids still deep_equal" true (Vnode.deep_equal a c);
  Alcotest.(check bool) "shifted xids not identical" false
    (Vnode.equal_with_xids a c)

let test_structural_hash () =
  let a = vnode_of_string guide_v0 and b = vnode_of_string guide_v0 in
  Alcotest.(check int) "equal trees hash equal" (Vnode.structural_hash a)
    (Vnode.structural_hash b);
  let c =
    vnode_of_string
      "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>"
  in
  Alcotest.(check bool) "different trees (very likely) differ" true
    (Vnode.structural_hash a <> Vnode.structural_hash c)

let test_attr_order_insignificant () =
  let a = vnode_of_string "<r a=\"1\" b=\"2\"/>"
  and b = vnode_of_string "<r b=\"2\" a=\"1\"/>" in
  Alcotest.(check bool) "deep_equal across attr order" true (Vnode.deep_equal a b);
  Alcotest.(check int) "hash across attr order" (Vnode.structural_hash a)
    (Vnode.structural_hash b)

let test_occurrences () =
  let v = vnode_of_string guide_v0 in
  let occs = Vnode.occurrences v in
  let find word =
    List.find_opt (fun o -> String.equal o.Vnode.occ_word word) occs
  in
  (match find "guide" with
   | Some o ->
     Alcotest.(check bool) "tag kind" true (o.Vnode.occ_kind = Vnode.Tag);
     Alcotest.(check int) "root path length" 1 (Array.length o.Vnode.occ_path)
   | None -> Alcotest.fail "guide occurrence missing");
  (match find "Napoli" with
   | Some o ->
     Alcotest.(check bool) "word kind" true (o.Vnode.occ_kind = Vnode.Word);
     (* word path = enclosing element (name): guide/restaurant/name *)
     Alcotest.(check int) "word path depth" 3 (Array.length o.Vnode.occ_path)
   | None -> Alcotest.fail "Napoli occurrence missing")

(* --- Xidpath ---------------------------------------------------------- *)

let p ids = Array.of_list (List.map Xid.of_int ids)

let test_xidpath_relations () =
  Alcotest.(check bool) "parent" true (Xidpath.is_parent (p [1; 2]) (p [1; 2; 3]));
  Alcotest.(check bool) "not parent (depth 2)" false
    (Xidpath.is_parent (p [1]) (p [1; 2; 3]));
  Alcotest.(check bool) "ancestor" true
    (Xidpath.is_strict_prefix (p [1]) (p [1; 2; 3]));
  Alcotest.(check bool) "self not strict" false
    (Xidpath.is_strict_prefix (p [1; 2]) (p [1; 2]));
  Alcotest.(check bool) "prefix includes self" true
    (Xidpath.is_prefix (p [1; 2]) (p [1; 2]));
  Alcotest.(check bool) "diverging" false (Xidpath.is_prefix (p [1; 3]) (p [1; 2; 3]))

let test_xidpath_order () =
  Alcotest.(check bool) "prefix sorts first" true
    (Xidpath.compare (p [1; 2]) (p [1; 2; 3]) < 0);
  Alcotest.(check bool) "sibling order" true
    (Xidpath.compare (p [1; 2]) (p [1; 3]) < 0)

(* --- Xidmap ----------------------------------------------------------- *)

let test_xidmap_roundtrip () =
  let v = vnode_of_string guide_v0 in
  let m = Xidmap.of_vnode v in
  Alcotest.(check bool) "to_vnode inverts of_vnode" true
    (Vnode.equal_with_xids v (Xidmap.to_vnode m));
  Alcotest.(check int) "size" 6 (Xidmap.size m)

let test_xidmap_surgery () =
  let v = vnode_of_string "<a><b/><c/></a>" in
  let m = Xidmap.of_vnode v in
  let root = Xidmap.root m in
  let b = Xid.of_int 2 and c = Xid.of_int 3 in
  (* insert d after b *)
  let d = Vnode.Elem { xid = Xid.of_int 10; tag = "d"; attrs = []; children = [] } in
  Xidmap.insert_tree m ~parent:root ~after:(Some b) d;
  Alcotest.(check (list int)) "insert after b"
    [2; 10; 3]
    (List.map Xid.to_int (Xidmap.children m root));
  (* move c first *)
  Xidmap.move m c ~parent:root ~after:None;
  Alcotest.(check (list int)) "move c first"
    [3; 2; 10]
    (List.map Xid.to_int (Xidmap.children m root));
  (* delete b *)
  let removed = Xidmap.delete_subtree m b in
  Alcotest.(check int) "removed b" 2 (Xid.to_int (Vnode.xid removed));
  Alcotest.(check (list int)) "after delete" [3; 10]
    (List.map Xid.to_int (Xidmap.children m root));
  Alcotest.(check bool) "b gone" false (Xidmap.mem m b)

let test_xidmap_guards () =
  let v = vnode_of_string "<a><b><c/></b></a>" in
  let m = Xidmap.of_vnode v in
  let b = Xid.of_int 2 and c = Xid.of_int 3 in
  Alcotest.check_raises "moving under own descendant"
    (Invalid_argument "Xidmap.move: xid 2 is an ancestor of target parent 3")
    (fun () -> Xidmap.move m b ~parent:c ~after:None);
  Alcotest.check_raises "deleting root"
    (Invalid_argument "Xidmap.delete_subtree: cannot delete the root")
    (fun () -> ignore (Xidmap.delete_subtree m (Xidmap.root m)));
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Xidmap.insert_tree: xid 3 already present") (fun () ->
      Xidmap.insert_tree m ~parent:b ~after:None
        (Vnode.Elem { xid = c; tag = "x"; attrs = []; children = [] }))

let test_xidmap_text_and_attrs () =
  let v = vnode_of_string "<a k=\"1\">hello</a>" in
  let m = Xidmap.of_vnode v in
  let root = Xidmap.root m in
  let txt = Xid.of_int 2 in
  Xidmap.update_text m txt "bye";
  Xidmap.set_attr m root ~name:"k" ~value:(Some "2");
  Xidmap.set_attr m root ~name:"new" ~value:(Some "3");
  Xidmap.rename m root "z";
  let out = Vnode.to_xml (Xidmap.to_vnode m) in
  Alcotest.check xml_testable "combined surgery"
    (parse "<z k=\"2\" new=\"3\">bye</z>") out;
  Xidmap.set_attr m root ~name:"k" ~value:None;
  Alcotest.(check (option string)) "attr removed" None
    (Vnode.attr (Xidmap.to_vnode m) "k")

(* property: a random sequence of xidmap mutations keeps the map a
   well-formed tree (to_vnode round-trips, xid set consistent) *)
let prop_xidmap_random_surgery =
  QCheck.Test.make ~count:100 ~name:"xidmap: random surgery stays a tree"
    QCheck.(make Gen.(list_size (int_range 0 40) (pair (int_bound 5) (pair small_nat small_nat))))
    (fun ops ->
      let gen = Xid.Gen.create () in
      let root =
        Vnode.of_xml gen
          (Txq_xml.Parse.parse_exn "<root><a>x</a><b><c>y</c></b><d/></root>")
      in
      let m = Xidmap.of_vnode root in
      let all_xids () =
        Vnode.xids (Xidmap.to_vnode m)
      in
      let pick_xid k =
        let xs = all_xids () in
        List.nth xs (k mod List.length xs)
      in
      List.iter
        (fun (op, (a, b)) ->
          let target = pick_xid a in
          let is_root = Xid.equal target (Xidmap.root m) in
          try
            match op with
            | 0 ->
              (* insert a fresh leaf under some element *)
              let parent = pick_xid a in
              (match Xidmap.content m parent with
               | Xidmap.Element _ ->
                 Xidmap.insert_tree m ~parent ~after:None
                   (Vnode.Elem
                      { xid = Xid.Gen.next gen; tag = "n"; attrs = [];
                        children = [] })
               | Xidmap.Text _ -> ())
            | 1 -> if not is_root then ignore (Xidmap.delete_subtree m target)
            | 2 ->
              let dest = pick_xid b in
              (match Xidmap.content m dest with
               | Xidmap.Element _ when not is_root ->
                 (try Xidmap.move m target ~parent:dest ~after:None
                  with Invalid_argument _ -> () (* cycles rejected *))
               | _ -> ())
            | 3 -> (
              match Xidmap.content m target with
              | Xidmap.Text _ -> Xidmap.update_text m target "t"
              | Xidmap.Element _ -> Xidmap.rename m target "r")
            | 4 ->
              (match Xidmap.content m target with
               | Xidmap.Element _ ->
                 Xidmap.set_attr m target ~name:"k" ~value:(Some "v")
               | Xidmap.Text _ -> ())
            | _ ->
              (match Xidmap.content m target with
               | Xidmap.Element _ -> Xidmap.set_attr m target ~name:"k" ~value:None
               | Xidmap.Text _ -> ())
          with Invalid_argument _ -> () (* structurally rejected op: fine *))
        ops;
      (* invariants: the materialized tree round-trips and sizes agree *)
      let v = Xidmap.to_vnode m in
      let ids = Vnode.xids v in
      List.length ids = Xidmap.size m
      && List.length (List.sort_uniq Xid.compare ids) = List.length ids
      && Vnode.equal_with_xids v (Xidmap.to_vnode (Xidmap.of_vnode v)))

(* --- Codec ------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let v = vnode_of_string guide_v0 in
  match Codec.decode (Codec.encode v) with
  | Ok v' ->
    Alcotest.(check bool) "xids preserved" true (Vnode.equal_with_xids v v')
  | Error e -> Alcotest.fail e

let test_codec_corrupt () =
  List.iter
    (fun s ->
      match Codec.decode s with
      | Ok _ -> Alcotest.failf "expected decode failure for %S" s
      | Error _ -> ())
    [
      "<a/>" (* missing _xid *);
      "<a _xid=\"x\"/>" (* malformed xid *);
      "<a _xid=\"1\">orphan text</a>" (* text without _tx *);
      "<a _xid=\"1\" _tx=\"2 3\">one</a>" (* too many text xids *);
      "not xml at all";
    ]

let prop_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"codec roundtrip (random docs)"
    Txq_test_support.Gen_xml.arb_doc (fun doc ->
      let gen = Xid.Gen.create () in
      let v = Vnode.of_xml gen doc in
      match Codec.decode (Codec.encode v) with
      | Ok v' -> Vnode.equal_with_xids v v'
      | Error _ -> false)

(* --- Delta ------------------------------------------------------------ *)

let test_delta_invert_involution () =
  let tree = vnode_of_string "<x/>" in
  let d =
    Delta.make ~from_version:3 ~to_version:4
      [
        Delta.Insert { parent = Xid.of_int 1; after = None; tree };
        Delta.Update { xid = Xid.of_int 2; old_text = "a"; new_text = "b" };
        Delta.Move
          {
            xid = Xid.of_int 5;
            old_parent = Xid.of_int 1;
            old_after = None;
            new_parent = Xid.of_int 2;
            new_after = Some (Xid.of_int 3);
          };
      ]
  in
  let d'' = Delta.invert (Delta.invert d) in
  Alcotest.(check int) "from" 3 d''.Delta.from_version;
  Alcotest.(check int) "to" 4 d''.Delta.to_version;
  Alcotest.(check string) "ops identical" (Delta.encode d) (Delta.encode d'')

let test_delta_xml_roundtrip () =
  let tree = vnode_of_string "<r k=\"v\"><s>txt</s></r>" in
  let d =
    Delta.make ~from_version:0 ~to_version:1
      [
        Delta.Insert { parent = Xid.of_int 9; after = Some (Xid.of_int 4); tree };
        Delta.Delete { parent = Xid.of_int 9; after = None; tree };
        Delta.Update { xid = Xid.of_int 2; old_text = "x<y&z"; new_text = "" };
        Delta.Rename { xid = Xid.of_int 3; old_tag = "a"; new_tag = "b" };
        Delta.Set_attr
          { xid = Xid.of_int 4; name = "k"; old_value = None; new_value = Some "v" };
        Delta.Set_attr
          { xid = Xid.of_int 4; name = "k"; old_value = Some "v"; new_value = None };
        Delta.Move
          {
            xid = Xid.of_int 5;
            old_parent = Xid.of_int 1;
            old_after = None;
            new_parent = Xid.of_int 2;
            new_after = Some (Xid.of_int 3);
          };
      ]
  in
  match Delta.decode (Delta.encode d) with
  | Error e -> Alcotest.fail e
  | Ok d' -> Alcotest.(check string) "stable encoding" (Delta.encode d) (Delta.encode d')

let test_delta_tracked_xids () =
  let tree = vnode_of_string "<r><s/></r>" in
  let d =
    Delta.make ~from_version:0 ~to_version:1
      [
        Delta.Insert { parent = Xid.of_int 9; after = None; tree };
        Delta.Delete
          {
            parent = Xid.of_int 9;
            after = None;
            tree = vnode_of_string "<q>dead</q>";
          };
      ]
  in
  Alcotest.(check (list int)) "inserted" [1; 2]
    (List.map Xid.to_int (Delta.inserted_xids d));
  Alcotest.(check (list int)) "deleted" [1; 2]
    (List.map Xid.to_int (Delta.deleted_xids d))

(* --- Diff ------------------------------------------------------------- *)

let diff_pair old_s new_s =
  let gen = Xid.Gen.create () in
  let old_v = Vnode.of_xml gen (parse old_s) in
  let delta, new_v = Diff.diff ~gen ~old_tree:old_v ~new_tree:(parse new_s) in
  (old_v, delta, new_v)

let check_diff ?max_ops old_s new_s =
  let old_v, delta, new_v = diff_pair old_s new_s in
  (* forward: old + delta = new *)
  let work = Xidmap.of_vnode old_v in
  Delta.apply_forward work delta;
  Alcotest.(check bool)
    (Printf.sprintf "forward apply reaches new (%s -> %s)" old_s new_s)
    true
    (Vnode.equal_with_xids (Xidmap.to_vnode work) new_v);
  Alcotest.check xml_testable "new version content" (Xml.normalize (parse new_s))
    (Vnode.to_xml new_v);
  (* backward: new - delta = old, exactly, including xids *)
  let work = Xidmap.of_vnode new_v in
  Delta.apply_backward work delta;
  Alcotest.(check bool) "backward apply restores old" true
    (Vnode.equal_with_xids (Xidmap.to_vnode work) old_v);
  match max_ops with
  | Some n ->
    Alcotest.(check bool)
      (Printf.sprintf "script size %d <= %d" (Delta.op_count delta) n)
      true
      (Delta.op_count delta <= n)
  | None -> ()

let test_diff_identity () =
  let _, delta, _ = diff_pair guide_v0 guide_v0 in
  Alcotest.(check int) "empty delta" 0 (Delta.op_count delta)

let test_diff_text_update () =
  check_diff ~max_ops:1
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"
    "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>"

let test_diff_insert_element () =
  check_diff ~max_ops:1
    "<guide><restaurant><name>Napoli</name></restaurant></guide>"
    "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"

let test_diff_delete_element () =
  check_diff ~max_ops:1
    "<guide><r1><name>Napoli</name></r1><r2><name>Akropolis</name></r2></guide>"
    "<guide><r1><name>Napoli</name></r1></guide>"

let test_diff_rename () =
  check_diff ~max_ops:1 "<guide><price>15</price></guide>"
    "<guide><cost>15</cost></guide>"

let test_diff_attr_change () =
  check_diff ~max_ops:3 "<guide><r id=\"1\" a=\"x\"/></guide>"
    "<guide><r id=\"2\" b=\"y\"/></guide>"

let test_diff_move_detected () =
  (* a large unchanged subtree relocated: must be a move, not delete+insert *)
  let big = "<r><name>Napoli Ristorante</name><price>15</price><addr>Via Roma 1</addr></r>" in
  let old_s = Printf.sprintf "<guide><top>%s</top><rest/></guide>" big in
  let new_s = Printf.sprintf "<guide><top/><rest>%s</rest></guide>" big in
  let _, delta, _ = diff_pair old_s new_s in
  let moves =
    List.filter (function Delta.Move _ -> true | _ -> false) delta.Delta.ops
  in
  Alcotest.(check int) "exactly one move" 1 (List.length moves);
  check_diff old_s new_s

let test_diff_sibling_swap () =
  check_diff ~max_ops:2 "<g><a>1</a><b>2</b></g>" "<g><b>2</b><a>1</a></g>"

let test_diff_xids_persist () =
  let old_v, _, new_v =
    diff_pair
      "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"
      "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>"
  in
  (* The restaurant element and name keep their xids; only the price text
     changed (update in place, same xid too). *)
  let xid_of v path =
    let rec go v = function
      | [] -> Vnode.xid v
      | i :: rest -> go (List.nth (Vnode.children v) i) rest
    in
    go v path
  in
  Alcotest.(check int) "restaurant xid persists"
    (Xid.to_int (xid_of old_v [0]))
    (Xid.to_int (xid_of new_v [0]));
  Alcotest.(check int) "name xid persists"
    (Xid.to_int (xid_of old_v [0; 0]))
    (Xid.to_int (xid_of new_v [0; 0]))

let test_diff_fresh_xids_on_insert () =
  let old_v, _, new_v =
    diff_pair "<guide><a>x</a></guide>" "<guide><a>x</a><b>y</b></guide>"
  in
  let old_max =
    List.fold_left Stdlib.max 0 (List.map Xid.to_int (Vnode.xids old_v))
  in
  let b_elem = List.nth (Vnode.children new_v) 1 in
  Alcotest.(check bool) "inserted node got a fresh xid" true
    (Xid.to_int (Vnode.xid b_elem) > old_max)

let test_diff_root_changes () =
  check_diff "<a k=\"1\">x</a>" "<b k=\"2\">y</b>"

let prop_diff_roundtrip =
  QCheck.Test.make ~count:400 ~name:"diff/apply roundtrip (random evolutions)"
    Txq_test_support.Gen_xml.arb_doc_pair (fun (old_doc, new_doc) ->
      let gen = Xid.Gen.create () in
      let old_v = Vnode.of_xml gen old_doc in
      let delta, new_v = Diff.diff ~gen ~old_tree:old_v ~new_tree:new_doc in
      let fwd = Xidmap.of_vnode old_v in
      Delta.apply_forward fwd delta;
      let bwd = Xidmap.of_vnode new_v in
      Delta.apply_backward bwd delta;
      Vnode.equal_with_xids (Xidmap.to_vnode fwd) new_v
      && Xml.equal (Vnode.to_xml new_v) (Xml.normalize new_doc)
      && Vnode.equal_with_xids (Xidmap.to_vnode bwd) old_v)

let prop_diff_chain =
  QCheck.Test.make ~count:100 ~name:"delta chains replay whole histories"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:6)
    (fun (doc0, versions) ->
      let gen = Xid.Gen.create () in
      let v0 = Vnode.of_xml gen doc0 in
      let deltas, vlast =
        List.fold_left
          (fun (acc, prev) doc ->
            let delta, next = Diff.diff ~gen ~old_tree:prev ~new_tree:doc in
            (delta :: acc, next))
          ([], v0) versions
      in
      (* walk backward from the last version to the first *)
      let work = Xidmap.of_vnode vlast in
      List.iter (fun d -> Delta.apply_backward work d) deltas;
      Vnode.equal_with_xids (Xidmap.to_vnode work) v0)

let prop_diff_serialized_chain =
  QCheck.Test.make ~count:60
    ~name:"persisted deltas decode and still replay"
    (Txq_test_support.Gen_xml.arb_history ~max_versions:4)
    (fun (doc0, versions) ->
      let gen = Xid.Gen.create () in
      let v0 = Vnode.of_xml gen doc0 in
      let deltas, vlast =
        List.fold_left
          (fun (acc, prev) doc ->
            let delta, next = Diff.diff ~gen ~old_tree:prev ~new_tree:doc in
            (Delta.encode delta :: acc, next))
          ([], v0) versions
      in
      let work = Xidmap.of_vnode (Codec.decode_exn (Codec.encode vlast)) in
      List.iter (fun s -> Delta.apply_backward work (Delta.decode_exn s)) deltas;
      Vnode.equal_with_xids (Xidmap.to_vnode work) v0)

let () =
  Alcotest.run "vxml"
    [
      ( "vnode",
        [
          Alcotest.test_case "of_xml/to_xml" `Quick test_vnode_of_to_xml;
          Alcotest.test_case "fresh xids" `Quick test_vnode_fresh_xids;
          Alcotest.test_case "find" `Quick test_vnode_find;
          Alcotest.test_case "deep equality" `Quick test_deep_equal_ignores_xids;
          Alcotest.test_case "structural hash" `Quick test_structural_hash;
          Alcotest.test_case "attr order" `Quick test_attr_order_insignificant;
          Alcotest.test_case "occurrences" `Quick test_occurrences;
        ] );
      ( "xidpath",
        [
          Alcotest.test_case "relations" `Quick test_xidpath_relations;
          Alcotest.test_case "ordering" `Quick test_xidpath_order;
        ] );
      ( "xidmap",
        [
          Alcotest.test_case "roundtrip" `Quick test_xidmap_roundtrip;
          Alcotest.test_case "surgery" `Quick test_xidmap_surgery;
          Alcotest.test_case "guards" `Quick test_xidmap_guards;
          Alcotest.test_case "text and attrs" `Quick test_xidmap_text_and_attrs;
          QCheck_alcotest.to_alcotest prop_xidmap_random_surgery;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "corrupt input" `Quick test_codec_corrupt;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
      ( "delta",
        [
          Alcotest.test_case "invert involution" `Quick test_delta_invert_involution;
          Alcotest.test_case "xml roundtrip" `Quick test_delta_xml_roundtrip;
          Alcotest.test_case "tracked xids" `Quick test_delta_tracked_xids;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "text update" `Quick test_diff_text_update;
          Alcotest.test_case "insert" `Quick test_diff_insert_element;
          Alcotest.test_case "delete" `Quick test_diff_delete_element;
          Alcotest.test_case "rename" `Quick test_diff_rename;
          Alcotest.test_case "attributes" `Quick test_diff_attr_change;
          Alcotest.test_case "move detection" `Quick test_diff_move_detected;
          Alcotest.test_case "sibling swap" `Quick test_diff_sibling_swap;
          Alcotest.test_case "xids persist" `Quick test_diff_xids_persist;
          Alcotest.test_case "fresh xids" `Quick test_diff_fresh_xids_on_insert;
          Alcotest.test_case "root changes" `Quick test_diff_root_changes;
          QCheck_alcotest.to_alcotest prop_diff_roundtrip;
          QCheck_alcotest.to_alcotest prop_diff_chain;
          QCheck_alcotest.to_alcotest prop_diff_serialized_chain;
        ] );
    ]
