module Xml = Txq_xml.Xml
open Txq_workload

(* --- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true (seq a <> seq c)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    let f = Rng.float r in
    Alcotest.(check bool) "unit interval" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_split_independent () =
  let r = Rng.create ~seed:5 in
  let child = Rng.split r in
  let a = List.init 5 (fun _ -> Rng.int r 100) in
  let b = List.init 5 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:9 in
  let arr = Array.init 30 Fun.id in
  Rng.shuffle r arr;
  Alcotest.(check (list int)) "same multiset"
    (List.init 30 Fun.id)
    (List.sort Int.compare (Array.to_list arr))

(* --- vocab -------------------------------------------------------------- *)

let test_vocab_zipf_skew () =
  let r = Rng.create ~seed:3 in
  let v = Vocab.create ~size:100 ~exponent:1.2 r in
  let counts = Hashtbl.create 128 in
  for _ = 1 to 5000 do
    let w = Vocab.word v in
    Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
  done;
  let freqs = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let max_freq = List.fold_left Stdlib.max 0 freqs in
  Alcotest.(check bool) "head word dominates (zipf)" true
    (max_freq > 5000 / 10);
  Alcotest.(check bool) "long tail exists" true (Hashtbl.length counts > 20)

let test_vocab_words_sentence () =
  let r = Rng.create ~seed:4 in
  let v = Vocab.create ~size:50 r in
  let sentence = Vocab.words v 7 in
  Alcotest.(check int) "7 words" 7
    (List.length (String.split_on_char ' ' sentence))

(* --- restaurant corpus --------------------------------------------------- *)

let mk_gen ?params seed =
  let r = Rng.create ~seed in
  let v = Vocab.create ~size:200 (Rng.split r) in
  Restaurant.create ?params ~vocab:v (Rng.split r)

let test_restaurant_initial_shape () =
  let gen = mk_gen 42 in
  let doc = Restaurant.initial gen in
  Alcotest.(check (option string)) "root" (Some "guide") (Xml.tag doc);
  let restaurants = Xml.find_children doc "restaurant" in
  Alcotest.(check int) "default count" 20 (List.length restaurants);
  List.iter
    (fun r ->
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (Printf.sprintf "has %s" field)
            true
            (Xml.find_child r field <> None))
        ["name"; "price"; "address"; "cuisine"; "rating"; "review"])
    restaurants;
  (* the known query target is present *)
  Alcotest.(check bool) "known name present" true
    (List.exists
       (fun r ->
         match Xml.find_child r "name" with
         | Some n -> String.equal (Xml.text_content n) (Restaurant.known_name gen)
         | None -> false)
       restaurants)

let test_restaurant_evolution_valid () =
  let gen = mk_gen 7 in
  let rec steps doc k =
    if k = 0 then ()
    else begin
      let next = Restaurant.evolve gen doc in
      Alcotest.(check (option string)) "root stays guide" (Some "guide")
        (Xml.tag next);
      Alcotest.(check bool) "normalized" true (Xml.is_normalized (Xml.normalize next));
      Alcotest.(check bool) "ingestible" true
        (Result.is_ok (Txq_vxml.Codec.check_plain next));
      steps next (k - 1)
    end
  in
  steps (Restaurant.initial gen) 15

let test_change_rate_scales () =
  let churn rate =
    let params = Restaurant.change_rate rate in
    params.Restaurant.p_price_update
  in
  Alcotest.(check bool) "0 rate, no churn" true (churn 0.0 = 0.0);
  Alcotest.(check bool) "monotone" true (churn 0.5 < churn 2.0);
  Alcotest.(check bool) "clamped at 1" true (churn 100.0 <= 1.0)

(* --- news corpus ----------------------------------------------------------- *)

let test_news_article_shape () =
  let r = Rng.create ~seed:11 in
  let v = Vocab.create ~size:100 (Rng.split r) in
  let gen = News.create ~vocab:v (Rng.split r) in
  let published = Txq_temporal.Timestamp.of_string "01/06/2001" in
  let article = News.article gen ~topic:"science" ~published in
  Alcotest.(check (option string)) "root" (Some "article") (Xml.tag article);
  (match Txq_xml.Path.select_from_children
           (Txq_xml.Path.parse_exn "/meta/published") article
   with
   | [node] ->
     Alcotest.(check string) "document time embedded" "01/06/2001"
       (Xml.text_content node)
   | _ -> Alcotest.fail "expected one <published>");
  let revised = News.revise gen article in
  Alcotest.(check (option string)) "revision keeps root" (Some "article")
    (Xml.tag revised);
  (match Txq_xml.Path.select_from_children
           (Txq_xml.Path.parse_exn "/meta/published") revised
   with
   | [node] ->
     Alcotest.(check string) "document time survives revisions" "01/06/2001"
       (Xml.text_content node)
   | _ -> Alcotest.fail "published lost")

(* --- loader ------------------------------------------------------------------ *)

let small_spec =
  { Load.default_spec with Load.documents = 3; versions = 5 }

let test_loader_builds () =
  let db = Load.load_db small_spec in
  Alcotest.(check int) "documents" 3 (Txq_db.Db.document_count db);
  List.iter
    (fun id ->
      Alcotest.(check int) "versions" 5
        (Txq_db.Docstore.version_count (Txq_db.Db.doc db id)))
    (Txq_db.Db.doc_ids db)

let test_loader_deterministic () =
  let db1 = Load.load_db small_spec and db2 = Load.load_db small_spec in
  List.iter2
    (fun a b ->
      let ta = Txq_db.Docstore.current (Txq_db.Db.doc db1 a) in
      let tb = Txq_db.Docstore.current (Txq_db.Db.doc db2 b) in
      Alcotest.(check bool) "identical current content" true
        (Txq_vxml.Vnode.equal_with_xids ta tb))
    (Txq_db.Db.doc_ids db1) (Txq_db.Db.doc_ids db2)

let test_loader_db_equals_stratum () =
  let db, stratum = Load.load_both small_spec in
  (* the same bytes went into both stores: snapshot query agrees *)
  let mid = Txq_temporal.Timestamp.to_string (Load.midpoint_ts small_spec) in
  let q =
    Printf.sprintf {|SELECT COUNT(R) FROM doc("%s")[%s]/guide/restaurant R|}
      (Load.url_of 1) mid
  in
  let a = Txq_query.Exec.run_string_exn db q in
  match Txq_query.Stratum.run_string stratum q with
  | Ok b ->
    Alcotest.(check string) "same count" (Txq_xml.Print.to_string a)
      (Txq_xml.Print.to_string b)
  | Error e -> Alcotest.fail (Txq_query.Exec.error_to_string e)

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "vocab",
        [
          Alcotest.test_case "zipf skew" `Quick test_vocab_zipf_skew;
          Alcotest.test_case "sentences" `Quick test_vocab_words_sentence;
        ] );
      ( "restaurant",
        [
          Alcotest.test_case "initial shape" `Quick test_restaurant_initial_shape;
          Alcotest.test_case "evolution stays valid" `Quick
            test_restaurant_evolution_valid;
          Alcotest.test_case "change rate" `Quick test_change_rate_scales;
        ] );
      ("news", [Alcotest.test_case "article shape" `Quick test_news_article_shape]);
      ( "loader",
        [
          Alcotest.test_case "builds" `Quick test_loader_builds;
          Alcotest.test_case "deterministic" `Quick test_loader_deterministic;
          Alcotest.test_case "db ≡ stratum ingestion" `Quick
            test_loader_db_equals_stratum;
        ] );
    ]
