module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Path = Txq_xml.Path

let xml_testable = Alcotest.testable Print.pp Xml.equal

let restaurant =
  Xml.element "restaurant"
    [
      Xml.element "name" [Xml.text "Napoli"];
      Xml.element "price" [Xml.text "15"];
    ]

(* --- tree accessors --------------------------------------------------- *)

let test_accessors () =
  Alcotest.(check (option string)) "tag" (Some "restaurant") (Xml.tag restaurant);
  Alcotest.(check int) "size" 5 (Xml.size restaurant);
  Alcotest.(check int) "depth" 3 (Xml.depth restaurant);
  Alcotest.(check string) "text_content" "Napoli15" (Xml.text_content restaurant);
  Alcotest.(check (option string))
    "find_child + text" (Some "Napoli")
    (Option.map Xml.text_content (Xml.find_child restaurant "name"));
  Alcotest.(check (option string)) "missing child" None
    (Option.map Xml.text_content (Xml.find_child restaurant "owner"))

let test_attr () =
  let e = Xml.element ~attrs:[("id", "r1"); ("lang", "it")] "r" [] in
  Alcotest.(check (option string)) "attr" (Some "it") (Xml.attr e "lang");
  Alcotest.(check (option string)) "absent" None (Xml.attr e "kind")

let test_equal () =
  Alcotest.(check bool) "deep equal" true (Xml.equal restaurant restaurant);
  let other =
    Xml.element "restaurant"
      [
        Xml.element "name" [Xml.text "Napoli"];
        Xml.element "price" [Xml.text "18"];
      ]
  in
  Alcotest.(check bool) "deep differ" false (Xml.equal restaurant other);
  Alcotest.(check bool) "shallow equal ignores children" true
    (Xml.shallow_equal restaurant other)

let test_words () =
  Alcotest.(check (list string))
    "all words including element names"
    ["restaurant"; "name"; "Napoli"; "price"; "15"]
    (Xml.words restaurant);
  let e = Xml.element ~attrs:[("lang", "it spoken")] "r" [Xml.text "a, b. c"] in
  Alcotest.(check (list string))
    "attributes and punctuation-split text"
    ["r"; "lang"; "it"; "spoken"; "a"; "b"; "c"]
    (Xml.words e)

(* --- parser ----------------------------------------------------------- *)

let parse_ok s = Parse.parse_exn s

let test_parse_simple () =
  Alcotest.check xml_testable "simple"
    restaurant
    (parse_ok "<restaurant><name>Napoli</name><price>15</price></restaurant>")

let test_parse_attrs () =
  let got = parse_ok {|<r id="1" lang='it'/>|} in
  Alcotest.(check (option string)) "double-quoted" (Some "1") (Xml.attr got "id");
  Alcotest.(check (option string)) "single-quoted" (Some "it") (Xml.attr got "lang")

let test_parse_entities () =
  let got = parse_ok "<t a=\"x&quot;y\">a &lt;&amp;&gt; b &#65;&#x42;</t>" in
  Alcotest.(check string) "text entities" "a <&> b AB" (Xml.text_content got);
  Alcotest.(check (option string)) "attr entities" (Some "x\"y") (Xml.attr got "a")

let test_parse_prolog () =
  let got =
    parse_ok
      "<?xml version=\"1.0\"?><!DOCTYPE note><!-- hi --><note>x</note><!-- bye -->"
  in
  Alcotest.(check (option string)) "root" (Some "note") (Xml.tag got)

let test_parse_cdata () =
  let got = parse_ok "<t><![CDATA[a <raw> & b]]></t>" in
  Alcotest.(check string) "cdata" "a <raw> & b" (Xml.text_content got)

let test_parse_whitespace () =
  let got = parse_ok "<a>\n  <b>x</b>\n</a>" in
  Alcotest.(check int) "whitespace-only text dropped" 1
    (List.length (Xml.children got));
  let kept = Parse.parse_exn ~keep_whitespace:true "<a>\n  <b>x</b>\n</a>" in
  Alcotest.(check int) "kept when asked" 3 (List.length (Xml.children kept))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Parse.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [
      "";
      "<a>";
      "<a></b>";
      "<a><b></a></b>";
      "plain text";
      "<a>&unknown;</a>";
      "<a attr></a>";
      "<a>x</a><b/>";
      "<a x=\"1\" x=\"2\"";
    ]

let test_error_position () =
  match Parse.parse "<a>\n<b></c>\n</a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line number" 2 e.Parse.line

(* --- printer ---------------------------------------------------------- *)

let test_print_escapes () =
  let e = Xml.element ~attrs:[("a", "x\"<y")] "t" [Xml.text "a <&> b"] in
  Alcotest.(check string)
    "escaped" "<t a=\"x&quot;&lt;y\">a &lt;&amp;&gt; b</t>" (Print.to_string e)

let test_print_empty () =
  Alcotest.(check string) "self-closing" "<empty/>"
    (Print.to_string (Xml.element "empty" []))

let test_pretty () =
  let s = Print.to_pretty restaurant in
  Alcotest.(check bool) "one line per leaf element" true
    (String.length s > 0
    && List.length (String.split_on_char '\n' (String.trim s)) = 4)

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print/parse roundtrip"
    Txq_test_support.Gen_xml.arb_doc (fun doc ->
      Xml.equal doc (Parse.parse_exn (Print.to_string doc)))

(* --- paths ------------------------------------------------------------ *)

let guide =
  parse_ok
    {|<guide>
        <restaurant><name>Napoli</name><price>15</price></restaurant>
        <restaurant><name>Akropolis</name><price>13</price></restaurant>
        <bar><name>Rex</name><menu><price>9</price></menu></bar>
      </guide>|}

let select s = Path.select (Path.parse_exn s) guide
let texts nodes = List.map Xml.text_content nodes

let test_path_child () =
  Alcotest.(check (list string))
    "child steps" ["Napoli"; "Akropolis"]
    (texts (select "/guide/restaurant/name"))

let test_path_descendant () =
  Alcotest.(check (list string))
    "descendant step" ["15"; "13"; "9"]
    (texts (select "//price"));
  Alcotest.(check (list string))
    "descendant below child" ["9"]
    (texts (select "/guide/bar//price"))

let test_path_wildcard () =
  Alcotest.(check int) "wildcard counts children" 3
    (List.length (select "/guide/*"))

let test_path_root_semantics () =
  Alcotest.(check int) "first step names the root" 1
    (List.length (select "/guide"));
  Alcotest.(check int) "mismatched root" 0 (List.length (select "/other"))

let test_path_parse_errors () =
  match Path.parse "/a//" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_path_to_string () =
  Alcotest.(check string) "roundtrip" "/a//b/c"
    (Path.to_string (Path.parse_exn "/a//b/c"))

let () =
  Alcotest.run "xml"
    [
      ( "tree",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "attributes" `Quick test_attr;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "words" `Quick test_words;
        ] );
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "attributes" `Quick test_parse_attrs;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "prolog" `Quick test_parse_prolog;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_error_position;
        ] );
      ( "print",
        [
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "empty element" `Quick test_print_empty;
          Alcotest.test_case "pretty" `Quick test_pretty;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "path",
        [
          Alcotest.test_case "child" `Quick test_path_child;
          Alcotest.test_case "descendant" `Quick test_path_descendant;
          Alcotest.test_case "wildcard" `Quick test_path_wildcard;
          Alcotest.test_case "root semantics" `Quick test_path_root_semantics;
          Alcotest.test_case "parse errors" `Quick test_path_parse_errors;
          Alcotest.test_case "to_string" `Quick test_path_to_string;
        ] );
    ]
