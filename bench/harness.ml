(* Timing and table utilities for the experiment harness. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1e6) (* microseconds *)

(* Median-of-runs wall time in microseconds. *)
let time_us ?(warmup = 2) ?(runs = 9) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples =
    Array.init runs (fun _ ->
        let _, us = time_once f in
        us)
  in
  Array.sort Float.compare samples;
  samples.(runs / 2)

let fmt_us us =
  if us < 1000.0 then Printf.sprintf "%.1f us" us
  else if us < 1_000_000.0 then Printf.sprintf "%.2f ms" (us /. 1000.0)
  else Printf.sprintf "%.2f s" (us /. 1_000_000.0)

let fmt_int n =
  (* thousands separators for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- machine-readable results ------------------------------------------ *)

(* Hand-rolled JSON writer: the container ships no JSON library and the
   output is write-only (consumed by scripts and EXPERIMENTS.md updates). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    write buf t;
    Buffer.contents buf
end

(* Every printed table is mirrored into the current experiment's JSON;
   experiments record raw (unformatted) numbers with [record_json]. *)
let json_tables : Json.t list ref = ref []
let json_extra : (string * Json.t) list ref = ref []

let record_json name v = json_extra := (name, v) :: !json_extra

(* Snapshot of the metrics registry: counters and gauges as numbers,
   histograms as count/sum plus the non-empty log2 buckets (each bucket a
   [lo, n] pair).  Included in every experiment's JSON so per-operator
   span latencies (span.<name>) ride along with the tables. *)
let metrics_json () =
  let module M = Txq_obs.Metrics in
  let nums kvs = List.map (fun (k, v) -> (k, Json.Int v)) kvs in
  let histo (name, h) =
    let bs = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then
          bs := Json.Arr [Json.Float (M.bucket_lo i); Json.Int n] :: !bs)
      h.M.h_buckets;
    ( name,
      Json.Obj
        [
          ("count", Json.Int h.M.h_count);
          ("sum", Json.Float h.M.h_sum);
          ("buckets", Json.Arr (List.rev !bs));
        ] )
  in
  Json.Obj
    [
      ("counters", Json.Obj (nums (M.counters ())));
      ("gauges", Json.Obj (nums (M.gauges ())));
      ("histograms", Json.Obj (List.map histo (M.histograms ())));
    ]

let write_json ~experiment =
  let obj =
    Json.Obj
      (("experiment", Json.Str experiment)
       :: ("tables", Json.Arr (List.rev !json_tables))
       :: List.rev !json_extra
       @ [("metrics", metrics_json ())])
  in
  json_tables := [];
  json_extra := [];
  (* scope the registry to one experiment so histograms don't bleed *)
  Txq_obs.Metrics.reset ();
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let oc = open_out path in
  output_string oc (Json.to_string obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] wrote %s\n" path

(* --- tables ------------------------------------------------------------ *)

let print_table ~title ~columns rows =
  json_tables :=
    Json.Obj
      [
        ("title", Json.Str title);
        ("columns", Json.Arr (List.map (fun c -> Json.Str c) columns));
        ( "rows",
          Json.Arr
            (List.map
               (fun r -> Json.Arr (List.map (fun c -> Json.Str c) r))
               rows) );
      ]
    :: !json_tables;
  let widths =
    Array.of_list
      (List.mapi
         (fun i col ->
           List.fold_left
             (fun w row -> Stdlib.max w (String.length (List.nth row i)))
             (String.length col) rows)
         columns)
  in
  let line c =
    print_string "+";
    Array.iter (fun w -> print_string (String.make (w + 2) c ^ "+")) widths;
    print_newline ()
  in
  let print_row cells =
    print_string "|";
    List.iteri
      (fun i cell -> Printf.printf " %-*s |" widths.(i) cell)
      cells;
    print_newline ()
  in
  Printf.printf "\n%s\n" title;
  line '-';
  print_row columns;
  line '=';
  List.iter print_row rows;
  line '-'

let section name note =
  Printf.printf "\n=== %s ===\n%s\n" name note

(* --- bechamel glue ------------------------------------------------------- *)

let bechamel_tests : Bechamel.Test.t list ref = ref []

let register_bechamel test = bechamel_tests := test :: !bechamel_tests

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[monotonic_clock] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  print_endline "\n=== Bechamel microbenchmarks (monotonic clock, ns/run) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [est] -> Printf.printf "  %-52s %14.1f ns\n" name est
          | Some _ | None -> Printf.printf "  %-52s (no estimate)\n" name)
        analyzed)
    (List.rev !bechamel_tests)
