(* Benchmark harness.

   The paper (EDBT 2002) publishes no quantitative evaluation; every
   experiment here operationalizes a performance claim or an open question
   stated in its text.  DESIGN.md Section 2 maps experiments to paper
   sections; EXPERIMENTS.md records expected-vs-measured outcomes.

   Usage:
     dune exec bench/main.exe                 # all experiment tables
     dune exec bench/main.exe -- e4 e5        # selected experiments
     dune exec bench/main.exe -- --bechamel   # also run microbenchmarks
     dune exec bench/main.exe -- e13 --smoke  # tiny workloads (CI)
     dune exec bench/main.exe -- e14 --smoke --check-overhead
                                              # fail if tracing overhead regresses
     dune exec bench/main.exe -- e1 --trace out.jsonl   # span stream

   Each executed experiment also writes BENCH_<name>.json: every printed
   table plus any raw counters the experiment records. *)

module Db = Txq_db.Db
module Config = Txq_db.Config
module Docstore = Txq_db.Docstore
module Timestamp = Txq_temporal.Timestamp
module Duration = Txq_temporal.Duration
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module Lifetime = Txq_core.Lifetime
module Nav = Txq_core.Nav
module Exec = Txq_query.Exec
module Stratum = Txq_query.Stratum
module Load = Txq_workload.Load
module Restaurant = Txq_workload.Restaurant
module Eid = Txq_vxml.Eid
module Vnode = Txq_vxml.Vnode
open Harness

(* --smoke shrinks workloads so CI can execute an experiment end-to-end *)
let smoke = ref false

let spec ?(seed = 42) ?(documents = 8) ?(versions = 12) ?(restaurants = 20)
    ?(rate = 1.0) () =
  {
    Load.seed;
    documents;
    versions;
    params = { (Restaurant.change_rate rate) with Restaurant.restaurants };
    commit_gap = Duration.hours 6;
  }

let url0 = Load.url_of 0

let run_q db q =
  match Exec.run_string db q with
  | Ok xml -> xml
  | Error e -> failwith (Exec.error_to_string e)

let run_s s q =
  match Stratum.run_string s q with
  | Ok xml -> xml
  | Error e -> failwith ("stratum: " ^ Exec.error_to_string e)

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  section "E1  Snapshot query: native TPatternScan vs stratum"
    "Paper anchor: Section 1 (stratum performance), Section 6.2 Q1.\n\
     Q1-style snapshot count at the history midpoint; document size sweeps.";
  let rows =
    List.map
      (fun restaurants ->
        let sp = spec ~documents:6 ~versions:12 ~restaurants () in
        let db, stratum = Load.load_both sp in
        let mid = Timestamp.to_string (Load.midpoint_ts sp) in
        let q =
          Printf.sprintf
            {|SELECT COUNT(R) FROM doc("%s")[%s]/guide/restaurant R|} url0 mid
        in
        let qsel =
          Printf.sprintf
            {|SELECT R/price FROM doc("%s")[%s]/guide/restaurant R WHERE R/name = "%s"|}
            url0 mid (Load.target_name sp)
        in
        let native = time_us (fun () -> run_q db q) in
        let native_sel = time_us (fun () -> run_q db qsel) in
        let strat = time_us (fun () -> run_s stratum q) in
        let strat_sel = time_us (fun () -> run_s stratum qsel) in
        [
          string_of_int restaurants;
          fmt_us native;
          fmt_us strat;
          Printf.sprintf "%.1fx" (strat /. native);
          fmt_us native_sel;
          fmt_us strat_sel;
        ])
      [10; 40; 160]
  in
  print_table ~title:"E1: snapshot query latency (midpoint of 12 versions)"
    ~columns:
      [
        "restaurants/doc"; "native COUNT"; "stratum COUNT"; "speedup";
        "native selective"; "stratum selective";
      ]
    rows;
  (* microbenchmark: the native snapshot scan itself *)
  let sp = spec ~documents:6 ~versions:12 ~restaurants:40 () in
  let db = Load.load_db sp in
  let mid = Load.midpoint_ts sp in
  let pattern = Pattern.of_path_exn "/guide/restaurant" in
  register_bechamel
    (Bechamel.Test.make ~name:"e1/tpattern_scan (40 rest, 12 v)"
       (Bechamel.Staged.stage (fun () -> Scan.tpattern_scan db pattern mid)))

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  section "E2  Aggregation without reconstruction"
    "Paper anchor: Section 6.2 Q2 - \"reconstruction of the documents is not\n\
     needed. This is important...\"  COUNT stays on the index; SUM(price)\n\
     must reconstruct every matched element.";
  let sp = spec ~documents:6 ~versions:16 ~restaurants:40 () in
  let db = Load.load_db sp in
  let mid = Timestamp.to_string (Load.midpoint_ts sp) in
  let q_count =
    Printf.sprintf {|SELECT COUNT(R) FROM doc("%s")[%s]/guide/restaurant R|}
      url0 mid
  in
  let q_sum =
    Printf.sprintf
      {|SELECT SUM(R/price) FROM doc("%s")[%s]/guide/restaurant R|} url0 mid
  in
  let measure q =
    Db.flush_cache db;
    Db.reset_io db;
    let us = time_us ~warmup:0 ~runs:1 (fun () -> run_q db q) in
    (us, (Db.stats db).Db.reconstructions, (Db.stats db).Db.deltas_read)
  in
  let c_us, c_rec, c_deltas = measure q_count in
  let s_us, s_rec, s_deltas = measure q_sum in
  print_table ~title:"E2: COUNT vs SUM at a midpoint snapshot (cold cache)"
    ~columns:["query"; "latency"; "reconstructions"; "deltas read"]
    [
      ["COUNT(R)"; fmt_us c_us; string_of_int c_rec; string_of_int c_deltas];
      ["SUM(R/price)"; fmt_us s_us; string_of_int s_rec; string_of_int s_deltas];
    ];
  register_bechamel
    (Bechamel.Test.make ~name:"e2/count_no_reconstruct"
       (Bechamel.Staged.stage (fun () -> run_q db q_count)))

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  section "E3  History query: TPatternScanAll vs stratum scan"
    "Paper anchor: Section 6.2 Q3 and Section 7.3.2, plus Section 8's call\n\
     for techniques that reduce delta retrievals.  Price history of one\n\
     restaurant over growing histories.  'naive' materializes every version\n\
     independently (the paper's DocHistory-then-filter algorithm, O(n^2)\n\
     delta reads); 'sweep' applies each delta backward once.";
  let rows =
    List.map
      (fun versions ->
        let sp = spec ~documents:3 ~versions ~restaurants:20 () in
        let q =
          Printf.sprintf
            {|SELECT TIME(R), R/price FROM doc("%s")[EVERY]/guide/restaurant R WHERE R/name = "%s"|}
            url0 (Load.target_name sp)
        in
        let db = Load.load_db sp in
        let stratum = Load.load_stratum sp in
        (* locate the target element once *)
        let pattern =
          Pattern.of_path_exn ~value:(Load.target_name sp)
            "/guide/restaurant/name"
        in
        let eid =
          match Scan.tpattern_scan_all db pattern with
          | b :: _ -> Scan.eid_of_binding b
          | [] -> failwith "E3: target not found"
        in
        let t1 = Timestamp.minus_infinity and t2 = Timestamp.plus_infinity in
        let deltas_of f =
          Db.flush_cache db;
          Db.reset_io db;
          ignore (f ());
          (Db.stats db).Db.deltas_read
        in
        let t_naive =
          time_us ~warmup:1 ~runs:3 (fun () ->
              Db.flush_cache db;
              Txq_core.History.element_history db eid ~t1 ~t2 ~distinct:true ())
        in
        let d_naive =
          deltas_of (fun () ->
              Txq_core.History.element_history db eid ~t1 ~t2 ~distinct:true ())
        in
        let t_sweep =
          time_us ~warmup:1 ~runs:3 (fun () ->
              Db.flush_cache db;
              run_q db q)
        in
        let d_sweep = deltas_of (fun () -> run_q db q) in
        let t_strat = time_us ~warmup:1 ~runs:3 (fun () -> run_s stratum q) in
        [
          string_of_int versions;
          Printf.sprintf "%s (%d deltas)" (fmt_us t_naive) d_naive;
          Printf.sprintf "%s (%d deltas)" (fmt_us t_sweep) d_sweep;
          fmt_us t_strat;
          Printf.sprintf "%.1fx" (t_strat /. t_sweep);
        ])
      [8; 32; 96]
  in
  print_table
    ~title:"E3: one element's full history (EVERY + name predicate, cold)"
    ~columns:
      ["versions"; "naive (per-paper)"; "sweep (full query)"; "stratum";
       "sweep speedup vs stratum"]
    rows;
  let sp = spec ~documents:3 ~versions:32 ~restaurants:20 () in
  let db = Load.load_db ~config:(Config.with_snapshots 8 Config.default) sp in
  let pattern =
    Pattern.of_path_exn ~value:(Load.target_name sp) "/guide/restaurant/name"
  in
  register_bechamel
    (Bechamel.Test.make ~name:"e3/tpattern_scan_all (32 v)"
       (Bechamel.Staged.stage (fun () -> Scan.tpattern_scan_all db pattern)))

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  section "E4  Reconstruct cost vs version age and snapshot spacing"
    "Paper anchor: Section 7.3.3 - \"With many deltas this can be very\n\
     expensive, but there is also the possibility of snapshot versions\".\n\
     One document, 128 versions; reconstruct at several ages.";
  let versions = 128 in
  let sp = spec ~documents:1 ~versions ~restaurants:40 () in
  let variants =
    [
      ("none", Config.default);
      ("k=32", Config.with_snapshots 32 Config.default);
      ("k=8", Config.with_snapshots 8 Config.default);
      ("k=2", Config.with_snapshots 2 Config.default);
    ]
  in
  (* probe ages off the snapshot grid so each variant's walk is visible *)
  let ages = [126; 100; 70; 33; 1] in
  let rows =
    List.concat_map
      (fun (label, config) ->
        let db = Load.load_db ~config sp in
        let doc = List.hd (Db.doc_ids db) in
        List.map
          (fun v ->
            Db.flush_cache db;
            Db.reset_io db;
            let us =
              time_us ~warmup:0 ~runs:3 (fun () ->
                  Db.flush_cache db;
                  Db.reconstruct db doc v)
            in
            let deltas = (Db.stats db).Db.deltas_read / 3 in
            [label; string_of_int v; string_of_int deltas; fmt_us us])
          ages)
      variants
  in
  print_table
    ~title:
      (Printf.sprintf "E4: Reconstruct(version) of a %d-version document"
         versions)
    ~columns:["snapshots"; "version"; "deltas applied"; "time (cold)"]
    rows;
  let db = Load.load_db sp in
  let doc = List.hd (Db.doc_ids db) in
  register_bechamel
    (Bechamel.Test.make ~name:"e4/reconstruct_oldest (128 deltas)"
       (Bechamel.Staged.stage (fun () ->
            Db.flush_cache db;
            Db.reconstruct db doc 0)))

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  section "E5  FTI alternatives A1/A2/A3"
    "Paper anchor: Section 7.2 - \"studying the relative performance of the\n\
     three alternatives is left as a topic for future research\".  A1 indexes\n\
     version contents, A2 indexes delta operations, A3 both.";
  let sp = spec ~documents:6 ~versions:24 ~restaurants:20 () in
  let mid = Timestamp.to_string (Load.midpoint_ts sp) in
  let build mode =
    let config = { Config.default with Config.fti_mode = mode } in
    let t0 = Unix.gettimeofday () in
    let db = Load.load_db ~config sp in
    let build_s = Unix.gettimeofday () -. t0 in
    (db, build_s)
  in
  let db_a1, build_a1 = build Config.Fti_versions in
  let db_a2, build_a2 = build Config.Fti_deltas in
  let db_a3, build_a3 = build Config.Fti_both in
  (* pick a word that was deleted somewhere, via the A3 delta index *)
  let deleted_word =
    let dfti = Db.delta_fti db_a3 in
    let candidates =
      Array.to_list Txq_workload.Vocab.restaurant_names
      |> List.concat_map (fun base ->
             List.init 60 (fun i -> Printf.sprintf "%s-%d" base (i + 1)))
    in
    match
      List.find_opt
        (fun w ->
          Txq_fti.Delta_fti.changes_of_kind dfti w Txq_fti.Delta_fti.Deleted
          <> [])
        candidates
    with
    | Some w -> w
    | None -> failwith "E5: workload produced no deletion; raise p_delete"
  in
  let snapshot_q =
    Printf.sprintf {|SELECT COUNT(R) FROM doc("%s")[%s]/guide/restaurant R|}
      url0 mid
  in
  (* change query: versions in which the word was deleted, across docs *)
  let change_a1 db () =
    let fti = Db.fti db in
    List.concat_map
      (fun doc ->
        List.filter_map
          (fun p ->
            if Txq_fti.Posting.is_open p then None
            else Some (doc, p.Txq_fti.Posting.vend))
          (Txq_fti.Fti.lookup_h_doc fti deleted_word ~doc))
      (Db.doc_ids db)
  in
  let change_a2 db () =
    List.map
      (fun e -> (e.Txq_fti.Delta_fti.ch_doc, e.Txq_fti.Delta_fti.ch_version))
      (Txq_fti.Delta_fti.changes_of_kind (Db.delta_fti db) deleted_word
         Txq_fti.Delta_fti.Deleted)
  in
  let index_size db =
    let fti_part =
      if Config.maintains_version_index (Db.config db) then
        Txq_fti.Fti.posting_count (Db.fti db)
      else 0
    in
    let dfti_part =
      if Config.maintains_delta_index (Db.config db) then
        Txq_fti.Delta_fti.entry_count (Db.delta_fti db)
      else 0
    in
    (fti_part, dfti_part)
  in
  let row name db build_s snapshot change =
    let p, e = index_size db in
    [
      name;
      Printf.sprintf "%.2f s" build_s;
      fmt_int p;
      fmt_int e;
      (match snapshot with
       | Some f -> fmt_us (time_us f)
       | None -> "n/a");
      fmt_us (time_us change);
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E5: index alternatives (6 docs x 24 versions; change query: deletions of %S)"
         deleted_word)
    ~columns:
      ["alternative"; "build"; "postings"; "delta entries"; "snapshot query";
       "change query"]
    [
      row "A1 versions" db_a1 build_a1
        (Some (fun () -> run_q db_a1 snapshot_q))
        (fun () -> change_a1 db_a1 ());
      row "A2 deltas" db_a2 build_a2 None (fun () -> change_a2 db_a2 ());
      row "A3 both" db_a3 build_a3
        (Some (fun () -> run_q db_a3 snapshot_q))
        (fun () -> change_a2 db_a3 ());
    ];
  register_bechamel
    (Bechamel.Test.make ~name:"e5/fti_lookup_h"
       (Bechamel.Staged.stage (fun () ->
            Txq_fti.Fti.lookup_h (Db.fti db_a1) "restaurant")))

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  section "E6  CreTime: delta traversal vs auxiliary index"
    "Paper anchor: Section 7.3.6 - traversal \"can easily become a\n\
     bottleneck if CreTime is a frequently used operator\"; the index makes\n\
     it a lookup.  Target: the document root (created in version 0, so the\n\
     traversal walks the whole chain).";
  let rows =
    List.map
      (fun versions ->
        let sp = spec ~documents:1 ~versions ~restaurants:20 () in
        let db = Load.load_db sp (* paged B+-tree index, the default *) in
        let db_mem =
          Load.load_db
            ~config:{ Config.default with Config.cretime_backing = `Memory }
            sp
        in
        let teid_of db =
          let doc = List.hd (Db.doc_ids db) in
          let d = Db.doc db doc in
          Eid.Temporal.make
            (Eid.make ~doc ~xid:(Vnode.xid (Docstore.current d)))
            (Docstore.ts_of_version d (versions - 1))
        in
        let teid = teid_of db and teid_mem = teid_of db_mem in
        let traverse_us =
          time_us (fun () ->
              Db.flush_cache db;
              Lifetime.cre_time db ~strategy:`Traverse teid)
        in
        let deltas = Lifetime.last_traverse_deltas () in
        let paged_us =
          time_us (fun () ->
              Db.flush_cache db;
              Lifetime.cre_time db ~strategy:`Index teid)
        in
        Db.flush_cache db;
        Txq_store.Io_stats.reset (Db.io_stats db);
        ignore (Lifetime.cre_time db ~strategy:`Index teid);
        let index_reads = (Db.io_stats db).Txq_store.Io_stats.page_reads in
        let memory_us =
          time_us (fun () -> Lifetime.cre_time db_mem ~strategy:`Index teid_mem)
        in
        [
          string_of_int versions;
          Printf.sprintf "%s (%d deltas)" (fmt_us traverse_us) deltas;
          Printf.sprintf "%s (%d page reads)" (fmt_us paged_us) index_reads;
          fmt_us memory_us;
          Printf.sprintf "%.0fx" (traverse_us /. Float.max paged_us 0.01);
        ])
      [16; 64; 192]
  in
  print_table ~title:"E6: CreTime of the oldest element (cold cache)"
    ~columns:
      ["versions"; "traverse"; "B+-tree index"; "memory index";
       "paged-index speedup"]
    rows;
  let sp = spec ~documents:1 ~versions:64 ~restaurants:20 () in
  let db = Load.load_db sp in
  let doc = List.hd (Db.doc_ids db) in
  let d = Db.doc db doc in
  let teid =
    Eid.Temporal.make
      (Eid.make ~doc ~xid:(Vnode.xid (Docstore.current d)))
      (Docstore.ts_of_version d 63)
  in
  register_bechamel
    (Bechamel.Test.make ~name:"e6/cretime_index"
       (Bechamel.Staged.stage (fun () ->
            Lifetime.cre_time db ~strategy:`Index teid)))

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  section "E7  Storage: full copies vs deltas vs deltas+snapshots"
    "Paper anchor: Section 1 - \"the cost of storing the complete document\n\
     versions can be too high\".  4 documents x 32 versions; change rate\n\
     scales the per-commit churn.";
  let rows =
    List.map
      (fun rate ->
        let sp = spec ~documents:4 ~versions:32 ~restaurants:30 ~rate () in
        let db = Load.load_db sp in
        let db_snap =
          Load.load_db ~config:(Config.with_snapshots 8 Config.default) sp
        in
        let stratum = Load.load_stratum sp in
        let native = Db.live_pages db in
        let native_snap = Db.live_pages db_snap in
        let strat = Stratum.stored_pages stratum in
        [
          Printf.sprintf "%.1f" rate;
          fmt_int native;
          fmt_int native_snap;
          fmt_int strat;
          Printf.sprintf "%.1fx" (float_of_int strat /. float_of_int native);
        ])
      [0.5; 1.0; 2.0; 4.0]
  in
  print_table ~title:"E7: live 4 KiB pages after 32 versions of 4 documents"
    ~columns:
      ["change rate"; "deltas only"; "deltas + snap k=8";
       "full copies (stratum)"; "full/delta ratio"]
    rows

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  section "E8  Diff and completed-delta application"
    "Paper anchor: Section 7.3.8 and the storage model of Section 7.1: the\n\
     commit path diffs each revision; completed deltas apply both ways.";
  let rng = Txq_workload.Rng.create ~seed:7 in
  let vocab = Txq_workload.Vocab.create (Txq_workload.Rng.split rng) in
  let rows =
    List.map
      (fun restaurants ->
        let params =
          { Restaurant.default_params with Restaurant.restaurants }
        in
        let gen =
          Restaurant.create ~params ~vocab (Txq_workload.Rng.split rng)
        in
        let xid_gen = Txq_vxml.Xid.Gen.create () in
        let v0 =
          Vnode.of_xml xid_gen (Txq_xml.Xml.normalize (Restaurant.initial gen))
        in
        let next = Restaurant.evolve gen (Vnode.to_xml v0) in
        let diff_us =
          time_us (fun () ->
              (* fresh generator per run so xids do not run away *)
              let g = Txq_vxml.Xid.Gen.create () in
              Txq_vxml.Xid.Gen.mark_used g (Option.get (Vnode.max_xid v0));
              Txq_vxml.Diff.diff ~gen:g ~old_tree:v0 ~new_tree:next)
        in
        let g = Txq_vxml.Xid.Gen.create () in
        Txq_vxml.Xid.Gen.mark_used g (Option.get (Vnode.max_xid v0));
        let delta, v1 =
          Txq_vxml.Diff.diff ~gen:g ~old_tree:v0 ~new_tree:next
        in
        let fwd_us =
          time_us (fun () ->
              let m = Txq_vxml.Xidmap.of_vnode v0 in
              Txq_vxml.Delta.apply_forward m delta)
        in
        let bwd_us =
          time_us (fun () ->
              let m = Txq_vxml.Xidmap.of_vnode v1 in
              Txq_vxml.Delta.apply_backward m delta)
        in
        let encoded = Txq_vxml.Delta.encode delta in
        [
          string_of_int restaurants;
          string_of_int (Vnode.size v0);
          fmt_us diff_us;
          string_of_int (Txq_vxml.Delta.op_count delta);
          fmt_int (String.length encoded);
          fmt_us fwd_us;
          fmt_us bwd_us;
        ])
      [50; 200; 800]
  in
  print_table ~title:"E8: one commit's diff and delta application"
    ~columns:
      ["restaurants"; "tree nodes"; "diff"; "ops"; "delta bytes";
       "apply fwd"; "apply bwd"]
    rows;
  let params = { Restaurant.default_params with Restaurant.restaurants = 200 } in
  let gen = Restaurant.create ~params ~vocab (Txq_workload.Rng.split rng) in
  let xid_gen = Txq_vxml.Xid.Gen.create () in
  let v0 =
    Vnode.of_xml xid_gen (Txq_xml.Xml.normalize (Restaurant.initial gen))
  in
  let next = Restaurant.evolve gen (Vnode.to_xml v0) in
  register_bechamel
    (Bechamel.Test.make ~name:"e8/diff (200 restaurants)"
       (Bechamel.Staged.stage (fun () ->
            let g = Txq_vxml.Xid.Gen.create () in
            Txq_vxml.Xid.Gen.mark_used g (Option.get (Vnode.max_xid v0));
            Txq_vxml.Diff.diff ~gen:g ~old_tree:v0 ~new_tree:next)))

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  section "E9  Delta clustering: page reads and seeks for history access"
    "Paper anchor: Section 7.2 - \"deltas will in many cases be stored\n\
     unclustered... each delta read will involve a disk seek in the worst\n\
     case\".  Reconstructing every version of one document reads its whole\n\
     delta chain; commits of 8 documents were interleaved.";
  let sp = spec ~documents:8 ~versions:32 ~restaurants:20 () in
  let run_one placement =
    let config = { Config.default with Config.placement } in
    let db = Load.load_db ~config sp in
    let doc = List.hd (Db.doc_ids db) in
    let d = Db.doc db doc in
    Db.flush_cache db;
    Txq_store.Io_stats.reset (Db.io_stats db);
    let us =
      time_us ~warmup:0 ~runs:1 (fun () ->
          for v = 0 to Docstore.version_count d - 1 do
            ignore (Db.reconstruct db doc v)
          done)
    in
    let io = Db.io_stats db in
    (us, io.Txq_store.Io_stats.page_reads, io.Txq_store.Io_stats.seeks)
  in
  let u_us, u_reads, u_seeks = run_one `Unclustered in
  let c_us, c_reads, c_seeks = run_one (`Clustered 16) in
  print_table ~title:"E9: full-history reconstruction of one document (cold)"
    ~columns:["placement"; "page reads"; "seeks"; "time"]
    [
      ["unclustered"; fmt_int u_reads; fmt_int u_seeks; fmt_us u_us];
      ["clustered (16-page extents)"; fmt_int c_reads; fmt_int c_seeks;
       fmt_us c_us];
    ]

(* ------------------------------------------------------------------ E10 *)

let e10 () =
  section "E10  Navigation operators: delta-index lookups"
    "Paper anchor: Section 7.3.7 - PreviousTS/NextTS/CurrentTS are lookups\n\
     in the per-document delta index (binary search over version\n\
     timestamps).";
  let iterations = 10_000 in
  let rows =
    List.map
      (fun versions ->
        let sp = spec ~documents:1 ~versions ~restaurants:10 () in
        let db = Load.load_db sp in
        let doc = List.hd (Db.doc_ids db) in
        let d = Db.doc db doc in
        let eid = Eid.make ~doc ~xid:(Vnode.xid (Docstore.current d)) in
        let mid_ts = Docstore.ts_of_version d (versions / 2) in
        let teid = Eid.Temporal.make eid mid_ts in
        let per_op f =
          let us =
            time_us (fun () ->
                for _ = 1 to iterations do
                  ignore (f ())
                done)
          in
          us /. float_of_int iterations *. 1000.0 (* ns/op *)
        in
        let prev = per_op (fun () -> Nav.previous_ts db teid) in
        let nxt = per_op (fun () -> Nav.next_ts db teid) in
        let cur = per_op (fun () -> Nav.current_ts db eid) in
        let vat = per_op (fun () -> Db.version_at db doc mid_ts) in
        [
          string_of_int versions;
          Printf.sprintf "%.0f ns" prev;
          Printf.sprintf "%.0f ns" nxt;
          Printf.sprintf "%.0f ns" cur;
          Printf.sprintf "%.0f ns" vat;
        ])
      [16; 128; 1024]
  in
  print_table ~title:"E10: per-operation cost of version navigation"
    ~columns:["versions"; "PreviousTS"; "NextTS"; "CurrentTS"; "version_at"]
    rows;
  let sp = spec ~documents:1 ~versions:128 ~restaurants:10 () in
  let db = Load.load_db sp in
  let doc = List.hd (Db.doc_ids db) in
  let d = Db.doc db doc in
  let eid = Eid.make ~doc ~xid:(Vnode.xid (Docstore.current d)) in
  let teid = Eid.Temporal.make eid (Docstore.ts_of_version d 64) in
  register_bechamel
    (Bechamel.Test.make ~name:"e10/previous_ts (128 v)"
       (Bechamel.Staged.stage (fun () -> Nav.previous_ts db teid)))

(* ------------------------------------------------------------------ E11 *)

let e11 () =
  section "E11  Algebraic rewriting: snapshot-to-current"
    "Paper anchor: Section 8 - \"algebraic rewriting techniques\" as a cost\n\
     reducer.  A query written [NOW] is semantically a snapshot query; the\n\
     rewriter turns it into a current-version scan (open postings only),\n\
     skipping the per-posting version resolution of FTI_lookup_T.";
  let rows =
    List.map
      (fun versions ->
        let sp = spec ~documents:6 ~versions ~restaurants:40 () in
        let db = Load.load_db sp in
        let q =
          Printf.sprintf
            {|SELECT COUNT(R) FROM doc("%s")[NOW]/guide/restaurant R|} url0
        in
        let parsed = Txq_query.Parser.parse_exn q in
        let plain = time_us ~runs:15 (fun () -> Exec.run db parsed) in
        let rewritten =
          time_us ~runs:15 (fun () ->
              Exec.run db (Txq_query.Rewrite.query ~now:(Db.now db) parsed))
        in
        (* the isolated operator-level effect, without parse/serialize *)
        let pattern = Pattern.of_path_exn "/guide/restaurant" in
        let now = Db.now db in
        let scan_t =
          time_us ~runs:15 (fun () -> Scan.tpattern_scan db pattern now)
        in
        let scan_cur = time_us ~runs:15 (fun () -> Scan.pattern_scan db pattern) in
        [
          string_of_int versions;
          fmt_us plain;
          fmt_us rewritten;
          Printf.sprintf "%.1fx" (plain /. rewritten);
          fmt_us scan_t;
          fmt_us scan_cur;
          Printf.sprintf "%.1fx" (scan_t /. scan_cur);
        ])
      [8; 32; 128]
  in
  print_table ~title:"E11: [NOW] snapshot count, literal vs rewritten"
    ~columns:
      ["versions"; "query as written"; "query rewritten"; "speedup";
       "TPatternScan(now)"; "PatternScan"; "scan speedup"]
    rows

(* ------------------------------------------------------------------ E12 *)

let e12 () =
  section "E12  Durability: journaling overhead and recovery time"
    "Beyond the paper: the delta index of Section 7.1 is in-memory, so a\n\
     crash loses the version history.  The commit journal appends one\n\
     record per mutating operation; recovery scans the disk, replays the\n\
     journal, and rebuilds every derived index.";
  let rows =
    List.map
      (fun versions ->
        let sp = spec ~documents:4 ~versions ~restaurants:20 () in
        let plain_us = time_us ~runs:3 (fun () -> ignore (Load.load_db sp)) in
        let config = Config.durable Config.default in
        let db = Load.load_db ~config sp in
        let durable_us =
          time_us ~runs:3 (fun () -> ignore (Load.load_db ~config sp))
        in
        let recover_us =
          time_us ~runs:3 (fun () -> ignore (Db.recover (Db.disk db) config))
        in
        let journal_pages =
          match Db.journal db with
          | Some j -> Txq_store.Journal.page_count j
          | None -> 0
        in
        [
          string_of_int versions;
          fmt_us plain_us;
          fmt_us durable_us;
          Printf.sprintf "%.2fx" (durable_us /. plain_us);
          fmt_us recover_us;
          fmt_int journal_pages;
          fmt_int (Db.live_pages db);
        ])
      [8; 32; 128]
  in
  print_table ~title:"E12: commit journaling and recovery (4 documents)"
    ~columns:
      ["versions/doc"; "ingest"; "ingest+journal"; "overhead"; "recover";
       "journal pages"; "live pages"]
    rows

(* ------------------------------------------------------------------ E13 *)

let e13 () =
  section "E13  Version cache and batched sweep: delta applications"
    "Paper anchor: Section 7.3.3 (reconstruction \"can be very expensive\")\n\
     and Section 8's call to \"reduce the number of delta versions that\n\
     have to be retrieved\".  One document; DocHistory materializes every\n\
     version, ElementHistory follows the root element.  'per-version' loops\n\
     Reconstruct over the window (cache off = the pre-cache behavior);\n\
     'batched' is the single reconstruct_range/sweep pass.";
  let versions = if !smoke then 8 else 64 in
  let sp =
    spec ~documents:1 ~versions ~restaurants:(if !smoke then 5 else 20) ()
  in
  let t1 = Timestamp.minus_infinity and t2 = Timestamp.plus_infinity in
  let measurements = ref [] in
  let measure ~snap ~op ~mode db f =
    Db.flush_cache db;
    Db.reset_io db;
    let us = time_us ~warmup:0 ~runs:1 f in
    let io = Db.io_stats db in
    let deltas = io.Txq_store.Io_stats.deltas_applied in
    let hits = io.Txq_store.Io_stats.vcache_hits in
    let misses = io.Txq_store.Io_stats.vcache_misses in
    measurements :=
      Harness.Json.Obj
        [
          ("snapshots", Harness.Json.Str snap);
          ("op", Harness.Json.Str op);
          ("mode", Harness.Json.Str mode);
          ("deltas_applied", Harness.Json.Int deltas);
          ("vcache_hits", Harness.Json.Int hits);
          ("vcache_misses", Harness.Json.Int misses);
          ("wall_us", Harness.Json.Float us);
        ]
      :: !measurements;
    ( [
        snap; op; mode; string_of_int deltas; string_of_int hits;
        string_of_int misses; fmt_us us;
      ],
      deltas )
  in
  let speedups = ref [] in
  let rows =
    List.concat_map
      (fun (snap, base_config) ->
        let load budget =
          let config =
            { base_config with Config.version_cache_bytes = budget }
          in
          let db = Load.load_db ~config sp in
          let doc = List.hd (Db.doc_ids db) in
          (db, doc)
        in
        let db_off, doc_off = load 0 in
        let db_on, doc_on = load Config.default.Config.version_cache_bytes in
        let root_eid db doc =
          Eid.make ~doc
            ~xid:(Vnode.xid (Docstore.current (Db.doc db doc)))
        in
        (* DocHistory, per-version loop: one Reconstruct per version in the
           window, newest first — with the cache off this is the quadratic
           chain re-walk this PR removes *)
        let dochist_loop db doc () =
          List.iter
            (fun dv ->
              ignore (Db.reconstruct db doc dv.Txq_core.History.dv_version))
            (Txq_core.History.doc_history db doc ~t1 ~t2)
        in
        let dochist_batched db doc () =
          ignore (Txq_core.History.doc_history_trees db doc ~t1 ~t2)
        in
        (* ElementHistory of the root element: the paper's naive form is
           DocHistory then filter the subtree out of every version *)
        let elemhist_loop db doc () =
          let eid = root_eid db doc in
          List.iter
            (fun dv ->
              let tree =
                Db.reconstruct db doc dv.Txq_core.History.dv_version
              in
              ignore (Vnode.find tree eid.Eid.xid))
            (Txq_core.History.doc_history db doc ~t1 ~t2)
        in
        let elemhist_batched db doc () =
          ignore
            (Txq_core.History.element_history db (root_eid db doc) ~t1 ~t2
               ~distinct:true ())
        in
        let doc_rows =
          [
            measure ~snap ~op:"DocHistory" ~mode:"per-version, cache off"
              db_off (dochist_loop db_off doc_off);
            measure ~snap ~op:"DocHistory" ~mode:"per-version, cache on"
              db_on (dochist_loop db_on doc_on);
            measure ~snap ~op:"DocHistory" ~mode:"batched sweep" db_on
              (dochist_batched db_on doc_on);
          ]
        in
        let elem_rows =
          [
            measure ~snap ~op:"ElementHistory" ~mode:"per-version, cache off"
              db_off (elemhist_loop db_off doc_off);
            measure ~snap ~op:"ElementHistory" ~mode:"per-version, cache on"
              db_on (elemhist_loop db_on doc_on);
            measure ~snap ~op:"ElementHistory" ~mode:"batched sweep" db_on
              (elemhist_batched db_on doc_on);
          ]
        in
        List.iter
          (fun (op, group) ->
            match List.map snd group with
            | [off; _on; batched] ->
              let x = float_of_int off /. float_of_int (Stdlib.max batched 1) in
              speedups := (snap, op, x) :: !speedups
            | _ -> assert false)
          [("DocHistory", doc_rows); ("ElementHistory", elem_rows)];
        List.map fst (doc_rows @ elem_rows))
      [
        ("none", Config.default);
        ("k=4", Config.with_snapshots 4 Config.default);
      ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E13: delta applications over a %d-version document (cold start)"
         versions)
    ~columns:
      [
        "snapshots"; "operator"; "mode"; "deltas applied"; "vcache hits";
        "vcache misses"; "time";
      ]
    rows;
  List.iter
    (fun (snap, op, x) ->
      Printf.printf "  %s, snapshots %s: %.1fx fewer deltas (off vs batched)\n"
        op snap x)
    (List.rev !speedups);
  Harness.record_json "versions" (Harness.Json.Int versions);
  Harness.record_json "smoke" (Harness.Json.Bool !smoke);
  Harness.record_json "measurements"
    (Harness.Json.Arr (List.rev !measurements));
  Harness.record_json "speedup_off_vs_batched"
    (Harness.Json.Arr
       (List.rev_map
          (fun (snap, op, x) ->
            Harness.Json.Obj
              [
                ("snapshots", Harness.Json.Str snap);
                ("op", Harness.Json.Str op);
                ("x", Harness.Json.Float x);
              ])
          !speedups))

(* ------------------------------------------------------------------ E14 *)

(* --check-overhead turns E14 into a pass/fail gate (used by CI). *)
let check_overhead = ref false
let overhead_threshold = 1.25

let e14 () =
  section "E14  Tracing overhead: instrumentation cost with tracing off/on"
    "Every paper operator carries tracing spans; the design promise is that\n\
     with no sink installed the instrumentation is a pointer compare and\n\
     costs nothing measurable.  Same query workload, three sink states:\n\
     off (production default), null sink (spans built then discarded),\n\
     and a collecting ring (the EXPLAIN ANALYZE path).";
  (* versions/documents chosen so the midpoint commit lands on a day
     boundary: the query grammar takes dates, not times *)
  let sp =
    spec
      ~documents:(if !smoke then 2 else 6)
      ~versions:(if !smoke then 8 else 16)
      ~restaurants:(if !smoke then 5 else 15)
      ()
  in
  let db = Load.load_db ~config:Config.default sp in
  let q_every =
    Printf.sprintf
      {|SELECT R FROM doc("%s")[EVERY]/guide/restaurant R|} url0
  in
  let q_snap =
    Printf.sprintf
      {|SELECT R FROM doc("%s")[%s]/guide/restaurant R|} url0
      (Timestamp.to_string (Load.midpoint_ts sp))
  in
  let workload () =
    ignore (run_q db q_snap);
    ignore (run_q db q_every)
  in
  let runs = if !smoke then 15 else 31 in
  let timed sink =
    Txq_obs.Trace.set_sink sink;
    let us = time_us ~warmup:3 ~runs workload in
    Txq_obs.Trace.set_sink None;
    us
  in
  let off_us = timed None in
  let null_us = timed (Some Txq_obs.Trace.null_sink) in
  let ring_us =
    let sink, _drain = Txq_obs.Trace.ring_sink ~capacity:16 in
    timed (Some sink)
  in
  let rows =
    List.map
      (fun (mode, us) ->
        [mode; fmt_us us; Printf.sprintf "%.2fx" (us /. off_us)])
      [("tracing off", off_us); ("null sink", null_us); ("ring sink", ring_us)]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E14: median of %d runs, snapshot + [EVERY] query per run" runs)
    ~columns:["sink"; "median"; "vs off"] rows;
  let null_ratio = null_us /. off_us in
  record_json "runs" (Harness.Json.Int runs);
  record_json "off_us" (Harness.Json.Float off_us);
  record_json "null_us" (Harness.Json.Float null_us);
  record_json "ring_us" (Harness.Json.Float ring_us);
  record_json "null_over_off" (Harness.Json.Float null_ratio);
  record_json "threshold" (Harness.Json.Float overhead_threshold);
  if !check_overhead then
    if null_ratio > overhead_threshold then begin
      Printf.eprintf
        "E14 FAIL: null-sink overhead %.2fx exceeds threshold %.2fx\n"
        null_ratio overhead_threshold;
      exit 1
    end
    else
      Printf.printf "  overhead check ok: %.2fx <= %.2fx\n" null_ratio
        overhead_threshold

(* ------------------------------------------------------------------ E15 *)

(* --check-scan turns E15 into a pass/fail regression gate (CI): the
   frozen-segment engine at domains=1 must not regress the scan median by
   more than this factor against the never-frozen index, whose per-query
   tail sort reproduces the pre-segment engine's cost. *)
let check_scan = ref false
let scan_threshold = 1.10

(* Part of the same gate: on corpora too small to amortize domain spawning,
   the pool's min-work threshold must collapse multi-domain scans to the
   sequential path, so domains=2/4 may not lose more than noise vs
   domains=1. *)
let multi_scan_threshold = 1.15

let e15 () =
  section "E15  Two-tier FTI: frozen segments and domain-parallel scan"
    "The two-tier index freezes the posting tail into immutable segments\n\
     sorted by (doc, path, vstart) with per-document fences, turning\n\
     FTI_lookup_H(doc) into binary search + slice and removing the\n\
     per-query sort from the TPatternScan engine.  Part 1 sweeps corpus\n\
     size; 'naive' disables freezing (the original list index).  Part 2\n\
     runs TPatternScanAll with the document-partitioned domain pool.";
  let frozen_config =
    { Config.default with Config.fti_segment_postings = 512 }
  in
  let naive_config =
    { Config.default with Config.fti_segment_postings = max_int }
  in
  (* Part 1: lookup_h_doc over every document, frozen vs naive *)
  let doc_counts = if !smoke then [ 4; 8 ] else [ 16; 64; 256 ] in
  let lookup_rows = ref [] in
  let part1 =
    List.map
      (fun documents ->
        let sp =
          spec ~documents ~versions:(if !smoke then 6 else 8)
            ~restaurants:(if !smoke then 5 else 10) ()
        in
        let db_f = Load.load_db ~config:frozen_config sp in
        let db_n = Load.load_db ~config:naive_config sp in
        let docs = Db.doc_ids db_f in
        (* repeat the whole-corpus sweep so even the tiny smoke sizes sit
           well above timer resolution *)
        let sweep db () =
          for _ = 1 to 10 do
            List.iter
              (fun doc ->
                ignore
                  (Txq_fti.Fti.lookup_h_doc (Db.fti db) "restaurant" ~doc))
              docs
          done
        in
        (* warm once so read-triggered segment compaction is not timed *)
        sweep db_f ();
        let f_us = time_us ~warmup:2 ~runs:9 (sweep db_f) in
        let n_us = time_us ~warmup:2 ~runs:9 (sweep db_n) in
        let speedup = n_us /. f_us in
        let segs = Txq_fti.Fti.segment_count (Db.fti db_f) in
        lookup_rows :=
          Harness.Json.Obj
            [
              ("documents", Harness.Json.Int documents);
              ("segments", Harness.Json.Int segs);
              ("naive_us", Harness.Json.Float n_us);
              ("frozen_us", Harness.Json.Float f_us);
              ("speedup", Harness.Json.Float speedup);
            ]
          :: !lookup_rows;
        [
          string_of_int documents; string_of_int segs; fmt_us n_us;
          fmt_us f_us; Printf.sprintf "%.1fx" speedup;
        ])
      doc_counts
  in
  print_table
    ~title:"E15a: FTI_lookup_H(doc) over all documents (median of 9)"
    ~columns:[ "documents"; "segments"; "naive"; "frozen"; "speedup" ]
    part1;
  (* Part 2: TPatternScanAll, document-partitioned over domains *)
  let sp =
    spec
      ~documents:(if !smoke then 6 else 32)
      ~versions:8
      ~restaurants:(if !smoke then 5 else 10)
      ()
  in
  let db_f = Load.load_db ~config:frozen_config sp in
  let db_n = Load.load_db ~config:naive_config sp in
  let pattern = Pattern.of_path_exn "/guide/restaurant/name" in
  let runs = if !smoke then 7 else 15 in
  let scan db domains () =
    ignore (Scan.tpattern_scan_all ~domains db pattern)
  in
  (* reference: never-frozen index = the pre-segment engine's sort cost *)
  scan db_n 1 ();
  scan db_f 1 ();
  let pre_us = time_us ~warmup:2 ~runs (scan db_n 1) in
  let dom_rows =
    List.map
      (fun domains ->
        let us = time_us ~warmup:2 ~runs (scan db_f domains) in
        (domains, us))
      [ 1; 2; 4 ]
  in
  let d1_us = List.assoc 1 dom_rows in
  print_table
    ~title:
      (Printf.sprintf "E15b: TPatternScanAll //guide/restaurant/name (%d runs)"
         runs)
    ~columns:[ "engine"; "domains"; "median"; "vs naive" ]
    (( [ "naive (no segments)"; "1"; fmt_us pre_us; "1.00x" ] )
     :: List.map
          (fun (domains, us) ->
            [
              "frozen segments"; string_of_int domains; fmt_us us;
              Printf.sprintf "%.2fx" (us /. pre_us);
            ])
          dom_rows);
  record_json "smoke" (Harness.Json.Bool !smoke);
  record_json "lookup_scaling" (Harness.Json.Arr (List.rev !lookup_rows));
  record_json "scan_naive_us" (Harness.Json.Float pre_us);
  record_json "scan_domains"
    (Harness.Json.Arr
       (List.map
          (fun (domains, us) ->
            Harness.Json.Obj
              [
                ("domains", Harness.Json.Int domains);
                ("wall_us", Harness.Json.Float us);
              ])
          dom_rows));
  record_json "scan_threshold" (Harness.Json.Float scan_threshold);
  if !check_scan then begin
    let ratio = d1_us /. pre_us in
    record_json "scan_d1_over_naive" (Harness.Json.Float ratio);
    if ratio > scan_threshold then begin
      Printf.eprintf
        "E15 FAIL: domains=1 scan %.2fx of the pre-segment engine exceeds \
         threshold %.2fx\n"
        ratio scan_threshold;
      exit 1
    end
    else
      Printf.printf "  scan regression check ok: %.2fx <= %.2fx\n" ratio
        scan_threshold;
    List.iter
      (fun (domains, us) ->
        if domains > 1 then begin
          let r = us /. d1_us in
          record_json
            (Printf.sprintf "scan_d%d_over_d1" domains)
            (Harness.Json.Float r);
          if r > multi_scan_threshold then begin
            Printf.eprintf
              "E15 FAIL: domains=%d scan %.2fx of domains=1 exceeds threshold \
               %.2fx (min-work threshold not collapsing small scans)\n"
              domains r multi_scan_threshold;
            exit 1
          end
          else
            Printf.printf "  domains=%d small-scan check ok: %.2fx <= %.2fx\n"
              domains r multi_scan_threshold
        end)
      dom_rows
  end

(* ------------------------------------------------------------------ E16 *)

(* --check-vacuum turns E16 into a pass/fail gate (CI): vacuum must
   reclaim bytes and strictly shrink the live page count on every
   configuration, and the retained versions must still verify. *)
let check_vacuum = ref false

let e16 () =
  section "E16  Vacuum: retention squash, reclaimed space, retained latency"
    "Beyond the paper: Section 8 leaves deletion of old versions as future\n\
     work.  Db.vacuum squashes each delta chain's prefix into a new base\n\
     snapshot, frees the dropped blobs and prunes every derived index.\n\
     Space reclaimed, vacuum cost, and query latency over the retained\n\
     window before vs after (cold cache on both sides).";
  let versions = if !smoke then 8 else 64 in
  let keep = Stdlib.max 2 (versions / 4) in
  let documents = if !smoke then 2 else 4 in
  let sp =
    spec ~documents ~versions ~restaurants:(if !smoke then 5 else 20) ()
  in
  let pattern = Pattern.of_path_exn "/guide/restaurant" in
  let t1 = Timestamp.minus_infinity and t2 = Timestamp.plus_infinity in
  let failures = ref [] in
  let results = ref [] in
  let rows =
    List.map
      (fun (snap, base_config) ->
        let config = Config.durable base_config in
        let db = Load.load_db ~config sp in
        let doc = List.hd (Db.doc_ids db) in
        let snap_lat () =
          Db.flush_cache db;
          time_us (fun () -> ignore (Scan.tpattern_scan db pattern t2))
        in
        let hist_lat () =
          Db.flush_cache db;
          time_us (fun () ->
              ignore (Txq_core.History.doc_history_trees db doc ~t1 ~t2))
        in
        let pages_before = Db.live_pages db in
        let snap_before = snap_lat () in
        let hist_before = hist_lat () in
        let retention =
          { Config.no_retention with Config.keep_versions = Some keep }
        in
        let report = ref Db.empty_vacuum_report in
        let vac_us =
          time_us ~warmup:0 ~runs:1 (fun () ->
              report := Db.vacuum ~retention db)
        in
        let r = !report in
        let pages_after = Db.live_pages db in
        let snap_after = snap_lat () in
        let hist_after = hist_lat () in
        let verify_ok = Result.is_ok (Db.verify db) in
        if r.Db.vr_bytes_reclaimed <= 0 then
          failures :=
            Printf.sprintf "snapshots %s: reclaimed %d bytes (expected > 0)"
              snap r.Db.vr_bytes_reclaimed
            :: !failures;
        if pages_after >= pages_before then
          failures :=
            Printf.sprintf
              "snapshots %s: live pages %d -> %d (expected strict decrease)"
              snap pages_before pages_after
            :: !failures;
        if not verify_ok then
          failures :=
            Printf.sprintf "snapshots %s: post-vacuum verify failed" snap
            :: !failures;
        results :=
          Harness.Json.Obj
            [
              ("snapshots", Harness.Json.Str snap);
              ("pages_before", Harness.Json.Int pages_before);
              ("pages_after", Harness.Json.Int pages_after);
              ("bytes_reclaimed", Harness.Json.Int r.Db.vr_bytes_reclaimed);
              ("versions_dropped", Harness.Json.Int r.Db.vr_versions_dropped);
              ("postings_pruned", Harness.Json.Int r.Db.vr_postings_pruned);
              ("dfti_pruned", Harness.Json.Int r.Db.vr_dfti_pruned);
              ("cretime_pruned", Harness.Json.Int r.Db.vr_cretime_pruned);
              ("dtime_pruned", Harness.Json.Int r.Db.vr_dtime_pruned);
              ("vacuum_us", Harness.Json.Float vac_us);
              ("snapshot_query_before_us", Harness.Json.Float snap_before);
              ("snapshot_query_after_us", Harness.Json.Float snap_after);
              ("history_before_us", Harness.Json.Float hist_before);
              ("history_after_us", Harness.Json.Float hist_after);
              ("verify_ok", Harness.Json.Bool verify_ok);
            ]
          :: !results;
        [
          snap;
          Printf.sprintf "%d -> %d" pages_before pages_after;
          Printf.sprintf "%d KiB" (r.Db.vr_bytes_reclaimed / 1024);
          string_of_int r.Db.vr_versions_dropped;
          fmt_us vac_us;
          Printf.sprintf "%s -> %s" (fmt_us snap_before) (fmt_us snap_after);
          Printf.sprintf "%s -> %s" (fmt_us hist_before) (fmt_us hist_after);
          (if verify_ok then "ok" else "FAIL");
        ])
      [
        ("none", Config.default);
        ("k=4", Config.with_snapshots 4 Config.default);
      ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E16: vacuum keep-last-%d of %d versions x %d documents" keep
         versions documents)
    ~columns:
      [
        "snapshots"; "live pages"; "reclaimed"; "v dropped"; "vacuum";
        "snapshot query"; "DocHistory (retained)"; "verify";
      ]
    rows;
  Harness.record_json "versions" (Harness.Json.Int versions);
  Harness.record_json "keep" (Harness.Json.Int keep);
  Harness.record_json "smoke" (Harness.Json.Bool !smoke);
  Harness.record_json "results" (Harness.Json.Arr (List.rev !results));
  if !check_vacuum then
    match List.rev !failures with
    | [] -> Printf.printf "  vacuum reclamation check ok\n"
    | fs ->
      List.iter (fun f -> Printf.eprintf "E16 FAIL: %s\n" f) fs;
      exit 1

(* ------------------------------------------------------------------ E17 *)

module Alg = Txq_algebra.Algebra
module Alg_timeline = Txq_algebra.Timeline
module Alg_relation = Txq_algebra.Relation
module Alg_oracle = Txq_algebra.Oracle

let check_algebra = ref false

let e17 () =
  section "E17  Temporal algebra: interval arithmetic vs per-instant oracle"
    "Beyond the paper: composed temporal operators (TJoin, TUnion, TExcept,\n\
     interval-split COUNT) over TEID result sets carrying coalesced\n\
     validity sets.  The algebra does interval arithmetic on version\n\
     ranges; the oracle materializes every instant, runs the plain\n\
     relational operator and re-coalesces.  Both must agree byte-for-byte\n\
     on rendered rows; the latency gap is the per-instant materialization\n\
     the algebra avoids.";
  let scan ?word ?(kind = Alg.Collection) ?(url = "*") path =
    Alg.Scan { Alg.l_kind = kind; l_url = url; l_path = path; l_word = word }
  in
  let queries =
    [
      ( "TExcept",
        Alg.Set (Alg.Except, scan "//name", scan ~kind:Alg.Doc ~url:url0 "//name")
      );
      ( "TJoin anc",
        Alg.Joinop
          ( Alg.Join,
            Alg.On_ancestor,
            scan "/guide/restaurant",
            scan "/guide/restaurant/name" ) );
      ( "TLeftJoin",
        Alg.Joinop
          (Alg.Left_join, Alg.On_ancestor, scan "/guide/restaurant", scan "//review")
      );
      ("TCount doc", Alg.Group (Alg.By_doc, scan "/guide/restaurant"));
    ]
  in
  let version_counts = if !smoke then [ 4; 8 ] else [ 8; 16; 32 ] in
  let failures = ref [] in
  let results = ref [] in
  let rows =
    List.concat_map
      (fun versions ->
        let sp =
          spec
            ~documents:(if !smoke then 2 else 4)
            ~versions
            ~restaurants:(if !smoke then 4 else 10)
            ()
        in
        let db = Load.load_db sp in
        let tl = Alg_timeline.of_db db in
        List.map
          (fun (qname, alg) ->
            (match Alg.validate alg with
             | Ok () -> ()
             | Error e -> failwith ("E17 invalid query: " ^ e));
            let alg_us = time_us ~runs:5 (fun () -> Alg.eval db tl alg) in
            let orc_us =
              time_us ~warmup:1 ~runs:3 (fun () -> Alg_oracle.eval db tl alg)
            in
            let subject = Alg_relation.render tl (Alg.eval db tl alg) in
            let oracle = Alg_relation.render tl (Alg_oracle.eval db tl alg) in
            let agree = subject = oracle in
            if not agree then
              failures :=
                Printf.sprintf "%s @ %d versions: algebra <> oracle" qname
                  versions
                :: !failures;
            results :=
              Harness.Json.Obj
                [
                  ("versions", Harness.Json.Int versions);
                  ("query", Harness.Json.Str qname);
                  ("instants", Harness.Json.Int (Alg_timeline.length tl));
                  ("rows", Harness.Json.Int (List.length subject));
                  ("algebra_us", Harness.Json.Float alg_us);
                  ("oracle_us", Harness.Json.Float orc_us);
                  ("agree", Harness.Json.Bool agree);
                ]
              :: !results;
            [
              string_of_int versions;
              qname;
              string_of_int (Alg_timeline.length tl);
              string_of_int (List.length subject);
              fmt_us alg_us;
              fmt_us orc_us;
              Printf.sprintf "%.1fx" (orc_us /. alg_us);
              (if agree then "ok" else "FAIL");
            ])
          queries)
      version_counts
  in
  print_table
    ~title:"E17: temporal algebra vs per-instant oracle (collection scans)"
    ~columns:
      [
        "versions"; "query"; "instants"; "rows"; "algebra"; "oracle";
        "speedup"; "agree";
      ]
    rows;
  Harness.record_json "smoke" (Harness.Json.Bool !smoke);
  Harness.record_json "results" (Harness.Json.Arr (List.rev !results));
  if !check_algebra then
    match List.rev !failures with
    | [] -> Printf.printf "  algebra/oracle agreement check ok\n"
    | fs ->
      List.iter (fun f -> Printf.eprintf "E17 FAIL: %s\n" f) fs;
      exit 1

(* ------------------------------------------------------------------ E18 *)

(* --check-mvcc turns E18 into a pass/fail gate (CI): at 8 concurrent
   committers, group commit must cut fsyncs per transaction by at least
   this factor against one-fsync-per-commit durability. *)
let check_mvcc = ref false
let mvcc_fsync_factor = 4.0

let e18 () =
  section "E18  MVCC snapshots and group commit: concurrent throughput"
    "Beyond the paper: the version chain is naturally multi-version, so\n\
     reads need no locks once pinned.  Part 1 scales reader domains, each\n\
     querying its own snapshot while a writer commits sustained updates.\n\
     Part 2 measures durability cost at 8 concurrent committers: one\n\
     fsync per commit vs the group-commit leader flushing whole batches.";
  let parse = Txq_xml.Parse.parse_exn in
  (* Part 1: reader-domain scaling against a live writer *)
  let sp =
    spec
      ~documents:(if !smoke then 6 else 24)
      ~versions:(if !smoke then 6 else 10)
      ~restaurants:(if !smoke then 5 else 10)
      ()
  in
  let pattern = Pattern.of_path_exn "/guide/restaurant/name" in
  let mid = Load.midpoint_ts sp in
  let quota = if !smoke then 25 else 120 in
  let payload i =
    parse
      (Printf.sprintf
         "<guide><restaurant><name>bench</name><price>%d</price></restaurant></guide>"
         (10 + (i mod 7)))
  in
  let run_readers readers =
    let db = Load.load_db sp in
    let stop = Atomic.make false in
    let commits = Atomic.make 0 in
    let writer =
      Domain.spawn (fun () ->
          let i = ref 0 in
          while not (Atomic.get stop) do
            ignore (Db.update_document db ~url:url0 (payload !i));
            incr i;
            Atomic.incr commits
          done)
    in
    let reader () =
      let snap = Db.snapshot db in
      for _ = 1 to quota do
        ignore (Scan.tpattern_scan_all snap pattern);
        ignore (Scan.tpattern_scan snap pattern mid)
      done;
      Db.release snap
    in
    let t0 = Unix.gettimeofday () in
    let hs = Array.init readers (fun _ -> Domain.spawn reader) in
    Array.iter Domain.join hs;
    let wall_s = Unix.gettimeofday () -. t0 in
    Atomic.set stop true;
    Domain.join writer;
    let queries = readers * quota * 2 in
    (wall_s, float queries /. wall_s, Atomic.get commits)
  in
  let reader_rows =
    List.map (fun r -> (r, run_readers r)) [ 1; 2; 4 ]
  in
  let _, (base_wall, base_qps, _) = List.hd reader_rows in
  ignore base_wall;
  print_table
    ~title:
      (Printf.sprintf
         "E18a: snapshot readers vs live writer (%d queries/reader)"
         (quota * 2))
    ~columns:[ "readers"; "wall"; "queries/s"; "scaling"; "writer commits" ]
    (List.map
       (fun (r, (wall_s, qps, commits)) ->
         [
           string_of_int r;
           Printf.sprintf "%.1f ms" (wall_s *. 1e3);
           Printf.sprintf "%.0f" qps;
           Printf.sprintf "%.2fx" (qps /. base_qps);
           string_of_int commits;
         ])
       reader_rows);
  record_json "reader_scaling"
    (Harness.Json.Arr
       (List.map
          (fun (r, (wall_s, qps, commits)) ->
            Harness.Json.Obj
              [
                ("readers", Harness.Json.Int r);
                ("wall_s", Harness.Json.Float wall_s);
                ("queries_per_s", Harness.Json.Float qps);
                ("writer_commits", Harness.Json.Int commits);
              ])
          reader_rows));
  (* Part 2: fsyncs per transaction, 8 concurrent committers *)
  let committers = 8 in
  let commits_each = if !smoke then 4 else 16 in
  let run_committers config =
    let db = Db.create ~config () in
    let worker k () =
      let url = Printf.sprintf "doc-%d" k in
      ignore (Db.insert_document db ~url (payload k));
      for i = 1 to commits_each - 1 do
        ignore (Db.update_document db ~url (payload ((k * 31) + i)))
      done
    in
    let t0 = Unix.gettimeofday () in
    let hs = Array.init committers (fun k -> Domain.spawn (worker k)) in
    Array.iter Domain.join hs;
    let wall_s = Unix.gettimeofday () -. t0 in
    let txns = (Db.stats db).Db.commits in
    let fsyncs = (Db.io_stats db).Txq_store.Io_stats.fsyncs in
    (wall_s, txns, fsyncs, float fsyncs /. float txns)
  in
  let off = run_committers (Config.durable Config.default) in
  let on =
    run_committers
      (Config.with_group_commit ~window_us:2000 (Config.durable Config.default))
  in
  let row name (wall_s, txns, fsyncs, per_txn) =
    [
      name; string_of_int txns; string_of_int fsyncs;
      Printf.sprintf "%.2f" per_txn; Printf.sprintf "%.1f ms" (wall_s *. 1e3);
    ]
  in
  print_table
    ~title:
      (Printf.sprintf "E18b: durability cost at %d concurrent committers"
         committers)
    ~columns:[ "mode"; "commits"; "fsyncs"; "fsyncs/txn"; "wall" ]
    [ row "per-commit fsync" off; row "group commit (2ms window)" on ];
  let (_, _, _, off_rate) = off and (_, _, _, on_rate) = on in
  let factor = off_rate /. on_rate in
  record_json "smoke" (Harness.Json.Bool !smoke);
  record_json "fsyncs_per_txn_off" (Harness.Json.Float off_rate);
  record_json "fsyncs_per_txn_on" (Harness.Json.Float on_rate);
  record_json "fsync_reduction" (Harness.Json.Float factor);
  record_json "fsync_factor_required" (Harness.Json.Float mvcc_fsync_factor);
  if !check_mvcc then
    if factor < mvcc_fsync_factor then begin
      Printf.eprintf
        "E18 FAIL: group commit reduced fsyncs/txn only %.1fx (%.2f -> %.2f), \
         need >= %.1fx\n"
        factor off_rate on_rate mvcc_fsync_factor;
      exit 1
    end
    else
      Printf.printf "  group-commit check ok: fsyncs/txn down %.1fx >= %.1fx\n"
        factor mvcc_fsync_factor

(* --check-serve turns E19 into a pass/fail gate (CI): an 8-client
   closed-loop mixed workload over real sockets must complete with zero
   error replies, zero dropped connections, zero leaked snapshot pins,
   and at least [serve_min_qps] sustained. *)
let check_serve = ref false
let serve_min_qps = 50.0

let e19 () =
  section "E19  txmldbd: sustained QPS and connection churn over the wire"
    "Serving the statement language to concurrent clients: each request\n\
     pins an MVCC snapshot on a reader domain and streams its result in\n\
     bounded chunks while writes funnel through the group-committed\n\
     writer.  Part 1 scales closed-loop clients; part 2 adds connection\n\
     churn (drop and redial every few requests); part 3 offers a fixed\n\
     open-loop arrival rate and reads the latency tail.";
  let module Server = Txq_server.Server in
  let module Loadgen = Txq_server.Loadgen in
  let sp =
    spec
      ~documents:(if !smoke then 4 else 12)
      ~versions:(if !smoke then 4 else 8)
      ~restaurants:(if !smoke then 5 else 10)
      ()
  in
  let ops = if !smoke then 25 else 150 in
  let with_server readers f =
    let db = Load.load_db sp in
    let server =
      Server.start ~config:{ Server.default_config with Server.readers } db
    in
    let r = f (Server.port server) in
    let leaked = Server.stop server in
    (r, leaked)
  in
  (* Part 1: closed-loop client scaling *)
  let run_clients clients =
    with_server (Stdlib.max 4 clients) @@ fun port ->
    Loadgen.closed_loop ~port ~clients ~ops_per_client:ops ~spec:sp
      ~seed:2026 ()
  in
  let client_rows =
    List.map (fun c -> (c, run_clients c)) [ 1; 2; 4; 8 ]
  in
  let pct r p = Loadgen.percentile r.Loadgen.r_latencies_us p in
  print_table
    ~title:(Printf.sprintf "E19a: closed-loop clients (%d ops each)" ops)
    ~columns:
      [ "clients"; "qps"; "p50"; "p99"; "errors"; "disconnects"; "leaked" ]
    (List.map
       (fun (c, (r, leaked)) ->
         [
           string_of_int c;
           Printf.sprintf "%.0f" r.Loadgen.r_qps;
           Printf.sprintf "%.0f us" (pct r 50.0);
           Printf.sprintf "%.0f us" (pct r 99.0);
           string_of_int r.Loadgen.r_errors;
           string_of_int r.Loadgen.r_disconnects;
           string_of_int leaked;
         ])
       client_rows);
  record_json "closed_loop"
    (Harness.Json.Arr
       (List.map
          (fun (c, (r, leaked)) ->
            Harness.Json.Obj
              [
                ("clients", Harness.Json.Int c);
                ("qps", Harness.Json.Float r.Loadgen.r_qps);
                ("p50_us", Harness.Json.Float (pct r 50.0));
                ("p99_us", Harness.Json.Float (pct r 99.0));
                ("ops", Harness.Json.Int r.Loadgen.r_ops);
                ("errors", Harness.Json.Int r.Loadgen.r_errors);
                ("disconnects", Harness.Json.Int r.Loadgen.r_disconnects);
                ("leaked_pins", Harness.Json.Int leaked);
              ])
          client_rows));
  (* Part 2: connection churn — every client redials every 5 requests *)
  let churn, churn_leaked =
    with_server 8 @@ fun port ->
    Loadgen.closed_loop ~port ~clients:8 ~ops_per_client:ops ~spec:sp
      ~reconnect_every:5 ~seed:2027 ()
  in
  print_table ~title:"E19b: connection churn (8 clients, redial every 5)"
    ~columns:[ "qps"; "p99"; "errors"; "disconnects"; "leaked" ]
    [
      [
        Printf.sprintf "%.0f" churn.Loadgen.r_qps;
        Printf.sprintf "%.0f us" (pct churn 99.0);
        string_of_int churn.Loadgen.r_errors;
        string_of_int churn.Loadgen.r_disconnects;
        string_of_int churn_leaked;
      ];
    ];
  record_json "churn"
    (Harness.Json.Obj
       [
         ("qps", Harness.Json.Float churn.Loadgen.r_qps);
         ("p99_us", Harness.Json.Float (pct churn 99.0));
         ("errors", Harness.Json.Int churn.Loadgen.r_errors);
         ("disconnects", Harness.Json.Int churn.Loadgen.r_disconnects);
         ("leaked_pins", Harness.Json.Int churn_leaked);
       ]);
  (* Part 3: open loop at a fixed offered rate — latency, not throughput *)
  let rate = if !smoke then 40.0 else 150.0 in
  let duration = if !smoke then 1.0 else 4.0 in
  let open_r, open_leaked =
    with_server 8 @@ fun port ->
    Loadgen.open_loop ~port ~conns:4 ~rate_per_s:rate ~duration_s:duration
      ~spec:sp ~seed:2028 ()
  in
  print_table
    ~title:
      (Printf.sprintf "E19c: open loop at %.0f req/s offered (%.0f s)" rate
         duration)
    ~columns:[ "achieved qps"; "p50"; "p99"; "errors"; "leaked" ]
    [
      [
        Printf.sprintf "%.0f" open_r.Loadgen.r_qps;
        Printf.sprintf "%.0f us" (pct open_r 50.0);
        Printf.sprintf "%.0f us" (pct open_r 99.0);
        string_of_int open_r.Loadgen.r_errors;
        string_of_int open_leaked;
      ];
    ];
  record_json "open_loop"
    (Harness.Json.Obj
       [
         ("offered_rate", Harness.Json.Float rate);
         ("qps", Harness.Json.Float open_r.Loadgen.r_qps);
         ("p50_us", Harness.Json.Float (pct open_r 50.0));
         ("p99_us", Harness.Json.Float (pct open_r 99.0));
         ("errors", Harness.Json.Int open_r.Loadgen.r_errors);
         ("leaked_pins", Harness.Json.Int open_leaked);
       ]);
  record_json "smoke" (Harness.Json.Bool !smoke);
  record_json "min_qps_gate" (Harness.Json.Float serve_min_qps);
  if !check_serve then begin
    let eight, eight_leaked =
      try List.assoc 8 client_rows with Not_found -> (churn, churn_leaked)
    in
    if
      eight.Loadgen.r_errors > 0
      || eight.Loadgen.r_disconnects > 0
      || eight_leaked > 0 || churn.Loadgen.r_errors > 0
      || churn.Loadgen.r_disconnects > 0 || churn_leaked > 0
    then begin
      Printf.eprintf
        "E19 FAIL: errors=%d/%d disconnects=%d/%d leaked=%d/%d (plain/churn)\n"
        eight.Loadgen.r_errors churn.Loadgen.r_errors
        eight.Loadgen.r_disconnects churn.Loadgen.r_disconnects eight_leaked
        churn_leaked;
      exit 1
    end
    else if eight.Loadgen.r_qps < serve_min_qps then begin
      Printf.eprintf "E19 FAIL: %.0f qps at 8 clients, need >= %.0f\n"
        eight.Loadgen.r_qps serve_min_qps;
      exit 1
    end
    else
      Printf.printf
        "  serve check ok: %.0f qps >= %.0f, no errors, no leaked pins\n"
        eight.Loadgen.r_qps serve_min_qps
  end

(* ------------------------------------------------------------------ E20 *)

module Planner = Txq_planner.Planner

(* --check-plan turns E20 into a pass/fail gate (CI): leg reordering must
   win at least [plan_skew_min] on the skewed-selectivity multiway join;
   across the statement corpus the planner must never be more than
   [plan_overhead_max] slower than literal evaluation (plus a fixed
   [plan_noise_us] timer-noise allowance on the repeated batch); and every
   scan estimate must land within [plan_accuracy_k] of the measured rows
   (smoothed: max((est+1)/(act+1), (act+1)/(est+1))). *)
let check_plan = ref false
let plan_skew_min = 2.0
let plan_overhead_max = 1.10
let plan_noise_us = 150.0
let plan_accuracy_k = 32.0

let e20 () =
  section "E20  Cost-based planner: skew win, corpus overhead, accuracy"
    "Beyond the paper (motivated by its Section 1 native-vs-stratum\n\
     argument): the planner orders multiway-join legs by ascending\n\
     selectivity from live FTI counters.  (a) a skewed-selectivity\n\
     conjunction - eight ubiquitous word tests and one needle, written\n\
     needle-last - planner-on vs planner-off; (b) the full statement\n\
     corpus planner-on vs planner-off (the planner must never lose);\n\
     (c) scan estimates vs measured rows per temporal mode.";
  let failures = ref [] in
  (* -- (a) skewed-selectivity multiway join ------------------------------ *)
  let n_common = 8 in
  let skew_doc ~restaurants ~needle_at d =
    let buf = Buffer.create (restaurants * 96) in
    Buffer.add_string buf "<guide>";
    for i = 0 to restaurants - 1 do
      Buffer.add_string buf "<restaurant>";
      for k = 0 to n_common - 1 do
        Buffer.add_string buf (Printf.sprintf "<f%d>common%d</f%d>" k k k)
      done;
      if d = 0 && i = needle_at then
        Buffer.add_string buf "<fx>needle</fx>";
      Buffer.add_string buf (Printf.sprintf "<id>r%d</id>" i);
      Buffer.add_string buf "</restaurant>"
    done;
    Buffer.add_string buf "</guide>";
    Txq_xml.Parse.parse_exn (Buffer.contents buf)
  in
  let load_skew ~planner ~restaurants =
    let db =
      Db.create ~config:(Config.with_planner planner Config.default) ()
    in
    for d = 0 to 3 do
      ignore
        (Db.insert_document db
           ~url:(Printf.sprintf "skew-%d" d)
           ~ts:(Timestamp.of_date ~day:(d + 1) ~month:6 ~year:2001)
           (skew_doc ~restaurants ~needle_at:(restaurants / 2) d))
    done;
    db
  in
  (* written needle-first: pushdown grafting reverses the conjunct list,
     so the literal plan constrains every common leg before the needle *)
  let skew_query =
    {|SELECT R/id FROM doc("skew-0")//restaurant R WHERE R/fx = "needle"|}
    ^ String.concat ""
        (List.init n_common (fun k ->
             Printf.sprintf {| AND R/f%d = "common%d"|} k k))
  in
  let skew_sizes = if !smoke then [ 60; 150 ] else [ 100; 400 ] in
  let skew_json = ref [] in
  let skew_rows =
    List.map
      (fun restaurants ->
        let db_on = load_skew ~planner:true ~restaurants in
        let db_off = load_skew ~planner:false ~restaurants in
        let out_on = Txq_xml.Print.to_string (run_q db_on skew_query) in
        let out_off = Txq_xml.Print.to_string (run_q db_off skew_query) in
        if not (String.equal out_on out_off) then
          failures :=
            Printf.sprintf "skew @ %d: planner-on result diverged" restaurants
            :: !failures;
        let on_us = time_us ~runs:7 (fun () -> run_q db_on skew_query) in
        let off_us = time_us ~runs:7 (fun () -> run_q db_off skew_query) in
        let speedup = off_us /. on_us in
        skew_json :=
          Harness.Json.Obj
            [
              ("restaurants", Harness.Json.Int restaurants);
              ("literal_us", Harness.Json.Float off_us);
              ("planned_us", Harness.Json.Float on_us);
              ("speedup", Harness.Json.Float speedup);
            ]
          :: !skew_json;
        (restaurants, speedup,
         [
           string_of_int restaurants;
           fmt_us off_us;
           fmt_us on_us;
           Printf.sprintf "%.1fx" speedup;
         ]))
      skew_sizes
  in
  print_table
    ~title:
      (Printf.sprintf
         "E20a: skewed conjunction (%d common legs + 1 needle, written last)"
         n_common)
    ~columns:[ "restaurants/doc"; "literal"; "planned"; "speedup" ]
    (List.map (fun (_, _, r) -> r) skew_rows);
  (match List.rev skew_rows with
   | (restaurants, speedup, _) :: _ when speedup < plan_skew_min ->
     failures :=
       Printf.sprintf "skew @ %d: %.2fx < %.1fx leg-reorder win" restaurants
         speedup plan_skew_min
       :: !failures
   | _ -> ());
  (* -- (b) corpus overhead: the planner must never lose ------------------ *)
  let sp =
    spec
      ~documents:(if !smoke then 2 else 4)
      ~versions:(if !smoke then 6 else 10)
      ~restaurants:(if !smoke then 8 else 20)
      ()
  in
  let db_on = Load.load_db ~config:(Config.with_planner true Config.default) sp in
  let db_off =
    Load.load_db ~config:(Config.with_planner false Config.default) sp
  in
  (* floored to midnight: the statement grammar takes dates, not instants *)
  let mid_ts =
    Timestamp.of_seconds
      (Timestamp.to_seconds (Load.midpoint_ts sp) / 86_400 * 86_400)
  in
  let mid = Timestamp.to_string mid_ts in
  let name = Load.target_name sp in
  let corpus =
    [
      ("snapshot scan",
       Printf.sprintf {|SELECT R FROM doc("%s")[%s]/guide/restaurant R|} url0
         mid);
      ("current count",
       Printf.sprintf {|SELECT COUNT(R) FROM doc("%s")[NOW]/guide/restaurant R|}
         url0);
      ("pushdown",
       Printf.sprintf
         {|SELECT R/price FROM doc("%s")/guide/restaurant R WHERE R/name = "%s"|}
         url0 name);
      ("history pushdown",
       Printf.sprintf
         {|SELECT TIME(R), R/price FROM doc("%s")[EVERY]/guide/restaurant R WHERE R/name = "%s"|}
         url0 name);
      ("absent word",
       Printf.sprintf
         {|SELECT R FROM doc("%s")//restaurant R WHERE R/name = "xyzzyword"|}
         url0);
      ("lifetimes",
       Printf.sprintf
         {|SELECT CREATE TIME(R), DELETE TIME(R) FROM doc("%s")[EVERY]//review R|}
         url0);
      ("collection count", {|SELECT COUNT(R) FROM collection("*")[EVERY]//name R|});
      ("algebra semijoin",
       Printf.sprintf {|doc("%s")//name SEMIJOIN ON ANCESTOR doc("%s")//review|}
         url0 url0);
      ("algebra except",
       Printf.sprintf {|doc("%s")//name EXCEPT doc("%s")//nosuchtag|} url0 url0);
      ("algebra count", {|COUNT BY DOC (collection("*")//name)|});
    ]
  in
  let reps = if !smoke then 8 else 16 in
  (* paired samples — planner-on and planner-off batches interleaved in
     time so clock drift and GC pressure hit both sides alike; the gate
     reads the median of per-pair ratios *)
  let sample_us f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  let paired f_on f_off =
    for _ = 1 to 2 do
      f_on ();
      f_off ()
    done;
    let n = 9 in
    let ons = Array.init n (fun _ -> 0.) and offs = Array.init n (fun _ -> 0.) in
    for i = 0 to n - 1 do
      ons.(i) <- sample_us f_on;
      offs.(i) <- sample_us f_off
    done;
    let med a =
      let s = Array.copy a in
      Array.sort compare s;
      s.(n / 2)
    in
    (med ons, med offs, med (Array.init n (fun i -> ons.(i) /. offs.(i))))
  in
  let corpus_json = ref [] in
  let corpus_rows =
    List.map
      (fun (label, q) ->
        let out_on = Txq_xml.Print.to_string (run_q db_on q)
        and out_off = Txq_xml.Print.to_string (run_q db_off q) in
        if not (String.equal out_on out_off) then
          failures :=
            Printf.sprintf "corpus %S: planner-on result diverged" label
            :: !failures;
        let batch db = fun () -> for _ = 1 to reps do ignore (run_q db q) done in
        let on_us, off_us, ratio = paired (batch db_on) (batch db_off) in
        if
          !check_plan && ratio > plan_overhead_max
          && on_us > off_us +. plan_noise_us
        then
          failures :=
            Printf.sprintf "corpus %S: planner %.2fx slower than literal" label
              ratio
            :: !failures;
        corpus_json :=
          Harness.Json.Obj
            [
              ("statement", Harness.Json.Str label);
              ("reps", Harness.Json.Int reps);
              ("planner_us", Harness.Json.Float on_us);
              ("literal_us", Harness.Json.Float off_us);
              ("ratio", Harness.Json.Float ratio);
            ]
          :: !corpus_json;
        [
          label;
          fmt_us (off_us /. float_of_int reps);
          fmt_us (on_us /. float_of_int reps);
          Printf.sprintf "%.2fx" ratio;
        ])
      corpus
  in
  print_table
    ~title:
      (Printf.sprintf "E20b: statement corpus, planner on vs off (x%d reps)"
         reps)
    ~columns:[ "statement"; "literal"; "planner"; "on/off" ]
    corpus_rows;
  (* -- (c) estimation accuracy ------------------------------------------- *)
  let planner = Planner.create db_on in
  let acc_paths =
    [ "/guide/restaurant"; "//name"; "//price"; "//review"; "//address" ]
  in
  let acc_json = ref [] in
  let acc_rows =
    List.concat_map
      (fun path ->
        let pattern = Pattern.of_path_exn path in
        List.map
          (fun (mode, actual) ->
            let est = Planner.est_scan planner mode pattern in
            let err =
              Stdlib.max
                (float_of_int (est + 1) /. float_of_int (actual + 1))
                (float_of_int (actual + 1) /. float_of_int (est + 1))
            in
            if !check_plan && err > plan_accuracy_k then
              failures :=
                Printf.sprintf "accuracy %s [%s]: est %d vs actual %d (%.1fx)"
                  path
                  (Planner.mode_to_string mode)
                  est actual err
                :: !failures;
            acc_json :=
              Harness.Json.Obj
                [
                  ("path", Harness.Json.Str path);
                  ("mode", Harness.Json.Str (Planner.mode_to_string mode));
                  ("est", Harness.Json.Int est);
                  ("actual", Harness.Json.Int actual);
                  ("err", Harness.Json.Float err);
                ]
              :: !acc_json;
            [
              path;
              Planner.mode_to_string mode;
              string_of_int est;
              string_of_int actual;
              Printf.sprintf "%.1fx" err;
            ])
          [
            (Planner.Current, List.length (Scan.pattern_scan db_on pattern));
            (Planner.At,
             List.length (Scan.tpattern_scan db_on pattern mid_ts));
            (Planner.Every, List.length (Scan.tpattern_scan_all db_on pattern));
          ])
      acc_paths
  in
  print_table
    ~title:
      (Printf.sprintf "E20c: scan estimate vs measured rows (gate: %.0fx)"
         plan_accuracy_k)
    ~columns:[ "path"; "mode"; "est"; "actual"; "err" ]
    acc_rows;
  Harness.record_json "smoke" (Harness.Json.Bool !smoke);
  Harness.record_json "skew" (Harness.Json.Arr (List.rev !skew_json));
  Harness.record_json "corpus" (Harness.Json.Arr (List.rev !corpus_json));
  Harness.record_json "accuracy" (Harness.Json.Arr (List.rev !acc_json));
  if !check_plan then
    match List.rev !failures with
    | [] ->
      Printf.printf
        "  plan check ok: >=%.1fx on skew, <=%.2fx corpus overhead, \
         estimates within %.0fx\n"
        plan_skew_min plan_overhead_max plan_accuracy_k
    | fs ->
      List.iter (fun f -> Printf.eprintf "E20 FAIL: %s\n" f) fs;
      exit 1

(* ------------------------------------------------------------------ E21 *)

(* --check-ship turns E21 into a pass/fail gate (CI): replicas must reach
   lag 0 at every offered write rate, the restore must land exactly the
   primary's commit count, and the scale-out legs must finish with no
   errors, no disconnects and no leaked pins on either node. *)
let check_ship = ref false

let e21 () =
  section "E21  Journal shipping: catch-up lag, restore, read scale-out"
    "A primary streams committed journal records to replicas (Db.ship /\n\
     Replay).  Part 1 follows a live writer at several offered commit\n\
     rates and reads the lag profile; part 2 measures point-in-time\n\
     restore throughput; part 3 compares read QPS of one server against\n\
     a primary+replica pair serving the same read-only workload over\n\
     sockets.";
  let module Server = Txq_server.Server in
  let module Client = Txq_server.Client in
  let module Loadgen = Txq_server.Loadgen in
  let module Mixed = Txq_workload.Mixed in
  let durable = Config.durable Config.default in
  let parse = Txq_xml.Parse.parse_exn in
  let sp =
    spec
      ~documents:(if !smoke then 4 else 10)
      ~versions:(if !smoke then 3 else 6)
      ~restaurants:(if !smoke then 5 else 10)
      ()
  in
  let failures = ref [] in
  let gate fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  (* Part 1: live follow — a writer commits at an offered rate while a
     replica polls; lag is sampled after every pull. *)
  let commits = if !smoke then 60 else 400 in
  let follow offered_delay_s =
    let primary = Load.load_db ~config:durable sp in
    let r = Db.Replay.create ~config:durable () in
    let writer_done = Atomic.make false in
    let writer =
      Thread.create
        (fun () ->
          for i = 1 to commits do
            ignore
              (Db.update_document primary
                 ~url:(Load.url_of (i mod sp.Load.documents))
                 (parse (Printf.sprintf "<guide><burst>%d</burst></guide>" i)));
            if offered_delay_s > 0.0 then Thread.delay offered_delay_s
          done;
          Atomic.set writer_done true)
        ()
    in
    let max_lag = ref 0 in
    let pulls = ref 0 in
    let t0 = Unix.gettimeofday () in
    let rec follow_loop () =
      let from = Db.Replay.applied r in
      (* lag as seen at pull time, before this batch is applied *)
      let backlog = Db.durable_records primary - from in
      if backlog > !max_lag then max_lag := backlog;
      let batch = Db.ship primary ~from () in
      List.iter (Db.Replay.apply r) batch;
      incr pulls;
      let lag = Db.durable_records primary - Db.Replay.applied r in
      if not (Atomic.get writer_done && lag = 0) then begin
        if batch = [] then Thread.delay 0.0002;
        follow_loop ()
      end
    in
    follow_loop ();
    let elapsed = Unix.gettimeofday () -. t0 in
    Thread.join writer;
    let applied = Db.Replay.applied r in
    let final_lag = Db.durable_records primary - applied in
    if !check_ship && final_lag <> 0 then
      gate "follow (delay %.4fs): final lag %d" offered_delay_s final_lag;
    (applied, !max_lag, final_lag, !pulls, float_of_int applied /. elapsed)
  in
  let follow_rows =
    List.map
      (fun (label, delay) -> (label, follow delay))
      [ ("unthrottled", 0.0); ("~2000/s", 0.0005); ("~500/s", 0.002) ]
  in
  print_table
    ~title:(Printf.sprintf "E21a: replica follows a live writer (%d commits)" commits)
    ~columns:[ "offered rate"; "applied"; "max lag"; "final lag"; "pulls"; "apply/s" ]
    (List.map
       (fun (label, (applied, max_lag, final_lag, pulls, rate)) ->
         [
           label; string_of_int applied; string_of_int max_lag;
           string_of_int final_lag; string_of_int pulls;
           Printf.sprintf "%.0f" rate;
         ])
       follow_rows);
  record_json "follow"
    (Harness.Json.Arr
       (List.map
          (fun (label, (applied, max_lag, final_lag, pulls, rate)) ->
            Harness.Json.Obj
              [
                ("offered", Harness.Json.Str label);
                ("applied", Harness.Json.Int applied);
                ("max_lag", Harness.Json.Int max_lag);
                ("final_lag", Harness.Json.Int final_lag);
                ("pulls", Harness.Json.Int pulls);
                ("apply_per_s", Harness.Json.Float rate);
              ])
          follow_rows));
  (* Part 2: point-in-time restore throughput at the full horizon. *)
  let restore_rows =
    List.map
      (fun versions ->
        let rsp = { sp with Load.versions } in
        let primary = Load.load_db ~config:durable rsp in
        let records = Db.durable_records primary in
        let restored = ref None in
        let us =
          time_us ~warmup:1 ~runs:(if !smoke then 3 else 5) (fun () ->
              restored := Some (Db.restore_as_of primary ~as_of:(Db.now primary)))
        in
        let restored = Option.get !restored in
        if
          !check_ship
          && (Db.stats restored).Db.commits <> (Db.stats primary).Db.commits
        then
          gate "restore at %d versions: %d commits, primary has %d" versions
            (Db.stats restored).Db.commits (Db.stats primary).Db.commits;
        (versions, records, us, float_of_int records /. (us /. 1e6)))
      (if !smoke then [ 3; 6 ] else [ 4; 8; 16 ])
  in
  print_table ~title:"E21b: restore --as-of now (full history clone)"
    ~columns:[ "versions/doc"; "records"; "restore time"; "records/s" ]
    (List.map
       (fun (v, records, us, rate) ->
         [
           string_of_int v; string_of_int records; fmt_us us;
           Printf.sprintf "%.0f" rate;
         ])
       restore_rows);
  record_json "restore"
    (Harness.Json.Arr
       (List.map
          (fun (v, records, us, rate) ->
            Harness.Json.Obj
              [
                ("versions", Harness.Json.Int v);
                ("records", Harness.Json.Int records);
                ("restore_us", Harness.Json.Float us);
                ("records_per_s", Harness.Json.Float rate);
              ])
          restore_rows));
  (* Part 3: read scale-out — the same read-only closed loop against one
     server, then split across a primary+replica pair. *)
  let clients = if !smoke then 4 else 8 in
  let ops = if !smoke then 20 else 100 in
  let readers = Stdlib.max 4 (clients / 2) in
  let primary = Load.load_db ~config:durable sp in
  let pserver =
    Server.start ~config:{ Server.default_config with Server.readers } primary
  in
  let pport = Server.port pserver in
  let solo =
    Loadgen.closed_loop ~port:pport ~clients ~ops_per_client:ops
      ~mix:Mixed.read_only_mix ~spec:sp ~seed:2101 ()
  in
  (* replica catches up over the wire, then serves half the clients *)
  let rp = Db.Replay.create ~config:durable () in
  let puller = Client.connect ~port:pport () in
  let rec clone () =
    match Client.ship puller ~from:(Db.Replay.applied rp) () with
    | Ok ([], _) -> ()
    | Ok (shipments, _) ->
      List.iter (Db.Replay.apply rp) shipments;
      clone ()
    | Error (code, msg) -> failwith (Printf.sprintf "ship error %d: %s" code msg)
  in
  clone ();
  Client.close puller;
  let rserver =
    Server.start
      ~config:{ Server.default_config with Server.readers }
      (Db.Replay.db rp)
  in
  let rport = Server.port rserver in
  let half = Stdlib.max 1 (clients / 2) in
  let primary_half = ref None and replica_half = ref None in
  let t0 = Unix.gettimeofday () in
  let th_p =
    Thread.create
      (fun () ->
        primary_half :=
          Some
            (Loadgen.closed_loop ~port:pport ~clients:half ~ops_per_client:ops
               ~mix:Mixed.read_only_mix ~spec:sp ~seed:2102 ()))
      ()
  and th_r =
    Thread.create
      (fun () ->
        replica_half :=
          Some
            (Loadgen.closed_loop ~port:rport ~clients:half ~ops_per_client:ops
               ~mix:Mixed.read_only_mix ~spec:sp ~seed:2103 ()))
      ()
  in
  Thread.join th_p;
  Thread.join th_r;
  let pair_elapsed = Unix.gettimeofday () -. t0 in
  let ph = Option.get !primary_half and rh = Option.get !replica_half in
  let pair_qps = float_of_int (ph.Loadgen.r_ops + rh.Loadgen.r_ops) /. pair_elapsed in
  (* one probe statement must render byte-identically on both nodes *)
  let probe =
    Printf.sprintf {|SELECT R/name FROM doc("%s")//restaurant R|} url0
  in
  let body_of port =
    let c = Client.connect ~port () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    match Client.query c probe with
    | Ok reply -> reply.Client.body
    | Error (code, msg) -> failwith (Printf.sprintf "probe error %d: %s" code msg)
  in
  let identical = String.equal (body_of pport) (body_of rport) in
  let p_leaked = Server.stop pserver in
  let r_leaked = Server.stop rserver in
  print_table
    ~title:
      (Printf.sprintf "E21c: read-only closed loop (%d clients, %d ops each)"
         clients ops)
    ~columns:[ "topology"; "qps"; "errors"; "disconnects"; "leaked" ]
    [
      [
        "single server"; Printf.sprintf "%.0f" solo.Loadgen.r_qps;
        string_of_int solo.Loadgen.r_errors;
        string_of_int solo.Loadgen.r_disconnects; string_of_int p_leaked;
      ];
      [
        "primary+replica"; Printf.sprintf "%.0f" pair_qps;
        string_of_int (ph.Loadgen.r_errors + rh.Loadgen.r_errors);
        string_of_int (ph.Loadgen.r_disconnects + rh.Loadgen.r_disconnects);
        string_of_int r_leaked;
      ];
    ];
  record_json "scale_out"
    (Harness.Json.Obj
       [
         ("clients", Harness.Json.Int clients);
         ("solo_qps", Harness.Json.Float solo.Loadgen.r_qps);
         ("pair_qps", Harness.Json.Float pair_qps);
         ("probe_identical", Harness.Json.Bool identical);
         ("errors",
          Harness.Json.Int
            (solo.Loadgen.r_errors + ph.Loadgen.r_errors + rh.Loadgen.r_errors));
         ("leaked_pins", Harness.Json.Int (p_leaked + r_leaked));
       ]);
  record_json "smoke" (Harness.Json.Bool !smoke);
  if !check_ship then begin
    if not identical then gate "probe result differs between primary and replica";
    if solo.Loadgen.r_errors + ph.Loadgen.r_errors + rh.Loadgen.r_errors > 0 then
      gate "scale-out legs answered errors";
    if solo.Loadgen.r_disconnects + ph.Loadgen.r_disconnects
       + rh.Loadgen.r_disconnects > 0
    then gate "scale-out legs dropped connections";
    if p_leaked + r_leaked > 0 then
      gate "%d leaked pins across the pair" (p_leaked + r_leaked);
    match !failures with
    | [] -> Printf.printf "  ship check ok: lag 0, restore exact, pair clean\n"
    | fs ->
      List.iter (fun f -> Printf.eprintf "E21 FAIL: %s\n" f) fs;
      exit 1
  end

(* ------------------------------------------------------------------ main *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let bechamel = List.mem "--bechamel" args in
  smoke := List.mem "--smoke" args;
  check_overhead := List.mem "--check-overhead" args;
  check_scan := List.mem "--check-scan" args;
  check_vacuum := List.mem "--check-vacuum" args;
  check_algebra := List.mem "--check-algebra" args;
  check_mvcc := List.mem "--check-mvcc" args;
  check_serve := List.mem "--check-serve" args;
  check_plan := List.mem "--check-plan" args;
  check_ship := List.mem "--check-ship" args;
  (* --trace FILE: stream every root span of the whole run as JSON lines.
     E14 manages its own sinks and ends with tracing off, so combining it
     with --trace in one invocation truncates the stream there. *)
  let trace_oc =
    let rec find = function
      | "--trace" :: path :: _ -> Some (open_out path)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (match trace_oc with
   | Some oc -> Txq_obs.Trace.set_sink (Some (Txq_obs.Trace.jsonl_sink oc))
   | None -> ());
  let rec drop_trace_arg = function
    | "--trace" :: _ :: rest -> drop_trace_arg rest
    | a :: rest -> a :: drop_trace_arg rest
    | [] -> []
  in
  let selected =
    List.filter
      (fun a -> not (String.length a > 1 && a.[0] = '-'))
      (drop_trace_arg args)
  in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (name, _) -> List.mem name selected) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment(s); known: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  print_endline "Temporal XML query operators - experiment harness";
  print_endline "(shapes, not absolute numbers: the substrate is a simulator)";
  List.iter
    (fun (name, f) ->
      f ();
      Harness.write_json ~experiment:name)
    to_run;
  (match trace_oc with
   | Some oc ->
     Txq_obs.Trace.set_sink None;
     close_out oc
   | None -> ());
  if bechamel then Harness.run_bechamel ()
