(* txmldb — command-line driver for the temporal XML database.

   The store is an in-memory simulator, so every invocation builds its
   database first: either the paper's Figure 1 (--fig1) or a generated
   restaurant-guide workload (--docs/--versions/--seed), then runs the
   requested action against it. *)

open Cmdliner

(* --- shared workload/config options ------------------------------------ *)

let docs_t =
  Arg.(value & opt int 10 & info ["docs"] ~docv:"N" ~doc:"Generated guide documents.")

let versions_t =
  Arg.(value & opt int 20 & info ["versions"] ~docv:"N" ~doc:"Versions per document.")

let seed_t = Arg.(value & opt int 42 & info ["seed"] ~docv:"SEED" ~doc:"Workload seed.")

let fig1_t =
  Arg.(value & flag & info ["fig1"] ~doc:"Load the paper's Figure 1 instead of a generated workload.")

let snapshots_t =
  Arg.(value & opt (some int) None & info ["snapshot-every"] ~docv:"K"
         ~doc:"Store a full snapshot every K versions.")

let clustered_t =
  Arg.(value & flag & info ["clustered"] ~doc:"Cluster each document's blobs (default unclustered).")

let fti_mode_t =
  let modes =
    [ ("versions", Txq_db.Config.Fti_versions); ("deltas", Txq_db.Config.Fti_deltas);
      ("both", Txq_db.Config.Fti_both); ("none", Txq_db.Config.Fti_none) ]
  in
  Arg.(value & opt (enum modes) Txq_db.Config.Fti_versions
       & info ["fti"] ~docv:"MODE" ~doc:"Content index: $(b,versions), $(b,deltas), $(b,both) or $(b,none).")

let segment_postings_t =
  Arg.(value & opt int Txq_db.Config.default.Txq_db.Config.fti_segment_postings
       & info ["fti-segment-postings"] ~docv:"N"
           ~doc:"Freeze the FTI tail into immutable sorted segments once it \
                 holds N postings (0 disables freezing).")

let domains_t =
  Arg.(value & opt int 1 & info ["domains"] ~docv:"N"
         ~doc:"Worker domains for the pattern-scan operators (default 1; \
               results are identical for every value).")

let no_planner_t =
  Arg.(value & flag & info ["no-planner"]
         ~doc:"Disable the cost-based planner and evaluate every statement \
               literally as written (results are byte-identical either way).")

let config_of snapshots clustered fti_mode segment_postings domains no_planner =
  {
    Txq_db.Config.default with
    Txq_db.Config.snapshot_every = snapshots;
    placement = (if clustered then `Clustered 16 else `Unclustered);
    fti_mode;
    fti_segment_postings =
      (if segment_postings <= 0 then max_int else segment_postings);
    domains = (if domains < 1 then 1 else domains);
    planner = not no_planner;
  }

let fig1_url = "guide.com/restaurants.xml"

let build_db ~fig1 ~docs ~versions ~seed config =
  if fig1 then begin
    let ts = Txq_temporal.Timestamp.of_string in
    let xml = Txq_xml.Parse.parse_exn in
    let db = Txq_db.Db.create ~config () in
    ignore
      (Txq_db.Db.insert_document db ~url:fig1_url ~ts:(ts "01/01/2001")
         (xml "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"));
    ignore
      (Txq_db.Db.update_document db ~url:fig1_url ~ts:(ts "15/01/2001")
         (xml "<guide><restaurant><name>Napoli</name><price>15</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"));
    ignore
      (Txq_db.Db.update_document db ~url:fig1_url ~ts:(ts "31/01/2001")
         (xml "<guide><restaurant><name>Napoli</name><price>18</price></restaurant><restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"));
    db
  end
  else
    Txq_workload.Load.load_db ~config
      { Txq_workload.Load.default_spec with
        Txq_workload.Load.seed; documents = docs; versions }

(* The db term yields a thunk, not a database: tracing sinks must be
   installed before the build runs so the build's own spans (docstore
   commits, FTI updates) reach the sink too. *)
let db_term =
  let make fig1 docs versions seed snapshots clustered fti_mode segment_postings
      domains no_planner () =
    build_db ~fig1 ~docs ~versions ~seed
      (config_of snapshots clustered fti_mode segment_postings domains no_planner)
  in
  Term.(const make $ fig1_t $ docs_t $ versions_t $ seed_t $ snapshots_t
        $ clustered_t $ fti_mode_t $ segment_postings_t $ domains_t
        $ no_planner_t)

(* --- tracing ---------------------------------------------------------------- *)

let trace_t =
  Arg.(value & opt (some string) None & info ["trace"] ~docv:"FILE"
         ~doc:"Write every span of the run (database build included) to \
               $(docv) as JSON lines.")

let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let oc = open_out path in
    Txq_obs.Trace.set_sink (Some (Txq_obs.Trace.jsonl_sink oc));
    Fun.protect
      ~finally:(fun () ->
        Txq_obs.Trace.set_sink None;
        close_out oc)
      f

(* --- query ---------------------------------------------------------------- *)

let query_cmd =
  let query_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Temporal query: either 'SELECT R FROM \
                 doc(\"…\")[26/01/2001]/guide/restaurant R' or an algebra \
                 expression over version sets such as 'doc(\"a\")//name \
                 EXCEPT doc(\"b\")//name', with UNION, INTERSECT, EXCEPT, \
                 JOIN/LEFTJOIN/SEMIJOIN/ANTIJOIN [ON DOC|ANCESTOR|ALWAYS] \
                 and COUNT [BY DOC].")
  in
  let explain_t =
    Arg.(value & flag & info ["explain"]
           ~doc:"Print the operator plan instead of running the query.")
  in
  let analyze_t =
    Arg.(value & flag & info ["explain-analyze"]
           ~doc:"Print the plan, then run the query under tracing and \
                 append per-operator call counts, wall time and IO \
                 counters.")
  in
  let run mk_db trace explain analyze query =
    with_tracing trace @@ fun () ->
    let db = mk_db () in
    if analyze then
      match Txq_query.Exec.explain_analyze_string db query with
      | Ok report ->
        print_string report;
        `Ok ()
      | Error e -> `Error (false, Txq_query.Exec.error_to_string e)
    else if explain then
      match Txq_query.Exec.explain_string db query with
      | Ok plan ->
        print_string plan;
        `Ok ()
      | Error e -> `Error (false, Txq_query.Exec.error_to_string e)
    else
      match Txq_query.Exec.run_string db query with
      | Ok result ->
        print_string (Txq_xml.Print.to_pretty result);
        `Ok ()
      | Error e -> `Error (false, Txq_query.Exec.error_to_string e)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a temporal query against the database.")
    Term.(ret (const run $ db_term $ trace_t $ explain_t $ analyze_t $ query_t))

(* --- history ---------------------------------------------------------------- *)

let history_cmd =
  let url_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"URL" ~doc:"Document URL.")
  in
  let run mk_db trace url =
    with_tracing trace @@ fun () ->
    let db = mk_db () in
    match Txq_db.Db.find_all db url with
    | [] -> `Error (false, Printf.sprintf "no document at %s" url)
    | incarnations ->
      List.iter
        (fun d ->
          let id = Txq_db.Docstore.doc_id d in
          Printf.printf "document %d (%s)\n" id url;
          (match Txq_db.Docstore.first_version d with
           | 0 -> ()
           | b -> Printf.printf "  (versions below %d vacuumed)\n" b);
          for v = Txq_db.Docstore.first_version d
              to Txq_db.Docstore.version_count d - 1 do
            let iv = Txq_db.Docstore.version_interval d v in
            Printf.printf "  v%-3d %s  %d-node tree\n" v
              (Txq_temporal.Interval.to_string iv)
              (Txq_vxml.Vnode.size (Txq_db.Db.reconstruct db id v))
          done;
          match Txq_db.Docstore.deleted_at d with
          | Some ts ->
            Printf.printf "  deleted %s\n" (Txq_temporal.Timestamp.to_string ts)
          | None -> ())
        incarnations;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "history" ~doc:"Show the version chain of a document.")
    Term.(ret (const run $ db_term $ trace_t $ url_t))

(* --- show ------------------------------------------------------------------- *)

let show_cmd =
  let url_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"URL" ~doc:"Document URL.")
  in
  let at_t =
    Arg.(value & opt (some string) None & info ["at"] ~docv:"DD/MM/YYYY"
           ~doc:"Timestamp of the snapshot to show (default: current).")
  in
  let run mk_db trace url at =
    with_tracing trace @@ fun () ->
    let db = mk_db () in
    let shown =
      match at with
      | Some s -> (
        match Txq_temporal.Timestamp.of_string_opt s with
        | None -> Error (Printf.sprintf "bad timestamp %S" s)
        | Some ts -> (
          match Txq_db.Db.find_at db url ts with
          | Some (d, v) ->
            Ok (Txq_db.Db.reconstruct db (Txq_db.Docstore.doc_id d) v)
          | None -> Error (Printf.sprintf "no version of %s at %s" url s)))
      | None -> (
        match Txq_db.Db.find_live db url with
        | Some d -> Ok (Txq_db.Docstore.current d)
        | None -> Error (Printf.sprintf "no live document at %s" url))
    in
    match shown with
    | Ok tree ->
      print_string (Txq_xml.Print.to_pretty (Txq_vxml.Vnode.to_xml tree));
      `Ok ()
    | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a document version (current or at a time).")
    Term.(ret (const run $ db_term $ trace_t $ url_t $ at_t))

(* --- stats ------------------------------------------------------------------- *)

let stats_cmd =
  let metrics_t =
    Arg.(value & flag & info ["metrics"]
           ~doc:"Also dump the process metrics registry (counters, gauges \
                 and span-latency histograms accumulated while building).")
  in
  let run mk_db trace metrics =
    with_tracing trace @@ fun () ->
    let db = mk_db () in
    let io = Txq_db.Db.io_stats db in
    Printf.printf "documents:        %d\n" (Txq_db.Db.document_count db);
    Printf.printf "commits:          %d\n" (Txq_db.Db.stats db).Txq_db.Db.commits;
    Printf.printf "live pages:       %d (%d KiB)\n" (Txq_db.Db.live_pages db)
      (Txq_db.Db.live_pages db * 4);
    Printf.printf "io during build:  %s\n" (Txq_store.Io_stats.to_string io);
    Printf.printf "pinned snapshots: %d%s\n"
      (Txq_db.Db.pinned_snapshots db)
      (match Txq_db.Db.oldest_pinned_watermark db with
       | Some w -> Printf.sprintf " (oldest watermark %d)" w
       | None -> "");
    (match Txq_db.Db.config db with
     | { Txq_db.Config.fti_mode = Txq_db.Config.Fti_versions | Txq_db.Config.Fti_both; _ } ->
       let s = Txq_fti.Fti.stats (Txq_db.Db.fti db) in
       Printf.printf "fti words:        %d\n" s.Txq_fti.Fti.fs_words;
       Printf.printf "fti postings:     %d (%d open)\n"
         s.Txq_fti.Fti.fs_postings s.Txq_fti.Fti.fs_open_postings;
       Printf.printf "fti segments:     %d (%d freezes)\n"
         s.Txq_fti.Fti.fs_segments s.Txq_fti.Fti.fs_freezes;
       Printf.printf "fti tail postings: %d\n" s.Txq_fti.Fti.fs_tail_postings;
       Printf.printf "fti frozen bytes: %d (%d postings)\n"
         s.Txq_fti.Fti.fs_frozen_bytes s.Txq_fti.Fti.fs_frozen_postings
     | _ -> ());
    if metrics || trace <> None then begin
      Txq_store.Io_stats.publish io;
      Format.printf "@.metrics:@.%a@?" Txq_obs.Metrics.pp_dump ()
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Build the database and print storage/index statistics.")
    Term.(ret (const run $ db_term $ trace_t $ metrics_t))

(* --- verify ------------------------------------------------------------------- *)

let verify_cmd =
  let run mk_db trace =
    with_tracing trace @@ fun () ->
    let db = mk_db () in
    match Txq_db.Db.verify db with
    | Ok versions ->
      Printf.printf "ok: %d versions reconstruct cleanly\n" versions;
      `Ok ()
    | Error diagnostics ->
      List.iter (fun d -> Printf.eprintf "FAIL: %s\n" d) diagnostics;
      `Error (false, Printf.sprintf "%d integrity errors" (List.length diagnostics))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Reconstruct every stored version and check chain integrity.")
    Term.(ret (const run $ db_term $ trace_t))

(* --- vacuum ------------------------------------------------------------------- *)

let vacuum_cmd =
  let horizon_t =
    Arg.(value & opt (some string) None & info ["horizon"] ~docv:"DD/MM/YYYY"
           ~doc:"Retention horizon: history that stopped being current before \
                 this transaction time is squashed away; documents whose whole \
                 lifetime ended at or before it are dropped entirely.")
  in
  let keep_versions_t =
    Arg.(value & opt (some int) None & info ["keep-versions"] ~docv:"N"
           ~doc:"Keep at most the newest N versions of each document.")
  in
  let run mk_db trace horizon keep_versions =
    with_tracing trace @@ fun () ->
    match
      (Option.map Txq_temporal.Timestamp.of_string_opt horizon, keep_versions)
    with
    | Some None, _ ->
      `Error (false, Printf.sprintf "bad timestamp %S" (Option.get horizon))
    | None, None ->
      `Error (true, "vacuum needs --horizon and/or --keep-versions")
    | horizon, keep_versions ->
      let retention =
        {
          Txq_db.Config.keep_newer_than = Option.join horizon;
          keep_versions;
        }
      in
      let db = mk_db () in
      let pages_before = Txq_db.Db.live_pages db in
      let r = Txq_db.Db.vacuum ~retention db in
      Printf.printf "documents squashed: %d\n" r.Txq_db.Db.vr_docs_squashed;
      Printf.printf "documents dropped:  %d\n" r.Txq_db.Db.vr_docs_dropped;
      Printf.printf "versions dropped:   %d\n" r.Txq_db.Db.vr_versions_dropped;
      Printf.printf "pages freed:        %d (%d KiB reclaimed)\n"
        r.Txq_db.Db.vr_pages_freed (r.Txq_db.Db.vr_bytes_reclaimed / 1024);
      Printf.printf "index rows pruned:  %d postings, %d delta entries, %d \
                     cretime, %d doc-time\n"
        r.Txq_db.Db.vr_postings_pruned r.Txq_db.Db.vr_dfti_pruned
        r.Txq_db.Db.vr_cretime_pruned r.Txq_db.Db.vr_dtime_pruned;
      Printf.printf "live pages:         %d -> %d\n" pages_before
        (Txq_db.Db.live_pages db);
      (match Txq_db.Db.verify db with
       | Ok versions ->
         Printf.printf "verify:             ok, %d retained versions reconstruct\n"
           versions;
         `Ok ()
       | Error diagnostics ->
         List.iter (fun d -> Printf.eprintf "FAIL: %s\n" d) diagnostics;
         `Error
           (false, Printf.sprintf "%d integrity errors" (List.length diagnostics)))
  in
  Cmd.v
    (Cmd.info "vacuum"
       ~doc:"Build the database, apply a retention policy (squash old \
             versions into base snapshots, reclaim their space), and verify \
             the survivors.")
    Term.(ret (const run $ db_term $ trace_t $ horizon_t $ keep_versions_t))

(* --- recover ------------------------------------------------------------------- *)

let recover_cmd =
  let crash_after_t =
    Arg.(value & opt (some int) None & info ["crash-after"] ~docv:"N"
           ~doc:"After the build, keep committing and tear the N-th disk write \
                 (a deterministic torn-page crash), then recover from the \
                 surviving pages.")
  in
  let run fig1 docs versions seed snapshots clustered fti_mode segment_postings
      domains crash_after trace =
    with_tracing trace @@ fun () ->
    let config =
      Txq_db.Config.durable
        (config_of snapshots clustered fti_mode segment_postings domains false)
    in
    let db = build_db ~fig1 ~docs ~versions ~seed config in
    let disk = Txq_db.Db.disk db in
    (match crash_after with
     | None -> ()
     | Some n ->
       Txq_store.Disk.fail_after_writes disk n;
       let url =
         match Txq_db.Db.doc_ids db with
         | id :: _ -> Txq_db.Docstore.url (Txq_db.Db.doc db id)
         | [] -> fig1_url
       in
       (try
          for _ = 1 to 10_000 do
            match Txq_db.Db.find_live db url with
            | Some d ->
              ignore
                (Txq_db.Db.update_document db ~url
                   (Txq_vxml.Vnode.to_xml (Txq_db.Docstore.current d)))
            | None -> raise Exit
          done;
          Printf.eprintf "warning: the workload never reached write %d\n" n
        with
        | Txq_store.Disk.Crash ->
          Printf.printf "crash injected: disk write %d tore mid-page\n" n
        | Exit -> ());
       Txq_store.Disk.clear_fault disk);
    let rdb = Txq_db.Db.recover disk config in
    Printf.printf "recovered documents: %d\n" (Txq_db.Db.document_count rdb);
    Printf.printf "recovered commits:   %d\n"
      (Txq_db.Db.stats rdb).Txq_db.Db.commits;
    (match Txq_db.Db.config rdb with
     | { Txq_db.Config.fti_mode = Txq_db.Config.Fti_versions
                                | Txq_db.Config.Fti_both; _ } ->
       let fti = Txq_db.Db.fti rdb in
       Printf.printf "fti rebuilt:         %d postings, %d segments, %d tail\n"
         (Txq_fti.Fti.posting_count fti)
         (Txq_fti.Fti.segment_count fti)
         (Txq_fti.Fti.tail_posting_count fti)
     | _ -> ());
    (match Txq_db.Db.journal rdb with
     | Some j ->
       Printf.printf "journal:             %d records on %d pages\n"
         (Txq_store.Journal.record_count j) (Txq_store.Journal.page_count j)
     | None -> ());
    match Txq_db.Db.verify rdb with
    | Ok versions ->
      Printf.printf "verify:              ok, %d versions reconstruct\n" versions;
      `Ok ()
    | Error diagnostics ->
      List.iter (fun d -> Printf.eprintf "FAIL: %s\n" d) diagnostics;
      `Error (false, Printf.sprintf "%d integrity errors" (List.length diagnostics))
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Build a journaled database, optionally crash it mid-commit, and \
             rebuild it from the disk image alone.")
    Term.(ret (const run $ fig1_t $ docs_t $ versions_t $ seed_t $ snapshots_t
               $ clustered_t $ fti_mode_t $ segment_postings_t $ domains_t
               $ crash_after_t $ trace_t))

(* --- restore ------------------------------------------------------------------- *)

let restore_cmd =
  let as_of_t =
    Arg.(required & opt (some string) None & info ["as-of"] ~docv:"DD/MM/YYYY"
           ~doc:"Transaction-time restore point (inclusive: a commit stamped \
                 exactly $(docv) is part of the restored state).")
  in
  let into_t =
    Arg.(value & opt (some string) None & info ["into"] ~docv:"DIR"
           ~doc:"Save the restored store's disk image into a fresh directory \
                 $(docv) (refused if it exists), then reopen and verify it \
                 from the saved image alone.")
  in
  let run fig1 docs versions seed snapshots clustered fti_mode segment_postings
      domains trace as_of into =
    with_tracing trace @@ fun () ->
    match Txq_temporal.Timestamp.of_string_opt as_of with
    | None -> `Error (false, Printf.sprintf "bad timestamp %S" as_of)
    | Some ts ->
      let config =
        Txq_db.Config.durable
          (config_of snapshots clustered fti_mode segment_postings domains false)
      in
      let db = build_db ~fig1 ~docs ~versions ~seed config in
      let restored = Txq_db.Db.restore_as_of db ~as_of:ts in
      Printf.printf "source:   %d documents, %d commits\n"
        (Txq_db.Db.document_count db) (Txq_db.Db.stats db).Txq_db.Db.commits;
      Printf.printf "restored: %d documents, %d commits as of %s\n"
        (Txq_db.Db.document_count restored)
        (Txq_db.Db.stats restored).Txq_db.Db.commits
        (Txq_temporal.Timestamp.to_string ts);
      let verified label rdb =
        match Txq_db.Db.verify rdb with
        | Ok versions ->
          Printf.printf "verify %s: ok, %d versions reconstruct\n" label versions;
          `Ok ()
        | Error diagnostics ->
          List.iter (fun d -> Printf.eprintf "FAIL: %s\n" d) diagnostics;
          `Error
            (false, Printf.sprintf "%d integrity errors" (List.length diagnostics))
      in
      (match verified "(in-memory)" restored with
       | `Error _ as e -> e
       | `Ok () -> (
         match into with
         | None -> `Ok ()
         | Some dir -> (
           match Txq_store.Disk.save_to_dir (Txq_db.Db.disk restored) dir with
           | exception Invalid_argument msg -> `Error (false, msg)
           | () ->
             let disk = Txq_store.Disk.load_from_dir dir in
             let reopened = Txq_db.Db.recover disk (Txq_db.Db.config restored) in
             Printf.printf "saved:    %s (%d pages); reopened %d documents, \
                            %d commits\n"
               dir
               (Txq_store.Disk.page_count disk)
               (Txq_db.Db.document_count reopened)
               (Txq_db.Db.stats reopened).Txq_db.Db.commits;
             verified "(reopened)" reopened)))
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:"Build a journaled database, clone it as of a past transaction \
             time by replaying the shipped journal prefix, and verify the \
             clone (optionally saving its disk image to a directory).")
    Term.(ret (const run $ fig1_t $ docs_t $ versions_t $ seed_t $ snapshots_t
               $ clustered_t $ fti_mode_t $ segment_postings_t $ domains_t
               $ trace_t $ as_of_t $ into_t))

let main =
  let doc = "temporal XML database (Nørvåg 2002 reproduction)" in
  Cmd.group
    (Cmd.info "txmldb" ~version:"1.0.0" ~doc)
    [query_cmd; history_cmd; show_cmd; stats_cmd; verify_cmd; vacuum_cmd;
     recover_cmd; restore_cmd]

let () = exit (Cmd.eval main)
