(* txmldbd — the multi-client temporal XML query daemon.

   `serve` builds a seeded store (the store is an in-memory simulator, as
   in txmldb) and listens until SIGTERM/SIGINT, then shuts down
   gracefully and reports leaked snapshot pins in its exit status.
   `query`, `explain`, `analyze`, `metrics` and `stats` are thin protocol
   clients against a running daemon; `smoke` spins a daemon up in-process
   and drives a mixed multi-client workload against it over real
   sockets, gating on errors and a minimum QPS. *)

open Cmdliner
module Server = Txq_server.Server
module Client = Txq_server.Client
module Loadgen = Txq_server.Loadgen

(* --- shared options ------------------------------------------------------ *)

let docs_t =
  Arg.(value & opt int 10 & info ["docs"] ~docv:"N" ~doc:"Generated guide documents.")

let versions_t =
  Arg.(value & opt int 20 & info ["versions"] ~docv:"N" ~doc:"Versions per document.")

let seed_t = Arg.(value & opt int 42 & info ["seed"] ~docv:"SEED" ~doc:"Workload seed.")

let host_t =
  Arg.(value & opt string "127.0.0.1" & info ["host"] ~docv:"ADDR" ~doc:"Bind/connect address.")

let port_t =
  Arg.(value & opt int 7400 & info ["port"] ~docv:"PORT"
         ~doc:"TCP port (0 picks an ephemeral port when serving).")

let readers_t =
  Arg.(value & opt int 8 & info ["readers"] ~docv:"N"
         ~doc:"Reader-domain pool size: connections served concurrently.")

let build_db ~docs ~versions ~seed =
  Txq_workload.Load.load_db
    { Txq_workload.Load.default_spec with
      Txq_workload.Load.seed; documents = docs; versions }

(* --- serve --------------------------------------------------------------- *)

let serve_cmd =
  let run host port readers docs versions seed =
    let db = build_db ~docs ~versions ~seed in
    let config = { Server.default_config with Server.host; port; readers } in
    let server = Server.start ~config db in
    Printf.printf "listening on %s:%d (%d readers, %d documents)\n%!" host
      (Server.port server) readers (Txq_db.Db.document_count db);
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_requested) do
      Thread.delay 0.1
    done;
    let leaked = Server.stop server in
    Printf.printf "clean shutdown: %d leaked snapshot pin(s), %d commits\n%!"
      leaked (Txq_db.Db.stats db).Txq_db.Db.commits;
    if leaked = 0 then `Ok () else `Error (false, "shutdown leaked snapshot pins")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Build a seeded store and serve it until SIGTERM; exits \
             non-zero if shutdown leaks a pinned snapshot.")
    Term.(ret (const run $ host_t $ port_t $ readers_t $ docs_t $ versions_t
               $ seed_t))

(* --- protocol clients ---------------------------------------------------- *)

let with_client host port f =
  match Client.connect ~host ~port () with
  | exception Unix.Unix_error (e, _, _) ->
    `Error
      (false,
       Printf.sprintf "cannot reach %s:%d: %s" host port (Unix.error_message e))
  | c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let print_reply = function
  | Ok r ->
    print_string r.Client.body;
    if r.Client.body <> "" && not (String.ends_with ~suffix:"\n" r.Client.body)
    then print_newline ();
    `Ok ()
  | Stdlib.Error (code, msg) ->
    `Error (false, Printf.sprintf "server error %d: %s" code msg)

let statement_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STATEMENT"
         ~doc:"A SELECT query or algebra expression.")

let client_cmd name ~doc request =
  let run host port stmt =
    with_client host port @@ fun c -> print_reply (Client.request c (request stmt))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const run $ host_t $ port_t $ statement_pos))

let query_cmd =
  client_cmd "query" ~doc:"Run a statement against a running daemon."
    (fun s -> Txq_server.Protocol.Query s)

let explain_cmd =
  client_cmd "explain" ~doc:"Fetch a statement's operator plan from a running daemon."
    (fun s -> Txq_server.Protocol.Explain s)

let analyze_cmd =
  client_cmd "analyze"
    ~doc:"Run a statement under tracing on the daemon and print the profile."
    (fun s -> Txq_server.Protocol.Analyze s)

let plain_cmd name ~doc request =
  let run host port =
    with_client host port @@ fun c -> print_reply (Client.request c request)
  in
  Cmd.v (Cmd.info name ~doc) Term.(ret (const run $ host_t $ port_t))

let metrics_cmd =
  plain_cmd "metrics" ~doc:"Dump a running daemon's metrics registry."
    Txq_server.Protocol.Metrics

let stats_cmd =
  plain_cmd "stats" ~doc:"Dump a running daemon's store and connection stats."
    Txq_server.Protocol.Stats

(* --- smoke --------------------------------------------------------------- *)

let smoke_cmd =
  let clients_t =
    Arg.(value & opt int 8 & info ["clients"] ~docv:"N" ~doc:"Concurrent protocol clients.")
  in
  let ops_t =
    Arg.(value & opt int 50 & info ["ops"] ~docv:"N" ~doc:"Operations per client.")
  in
  let min_qps_t =
    Arg.(value & opt float 0.0 & info ["min-qps"] ~docv:"QPS"
           ~doc:"Fail unless sustained throughput reaches $(docv).")
  in
  let run readers docs versions seed clients ops min_qps =
    let db = build_db ~docs ~versions ~seed in
    let server =
      Server.start ~config:{ Server.default_config with Server.readers } db
    in
    let port = Server.port server in
    let report =
      Loadgen.closed_loop ~port ~clients ~ops_per_client:ops
        ~reconnect_every:20 ~seed ()
    in
    let leaked = Server.stop server in
    let p50 = Loadgen.percentile report.Loadgen.r_latencies_us 50.0 in
    let p99 = Loadgen.percentile report.Loadgen.r_latencies_us 99.0 in
    Printf.printf
      "smoke: %d ops, %d errors, %d disconnects, %.0f qps, p50 %.0fus, \
       p99 %.0fus, %d rows, %d body bytes, %d leaked pins\n%!"
      report.Loadgen.r_ops report.Loadgen.r_errors report.Loadgen.r_disconnects
      report.Loadgen.r_qps p50 p99 report.Loadgen.r_rows report.Loadgen.r_bytes
      leaked;
    let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt in
    if report.Loadgen.r_ops <> clients * ops then
      fail "expected %d ops, saw %d" (clients * ops) report.Loadgen.r_ops
    else if report.Loadgen.r_errors > 0 then
      fail "%d requests answered with errors" report.Loadgen.r_errors
    else if report.Loadgen.r_disconnects > 0 then
      fail "%d connections dropped" report.Loadgen.r_disconnects
    else if leaked > 0 then fail "%d leaked snapshot pins" leaked
    else if report.Loadgen.r_qps < min_qps then
      fail "%.0f qps under the %.0f gate" report.Loadgen.r_qps min_qps
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:"Start an in-process daemon, drive a mixed multi-client \
             workload over sockets with connection churn, and gate on \
             errors, leaked pins and minimum QPS.")
    Term.(ret (const run $ readers_t $ docs_t $ versions_t $ seed_t $ clients_t
               $ ops_t $ min_qps_t))

let main =
  let doc = "temporal XML database daemon" in
  Cmd.group
    (Cmd.info "txmldbd" ~version:"1.0.0" ~doc)
    [serve_cmd; query_cmd; explain_cmd; analyze_cmd; metrics_cmd; stats_cmd;
     smoke_cmd]

let () = exit (Cmd.eval main)
