(* txmldbd — the multi-client temporal XML query daemon.

   `serve` builds a seeded store (the store is an in-memory simulator, as
   in txmldb) and listens until SIGTERM/SIGINT, then shuts down
   gracefully and reports leaked snapshot pins in its exit status.
   `query`, `explain`, `analyze`, `metrics` and `stats` are thin protocol
   clients against a running daemon; `smoke` spins a daemon up in-process
   and drives a mixed multi-client workload against it over real
   sockets, gating on errors and a minimum QPS. *)

open Cmdliner
module Server = Txq_server.Server
module Client = Txq_server.Client
module Protocol = Txq_server.Protocol
module Loadgen = Txq_server.Loadgen

(* --- shared options ------------------------------------------------------ *)

let docs_t =
  Arg.(value & opt int 10 & info ["docs"] ~docv:"N" ~doc:"Generated guide documents.")

let versions_t =
  Arg.(value & opt int 20 & info ["versions"] ~docv:"N" ~doc:"Versions per document.")

let seed_t = Arg.(value & opt int 42 & info ["seed"] ~docv:"SEED" ~doc:"Workload seed.")

let host_t =
  Arg.(value & opt string "127.0.0.1" & info ["host"] ~docv:"ADDR" ~doc:"Bind/connect address.")

let port_t =
  Arg.(value & opt int 7400 & info ["port"] ~docv:"PORT"
         ~doc:"TCP port (0 picks an ephemeral port when serving).")

let readers_t =
  Arg.(value & opt int 8 & info ["readers"] ~docv:"N"
         ~doc:"Reader-domain pool size: connections served concurrently.")

(* Serving stores journal their commits: a primary must be shippable
   (SHIP needs a journal) and a replica must reopen after a kill. *)
let build_db ~docs ~versions ~seed =
  Txq_workload.Load.load_db
    ~config:(Txq_db.Config.durable Txq_db.Config.default)
    { Txq_workload.Load.default_spec with
      Txq_workload.Load.seed; documents = docs; versions }

(* --- serve --------------------------------------------------------------- *)

let wait_for_sigterm () =
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.1
  done

(* The replica's pull loop: one thread polling the primary's SHIP opcode
   and applying shipments in order.  Transport errors drop the connection
   and retry — the stream position ([Replay.applied]) makes every retry
   idempotent. *)
let pull_from_primary rp ~host ~port ~poll_s stop =
  let apply_batch c =
    let rec go () =
      if Atomic.get stop then ()
      else begin
        let from = Txq_db.Db.Replay.applied rp in
        match Client.ship c ~from () with
        | Ok ([], _) -> Thread.delay poll_s; go ()
        | Ok (shipments, _) ->
          List.iter (Txq_db.Db.Replay.apply rp) shipments;
          go ()
        | Stdlib.Error (code, msg) ->
          (* E_ship_gap in particular is fatal: this replica's base
             predates the primary's retained history *)
          Printf.eprintf "ship failed (error %d): %s\n%!" code msg;
          if code <> Protocol.error_code_to_int Protocol.E_ship_gap then
            Thread.delay poll_s
          else Atomic.set stop true
      end
    in
    go ()
  in
  while not (Atomic.get stop) do
    (match Client.connect ~host ~port () with
     | exception Unix.Unix_error _ -> Thread.delay poll_s
     | c ->
       Fun.protect
         ~finally:(fun () -> Client.close c)
         (fun () -> try apply_batch c with Client.Disconnected -> ()))
  done

let replica_of_t =
  Arg.(value & opt (some string) None & info ["replica-of"] ~docv:"HOST:PORT"
         ~doc:"Serve as a read replica of the primary at $(docv): start \
               empty, tail its journal over the SHIP opcode, and serve \
               reads from the replayed store (writes are refused).")

let poll_ms_t =
  Arg.(value & opt int 50 & info ["poll-ms"] ~docv:"MS"
         ~doc:"Replica poll interval when caught up (default 50).")

let serve_cmd =
  let run host port readers docs versions seed replica_of poll_ms =
    let config = { Server.default_config with Server.host; port; readers } in
    match replica_of with
    | None ->
      let db = build_db ~docs ~versions ~seed in
      let server = Server.start ~config db in
      Printf.printf "listening on %s:%d (%d readers, %d documents)\n%!" host
        (Server.port server) readers (Txq_db.Db.document_count db);
      wait_for_sigterm ();
      let leaked = Server.stop server in
      Printf.printf "clean shutdown: %d leaked snapshot pin(s), %d commits\n%!"
        leaked (Txq_db.Db.stats db).Txq_db.Db.commits;
      if leaked = 0 then `Ok ()
      else `Error (false, "shutdown leaked snapshot pins")
    | Some target -> (
      match String.rindex_opt target ':' with
      | None -> `Error (true, Printf.sprintf "bad --replica-of %S" target)
      | Some i ->
        let phost = String.sub target 0 i in
        (match
           int_of_string_opt
             (String.sub target (i + 1) (String.length target - i - 1))
         with
         | None -> `Error (true, Printf.sprintf "bad --replica-of %S" target)
         | Some pport ->
           let rp = Txq_db.Db.Replay.create () in
           let stop = Atomic.make false in
           let poll_s = float_of_int (Stdlib.max 1 poll_ms) /. 1000. in
           let puller =
             Thread.create
               (fun () -> pull_from_primary rp ~host:phost ~port:pport ~poll_s stop)
               ()
           in
           let db = Txq_db.Db.Replay.db rp in
           let server = Server.start ~config db in
           Printf.printf "replica of %s:%d listening on %s:%d (%d readers)\n%!"
             phost pport host (Server.port server) readers;
           wait_for_sigterm ();
           Atomic.set stop true;
           Thread.join puller;
           let leaked = Server.stop server in
           Printf.printf
             "clean shutdown: %d leaked snapshot pin(s), %d records applied\n%!"
             leaked (Txq_db.Db.Replay.applied rp);
           if leaked = 0 then `Ok ()
           else `Error (false, "shutdown leaked snapshot pins")))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a seeded store (or, with --replica-of, a live read \
             replica of another daemon) until SIGTERM; exits non-zero if \
             shutdown leaks a pinned snapshot.")
    Term.(ret (const run $ host_t $ port_t $ readers_t $ docs_t $ versions_t
               $ seed_t $ replica_of_t $ poll_ms_t))

(* --- protocol clients ---------------------------------------------------- *)

let with_client host port f =
  match Client.connect ~host ~port () with
  | exception Unix.Unix_error (e, _, _) ->
    `Error
      (false,
       Printf.sprintf "cannot reach %s:%d: %s" host port (Unix.error_message e))
  | c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let print_reply = function
  | Ok r ->
    print_string r.Client.body;
    if r.Client.body <> "" && not (String.ends_with ~suffix:"\n" r.Client.body)
    then print_newline ();
    `Ok ()
  | Stdlib.Error (code, msg) ->
    `Error (false, Printf.sprintf "server error %d: %s" code msg)

let statement_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STATEMENT"
         ~doc:"A SELECT query or algebra expression.")

let client_cmd name ~doc request =
  let run host port stmt =
    with_client host port @@ fun c -> print_reply (Client.request c (request stmt))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const run $ host_t $ port_t $ statement_pos))

let query_cmd =
  client_cmd "query" ~doc:"Run a statement against a running daemon."
    (fun s -> Txq_server.Protocol.Query s)

let explain_cmd =
  client_cmd "explain" ~doc:"Fetch a statement's operator plan from a running daemon."
    (fun s -> Txq_server.Protocol.Explain s)

let analyze_cmd =
  client_cmd "analyze"
    ~doc:"Run a statement under tracing on the daemon and print the profile."
    (fun s -> Txq_server.Protocol.Analyze s)

let url_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"URL"
         ~doc:"Document URL.")

let doc_pos =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"XML"
         ~doc:"Document bytes (an XML string).")

let insert_cmd =
  let run host port url doc =
    with_client host port @@ fun c -> print_reply (Client.insert c ~url doc)
  in
  Cmd.v
    (Cmd.info "insert" ~doc:"Insert a new document on a running daemon.")
    Term.(ret (const run $ host_t $ port_t $ url_pos $ doc_pos))

let update_cmd =
  let run host port url doc =
    with_client host port @@ fun c -> print_reply (Client.update c ~url doc)
  in
  Cmd.v
    (Cmd.info "update" ~doc:"Commit a new version of a document on a running daemon.")
    Term.(ret (const run $ host_t $ port_t $ url_pos $ doc_pos))

let delete_cmd =
  let run host port url =
    with_client host port @@ fun c -> print_reply (Client.delete c ~url)
  in
  Cmd.v
    (Cmd.info "delete" ~doc:"Logically delete a document on a running daemon.")
    Term.(ret (const run $ host_t $ port_t $ url_pos))

let plain_cmd name ~doc request =
  let run host port =
    with_client host port @@ fun c -> print_reply (Client.request c request)
  in
  Cmd.v (Cmd.info name ~doc) Term.(ret (const run $ host_t $ port_t))

let metrics_cmd =
  plain_cmd "metrics" ~doc:"Dump a running daemon's metrics registry."
    Txq_server.Protocol.Metrics

let stats_cmd =
  plain_cmd "stats" ~doc:"Dump a running daemon's store and connection stats."
    Txq_server.Protocol.Stats

(* --- smoke --------------------------------------------------------------- *)

let smoke_cmd =
  let clients_t =
    Arg.(value & opt int 8 & info ["clients"] ~docv:"N" ~doc:"Concurrent protocol clients.")
  in
  let ops_t =
    Arg.(value & opt int 50 & info ["ops"] ~docv:"N" ~doc:"Operations per client.")
  in
  let min_qps_t =
    Arg.(value & opt float 0.0 & info ["min-qps"] ~docv:"QPS"
           ~doc:"Fail unless sustained throughput reaches $(docv).")
  in
  let run readers docs versions seed clients ops min_qps =
    let db = build_db ~docs ~versions ~seed in
    let server =
      Server.start ~config:{ Server.default_config with Server.readers } db
    in
    let port = Server.port server in
    let report =
      Loadgen.closed_loop ~port ~clients ~ops_per_client:ops
        ~reconnect_every:20 ~seed ()
    in
    let leaked = Server.stop server in
    let p50 = Loadgen.percentile report.Loadgen.r_latencies_us 50.0 in
    let p99 = Loadgen.percentile report.Loadgen.r_latencies_us 99.0 in
    Printf.printf
      "smoke: %d ops, %d errors, %d disconnects, %.0f qps, p50 %.0fus, \
       p99 %.0fus, %d rows, %d body bytes, %d leaked pins\n%!"
      report.Loadgen.r_ops report.Loadgen.r_errors report.Loadgen.r_disconnects
      report.Loadgen.r_qps p50 p99 report.Loadgen.r_rows report.Loadgen.r_bytes
      leaked;
    let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt in
    if report.Loadgen.r_ops <> clients * ops then
      fail "expected %d ops, saw %d" (clients * ops) report.Loadgen.r_ops
    else if report.Loadgen.r_errors > 0 then
      fail "%d requests answered with errors" report.Loadgen.r_errors
    else if report.Loadgen.r_disconnects > 0 then
      fail "%d connections dropped" report.Loadgen.r_disconnects
    else if leaked > 0 then fail "%d leaked snapshot pins" leaked
    else if report.Loadgen.r_qps < min_qps then
      fail "%.0f qps under the %.0f gate" report.Loadgen.r_qps min_qps
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:"Start an in-process daemon, drive a mixed multi-client \
             workload over sockets with connection churn, and gate on \
             errors, leaked pins and minimum QPS.")
    Term.(ret (const run $ readers_t $ docs_t $ versions_t $ seed_t $ clients_t
               $ ops_t $ min_qps_t))

let main =
  let doc = "temporal XML database daemon" in
  Cmd.group
    (Cmd.info "txmldbd" ~version:"1.0.0" ~doc)
    [serve_cmd; query_cmd; explain_cmd; analyze_cmd; insert_cmd; update_cmd;
     delete_cmd; metrics_cmd; stats_cmd; smoke_cmd]

let () = exit (Cmd.eval main)
