module Eid = Txq_vxml.Eid
module Xidpath = Txq_vxml.Xidpath
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Pattern = Txq_core.Pattern
module Scan = Txq_core.Scan
module Vrange = Txq_core.Vrange
module Glob = Txq_core.Glob
module Trace = Txq_obs.Trace

type source_kind = Doc | Collection

type leaf = {
  l_kind : source_kind;
  l_url : string;
  l_path : string;
  l_word : string option;
}

type set_op = Union | Intersect | Except

type join_kind = Join | Left_join | Semi_join | Anti_join

type join_on = On_doc | On_ancestor | On_always

type group_key = By_doc | By_all

type t =
  | Scan of leaf
  | Set of set_op * t * t
  | Joinop of join_kind * join_on * t * t
  | Group of group_key * t

let rec arity = function
  | Scan _ -> 1
  | Set (_, a, _) -> arity a
  | Joinop ((Join | Left_join), _, a, b) -> arity a + arity b
  | Joinop ((Semi_join | Anti_join), _, a, _) -> arity a
  | Group (By_doc, _) -> 2
  | Group (By_all, _) -> 1

(* What the leading column of a node's tuples is: the join predicates and
   BY DOC grouping read it. *)
let rec leading = function
  | Scan _ -> `Node
  | Set (_, a, _) -> leading a
  | Joinop (_, _, a, _) -> leading a
  | Group (By_doc, _) -> `Doc
  | Group (By_all, _) -> `Count

let set_op_to_string = function
  | Union -> "UNION"
  | Intersect -> "INTERSECT"
  | Except -> "EXCEPT"

let join_kind_to_string = function
  | Join -> "JOIN"
  | Left_join -> "LEFTJOIN"
  | Semi_join -> "SEMIJOIN"
  | Anti_join -> "ANTIJOIN"

let join_on_to_string = function
  | On_doc -> "ON DOC"
  | On_ancestor -> "ON ANCESTOR"
  | On_always -> "ON ALWAYS"

let leaf_to_string l =
  Printf.sprintf "%s(%S)%s%s"
    (match l.l_kind with Doc -> "doc" | Collection -> "collection")
    l.l_url l.l_path
    (match l.l_word with None -> "" | Some w -> Printf.sprintf " = %S" w)

let rec to_string = function
  | Scan l -> leaf_to_string l
  | Set (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (set_op_to_string op)
      (to_string b)
  | Joinop (k, on, a, b) ->
    Printf.sprintf "(%s %s %s %s)" (to_string a) (join_kind_to_string k)
      (join_on_to_string on) (to_string b)
  | Group (By_doc, a) -> Printf.sprintf "COUNT BY DOC (%s)" (to_string a)
  | Group (By_all, a) -> Printf.sprintf "COUNT (%s)" (to_string a)

let span_name = function
  | Scan _ -> "algebra.scan"
  | Set (Union, _, _) -> "algebra.union"
  | Set (Intersect, _, _) -> "algebra.intersect"
  | Set (Except, _, _) -> "algebra.except"
  | Joinop (Join, _, _, _) -> "algebra.join"
  | Joinop (Left_join, _, _, _) -> "algebra.leftjoin"
  | Joinop (Semi_join, _, _, _) -> "algebra.semijoin"
  | Joinop (Anti_join, _, _, _) -> "algebra.antijoin"
  | Group (_, _) -> "algebra.count"

let leaf_pattern l = Pattern.of_path ?value:l.l_word l.l_path

let rec validate node =
  let ( let* ) = Result.bind in
  match node with
  | Scan l ->
    let* _ = leaf_pattern l in
    Ok ()
  | Set (op, a, b) ->
    let* () = validate a in
    let* () = validate b in
    if arity a <> arity b then
      Error
        (Printf.sprintf "%s operands have arities %d and %d"
           (set_op_to_string op) (arity a) (arity b))
    else Ok ()
  | Joinop (k, on, a, b) ->
    let* () = validate a in
    let* () = validate b in
    let docish n = match leading n with `Node | `Doc -> true | `Count -> false in
    (match on with
     | On_always -> Ok ()
     | On_doc ->
       if docish a && docish b then Ok ()
       else
         Error
           (Printf.sprintf "%s ON DOC needs document-valued leading columns"
              (join_kind_to_string k))
     | On_ancestor ->
       if leading a = `Node && leading b = `Node then Ok ()
       else
         Error
           (Printf.sprintf "%s ON ANCESTOR needs node-valued leading columns"
              (join_kind_to_string k)))
  | Group (key, a) ->
    let* () = validate a in
    (match key with
     | By_all -> Ok ()
     | By_doc ->
       if leading a <> `Count then Ok ()
       else Error "COUNT BY DOC needs a document-valued leading column")

(* --- predicates --------------------------------------------------------- *)

let doc_of_tuple = function
  | Relation.F_node (d, _) :: _ | Relation.F_doc d :: _ -> Some d
  | _ -> None

let on_holds on ltu rtu =
  match on with
  | On_always -> true
  | On_doc -> (
    match (doc_of_tuple ltu, doc_of_tuple rtu) with
    | Some a, Some b -> a = b
    | _ -> false)
  | On_ancestor -> (
    match (ltu, rtu) with
    | Relation.F_node (da, pa) :: _, Relation.F_node (db, pb) :: _ ->
      da = db && Xidpath.is_strict_prefix pa pb
    | _ -> false)

(* --- leaves -------------------------------------------------------------- *)

let leaf_doc_ids db l =
  match l.l_kind with
  | Doc -> List.map Docstore.doc_id (Db.find_all db l.l_url)
  | Collection ->
    List.filter
      (fun id -> Glob.matches ~pattern:l.l_url (Docstore.url (Db.doc db id)))
      (Db.doc_ids db)

let eval_leaf ?domains db tl l =
  let pattern =
    match leaf_pattern l with
    | Ok p -> p
    | Error e -> invalid_arg ("Algebra.eval: " ^ e)
  in
  let docs = leaf_doc_ids db l in
  let bindings =
    List.filter
      (fun b -> List.mem b.Scan.b_doc docs)
      (Scan.tpattern_scan_all ?domains db pattern)
  in
  Relation.normalize
    (List.map
       (fun b ->
         {
           Relation.tuple = [ Relation.F_node (b.Scan.b_doc, b.Scan.b_path) ];
           valid = Timeline.of_intervals tl (Scan.binding_intervals db b);
         })
       bindings)

(* --- set operators ------------------------------------------------------- *)

let index_by_key rel =
  let tbl : (string, Relation.row) Hashtbl.t =
    Hashtbl.create (List.length rel * 2)
  in
  List.iter (fun r -> Hashtbl.replace tbl (Relation.tuple_key r.Relation.tuple) r) rel;
  tbl

let eval_set op l r =
  match op with
  | Union -> Relation.normalize (l @ r)
  | Intersect ->
    let rt = index_by_key r in
    Relation.normalize
      (List.filter_map
         (fun (row : Relation.row) ->
           match Hashtbl.find_opt rt (Relation.tuple_key row.tuple) with
           | None -> None
           | Some rr ->
             Some { row with valid = Vrange.inter row.valid rr.valid })
         l)
  | Except ->
    let rt = index_by_key r in
    Relation.normalize
      (List.map
         (fun (row : Relation.row) ->
           match Hashtbl.find_opt rt (Relation.tuple_key row.tuple) with
           | None -> row
           | Some rr -> { row with valid = Vrange.diff row.valid rr.valid })
         l)

(* --- joins ---------------------------------------------------------------- *)

let eval_join kind on l r ~right_arity =
  let rows =
    List.concat_map
      (fun (lr : Relation.row) ->
        let matches =
          List.filter
            (fun (rr : Relation.row) -> on_holds on lr.tuple rr.tuple)
            r
        in
        match kind with
        | Join ->
          List.map
            (fun (rr : Relation.row) ->
              {
                Relation.tuple = lr.tuple @ rr.tuple;
                valid = Vrange.inter lr.valid rr.valid;
              })
            matches
        | Left_join ->
          let inner =
            List.map
              (fun (rr : Relation.row) ->
                {
                  Relation.tuple = lr.tuple @ rr.tuple;
                  valid = Vrange.inter lr.valid rr.valid;
                })
              matches
          in
          let covered =
            Vrange.coalesce (List.map (fun (rr : Relation.row) -> rr.valid) matches)
          in
          let nulls = List.init right_arity (fun _ -> Relation.F_null) in
          { Relation.tuple = lr.tuple @ nulls;
            valid = Vrange.diff lr.valid covered }
          :: inner
        | Semi_join ->
          let covered =
            Vrange.coalesce (List.map (fun (rr : Relation.row) -> rr.valid) matches)
          in
          [ { lr with valid = Vrange.inter lr.valid covered } ]
        | Anti_join ->
          let covered =
            Vrange.coalesce (List.map (fun (rr : Relation.row) -> rr.valid) matches)
          in
          [ { lr with valid = Vrange.diff lr.valid covered } ])
      l
  in
  Relation.normalize rows

(* --- interval-split aggregation ------------------------------------------- *)

let eval_group key rel =
  let groups : (string, Relation.tuple * Vrange.t list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (row : Relation.row) ->
      let gk =
        match key with
        | By_all -> []
        | By_doc -> (
          match doc_of_tuple row.tuple with
          | Some d -> [ Relation.F_doc d ]
          | None -> invalid_arg "Algebra.eval: COUNT BY DOC without a document")
      in
      let k = Relation.tuple_key gk in
      match Hashtbl.find_opt groups k with
      | Some (_, vs) -> vs := row.valid :: !vs
      | None -> Hashtbl.add groups k (gk, ref [ row.valid ]))
    rel;
  let rows =
    Hashtbl.fold
      (fun _ (gk, vs) acc ->
        let vsets = !vs in
        (* elementary segments between consecutive split points; the count
           is constant on each, then equal-count segments re-coalesce *)
        let points = Vrange.split_points vsets in
        let by_count : (int, (int * int) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        let rec segments = function
          | a :: (b :: _ as rest) ->
            let c =
              List.length (List.filter (fun v -> Vrange.mem a v) vsets)
            in
            (if c > 0 then
               match Hashtbl.find_opt by_count c with
               | Some segs -> segs := (a, b) :: !segs
               | None -> Hashtbl.add by_count c (ref [ (a, b) ]));
            segments rest
          | _ -> ()
        in
        segments points;
        Hashtbl.fold
          (fun c segs acc ->
            {
              Relation.tuple = gk @ [ Relation.F_int c ];
              valid = Vrange.of_list !segs;
            }
            :: acc)
          by_count acc)
      groups []
  in
  Relation.normalize rows

(* --- evaluation ------------------------------------------------------------ *)

let rec eval ?domains db tl node =
  let traced f =
    if not (Trace.enabled ()) then f ()
    else
      Trace.with_span (span_name node)
        ~attrs:[ ("node", Txq_obs.Span.Str (to_string node)) ]
        (fun () ->
          let rel = f () in
          Trace.add_count "rows" (Relation.cardinality rel);
          rel)
  in
  traced @@ fun () ->
  match node with
  | Scan l -> eval_leaf ?domains db tl l
  | Set (op, a, b) ->
    let l = eval ?domains db tl a in
    let r = eval ?domains db tl b in
    eval_set op l r
  | Joinop (k, on, a, b) ->
    let l = eval ?domains db tl a in
    let r = eval ?domains db tl b in
    eval_join k on l r ~right_arity:(arity b)
  | Group (key, a) -> eval_group key (eval ?domains db tl a)
