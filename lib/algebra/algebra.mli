(** Temporal relational algebra over TEID result sets.

    The paper's operators stop at single-pattern queries with validity
    ranges; this layer composes them.  Following Date's per-instant model
    (a temporal relation is a compressed encoding of one plain relation
    per instant), every operator here is {e defined} by its non-temporal
    counterpart applied instant-by-instant, and {e implemented} by interval
    arithmetic on the rows' validity sets — splitting, intersecting,
    subtracting and re-coalescing instant ranges so that at every version
    the result equals the plain operator applied to the per-instant slices.
    {!Oracle} is the executable form of the definition; the property tests
    differentiate the two.

    Leaves are the paper's own operators: a pattern scan over all versions
    ([TPatternScanAll]) restricted to one URL's incarnations or to a URL
    glob.  Rows are single-column element tuples; joins widen tuples,
    semijoins and antijoins keep the left tuple, aggregation replaces the
    tuple with group key and value. *)

type source_kind = Doc | Collection

type leaf = {
  l_kind : source_kind;
  l_url : string;  (** URL ([Doc]) or URL glob ([Collection]) *)
  l_path : string;  (** location path, e.g. ["/guide//name"] *)
  l_word : string option;  (** optional word test under the output node *)
}

type set_op = Union | Intersect | Except

type join_kind = Join | Left_join | Semi_join | Anti_join

type join_on =
  | On_doc  (** leading columns bound in the same document *)
  | On_ancestor
      (** left's leading node is a strict ancestor of right's (same
          document, strict XID-path prefix) *)
  | On_always  (** temporal cross product *)

type group_key = By_doc | By_all

type t =
  | Scan of leaf
  | Set of set_op * t * t
  | Joinop of join_kind * join_on * t * t
  | Group of group_key * t
      (** interval-split [COUNT]: the timeline is split at every member
          row's validity endpoints, the count is taken per elementary
          segment, and segments with equal counts coalesce *)

val arity : t -> int
(** Number of columns in the node's tuples. *)

val validate : t -> (unit, string) result
(** Leaf paths compile to patterns, set operands have equal arity, join
    predicates and [BY DOC] grouping have the columns they need. *)

val to_string : t -> string

val span_name : t -> string
(** The [Txq_obs] span this node's evaluation runs under
    (["algebra.union"], ["algebra.join"], …). *)

val doc_of_tuple : Relation.tuple -> Txq_vxml.Eid.doc_id option
(** The document of the leading column, if it has one. *)

val on_holds : join_on -> Relation.tuple -> Relation.tuple -> bool
(** The join predicate on tuples (shared with {!Oracle}: predicates are
    instant-free, only the temporal machinery differs). *)

val leaf_pattern : leaf -> (Txq_core.Pattern.t, string) result
val leaf_doc_ids : Txq_db.Db.t -> leaf -> Txq_vxml.Eid.doc_id list

val eval_leaf : ?domains:int -> Txq_db.Db.t -> Timeline.t -> leaf -> Relation.t
(** One scan leaf, normalized.  Raises [Invalid_argument] on a leaf whose
    path does not compile. *)

val eval_set : set_op -> Relation.t -> Relation.t -> Relation.t

val eval_join :
  join_kind -> join_on -> Relation.t -> Relation.t -> right_arity:int ->
  Relation.t

val eval_group : group_key -> Relation.t -> Relation.t
(** The per-operator combiners behind {!eval}, exported so a planner can
    re-drive them in a different evaluation order.  Each takes and returns
    normalized relations; combining in any operand-preserving order yields
    the same bytes as {!eval}. *)

val eval : ?domains:int -> Txq_db.Db.t -> Timeline.t -> t -> Relation.t
(** Evaluates the node; every sub-node runs under its {!span_name} span
    with a ["rows"] count, so [EXPLAIN ANALYZE] reports per-algebra-node
    calls and timings.  Raises [Invalid_argument] on a node {!validate}
    rejects.  [?domains] overrides the scan worker-domain count
    (results are identical for every value). *)
