module Db = Txq_db.Db
module Scan = Txq_core.Scan
module Vrange = Txq_core.Vrange

let dedup tuples =
  List.sort_uniq
    (fun a b -> String.compare (Relation.tuple_key a) (Relation.tuple_key b))
    tuples

let mem_tbl tuples =
  let tbl = Hashtbl.create (List.length tuples * 2) in
  List.iter (fun tu -> Hashtbl.replace tbl (Relation.tuple_key tu) ()) tuples;
  fun tu -> Hashtbl.mem tbl (Relation.tuple_key tu)

let rec tuples_at ?domains db tl node i =
  match (node : Algebra.t) with
  | Scan l ->
    let pattern =
      match Algebra.leaf_pattern l with
      | Ok p -> p
      | Error e -> invalid_arg ("Oracle.eval: " ^ e)
    in
    let docs = Algebra.leaf_doc_ids db l in
    dedup
      (List.filter_map
         (fun (b : Scan.binding) ->
           if List.mem b.b_doc docs then
             Some [ Relation.F_node (b.b_doc, b.b_path) ]
           else None)
         (Scan.tpattern_scan ?domains db pattern (Timeline.instant tl i)))
  | Set (op, a, b) ->
    let l = tuples_at ?domains db tl a i in
    let r = tuples_at ?domains db tl b i in
    (match op with
     | Union -> dedup (l @ r)
     | Intersect ->
       let in_r = mem_tbl r in
       dedup (List.filter in_r l)
     | Except ->
       let in_r = mem_tbl r in
       dedup (List.filter (fun tu -> not (in_r tu)) l))
  | Joinop (kind, on, a, b) ->
    let l = tuples_at ?domains db tl a i in
    let r = tuples_at ?domains db tl b i in
    dedup
      (List.concat_map
         (fun ltu ->
           let matches = List.filter (Algebra.on_holds on ltu) r in
           match kind with
           | Join -> List.map (fun rtu -> ltu @ rtu) matches
           | Left_join ->
             if matches = [] then
               [ ltu @ List.init (Algebra.arity b) (fun _ -> Relation.F_null) ]
             else List.map (fun rtu -> ltu @ rtu) matches
           | Semi_join -> if matches = [] then [] else [ ltu ]
           | Anti_join -> if matches = [] then [ ltu ] else [])
         l)
  | Group (key, a) ->
    let members = tuples_at ?domains db tl a i in
    let groups : (string, Relation.tuple * int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun tu ->
        let gk =
          match key with
          | Algebra.By_all -> []
          | Algebra.By_doc -> (
            match Algebra.doc_of_tuple tu with
            | Some d -> [ Relation.F_doc d ]
            | None -> invalid_arg "Oracle.eval: COUNT BY DOC without a document")
        in
        let k = Relation.tuple_key gk in
        match Hashtbl.find_opt groups k with
        | Some (_, n) -> incr n
        | None -> Hashtbl.add groups k (gk, ref 1))
      members;
    dedup
      (Hashtbl.fold
         (fun _ (gk, n) acc -> (gk @ [ Relation.F_int !n ]) :: acc)
         groups [])

let eval ?domains db tl node =
  let n = Timeline.length tl in
  let acc : (string, Relation.tuple * (int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  for i = 0 to n - 1 do
    List.iter
      (fun tu ->
        let range = if i = n - 1 then (i, max_int) else (i, i + 1) in
        let k = Relation.tuple_key tu in
        match Hashtbl.find_opt acc k with
        | Some (_, rs) -> rs := range :: !rs
        | None -> Hashtbl.add acc k (tu, ref [ range ]))
      (tuples_at ?domains db tl node i)
  done;
  Relation.normalize
    (Hashtbl.fold
       (fun _ (tu, rs) rows ->
         { Relation.tuple = tu; valid = Vrange.of_list !rs } :: rows)
       acc [])
