(** The per-instant naive evaluator — the algebra's executable definition.

    For every instant on the {!Timeline} it materializes the per-instant
    relation of each node (leaves via the snapshot operator
    [TPatternScan], an independent code path from the all-versions join
    the algebra uses), applies the {e plain} relational operator on plain
    tuple sets, then re-coalesces consecutive instants into validity
    ranges (presence at the last instant extends to "until changed").

    Cost is O(instants × snapshot scan), which is exactly why the algebra
    exists; correctness is trivial by construction, which is exactly why
    the oracle exists.  The qcheck differentials assert
    [render (eval …) = render (Algebra.eval …)] — identical rows and
    identical interval sets. *)

val tuples_at :
  ?domains:int ->
  Txq_db.Db.t -> Timeline.t -> Algebra.t -> int -> Relation.tuple list
(** The plain relation at one instant index (sorted, distinct tuples). *)

val eval : ?domains:int -> Txq_db.Db.t -> Timeline.t -> Algebra.t -> Relation.t
(** Sweep all instants and re-coalesce.  Raises [Invalid_argument] on a
    node {!Algebra.validate} rejects. *)
