module Eid = Txq_vxml.Eid
module Xidpath = Txq_vxml.Xidpath
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Vrange = Txq_core.Vrange
module Xml = Txq_xml.Xml

type field =
  | F_node of Eid.doc_id * Xidpath.t
  | F_doc of Eid.doc_id
  | F_int of int
  | F_null

type tuple = field list

type row = { tuple : tuple; valid : Vrange.t }

type t = row list

let field_to_string = function
  | F_node (d, p) -> Printf.sprintf "%d:%s" d (Xidpath.to_string p)
  | F_doc d -> Printf.sprintf "doc=%d" d
  | F_int n -> Printf.sprintf "n=%d" n
  | F_null -> "null"

let tuple_key tu = String.concat " | " (List.map field_to_string tu)

let normalize rows =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if not (Vrange.is_empty r.valid) then begin
        let k = tuple_key r.tuple in
        match Hashtbl.find_opt tbl k with
        | Some prev ->
          Hashtbl.replace tbl k
            { prev with valid = Vrange.union prev.valid r.valid }
        | None -> Hashtbl.add tbl k r
      end)
    rows;
  List.sort
    (fun a b -> String.compare (tuple_key a.tuple) (tuple_key b.tuple))
    (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])

let cardinality t = List.length t

let clip_intervals clip_from ivs =
  match clip_from with
  | None -> ivs
  | Some from ->
    let window =
      Interval.make ~start:from ~stop:Timestamp.plus_infinity
    in
    List.filter_map (fun iv -> Interval.intersect iv window) ivs

let render ?clip_from tl t =
  List.filter_map
    (fun r ->
      match clip_intervals clip_from (Timeline.to_intervals tl r.valid) with
      | [] -> None
      | ivs ->
        Some
          (Printf.sprintf "%s @ %s" (tuple_key r.tuple)
             (String.concat " " (List.map Interval.to_string ivs))))
    t

let field_to_xml = function
  | F_node (d, p) ->
    Xml.element "node"
      ~attrs:[ ("doc", string_of_int d); ("path", Xidpath.to_string p) ]
      []
  | F_doc d -> Xml.element "doc" ~attrs:[ ("id", string_of_int d) ] []
  | F_int n -> Xml.element "count" [ Xml.text (string_of_int n) ]
  | F_null -> Xml.element "null" []

let row_to_xml tl r =
  Xml.element "row"
    (List.map field_to_xml r.tuple
    @ [
        Xml.element "valid"
          (List.map
             (fun iv ->
               Xml.element "interval"
                 ~attrs:
                   [
                     ("from", Timestamp.to_string (Interval.start iv));
                     ("to", Timestamp.to_string (Interval.stop iv));
                   ]
                 [])
             (Timeline.to_intervals tl r.valid));
      ])

let to_xml tl t = Xml.element "results" (List.map (row_to_xml tl) t)
