(** Temporal relations: tuples of typed fields, each row carrying a
    coalesced validity set over the {!Timeline}'s instant indices.

    A relation is kept {e normalized}: distinct tuples, non-empty coalesced
    validity, rows sorted by tuple.  Under Date's per-instant model a
    normalized relation is a canonical form — two relations are equal as
    idealized per-instant tables iff they are structurally equal here,
    which is what the differential tests compare (via {!render}, in
    timestamp space so stores with different instant sets can be
    compared after clipping). *)

type field =
  | F_node of Txq_vxml.Eid.doc_id * Txq_vxml.Xidpath.t
      (** a matched element, identified by document and XID path *)
  | F_doc of Txq_vxml.Eid.doc_id  (** a grouping key *)
  | F_int of int  (** an aggregate value *)
  | F_null  (** the padding of an outer join's unmatched side *)

type tuple = field list

type row = { tuple : tuple; valid : Txq_core.Vrange.t }

type t = row list
(** Normalized; build with {!normalize}. *)

val field_to_string : field -> string
val tuple_key : tuple -> string
(** Canonical rendering of a tuple; equal tuples have equal keys. *)

val normalize : row list -> t
(** Merges rows with equal tuples (validity union), drops empty rows,
    sorts by tuple key. *)

val cardinality : t -> int

val render :
  ?clip_from:Txq_temporal.Timestamp.t -> Timeline.t -> t -> string list
(** One line per row: tuple key plus timestamp intervals (sorted; rows
    whose validity clips to nothing are dropped).  [clip_from] intersects
    every interval with [\[clip_from, +inf)] — the retained-window
    comparison after a vacuum. *)

val row_to_xml : Timeline.t -> row -> Txq_xml.Xml.t
(** One [<row>fields…<valid>…</valid></row>] element — the unit a
    streaming server emits per chunk. *)

val to_xml : Timeline.t -> t -> Txq_xml.Xml.t
(** [<results><row>fields…<valid><interval from=… to=…/>…</valid></row>…];
    the concatenation of {!row_to_xml} over the rows. *)
