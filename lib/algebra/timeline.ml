module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Vrange = Txq_core.Vrange

type t = { instants : Timestamp.t array }

let of_db db =
  let acc = ref [] in
  List.iter
    (fun id ->
      let d = Db.doc db id in
      for v = Docstore.first_version d to Docstore.version_count d - 1 do
        acc := Docstore.ts_of_version d v :: !acc
      done;
      match Docstore.deleted_at d with
      | Some ts -> acc := ts :: !acc
      | None -> ())
    (Db.doc_ids db);
  { instants = Array.of_list (List.sort_uniq Timestamp.compare !acc) }

let length t = Array.length t.instants
let instant t i = t.instants.(i)

let index_from t ts =
  let lo = ref 0 and hi = ref (Array.length t.instants) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Timestamp.(t.instants.(mid) < ts) then lo := mid + 1 else hi := mid
  done;
  !lo

let of_intervals t ivs =
  Vrange.coalesce
    (List.map
       (fun iv ->
         let a = index_from t (Interval.start iv) in
         let stop = Interval.stop iv in
         let b =
           if Timestamp.equal stop Timestamp.plus_infinity then max_int
           else index_from t stop
         in
         Vrange.singleton a b)
       ivs)

let to_intervals t vr =
  let n = Array.length t.instants in
  List.filter_map
    (fun (a, b) ->
      if a >= n then None
      else
        let start = t.instants.(a) in
        let stop =
          if b >= n then Timestamp.plus_infinity else t.instants.(b)
        in
        Interval.make_opt ~start ~stop)
    (Vrange.to_list vr)
