(** The database's global instant domain.

    Version numbers are per-document, so validity sets of rows from
    different documents are not directly comparable.  The algebra therefore
    works on a shared axis: the sorted array of every event instant the
    database has seen — each retained version's commit timestamp plus each
    document's deletion instant.  Between two consecutive instants nothing
    changes, so Date's idealized per-instant relation is constant there;
    instant {e indices} are a faithful finite encoding of it, and validity
    sets over them reuse {!Txq_core.Vrange} unchanged (index range
    [\[a, b)], with [b = max_int] for "until changed").

    Converting a timestamp interval in and back out is lossless as long as
    its endpoints are event instants, which every operator input and output
    guarantees. *)

type t

val of_db : Txq_db.Db.t -> t
(** Collects the event instants of every document: commit timestamps of
    the versions at or above the vacuum base, plus the deletion instant of
    dead documents. *)

val length : t -> int
val instant : t -> int -> Txq_temporal.Timestamp.t

val index_from : t -> Txq_temporal.Timestamp.t -> int
(** First index whose instant is [>= ts]; [length t] when every instant is
    earlier. *)

val of_intervals : t -> Txq_temporal.Interval.t list -> Txq_core.Vrange.t
(** Timestamp intervals to an instant-index range set ([+inf] maps to an
    open range). *)

val to_intervals : t -> Txq_core.Vrange.t -> Txq_temporal.Interval.t list
(** Instant-index ranges back to timestamp intervals (an open range, or one
    reaching past the last instant, maps to [+inf)). *)
