let count = List.length

let count_versions db bindings =
  List.fold_left
    (fun acc b ->
      let limit =
        Txq_db.Docstore.version_count (Txq_db.Db.doc db b.Scan.b_doc)
      in
      acc + Vrange.spans (Vrange.clip ~limit b.Scan.b_versions))
    0 bindings

let numeric_value db teid =
  match Reconstruct_op.reconstruct db teid with
  | None -> None
  | Some tree ->
    float_of_string_opt (String.trim (Txq_vxml.Vnode.text_content tree))

let values db teids = List.filter_map (numeric_value db) teids

let sum db teids = List.fold_left ( +. ) 0.0 (values db teids)

let avg db teids =
  match values db teids with
  | [] -> None
  | vs -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let min_max db teids =
  match values db teids with
  | [] -> None
  | v :: vs ->
    Some
      (List.fold_left
         (fun (lo, hi) x -> (Stdlib.min lo x, Stdlib.max hi x))
         (v, v) vs)
