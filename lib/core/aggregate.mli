(** Traditional aggregate operators over scan results (Section 6.2, Q2).

    The point the paper makes with Q2 is architectural: COUNT/SUM over
    pattern-scan bindings needs {e no reconstruction} — the binding count
    comes straight from the index join.  [sum] and [avg], which aggregate
    element {e values}, do reconstruct; the cost difference is experiment
    E2. *)

val count : Scan.binding list -> int
(** Cardinality; touches no stored version. *)

val count_versions : Txq_db.Db.t -> Scan.binding list -> int
(** Total matched (element, version) pairs; still index-only — the db is
    consulted only for each document's version count, which bounds
    open-ended validity ranges (a match valid "until now" spans every
    version up to the head, not one). *)

val numeric_value : Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t -> float option
(** The element's text content at that time, parsed as a number
    (reconstructs). *)

val sum : Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t list -> float
(** Sum of numeric values over TEIDs; non-numeric and unresolvable elements
    contribute nothing. *)

val avg : Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t list -> float option

val min_max :
  Txq_db.Db.t -> Txq_vxml.Eid.Temporal.t list -> (float * float) option
