module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta
module Diff = Txq_vxml.Diff
module Xid = Txq_vxml.Xid
module Eid = Txq_vxml.Eid

let diff_trees a b =
  Txq_obs.Trace.with_span "diff.diff_trees" @@ fun () ->
  let gen = Xid.Gen.create () in
  (match Vnode.max_xid a with
   | Some m -> Xid.Gen.mark_used gen m
   | None -> ());
  Delta.to_xml (Diff.diff_vnodes ~gen a b)

let diff db teid1 teid2 =
  match (Reconstruct_op.reconstruct db teid1, Reconstruct_op.reconstruct db teid2) with
  | Some a, Some b -> Ok (diff_trees a b)
  | None, _ ->
    Error (Printf.sprintf "Diff: %s does not resolve" (Eid.Temporal.to_string teid1))
  | _, None ->
    Error (Printf.sprintf "Diff: %s does not resolve" (Eid.Temporal.to_string teid2))
