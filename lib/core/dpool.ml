(* Minimal work-stealing-free domain pool: tasks are claimed off a shared
   atomic counter and results written into a per-index slot, so the output
   order is the input order whatever the interleaving.  Workers must be
   pure with respect to global state — in particular they must not touch
   the Metrics/Trace registries, which are single-writer; per-domain
   bookkeeping is folded into the registry here, on the calling domain,
   after every join. *)

let map ?(min_per_task = 1) ~domains tasks f =
  let n = Array.length tasks in
  (* Fan-out threshold: spawning a domain costs tens of microseconds, so
     a scan whose whole task array is smaller than one spawn must not pay
     for [domains - 1] of them (the E15b regression).  [min_per_task]
     expresses the work a spawned domain must amortize, in tasks: the
     effective width is at most [n / min_per_task]. *)
  let domains =
    if min_per_task <= 1 then domains
    else Stdlib.min domains (Stdlib.max 1 (n / min_per_task))
  in
  if domains <= 1 || n <= 1 then begin
    if n > 0 then Txq_obs.Metrics.incr ~by:n "dpool.tasks";
    Array.map f tasks
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let processed = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f tasks.(i));
          incr processed;
          loop ()
        end
      in
      loop ();
      !processed
    in
    let spawned = min domains n - 1 in
    let handles = Array.init spawned (fun _ -> Domain.spawn worker) in
    (* The calling domain's share runs under a handler: raising here before
       the joins below would leak every spawned domain.  Every handle is
       always joined (Domain.join re-raises a worker's exception), and only
       then is the first failure — own-domain first — re-raised. *)
    let err = ref None in
    let own =
      match worker () with
      | c -> c
      | exception e ->
        err := Some e;
        0
    in
    let joined =
      Array.fold_left
        (fun acc h ->
          match Domain.join h with
          | c -> acc + c
          | exception e ->
            if !err = None then err := Some e;
            acc)
        own handles
    in
    Txq_obs.Metrics.incr ~by:joined "dpool.tasks";
    Txq_obs.Metrics.incr ~by:(spawned + 1) "dpool.domains";
    (match !err with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index < n was claimed exactly once *))
      results
  end
