(** A small stdlib-[Domain] worker pool for data-parallel map.

    [map ~domains tasks f] computes [Array.map f tasks].  With
    [domains <= 1] (or fewer than two tasks) it runs inline on the calling
    domain — byte-for-byte the sequential behaviour.  Otherwise it spawns
    [min domains (Array.length tasks) - 1] extra domains that claim task
    indices from a shared atomic counter; results land in their input
    slot, so the output order equals the input order regardless of
    scheduling.

    [f] must be pure with respect to process-global state: it must not
    write the (single-writer) {!Txq_obs.Metrics} / {!Txq_obs.Trace}
    registries and must not mutate shared structures.  Pool bookkeeping
    ([dpool.tasks], [dpool.domains] counters) is folded into the metrics
    registry on the calling domain after all joins.

    A worker exception is re-raised on the calling domain after every
    domain has been joined. *)

val map : domains:int -> 'a array -> ('a -> 'b) -> 'b array
