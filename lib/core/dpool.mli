(** A small stdlib-[Domain] worker pool for data-parallel map.

    [map ~domains tasks f] computes [Array.map f tasks].  With
    [domains <= 1] (or fewer than two tasks) it runs inline on the calling
    domain — byte-for-byte the sequential behaviour.  Otherwise it spawns
    [min domains (Array.length tasks) - 1] extra domains that claim task
    indices from a shared atomic counter; results land in their input
    slot, so the output order equals the input order regardless of
    scheduling.

    [?min_per_task] (default 1 = no threshold) is the number of tasks a
    spawned domain must have available to amortize its spawn cost: the
    effective fan-out is capped at [Array.length tasks / min_per_task],
    so small inputs run inline however many domains were requested.

    [f] must be pure with respect to process-global state: it must not
    mutate shared structures, and it must not take locks the calling
    domain could be holding.  Writes to the {!Txq_obs.Metrics} registry
    are serialized and therefore safe, but pool bookkeeping
    ([dpool.tasks], [dpool.domains] counters) is still folded into the
    registry on the calling domain after all joins.

    A worker exception is re-raised on the calling domain after every
    domain has been joined. *)

val map :
  ?min_per_task:int -> domains:int -> 'a array -> ('a -> 'b) -> 'b array
