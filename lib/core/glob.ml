let matches ~pattern subject =
  let np = String.length pattern and ns = String.length subject in
  (* classic two-pointer wildcard match with backtracking on the last star *)
  let i = ref 0 and j = ref 0 in
  let star = ref (-1) and mark = ref 0 in
  let ok = ref true in
  while !j < ns && !ok do
    if !i < np && (pattern.[!i] = subject.[!j]) then begin
      incr i;
      incr j
    end
    else if !i < np && pattern.[!i] = '*' then begin
      star := !i;
      mark := !j;
      incr i
    end
    else if !star >= 0 then begin
      i := !star + 1;
      incr mark;
      j := !mark
    end
    else ok := false
  done;
  while !ok && !i < np && pattern.[!i] = '*' do
    incr i
  done;
  !ok && !i = np
