(** URL globs for [collection("…")] sources: [*] matches any (possibly
    empty) substring; every other character matches itself. *)

val matches : pattern:string -> string -> bool
