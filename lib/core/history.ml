module Eid = Txq_vxml.Eid
module Vnode = Txq_vxml.Vnode
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval

type doc_version = {
  dv_teid : Eid.Temporal.t;
  dv_version : int;
  dv_interval : Interval.t;
}

let doc_history db doc_id ~t1 ~t2 =
  if Timestamp.(t2 <= t1) then []
  else
    Txq_obs.Trace.with_span "history.doc_history" @@ fun () ->
    let d = Db.doc db doc_id in
    let window = Interval.make ~start:t1 ~stop:t2 in
    let n = Docstore.version_count d in
    let rec collect v acc =
      if v >= n then acc
      else
        let iv = Docstore.version_interval d v in
        match Interval.intersect iv window with
        | None -> collect (v + 1) acc
        | Some clipped ->
          let root_xid = Vnode.xid (Docstore.current d) in
          let teid =
            Eid.Temporal.make
              (Eid.make ~doc:doc_id ~xid:root_xid)
              (Interval.start clipped)
          in
          collect (v + 1)
            ({ dv_teid = teid; dv_version = v; dv_interval = clipped } :: acc)
    in
    (* collected ascending then reversed: most recent first; versions below
       the first retained one were vacuumed and cannot be listed *)
    collect (Docstore.first_version d) []

module Xidmap = Txq_vxml.Xidmap
module Xid = Txq_vxml.Xid
module Delta = Txq_vxml.Delta

type element_version = {
  ev_teid : Eid.Temporal.t;
  ev_version : int;
  ev_interval : Interval.t;
  ev_tree : Vnode.t;
}

let doc_history_trees db doc_id ~t1 ~t2 =
  if Timestamp.(t2 <= t1) then []
  else
    Txq_obs.Trace.with_span "history.doc_history_trees" @@ fun () ->
    let d = Db.doc db doc_id in
    match Docstore.versions_overlapping d ~t1 ~t2 with
    | None -> []
    | Some (v_lo, v_hi) ->
      let window = Interval.make ~start:t1 ~stop:t2 in
      let root_xid = Vnode.xid (Docstore.current d) in
      List.map
        (fun (v, tree) ->
          let clipped =
            match Interval.intersect (Docstore.version_interval d v) window with
            | Some iv -> iv
            | None -> assert false (* v overlaps by construction *)
          in
          ( {
              dv_teid =
                Eid.Temporal.make
                  (Eid.make ~doc:doc_id ~xid:root_xid)
                  (Interval.start clipped);
              dv_version = v;
              dv_interval = clipped;
            },
            tree ))
        (Db.reconstruct_range db doc_id ~lo:v_lo ~hi:v_hi)

(* --- single-sweep element history --------------------------------------- *)

(* Is [xid] the element or inside its subtree, in the current map state? *)
let under_element map root_xid xid =
  Xidmap.mem map xid
  &&
  let rec up x =
    Xid.equal x root_xid
    ||
    match Xidmap.parent map x with
    | Some p -> up p
    | None -> false
  in
  up xid

(* Does this forward operation (v-1 -> v) change the element's content?
   Checked against the state at v, where every referenced parent/target
   exists.  A move of the element itself only repositions it among its
   siblings — its own content, hence its version, is unchanged
   (Section 4's element-timestamp model). *)
let op_touches map root_xid = function
  | Delta.Update { xid; _ } | Delta.Rename { xid; _ } | Delta.Set_attr { xid; _ }
    -> under_element map root_xid xid
  | Delta.Insert { parent; _ } | Delta.Delete { parent; _ } ->
    under_element map root_xid parent
  | Delta.Move { xid; old_parent; new_parent; _ } ->
    (under_element map root_xid xid && not (Xid.equal xid root_xid))
    || under_element map root_xid old_parent
    || under_element map root_xid new_parent

(* Runs of consecutive versions over which the element's subtree is
   unchanged (no delta operation touched it and its presence never
   flipped), newest first.  Within a run the subtree is byte- and
   XID-identical across versions, so the per-version history is just the
   run expanded. *)
let sweep_runs db eid ~t1 ~t2 =
  let d = Db.doc db eid.Eid.doc in
  match Docstore.versions_overlapping d ~t1 ~t2 with
  | None -> []
  | Some (v_lo, v_hi) ->
    let map = Xidmap.of_vnode (Db.reconstruct db eid.Eid.doc v_hi) in
    let root_xid = eid.Eid.xid in
    let io = Db.io_stats db in
    let out = ref [] in
    let emit ~run_lo ~run_hi tree = out := (run_lo, run_hi, tree) :: !out in
    (* walk newest -> oldest; [run_hi] is the top of the current run, and
       [run_tree] its content (None while the element is absent) *)
    let run_hi = ref v_hi in
    let run_tree =
      ref
        (if Xidmap.mem map root_xid then Some (Xidmap.subtree map root_xid)
         else None)
    in
    for v = v_hi downto v_lo + 1 do
      (* step from state v to state v-1 *)
      let delta = Db.read_delta db eid.Eid.doc v in
      let touched =
        List.exists (op_touches map root_xid) delta.Delta.ops
      in
      Delta.apply_backward map delta;
      io.Txq_store.Io_stats.deltas_applied <-
        io.Txq_store.Io_stats.deltas_applied + 1;
      Txq_obs.Trace.add_count "deltas_applied" 1;
      let present = Xidmap.mem map root_xid in
      let was_present = !run_tree <> None in
      if touched || present <> was_present then begin
        (* the run [v .. run_hi] ends; emit it if the element existed *)
        (match !run_tree with
         | Some tree -> emit ~run_lo:v ~run_hi:!run_hi tree
         | None -> ());
        run_hi := v - 1;
        run_tree := (if present then Some (Xidmap.subtree map root_xid) else None)
      end
    done;
    (match !run_tree with
     | Some tree -> emit ~run_lo:v_lo ~run_hi:!run_hi tree
     | None -> ());
    (* emitted oldest-last while walking down; !out is oldest-first, return
       newest-first *)
    List.rev !out

let clip_interval d ~t1 ~t2 v =
  let window = Interval.make ~start:t1 ~stop:t2 in
  match Interval.intersect (Docstore.version_interval d v) window with
  | Some iv -> iv
  | None -> assert false (* callers only clip overlapping versions *)

let element_history_sweep db eid ~t1 ~t2 () =
  Txq_obs.Trace.with_span "history.element_history_sweep" @@ fun () ->
  let d = Db.doc db eid.Eid.doc in
  let clip = clip_interval d ~t1 ~t2 in
  List.map
    (fun (run_lo, run_hi, tree) ->
      let interval =
        Interval.make
          ~start:(Interval.start (clip run_lo))
          ~stop:(Interval.stop (clip run_hi))
      in
      {
        ev_teid = Eid.Temporal.make eid (Interval.start interval);
        ev_version = run_lo;
        ev_interval = interval;
        ev_tree = tree;
      })
    (sweep_runs db eid ~t1 ~t2)

let element_history db eid ~t1 ~t2 ?(distinct = false) () =
  if distinct then element_history_sweep db eid ~t1 ~t2 ()
  else
    Txq_obs.Trace.with_span "history.element_history" @@ fun () ->
    (* per-version history = the distinct runs expanded: within a run the
       subtree is identical (XIDs included), only the intervals differ *)
    let d = Db.doc db eid.Eid.doc in
    let clip = clip_interval d ~t1 ~t2 in
    List.concat_map
      (fun (run_lo, run_hi, tree) ->
        List.init
          (run_hi - run_lo + 1)
          (fun i ->
            let v = run_hi - i in
            let interval = clip v in
            {
              ev_teid = Eid.Temporal.make eid (Interval.start interval);
              ev_version = v;
              ev_interval = interval;
              ev_tree = tree;
            }))
      (sweep_runs db eid ~t1 ~t2)
