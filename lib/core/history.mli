(** DocHistory and ElementHistory (Sections 6.1, 7.3.4, 7.3.5). *)

type doc_version = {
  dv_teid : Txq_vxml.Eid.Temporal.t;  (** TEID of the version's root *)
  dv_version : int;
  dv_interval : Txq_temporal.Interval.t;  (** validity, clipped to the query
                                              window *)
}

val doc_history :
  Txq_db.Db.t ->
  Txq_vxml.Eid.doc_id ->
  t1:Txq_temporal.Timestamp.t ->
  t2:Txq_temporal.Timestamp.t ->
  doc_version list
(** All versions of the document valid in [\[t1, t2)], {e most recent
    first} — the paper notes the reconstruction algorithm naturally outputs
    the history backwards (Section 7.3.4).  Metadata only: no
    reconstruction happens. *)

val doc_history_trees :
  Txq_db.Db.t ->
  Txq_vxml.Eid.doc_id ->
  t1:Txq_temporal.Timestamp.t ->
  t2:Txq_temporal.Timestamp.t ->
  (doc_version * Txq_vxml.Vnode.t) list
(** {!doc_history} with every version materialized, most recent first.  The
    trees come from one batched {!Txq_db.Db.reconstruct_range} sweep — one
    delta application per step instead of one chain walk per version — and
    land in the version cache for later single-version requests. *)

type element_version = {
  ev_teid : Txq_vxml.Eid.Temporal.t;
  ev_version : int;
  ev_interval : Txq_temporal.Interval.t;
  ev_tree : Txq_vxml.Vnode.t;  (** the element's subtree in that version *)
}

val element_history :
  Txq_db.Db.t ->
  Txq_vxml.Eid.t ->
  t1:Txq_temporal.Timestamp.t ->
  t2:Txq_temporal.Timestamp.t ->
  ?distinct:bool ->
  unit ->
  element_version list
(** All versions of the element valid in [\[t1, t2)], most recent first.
    Versions where the element is absent are skipped.  [distinct] collapses
    runs of consecutive versions whose subtree did not change — the element
    timestamp model of Section 4 (an element is updated only when it or a
    descendant changes); default [false].

    Both modes are computed from the single backward sweep of
    {!element_history_sweep}: within a run no delta operation touched the
    subtree, so the per-version ([distinct:false]) entries of a run share
    one tree (XIDs included) and differ only in their validity intervals.
    The paper's naive form — DocHistory, then filter the subtree out of
    every version — survives as the differential oracle in the test
    suite. *)

val element_history_sweep :
  Txq_db.Db.t ->
  Txq_vxml.Eid.t ->
  t1:Txq_temporal.Timestamp.t ->
  t2:Txq_temporal.Timestamp.t ->
  unit ->
  element_version list
(** Same result as [element_history ~distinct:true], computed with a single
    backward sweep: reconstruct the newest version in the window once, then
    apply each completed delta backward exactly once, materializing the
    element only at the versions where a delta operation touched its
    subtree.  This is the kind of technique Section 8 calls for to "reduce
    the number of delta versions that have to be retrieved": the naive
    algorithm reads O(n²) deltas over an n-version window, the sweep reads
    each delta once. *)
