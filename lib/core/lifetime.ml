module Eid = Txq_vxml.Eid
module Delta = Txq_vxml.Delta
module Xid = Txq_vxml.Xid
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Cretime_index = Txq_db.Cretime_index
module Timestamp = Txq_temporal.Timestamp

type strategy = [ `Traverse | `Index ]

type bound =
  | Exact of Timestamp.t
  | At_or_before of Timestamp.t

let bound_ts = function Exact ts | At_or_before ts -> ts

(* Per-call delta counts are threaded through the traversal return values —
   a plain global would be corrupted by interleaved traversals under
   [Config.domains > 1].  The benchmark-facing "deltas read by the last
   traversal" remains as a domain-local slot. *)
let last_deltas_key = Domain.DLS.new_key (fun () -> 0)

let last_traverse_deltas () = Domain.DLS.get last_deltas_key

let default_strategy db =
  (* The CreTime index is shared with the live writer and reflects
     deletions committed past a snapshot's watermark; delta traversal
     clamps to the snapshot's bounded chains instead. *)
  if Db.is_snapshot db then `Traverse
  else
    match Db.cretime db with
    | Some _ -> `Index
    | None -> `Traverse

let index_of db =
  match Db.cretime db with
  | Some idx -> idx
  | None ->
    invalid_arg "Lifetime: `Index strategy but no CreTime index configured"

let mem_xids xid xids = List.exists (Xid.equal xid) xids

(* Both traversals return (answer, deltas scanned). *)

let cre_time_traverse db (teid : Eid.Temporal.t) =
  let doc = teid.Eid.Temporal.eid.Eid.doc in
  let xid = teid.Eid.Temporal.eid.Eid.xid in
  let d = Db.doc db doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | None -> (None, 0)
  | Some v ->
    let fv = Docstore.first_version d in
    (* Walk deltas backward from v to the delta that introduced the
       element; no reconstruction needed (Section 7.3.6).  The walk cannot
       see past the first retained version: reaching it without finding the
       introducing delta only bounds the creation time from above. *)
    let rec walk i scanned =
      if i <= fv then
        if fv = 0 then
          (* introduced at document creation *)
          (Some (Exact (Docstore.ts_of_version d 0)), scanned)
        else
          (* introduced somewhere in the vacuumed prefix *)
          (Some (At_or_before (Docstore.ts_of_version d fv)), scanned)
      else
        let delta = Db.read_delta db doc i in
        if mem_xids xid (Delta.inserted_xids delta) then
          (Some (Exact (Docstore.ts_of_version d i)), scanned + 1)
        else walk (i - 1) (scanned + 1)
    in
    walk v 0

let del_time_traverse db (teid : Eid.Temporal.t) =
  let doc = teid.Eid.Temporal.eid.Eid.doc in
  let xid = teid.Eid.Temporal.eid.Eid.xid in
  let d = Db.doc db doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | None -> (None, 0)
  | Some v ->
    let n = Docstore.version_count d in
    (* Walk deltas forward from the version after the TEID's. *)
    let rec walk i scanned =
      if i >= n then
        (* not removed by any delta: alive in the last version — the
           element dies exactly when the document does *)
        (Docstore.deleted_at d, scanned)
      else
        let delta = Db.read_delta db doc i in
        if mem_xids xid (Delta.deleted_xids delta) then
          (Some (Docstore.ts_of_version d i), scanned + 1)
        else walk (i + 1) (scanned + 1)
    in
    walk (v + 1) 0

(* The span records which strategy answered and, for the traversal, how
   many deltas it had to scan. *)
let traced name strategy f =
  Txq_obs.Trace.with_span name
    ~attrs:
      [
        ( "strategy",
          Txq_obs.Span.Str
            (match strategy with `Traverse -> "traverse" | `Index -> "index")
        );
      ]
    (fun () ->
      let r, scanned = f () in
      (match strategy with
      | `Traverse ->
        Domain.DLS.set last_deltas_key scanned;
        Txq_obs.Trace.add_count "deltas_scanned" scanned
      | `Index -> ());
      r)

(* An index row can predate the retained window: elements alive across a
   vacuum keep their exact creation timestamp in the index, but a rebuild
   of the truncated chain (crash recovery) can only date them to the base
   version.  Clamp index answers at the first retained version so both
   strategies — and a recovered database — agree. *)
let clamp_created db (teid : Eid.Temporal.t) = function
  | None -> None
  | Some ts ->
    let d = Db.doc db teid.Eid.Temporal.eid.Eid.doc in
    let fv = Docstore.first_version d in
    if fv = 0 then Some (Exact ts)
    else
      let horizon_ts = Docstore.ts_of_version d fv in
      if Timestamp.(ts <= horizon_ts) then Some (At_or_before horizon_ts)
      else Some (Exact ts)

let cre_time_bound db ?strategy teid =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> default_strategy db
  in
  traced "lifetime.cre_time" strategy @@ fun () ->
  match strategy with
  | `Traverse -> cre_time_traverse db teid
  | `Index ->
    (* writer-mutated paged B+-tree: exclude the writer for the lookup *)
    ( Db.with_read db (fun () ->
          clamp_created db teid
            (Cretime_index.create_time (index_of db) teid.Eid.Temporal.eid)),
      0 )

let cre_time db ?strategy teid =
  Option.map bound_ts (cre_time_bound db ?strategy teid)

let del_time db ?strategy teid =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> default_strategy db
  in
  traced "lifetime.del_time" strategy @@ fun () ->
  match strategy with
  | `Traverse -> del_time_traverse db teid
  | `Index ->
    ( Db.with_read db (fun () ->
          Cretime_index.delete_time (index_of db) teid.Eid.Temporal.eid),
      0 )
