module Eid = Txq_vxml.Eid
module Delta = Txq_vxml.Delta
module Xid = Txq_vxml.Xid
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Cretime_index = Txq_db.Cretime_index
module Timestamp = Txq_temporal.Timestamp

type strategy = [ `Traverse | `Index ]

let traverse_counter = ref 0
let last_traverse_deltas () = !traverse_counter

let default_strategy db =
  match Db.cretime db with
  | Some _ -> `Index
  | None -> `Traverse

let index_of db =
  match Db.cretime db with
  | Some idx -> idx
  | None ->
    invalid_arg "Lifetime: `Index strategy but no CreTime index configured"

let mem_xids xid xids = List.exists (Xid.equal xid) xids

let cre_time_traverse db (teid : Eid.Temporal.t) =
  traverse_counter := 0;
  let doc = teid.Eid.Temporal.eid.Eid.doc in
  let xid = teid.Eid.Temporal.eid.Eid.xid in
  let d = Db.doc db doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | None -> None
  | Some v ->
    (* Walk deltas backward from v to the delta that introduced the
       element; no reconstruction needed (Section 7.3.6). *)
    let rec walk i =
      if i <= 0 then
        (* introduced at document creation *)
        Some (Docstore.ts_of_version d 0)
      else begin
        incr traverse_counter;
        let delta = Db.read_delta db doc i in
        if mem_xids xid (Delta.inserted_xids delta) then
          Some (Docstore.ts_of_version d i)
        else walk (i - 1)
      end
    in
    walk v

let del_time_traverse db (teid : Eid.Temporal.t) =
  traverse_counter := 0;
  let doc = teid.Eid.Temporal.eid.Eid.doc in
  let xid = teid.Eid.Temporal.eid.Eid.xid in
  let d = Db.doc db doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | None -> None
  | Some v ->
    let n = Docstore.version_count d in
    (* Walk deltas forward from the version after the TEID's. *)
    let rec walk i =
      if i >= n then
        (* not removed by any delta: alive in the last version — the
           element dies exactly when the document does *)
        Docstore.deleted_at d
      else begin
        incr traverse_counter;
        let delta = Db.read_delta db doc i in
        if mem_xids xid (Delta.deleted_xids delta) then
          Some (Docstore.ts_of_version d i)
        else walk (i + 1)
      end
    in
    walk (v + 1)

(* The span records which strategy answered and, for the traversal, how
   many deltas it had to scan. *)
let traced name strategy f =
  Txq_obs.Trace.with_span name
    ~attrs:
      [
        ( "strategy",
          Txq_obs.Span.Str
            (match strategy with `Traverse -> "traverse" | `Index -> "index")
        );
      ]
    (fun () ->
      let r = f () in
      (match strategy with
      | `Traverse ->
        Txq_obs.Trace.add_count "deltas_scanned" !traverse_counter
      | `Index -> ());
      r)

let cre_time db ?strategy teid =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> default_strategy db
  in
  traced "lifetime.cre_time" strategy @@ fun () ->
  match strategy with
  | `Traverse -> cre_time_traverse db teid
  | `Index -> Cretime_index.create_time (index_of db) teid.Eid.Temporal.eid

let del_time db ?strategy teid =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> default_strategy db
  in
  traced "lifetime.del_time" strategy @@ fun () ->
  match strategy with
  | `Traverse -> del_time_traverse db teid
  | `Index -> Cretime_index.delete_time (index_of db) teid.Eid.Temporal.eid
