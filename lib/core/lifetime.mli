(** CreTime and DelTime (Sections 6.1, 7.3.6).

    Both operators come in the two strategies the paper weighs:

    - [`Traverse]: walk the delta chain — backward from the element's
      version for CreTime until the delta that introduced it, forward for
      DelTime until the delta that removed it.  No reconstruction is needed,
      but every delta on the way is read (the availability of the timestamp
      in the TEID is what makes the bounded walk possible, as the paper
      notes).
    - [`Index]: look the EID up in the auxiliary create/delete-time index.

    Experiment E6 measures the trade. *)

type strategy = [ `Traverse | `Index ]

type bound =
  | Exact of Txq_temporal.Timestamp.t
  | At_or_before of Txq_temporal.Timestamp.t
      (** The event happened at or before this instant; its exact timestamp
          fell in a vacuumed epoch.  The carried instant is the timestamp
          of the document's first retained version. *)

val bound_ts : bound -> Txq_temporal.Timestamp.t

val cre_time_bound :
  Txq_db.Db.t -> ?strategy:strategy -> Txq_vxml.Eid.Temporal.t ->
  bound option
(** Create time of the element as a (possibly inexact) bound: after a
    vacuum truncated the document's history, an element introduced in the
    vacuumed prefix can only be dated [At_or_before] the first retained
    version — both strategies agree on this (index rows that predate the
    retained window are clamped, since a post-crash index rebuild could
    not know them more precisely).  [None] if the element never existed
    (or, for [`Traverse], did not exist at the TEID's timestamp). *)

val cre_time :
  Txq_db.Db.t -> ?strategy:strategy -> Txq_vxml.Eid.Temporal.t ->
  Txq_temporal.Timestamp.t option
(** [cre_time_bound] collapsed to its timestamp (exact, or the truncated
    epoch's upper bound).  Default strategy: [`Index] when the database
    maintains the index, else [`Traverse]. *)

val del_time :
  Txq_db.Db.t -> ?strategy:strategy -> Txq_vxml.Eid.Temporal.t ->
  Txq_temporal.Timestamp.t option
(** Delete time; [None] while the element is still alive.  If the document
    itself was deleted with the element in its last version, the document's
    deletion time is the element's (Section 7.3.6). *)

val last_traverse_deltas : unit -> int
(** Deltas read by the most recent [`Traverse] call on this {e domain}
    (benchmark instrumentation; domain-local, so concurrent traversals on
    other domains never corrupt it). *)
