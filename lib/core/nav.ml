module Eid = Txq_vxml.Eid
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore

let previous_ts db (teid : Eid.Temporal.t) =
  let d = Db.doc db teid.Eid.Temporal.eid.Eid.doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | Some v when v > Docstore.first_version d ->
    Some (Docstore.ts_of_version d (v - 1))
  | Some _ | None -> None

let next_ts db (teid : Eid.Temporal.t) =
  let d = Db.doc db teid.Eid.Temporal.eid.Eid.doc in
  match Docstore.version_at d teid.Eid.Temporal.ts with
  | Some v when v + 1 < Docstore.version_count d ->
    Some (Docstore.ts_of_version d (v + 1))
  | Some _ | None -> None

let current_ts db (eid : Eid.t) =
  let d = Db.doc db eid.Eid.doc in
  if Docstore.is_alive d then
    Some (Docstore.ts_of_version d (Docstore.version_count d - 1))
  else None

let previous db teid =
  Option.map
    (fun ts -> Eid.Temporal.make teid.Eid.Temporal.eid ts)
    (previous_ts db teid)

let next db teid =
  Option.map
    (fun ts -> Eid.Temporal.make teid.Eid.Temporal.eid ts)
    (next_ts db teid)

let current db eid =
  Option.map (fun ts -> Eid.Temporal.make eid ts) (current_ts db eid)
