module Eid = Txq_vxml.Eid
module Vnode = Txq_vxml.Vnode
module Db = Txq_db.Db

let reconstruct db (teid : Eid.Temporal.t) =
  Txq_obs.Trace.with_span "reconstruct.element" @@ fun () ->
  match Db.reconstruct_at db teid.Eid.Temporal.eid.Eid.doc teid.Eid.Temporal.ts with
  | None -> None
  | Some (_v, tree) -> Vnode.find tree teid.Eid.Temporal.eid.Eid.xid

let reconstruct_xml db teid = Option.map Vnode.to_xml (reconstruct db teid)

let reconstruct_document db doc ts =
  Option.map snd (Db.reconstruct_at db doc ts)
