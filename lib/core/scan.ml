module Eid = Txq_vxml.Eid
module Xidpath = Txq_vxml.Xidpath
module Vnode = Txq_vxml.Vnode
module Posting = Txq_fti.Posting
module Fti = Txq_fti.Fti
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Timestamp = Txq_temporal.Timestamp

type binding = {
  b_doc : Eid.doc_id;
  b_path : Xidpath.t;
  b_versions : Vrange.t;
}

let eid_of_binding b =
  match Xidpath.leaf b.b_path with
  | Some xid -> Eid.make ~doc:b.b_doc ~xid
  | None -> invalid_arg "Scan.eid_of_binding: empty path"

(* --- join engine ------------------------------------------------------ *)

(* A candidate: one posting of a pattern node, with the versions in which it
   is valid, the output binding (when the output node lies in this subtree)
   and its XID path. *)
type cand = {
  c_path : Xidpath.t;
  c_out : Xidpath.t option;
  c_versions : Vrange.t;
}

let range_of_posting p =
  Vrange.singleton p.Posting.vstart
    (if Posting.is_open p then max_int else p.Posting.vend)

(* --- sorted-array search primitives ----------------------------------- *)

(* First index >= [hint] at which [pred] holds.  [pred] must be monotone
   (false then true) over [arr], and the boundary must not lie before
   [hint] — callers walk rows in path order, so boundaries only move right
   and the previous answer is a valid hint.  Galloping from the hint makes
   a whole constrain pass linear in the distance actually traveled rather
   than O(rows · log matches). *)
let gallop arr ~hint pred =
  let n = Array.length arr in
  if hint >= n then n
  else if pred arr.(hint) then hint
  else begin
    (* exponential probe for the first true element *)
    let step = ref 1 in
    let last_false = ref hint in
    let probe = ref (hint + 1) in
    while !probe < n && not (pred arr.(!probe)) do
      last_false := !probe;
      step := !step * 2;
      probe := !probe + !step
    done;
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if pred arr.(mid) then bisect lo mid else bisect (mid + 1) hi
    in
    bisect (!last_false + 1) (Stdlib.min !probe n)
  end

(* Evaluate a pattern node against the postings of one document.  [fetch]
   returns that document's postings for a word and kind, sorted by path.
   The returned candidates are sorted by [c_path] (non-decreasing): the
   fetched posting arrays are path-sorted, and constraining preserves row
   order. *)
let rec eval_node ~fetch (p : Pattern.t) : cand array =
  let kind =
    match p.Pattern.test with
    | Pattern.Tag _ -> Vnode.Tag
    | Pattern.Word _ -> Vnode.Word
  in
  let word =
    match p.Pattern.test with
    | Pattern.Tag w | Pattern.Word w -> w
  in
  let own =
    Array.map
      (fun posting ->
        {
          c_path = posting.Posting.path;
          c_out = (if p.Pattern.output then Some posting.Posting.path else None);
          c_versions = range_of_posting posting;
        })
      (fetch word kind)
  in
  (* [constrain [] child m] is [] for any [m], so once the row set is
     empty the remaining child subtrees need not be fetched or joined at
     all — this is what makes selective-leg-first ordering pay: the first
     empty leg discharges every leg after it. *)
  List.fold_left
    (fun rows child ->
      if Array.length rows = 0 then rows
      else constrain rows child (eval_node ~fetch child))
    own p.Pattern.children

(* Constrain each row by one pattern child.  Because [Xidpath.compare]
   sorts a path immediately before its extensions, the candidates standing
   in any hierarchical relation to [row.c_path] form a contiguous run of
   [matches]: equal paths first, then strict extensions.  Two galloping
   searches delimit the run — the merge-join replacement for the old
   O(rows × matches) relation filter.  Non-output children contribute the
   union of their matching validities; an output-bearing child multiplies
   the row into one per matching candidate. *)
and constrain rows child matches =
  let child_has_output = Pattern.has_output child in
  let out = ref [] in
  let hint = ref 0 in
  Array.iter
    (fun row ->
      let start =
        gallop matches ~hint:!hint
          (fun m -> Xidpath.compare m.c_path row.c_path >= 0)
      in
      hint := start;
      (* end of the equal-path run, then end of the extension run *)
      let eq_stop =
        gallop matches ~hint:start
          (fun m -> Xidpath.compare m.c_path row.c_path > 0)
      in
      let stop =
        gallop matches ~hint:eq_stop
          (fun m -> not (Xidpath.is_prefix row.c_path m.c_path))
      in
      (* Tag tests carry the path of the element itself; word tests carry
         the path of the enclosing element (see Vnode.occurrence). *)
      let m_start, m_stop, child_depth =
        match (child.Pattern.test, child.Pattern.axis) with
        | Pattern.Word _, Pattern.Child -> (start, eq_stop, None)
        | Pattern.Word _, Pattern.Descendant -> (start, stop, None)
        | Pattern.Tag _, Pattern.Descendant -> (eq_stop, stop, None)
        | Pattern.Tag _, Pattern.Child ->
          (eq_stop, stop, Some (Xidpath.depth row.c_path + 1))
      in
      let matching f =
        for i = m_start to m_stop - 1 do
          let m = matches.(i) in
          match child_depth with
          | Some d when Xidpath.depth m.c_path <> d -> ()
          | _ -> f m
        done
      in
      if child_has_output then
        matching (fun m ->
            let versions = Vrange.inter row.c_versions m.c_versions in
            if not (Vrange.is_empty versions) then
              out := { row with c_out = m.c_out; c_versions = versions } :: !out)
      else begin
        let valid = ref Vrange.empty in
        matching (fun m -> valid := Vrange.union !valid m.c_versions);
        let versions = Vrange.inter row.c_versions !valid in
        if not (Vrange.is_empty versions) then
          out := { row with c_versions = versions } :: !out
      end)
    rows;
  Array.of_list (List.rev !out)

(* Root axis: a [Child] root must be the document root element. *)
let root_ok (p : Pattern.t) cand =
  match p.Pattern.axis with
  | Pattern.Child -> Xidpath.depth cand.c_path = 1
  | Pattern.Descendant -> true

(* Dedup bindings (the same output node can be reached through different
   intermediate matches) and merge their version sets. *)
let dedup bindings =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun b ->
      let key = (b.b_doc, Array.map Txq_vxml.Xid.to_int b.b_path) in
      match Hashtbl.find_opt table key with
      | Some prev ->
        Hashtbl.replace table key
          { prev with b_versions = Vrange.union prev.b_versions b.b_versions }
      | None ->
        Hashtbl.replace table key b;
        order := key :: !order)
    bindings;
  List.rev_map (Hashtbl.find table) !order

(* The engine fetches each distinct (word, kind) of the pattern once from
   the FTI, pre-sorted by (doc, path, vstart) — frozen segments keep that
   order at rest, so no per-query sort happens — and joins per candidate
   document.  Documents are independent, so the per-document work is
   distributed over a domain pool; tasks are indexed by ascending document
   id and results concatenated in task order, making the output identical
   for every [domains] value.

   Everything effectful happens on the calling domain: FTI fetches and
   their trace spans, [version_at] resolution, the final dedup.  Workers
   only read frozen hashtables and posting arrays. *)

let kind_of = function
  | Pattern.Tag _ -> Vnode.Tag
  | Pattern.Word _ -> Vnode.Word

(* Distinct (word, kind) tests of a pattern, root first. *)
let rec tests_of (p : Pattern.t) acc =
  let t =
    match p.Pattern.test with
    | (Pattern.Tag w | Pattern.Word w) as t -> (w, kind_of t)
  in
  let acc = if List.mem t acc then acc else t :: acc in
  List.fold_left (fun acc c -> tests_of c acc) acc p.Pattern.children

let doc_slice arr doc =
  let start = gallop arr ~hint:0 (fun p -> p.Posting.doc >= doc) in
  let stop = gallop arr ~hint:start (fun p -> p.Posting.doc > doc) in
  (start, stop)

let distinct_docs arr =
  Array.fold_left
    (fun acc p ->
      match acc with
      | d :: _ when d = p.Posting.doc -> acc
      | _ -> p.Posting.doc :: acc)
    [] arr
  |> List.rev

let engine ?(domains = 1) ?(min_per_task = 1) pattern ~fetch_all ~keep =
  (match Pattern.validate pattern with
   | Ok () -> ()
   | Error e -> invalid_arg ("Scan: invalid pattern: " ^ e));
  (* main domain: fetch every test's postings once *)
  let fetched =
    List.map (fun (w, k) -> ((w, k), fetch_all w k)) (tests_of pattern [])
  in
  let postings_for word kind = List.assoc (word, kind) fetched in
  let root_arr =
    match pattern.Pattern.test with
    | (Pattern.Tag w | Pattern.Word w) as t -> postings_for w (kind_of t)
  in
  let keep_doc doc =
    match keep with
    | None -> true
    | Some pred ->
      let start, stop = doc_slice root_arr doc in
      let rec any i = i < stop && (pred root_arr.(i) || any (i + 1)) in
      any start
  in
  let docs = Array.of_list (List.filter keep_doc (distinct_docs root_arr)) in
  let fetch_doc doc word kind =
    let arr = postings_for word kind in
    let start, stop = doc_slice arr doc in
    match keep with
    | None -> Array.sub arr start (stop - start)
    | Some pred ->
      (* filtering a sorted slice preserves its order *)
      let out = ref [] in
      for i = stop - 1 downto start do
        if pred arr.(i) then out := arr.(i) :: !out
      done;
      Array.of_list !out
  in
  let scan_doc doc =
    let cands = eval_node ~fetch:(fetch_doc doc) pattern in
    let out = ref [] in
    Array.iter
      (fun c ->
        if root_ok pattern c then
          match c.c_out with
          | Some path ->
            out :=
              { b_doc = doc; b_path = path; b_versions = c.c_versions }
              :: !out
          | None -> ())
      cands;
    List.rev !out
  in
  let per_doc = Dpool.map ~min_per_task ~domains docs scan_doc in
  dedup (List.concat (Array.to_list per_doc))

(* Restrict each binding's validity to the single version the operator is
   about: postings can span many versions, but a snapshot operator's TEIDs
   must name the version valid at the query time (Section 6.1). *)
let clamp ~version_of bindings =
  List.filter_map
    (fun b ->
      match version_of b.b_doc with
      | None -> None
      | Some v ->
        let versions = Vrange.inter b.b_versions (Vrange.singleton v (v + 1)) in
        if Vrange.is_empty versions then None else Some { b with b_versions = versions })
    bindings

(* One span per operator invocation; the FTI lookups it performs show up
   as child spans carrying the postings counts.  [est] is the caller's
   cardinality estimate (the planner's), recorded next to the actual
   binding count so EXPLAIN ANALYZE can report estimation error. *)
let traced ?est name pattern f =
  if not (Txq_obs.Trace.enabled ()) then f ()
  else
    Txq_obs.Trace.with_span name
      ~attrs:[ ("pattern", Txq_obs.Span.Str (Pattern.to_string pattern)) ]
      (fun () ->
        let r = f () in
        (match est with
         | Some e -> Txq_obs.Trace.add_count "est_rows" e
         | None -> ());
        Txq_obs.Trace.add_count "bindings" (List.length r);
        r)

let domains_of db = function
  | Some n -> if n < 1 then 1 else n
  | None -> (Db.config db).Txq_db.Config.domains

let min_docs db = (Db.config db).Txq_db.Config.dpool_min_docs

(* Each fetch runs with the writer excluded: the FTI's mutable tail and
   segment freezing are writer-mutated.  Per-fetch locking is enough for
   snapshots — results are clipped to the pinned watermark afterwards, so
   commits landing between two fetches cannot leak into the answer. *)
let fetch_all db word kind =
  Db.with_read db (fun () -> Fti.sorted_postings (Db.fti db) word ~kind)

(* On a snapshot, shared-index postings may name documents or versions
   committed past the watermark: keep only what the pinned views can see.
   [hi >= version_count] sub-ranges keep their open upper bound's meaning
   through {!binding_intervals}, which treats anything at or past the
   count as "still valid at the end". *)
let clip_to_snapshot db bindings =
  if not (Db.is_snapshot db) then bindings
  else
    List.filter_map
      (fun b ->
        match Db.doc_opt db b.b_doc with
        | None -> None
        | Some d ->
          let versions =
            Vrange.inter b.b_versions
              (Vrange.singleton 0 (Docstore.version_count d))
          in
          if Vrange.is_empty versions then None
          else Some { b with b_versions = versions })
      bindings

let pattern_scan ?domains ?est db pattern =
  traced ?est "scan.pattern_scan" pattern @@ fun () ->
  let current_version doc =
    match Db.doc_opt db doc with
    | Some d when Docstore.is_alive d -> Some (Docstore.version_count d - 1)
    | Some _ | None -> None
  in
  (* Live handle: an open posting is exactly "valid in the current
     version".  Snapshot: the current version is the bounded one, and a
     posting closed after the watermark is still open as of the pin — test
     validity at the bounded current instead.  (Workers run [keep]; both
     predicates only read frozen tables.) *)
  let keep =
    if Db.is_snapshot db then fun p ->
      match current_version p.Posting.doc with
      | Some v -> Posting.valid_at p v
      | None -> false
    else Posting.is_open
  in
  clamp ~version_of:current_version
    (engine ~domains:(domains_of db domains) ~min_per_task:(min_docs db)
       pattern ~fetch_all:(fetch_all db) ~keep:(Some keep))

let tpattern_scan ?domains ?est db pattern ts =
  traced ?est "scan.tpattern_scan" pattern @@ fun () ->
  let version_at doc =
    match Db.doc_opt db doc with
    | Some d -> Docstore.version_at d ts
    | None -> None
  in
  (* Resolve each candidate document's version on the calling domain (it
     reads the delta index), so the per-posting predicate the workers run
     only consults this frozen table. *)
  let vtab = Hashtbl.create 64 in
  let version_cached doc =
    match Hashtbl.find_opt vtab doc with
    | Some v -> v
    | None ->
      let v = version_at doc in
      Hashtbl.replace vtab doc v;
      v
  in
  let root_word, root_kind =
    match pattern.Pattern.test with
    | (Pattern.Tag w | Pattern.Word w) as t -> (w, kind_of t)
  in
  Array.iter
    (fun p -> ignore (version_cached p.Posting.doc))
    (fetch_all db root_word root_kind);
  let keep p =
    match Hashtbl.find_opt vtab p.Posting.doc with
    | Some (Some v) -> Posting.valid_at p v
    | Some None | None -> false
  in
  clamp ~version_of:version_cached
    (engine ~domains:(domains_of db domains) ~min_per_task:(min_docs db)
       pattern ~fetch_all:(fetch_all db) ~keep:(Some keep))

let tpattern_scan_all ?domains ?est db pattern =
  traced ?est "scan.tpattern_scan_all" pattern @@ fun () ->
  clip_to_snapshot db
    (engine ~domains:(domains_of db domains) ~min_per_task:(min_docs db)
       pattern ~fetch_all:(fetch_all db) ~keep:None)

let binding_intervals db b =
  let d = Db.doc db b.b_doc in
  let n = Docstore.version_count d in
  List.filter_map
    (fun (lo, hi) ->
      let lo = Stdlib.max lo (Docstore.first_version d) in
      let hi = Stdlib.min hi n in
      if lo >= hi then None
      else
        let start = Docstore.ts_of_version d lo in
        let stop =
          if hi >= n then
            match Docstore.deleted_at d with
            | Some del -> del
            | None -> Timestamp.plus_infinity
          else Docstore.ts_of_version d hi
        in
        Txq_temporal.Interval.make_opt ~start ~stop)
    (Vrange.to_list b.b_versions)

let to_teids db bindings =
  List.concat_map
    (fun b ->
      match Xidpath.leaf b.b_path with
      | None -> []
      | Some xid ->
        let eid = Eid.make ~doc:b.b_doc ~xid in
        List.map
          (fun iv -> Eid.Temporal.make eid (Txq_temporal.Interval.start iv))
          (binding_intervals db b))
    bindings

let count = List.length
