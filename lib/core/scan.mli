(** The pattern-scan family (Sections 6.1, 7.3.1, 7.3.2).

    All three operators share one engine: fetch the posting list of every
    test in the pattern from the temporal FTI, then perform a multiway join
    on document identifier, hierarchy relationship (XID-path prefix tests)
    and — for the history variant — temporal validity (version-range
    intersection), exactly the algorithm outlines of Section 7.3.

    Posting lists arrive from the two-tier FTI already sorted by
    (doc, path, vstart) ({!Txq_fti.Fti.sorted_postings}), so the engine
    performs no per-query sorting; documents are joined independently and
    distributed over a {!Dpool} of [domains] worker domains.  [?domains]
    defaults to the database's {!Txq_db.Config.t.domains}; results are
    byte-identical for every value (tasks are ordered by ascending
    document id and merged in task order). *)

type binding = {
  b_doc : Txq_vxml.Eid.doc_id;
  b_path : Txq_vxml.Xidpath.t;  (** XID path of the matched output node *)
  b_versions : Vrange.t;  (** versions in which the match holds *)
}

val eid_of_binding : binding -> Txq_vxml.Eid.t

val pattern_scan :
  ?domains:int -> ?est:int -> Txq_db.Db.t -> Pattern.t -> binding list
(** Matches against current versions only (FTI_lookup).  The result
    bindings' [b_versions] each hold the single current version.
    [?est] on each operator is the caller's estimated binding count
    (the planner's); it is recorded as an ["est_rows"] attribute on the
    operator's span — next to the actual ["bindings"] count — and has no
    effect on evaluation. *)

val tpattern_scan :
  ?domains:int ->
  ?est:int ->
  Txq_db.Db.t ->
  Pattern.t ->
  Txq_temporal.Timestamp.t ->
  binding list
(** Matches against the snapshot valid at the given time (FTI_lookup_T); the
    output of the operator is a set of TEIDs, obtained via {!to_teids}. *)

val tpattern_scan_all :
  ?domains:int -> ?est:int -> Txq_db.Db.t -> Pattern.t -> binding list
(** Matches across all versions (FTI_lookup_H) — the temporal multiway
    join.  [b_versions] carries the full validity of each match, already
    coalesced over consecutive versions. *)

val to_teids : Txq_db.Db.t -> binding list -> Txq_vxml.Eid.Temporal.t list
(** Expands bindings to TEIDs, one per maximal validity interval, stamped
    with the interval's start time (the version in which the match began).
*)

val binding_intervals :
  Txq_db.Db.t -> binding -> Txq_temporal.Interval.t list
(** Timestamp intervals of a binding's version ranges, via the delta
    index. *)

val count : binding list -> int
(** Number of bindings — the aggregate path that needs no reconstruction
    (query Q2, Section 6.2). *)
