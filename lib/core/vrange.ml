type t = (int * int) list

let empty = []
let whole = [(0, max_int)]
let singleton a b = if b <= a then [] else [(a, b)]

let of_list ranges =
  let sorted =
    List.sort compare (List.filter (fun (a, b) -> a < b) ranges)
  in
  let rec merge acc = function
    | [] -> List.rev acc
    | (a, b) :: rest -> (
      match acc with
      | (pa, pb) :: acc' when a <= pb -> merge ((pa, Stdlib.max pb b) :: acc') rest
      | _ -> merge ((a, b) :: acc) rest)
  in
  merge [] sorted

let is_empty t = t = []
let mem v t = List.exists (fun (a, b) -> a <= v && v < b) t
let union a b = of_list (a @ b)
let coalesce ts = of_list (List.concat ts)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (a1, a2) :: ra, (b1, b2) :: rb ->
      let lo = Stdlib.max a1 b1 and hi = Stdlib.min a2 b2 in
      let acc = if lo < hi then (lo, hi) :: acc else acc in
      if a2 < b2 then go ra b acc else go a rb acc
  in
  go a b []

(* [a] minus [b].  A pure merge walk on the sorted range lists; no endpoint
   arithmetic, so open-ended ranges ([b = max_int]) pass through without the
   overflow a [b + 1] encoding would risk. *)
let diff a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | (a1, a2) :: ra, (b1, b2) :: rb ->
      if b2 <= a1 then go a rb acc (* b entirely before a *)
      else if a2 <= b1 then go ra b ((a1, a2) :: acc) (* a entirely before b *)
      else begin
        (* overlap: keep the part of a left of b, then the remainder *)
        let acc = if a1 < b1 then (a1, b1) :: acc else acc in
        if a2 <= b2 then go ra b acc else go ((b2, a2) :: ra) rb acc
      end
  in
  go a b []

let split_points ts =
  List.sort_uniq compare
    (List.concat_map (List.concat_map (fun (a, b) -> [ a; b ])) ts)

let is_bounded t = List.for_all (fun (_, b) -> b <> max_int) t

let clip ~limit t = inter t (singleton 0 limit)

let spans t =
  List.fold_left
    (fun acc (a, b) ->
      if b = max_int then
        invalid_arg "Vrange.spans: unbounded range (clip to a version count first)"
      else acc + (b - a))
    0 t

let to_list t = t

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map
          (fun (a, b) ->
            if b = max_int then Printf.sprintf "[%d,∞)" a
            else Printf.sprintf "[%d,%d)" a b)
          t))
