(** Sets of version-number ranges.

    The temporal multiway join of TPatternScanAll (Section 7.3.2) intersects
    the validity of postings: "words in the pattern valid at same time".
    Validity here is in version numbers (half-open [\[a, b)] ranges); the
    delta index maps them back to timestamps. *)

type t = (int * int) list
(** Sorted, pairwise disjoint, non-adjacent, each [a < b]. *)

val empty : t
val whole : t
(** All versions ([0, max_int)). *)

val singleton : int -> int -> t
(** [singleton a b] = [\[a, b)]; empty if [b <= a]. *)

val of_list : (int * int) list -> t
(** Normalizes an arbitrary range list. *)

val is_empty : t -> bool
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t

val coalesce : t list -> t
(** N-way union: normalizes any list of range sets into one sorted,
    disjoint, non-adjacent set (adjacent ranges merge: [\[1,3)] and
    [\[3,5)] coalesce to [\[1,5)]).  The call sites that used to hand-roll
    this (per-instant re-coalescing, aggregate segment merging) share this
    one definition. *)

val diff : t -> t -> t
(** [diff a b] is the set difference [a \ b].  Open-ended ranges
    ([b = max_int]) survive: subtracting a bounded set from an unbounded
    one leaves an unbounded remainder, and subtracting an unbounded set
    truncates without overflow. *)

val split_points : t list -> int list
(** Sorted, distinct endpoints of every range in every input set.
    Consecutive pairs delimit the elementary segments on which membership
    of each input is constant — the split step of interval-split
    aggregation ([max_int] appears as the final point when any input is
    unbounded). *)

val is_bounded : t -> bool
(** False iff the last range is open ([b = max_int]). *)

val clip : limit:int -> t -> t
(** Intersect with [\[0, limit)] — bounds open ranges to a document's
    version count so they can be measured. *)

val spans : t -> int
(** Total number of versions covered.  The input must be bounded
    ({!clip} first); raises [Invalid_argument] otherwise — unbounded
    ranges have no finite span and the old [max_int] sentinel silently
    corrupted sums. *)

val to_list : t -> (int * int) list
val pp : Format.formatter -> t -> unit
