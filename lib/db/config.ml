type fti_mode =
  | Fti_versions
  | Fti_deltas
  | Fti_both
  | Fti_none

type retention = {
  keep_newer_than : Txq_temporal.Timestamp.t option;
  keep_versions : int option;
}

type t = {
  snapshot_every : int option;
  fti_mode : fti_mode;
  cretime_index : bool;
  cretime_backing : [ `Memory | `Paged ];
  placement : Txq_store.Blob_store.policy;
  buffer_pool_pages : int;
  version_cache_bytes : int;
  document_time_path : string option;
  durability : [ `None | `Journal ];
  tracing : bool;
  fti_segment_postings : int;
  domains : int;
  retention : retention;
  group_commit : bool;
  group_commit_window_us : int;
  dpool_min_docs : int;
  planner : bool;
  ship_buffer : int;
}

let no_retention = { keep_newer_than = None; keep_versions = None }

let default =
  {
    snapshot_every = None;
    fti_mode = Fti_versions;
    cretime_index = true;
    cretime_backing = `Paged;
    placement = `Unclustered;
    buffer_pool_pages = 256;
    version_cache_bytes = 8 * 1024 * 1024;
    document_time_path = None;
    durability = `None;
    tracing = false;
    fti_segment_postings = 4096;
    domains = 1;
    retention = no_retention;
    group_commit = false;
    group_commit_window_us = 2000;
    dpool_min_docs = 48;
    planner = true;
    ship_buffer = 0;
  }

let durable t = { t with durability = `Journal }

let with_retention ?keep_newer_than ?keep_versions t =
  let keep_versions =
    match keep_versions with
    | Some k when k < 1 -> Some 1
    | kv -> kv
  in
  { t with retention = { keep_newer_than; keep_versions } }

let with_tracing t = { t with tracing = true }

let with_domains n t = { t with domains = (if n < 1 then 1 else n) }

let with_snapshots k t = { t with snapshot_every = Some k }

let with_group_commit ?window_us t =
  {
    t with
    group_commit = true;
    group_commit_window_us =
      (match window_us with
       | Some us when us >= 0 -> us
       | Some _ -> 0
       | None -> t.group_commit_window_us);
  }

let with_dpool_min_docs n t = { t with dpool_min_docs = (if n < 0 then 0 else n) }

let with_planner on t = { t with planner = on }

let with_ship_buffer n t = { t with ship_buffer = (if n < 0 then 0 else n) }

let maintains_version_index t =
  match t.fti_mode with
  | Fti_versions | Fti_both -> true
  | Fti_deltas | Fti_none -> false

let maintains_delta_index t =
  match t.fti_mode with
  | Fti_deltas | Fti_both -> true
  | Fti_versions | Fti_none -> false
