(** Database configuration: the experimental knobs of Section 7.

    Every option corresponds to a design alternative the paper discusses;
    the benchmark harness sweeps them. *)

type fti_mode =
  | Fti_versions  (** alternative A1 (Section 7.2) — the paper's choice *)
  | Fti_deltas  (** alternative A2 — index the delta operations *)
  | Fti_both  (** alternative A3 — maintain both *)
  | Fti_none  (** no content index; only navigation operators work *)

type retention = {
  keep_newer_than : Txq_temporal.Timestamp.t option;
      (** Vacuum horizon: history valid strictly before this transaction
          time may be squashed away; documents deleted at or before it may
          be dropped entirely.  [None] — no time-based truncation. *)
  keep_versions : int option;
      (** Keep at most the newest N versions of each document ([>= 1]).
          [None] — no count-based truncation. *)
}
(** Default retention policy used by [Db.vacuum] when none is passed
    explicitly.  Both knobs [None] (the default) makes vacuum a no-op:
    the paper's pure transaction-time model where "nothing is ever
    physically removed". *)

type t = {
  snapshot_every : int option;
      (** Store a full snapshot every k versions (Section 7.3.3); [None]
          keeps only the current version plus deltas. *)
  fti_mode : fti_mode;
  cretime_index : bool;
      (** Maintain the auxiliary EID → (create, delete) timestamp index of
          Section 7.3.6; without it CreTime/DelTime traverse deltas. *)
  cretime_backing : [ `Memory | `Paged ];
      (** [`Paged] (default) keeps the CreTime index in a page-backed
          B+-tree whose maintenance and lookups are IO-accounted;
          [`Memory] is the free-lookup upper bound for comparisons. *)
  placement : Txq_store.Blob_store.policy;
      (** Delta/version blob placement (Section 7.2's clustering remark). *)
  buffer_pool_pages : int;
  version_cache_bytes : int;
      (** Byte budget of the LRU version cache holding materialized
          [(doc, version)] trees; residents also serve as anchors for
          incremental reconstruction.  0 disables the cache entirely,
          reproducing uncached IO behavior exactly. *)
  document_time_path : string option;
      (** Location path of the {e document time} embedded in content —
          Section 3.1's third kind of time, e.g. ["//meta/published"] for
          XMLNews-Meta-style articles.  When set, each committed version's
          document time is extracted and kept in the delta index, queryable
          without reconstruction. *)
  durability : [ `None | `Journal ];
      (** [`Journal] appends one commit-journal record per mutating
          operation, after the operation's blobs are durably written and
          before any in-memory structure changes, making every commit
          atomic and {!Db.recover}able.  [`None] (the default, and the
          paper's setting) keeps the delta index purely in memory: a crash
          loses the version history. *)
  tracing : bool;
      (** Install the no-op trace sink at [Db.create]/[Db.recover] time so
          operators build span trees (visible to [Trace.collect], metrics
          histograms, and any sink installed later).  Off by default: with
          no sink installed every [Trace.with_span] in the operators is a
          single pointer compare. *)
  fti_segment_postings : int;
      (** Tail watermark of the two-tier FTI: when this many postings have
          accumulated in the mutable tail (across all words) at a commit
          boundary, they are frozen into immutable sorted segments.
          [max_int] (or any non-positive value) disables freezing and keeps
          the original single-tier index. *)
  domains : int;
      (** Worker domains for the document-parallel pattern-scan operators.
          1 (the default) runs everything inline on the calling domain —
          exactly the sequential behaviour; results are deterministic and
          identical for every value. *)
  retention : retention;
  group_commit : bool;
      (** Batch journal durability across concurrent committers: [commit]
          buffers its journal record and returns once a group-commit
          leader has flushed the batch with a single durability point
          (one [fsync] for many transactions).  Off (the default), every
          mutating operation syncs its own record before returning —
          byte-identical on-disk behaviour to the pre-group engine.
          With group commit on, a transaction is visible in memory
          slightly before it is durable; recovery still lands on a
          strict prefix of the commit order. *)
  group_commit_window_us : int;
      (** Leader collection window in microseconds: how long a group-
          commit leader waits for other committers to join its batch
          before flushing.  0 flushes immediately (batching then happens
          only when committers pile up faster than the flush). *)
  dpool_min_docs : int;
      (** Minimum candidate documents a spawned scan domain must amortize:
          pattern scans skip domain fan-out when the corpus slice is
          smaller than [dpool_min_docs] per extra domain, so multi-domain
          configurations never regress small scans (spawn cost dwarfs the
          work).  0 disables the threshold. *)
  planner : bool;
      (** Cost-based planning in [Exec]: statements are rewritten before
          costing, multiway-join legs are ordered by estimated
          selectivity from live index statistics, CreTime/DelTime pick
          Traverse vs index per predicate by estimated chain depth, and
          scan domain fan-out follows estimated rows.  On (the default)
          and off produce byte-identical results — off preserves literal
          as-written evaluation as the differential oracle. *)
  ship_buffer : int;
      (** Keep the shipping contents (version-0 snapshots, commit deltas)
          of the newest N journal records in memory so [Db.ship] can serve
          them even after vacuum truncated the delta chains they came
          from.  0 (the default) keeps nothing: shipments are fabricated
          from the retained chains, and a shipper lagging behind a vacuum
          gets an explicit gap error and must re-clone — the same contract
          as a base backup. *)
}

val default : t
(** A1 index, CreTime index on, no snapshots, unclustered placement, 256
    buffer pages, 8 MiB version cache — the paper's baseline system plus
    the cache every serious implementation assumes. *)

val with_snapshots : int -> t -> t
val durable : t -> t
(** Turns on [`Journal] durability. *)

val with_tracing : t -> t
(** Turns on [tracing]. *)

val with_domains : int -> t -> t
(** Sets [domains] (clamped up to 1). *)

val with_group_commit : ?window_us:int -> t -> t
(** Turns on [group_commit]; [window_us] overrides the collection window
    (clamped up to 0). *)

val with_dpool_min_docs : int -> t -> t
(** Sets [dpool_min_docs] (clamped up to 0). *)

val with_planner : bool -> t -> t
(** Sets [planner].  [with_planner false] is the literal-evaluation
    oracle the planner differential tests compare against. *)

val with_ship_buffer : int -> t -> t
(** Sets [ship_buffer] (clamped up to 0). *)

val no_retention : retention

val with_retention :
  ?keep_newer_than:Txq_temporal.Timestamp.t -> ?keep_versions:int -> t -> t
(** Sets the default retention policy ([keep_versions] clamped up to 1). *)

val maintains_version_index : t -> bool
val maintains_delta_index : t -> bool
