module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Bptree = Txq_store.Bptree

type entry = {
  created : Timestamp.t;
  mutable deleted : Timestamp.t option;
}

type t =
  | Memory of entry Eid.Table.t
  | Paged of { tree : Bptree.t; mutable count : int }

let create () = Memory (Eid.Table.create 1024)
let create_paged pool = Paged { tree = Bptree.create pool; count = 0 }

let is_paged = function
  | Paged _ -> true
  | Memory _ -> false

(* (doc, xid) packed into the B+-tree key: doc in the high 31 bits, xid in
   the low 32.  Delete timestamp sentinel: Int64.min_int = alive. *)
let key_of eid =
  Int64.logor
    (Int64.shift_left (Int64.of_int eid.Eid.doc) 32)
    (Int64.of_int (Txq_vxml.Xid.to_int eid.Eid.xid))

let alive_sentinel = Int64.min_int

(* The B+-tree never physically deletes (its pages model a transaction-time
   store), so a vacuumed row is tombstoned: both value words set to this
   sentinel, treated as absent by every lookup. *)
let pruned_sentinel = Int64.max_int
let ts_to_i64 ts = Int64.of_int (Timestamp.to_seconds ts)
let i64_to_ts v = Timestamp.of_seconds (Int64.to_int v)

let paged_find tree key =
  match Bptree.find tree key with
  | Some (created, _) when Int64.equal created pruned_sentinel -> None
  | row -> row

let duplicate eid =
  invalid_arg
    (Printf.sprintf "Cretime_index: eid %s created twice" (Eid.to_string eid))

let record_created t eid ts =
  match t with
  | Memory table ->
    if Eid.Table.mem table eid then duplicate eid
    else Eid.Table.replace table eid { created = ts; deleted = None }
  | Paged p ->
    let key = key_of eid in
    (match paged_find p.tree key with
     | Some _ -> duplicate eid
     | None ->
       Bptree.insert p.tree ~key (ts_to_i64 ts, alive_sentinel);
       p.count <- p.count + 1)

let record_deleted t eid ts =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some entry -> entry.deleted <- Some ts
    | None -> ())
  | Paged p -> (
    let key = key_of eid in
    match paged_find p.tree key with
    | Some (created, _) -> Bptree.insert p.tree ~key (created, ts_to_i64 ts)
    | None -> ())

let create_time t eid =
  match t with
  | Memory table ->
    Option.map (fun e -> e.created) (Eid.Table.find_opt table eid)
  | Paged p ->
    Option.map (fun (created, _) -> i64_to_ts created)
      (paged_find p.tree (key_of eid))

let delete_time t eid =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some { deleted; _ } -> deleted
    | None -> None)
  | Paged p -> (
    match paged_find p.tree (key_of eid) with
    | Some (_, del) when not (Int64.equal del alive_sentinel) ->
      Some (i64_to_ts del)
    | Some _ | None -> None)

let is_alive t eid =
  match t with
  | Memory table -> (
    match Eid.Table.find_opt table eid with
    | Some { deleted = None; _ } -> true
    | Some { deleted = Some _; _ } | None -> false)
  | Paged p -> (
    match paged_find p.tree (key_of eid) with
    | Some (_, del) -> Int64.equal del alive_sentinel
    | None -> false)

(* Retention pruning.  [`Drop] removes every row of the document; [`Before
   cutoff] removes rows of elements already deleted at or before the
   cutoff — exactly the rows a rebuild of the truncated delta chain would
   no longer produce.  The paged backing tombstones (the B+-tree has no
   delete); the memory backing removes. *)
let prune t ~affected =
  let pruned = ref 0 in
  List.iter
    (fun (doc, action) ->
      match t with
      | Memory table ->
        let victims =
          Eid.Table.fold
            (fun eid e acc ->
              if eid.Eid.doc <> doc then acc
              else
                match action with
                | `Drop -> eid :: acc
                | `Before cutoff -> (
                  match e.deleted with
                  | Some d when Timestamp.(d <= cutoff) -> eid :: acc
                  | _ -> acc))
            table []
        in
        List.iter (Eid.Table.remove table) victims;
        pruned := !pruned + List.length victims
      | Paged p ->
        let lo = Int64.shift_left (Int64.of_int doc) 32 in
        let hi = Int64.shift_left (Int64.of_int (doc + 1)) 32 in
        List.iter
          (fun (key, (created, del)) ->
            if not (Int64.equal created pruned_sentinel) then begin
              let kill =
                match action with
                | `Drop -> true
                | `Before cutoff ->
                  (not (Int64.equal del alive_sentinel))
                  && Timestamp.(i64_to_ts del <= cutoff)
              in
              if kill then begin
                Bptree.insert p.tree ~key (pruned_sentinel, pruned_sentinel);
                p.count <- p.count - 1;
                incr pruned
              end
            end)
          (Bptree.range p.tree ~lo ~hi))
    affected;
  !pruned

let entry_count = function
  | Memory table -> Eid.Table.length table
  | Paged p -> p.count

let index_pages = function
  | Memory _ -> 0
  | Paged p -> Bptree.page_count p.tree
