(** Auxiliary create/delete-time index (Section 7.3.6).

    Maps EIDs to their creation timestamp and, once deleted, their deletion
    timestamp.  The paper notes that maintaining it is cheap (bulk inserts on
    document creation are append-only) and that it turns CreTime/DelTime from
    a delta traversal into a lookup; experiment E6 measures that trade.

    Two backings:
    - [create ()] — an in-memory hash table (free lookups; useful as the
      upper bound in comparisons);
    - [create_paged pool] — a page-backed B+-tree in the simulated store,
      the realistic deployment: maintenance and lookups cost page IO like
      everything else.  The key packs (document id, XID) into an [int64],
      so one tree serves the whole database and a document's elements are
      contiguous in key space (the paper's append-only observation). *)

type t

val create : unit -> t
val create_paged : Txq_store.Buffer_pool.t -> t
val is_paged : t -> bool

val record_created : t -> Txq_vxml.Eid.t -> Txq_temporal.Timestamp.t -> unit
(** Raises [Invalid_argument] if the EID was already created (EIDs are
    never reused). *)

val record_deleted : t -> Txq_vxml.Eid.t -> Txq_temporal.Timestamp.t -> unit

val create_time : t -> Txq_vxml.Eid.t -> Txq_temporal.Timestamp.t option
val delete_time : t -> Txq_vxml.Eid.t -> Txq_temporal.Timestamp.t option
(** [None] while the element is still alive (or unknown). *)

val is_alive : t -> Txq_vxml.Eid.t -> bool

val prune :
  t ->
  affected:
    (Txq_vxml.Eid.doc_id * [ `Drop | `Before of Txq_temporal.Timestamp.t ])
    list ->
  int
(** Retention pruning: [`Drop] removes every row of the document;
    [`Before cutoff] removes rows of elements deleted at or before the
    cutoff (elements still alive keep their exact creation time).  The
    paged backing tombstones rows in place — the B+-tree has no physical
    delete — and every lookup treats tombstones as absent.  Returns rows
    pruned. *)

val entry_count : t -> int

val index_pages : t -> int
(** Pages owned by the paged backing; 0 for the in-memory one. *)
