module Xml = Txq_xml.Xml
module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Clock = Txq_temporal.Clock
module Fti = Txq_fti.Fti
module Delta_fti = Txq_fti.Delta_fti
module Trace = Txq_obs.Trace

let log_src = Logs.Src.create "txq.db" ~doc:"Temporal XML database commits"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  mutable commits : int;
  mutable deltas_read : int;
  mutable reconstructions : int;
  mutable reconstruct_cache_hits : int;
}

(* One pinned snapshot: what vacuum must hold back for it.  [pin_watermark]
   is the commit count at capture (display / differential-test replay
   marker); [pin_next_doc] bounds the document ids the snapshot can see. *)
type pin = { pin_watermark : int; pin_next_doc : int }

(* Registry shared between the live handle and every snapshot of it. *)
type pins = {
  pins_m : Mutex.t;
  pin_table : (int, pin) Hashtbl.t;
  mutable next_pin_id : int;
}

type view = {
  sv_pin : int;
  sv_watermark : int;
  (* Flipped by the first [release]: later releases (a connection cleanup
     running twice, an error path racing a normal exit) must not touch the
     pin table again, so the accounting can never go below reality. *)
  mutable sv_released : bool;
}

type t = {
  config : Config.t;
  clock : Clock.t;
  disk : Txq_store.Disk.t;
  pool : Txq_store.Buffer_pool.t;
  blobs : Txq_store.Blob_store.t;
  journal : Txq_store.Journal.t option;
  docs : (Eid.doc_id, Docstore.t) Hashtbl.t;
  urls : (string, Eid.doc_id list ref) Hashtbl.t; (* newest first *)
  fti : Fti.t option;
  dfti : Delta_fti.t option;
  cretime : Cretime_index.t option;
  mutable next_doc_id : int;
  (* Section 3.1 document-time index: a B+-tree keyed by (document time,
     sequence number) so equal publication instants coexist; populated when
     the configuration names a document-time path. *)
  dtime_path : Txq_xml.Path.t option;
  dtime_index : Txq_store.Bptree.t;
  (* Per-second tie-breaking sequence for the document-time index: maps a
     seconds value to the number of rows already keyed under it, so equal
     publication instants stay distinct without ever overflowing into the
     seconds bits (a single global counter wraps after 2^20 rows and
     silently collides). *)
  dtime_counts : (int, int) Hashtbl.t;
  stats : stats;
  vcache : Vcache.t;
  (* MVCC: the lock serializes the single writer against snapshot capture
     and the index reads that walk writer-mutated structures (FTI fetch,
     CreTime, document-time B+-tree).  Reconstruction from a snapshot's
     captured chains runs lock-free.  Shared (by the [{ t with ... }] copy)
     between the live handle and its snapshots. *)
  lock : Txq_store.Rwlock.t;
  pins : pins;
  (* [Some _]: this handle is an immutable snapshot — its [docs] are
     bounded views, mutators raise. *)
  view : view option;
  (* Group commit: blobs superseded by a buffered-but-not-yet-durable
     journal record.  Recovery onto a prefix without that record still
     needs their pages, so the free runs only once the record's ticket is
     synced — drained at the next mutation, under the write lock.
     (ticket, blob, cluster). *)
  mutable deferred : (int * Txq_store.Blob_store.blob * Eid.doc_id) list;
  (* Journal shipping.  [ship_history] holds every applied journal record as
     (group ticket, raw payload), in applied order — the index space of
     [ship]/[Replay].  It is NOT the journal's ticket space: recovery may
     drop an undecodable tail record the journal still counts, so shipping
     indexes what was {e applied}, the only order a replica can follow.
     Ticket 0 marks a record already durable (plain appends, recovered
     records); under group commit the real ticket bounds shipping to the
     synced prefix.  [ship_ring] optionally retains the newest
     [Config.ship_buffer] records' logical contents so shipping can cross a
     vacuum.  [replica] marks a handle fed by [Replay]: mutators raise,
     like snapshots. *)
  mutable replica : bool;
  ship_history : (int * string) Txq_store.Vec.t;
  ship_ring : (int, string list) Hashtbl.t;
}

(* [Config.tracing] installs the cheapest sink so spans are built at all;
   an already-installed sink (CLI --trace, a test ring) is left alone. *)
let enable_tracing config =
  if config.Config.tracing && not (Txq_obs.Trace.enabled ()) then
    Txq_obs.Trace.set_sink (Some Txq_obs.Trace.null_sink)

let create ?(config = Config.default) ?clock () =
  enable_tracing config;
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let disk = Txq_store.Disk.create () in
  let pool =
    Txq_store.Buffer_pool.create ~capacity:config.Config.buffer_pool_pages disk
  in
  let blobs = Txq_store.Blob_store.create ~policy:config.Config.placement pool in
  {
    config;
    clock;
    disk;
    pool;
    blobs;
    journal =
      (match config.Config.durability with
       | `Journal -> Some (Txq_store.Journal.create pool)
       | `None -> None);
    docs = Hashtbl.create 64;
    urls = Hashtbl.create 64;
    fti =
      (if Config.maintains_version_index config then
         Some
           (Fti.create
              ~segment_postings:config.Config.fti_segment_postings ())
       else None);
    dfti =
      (if Config.maintains_delta_index config then Some (Delta_fti.create ())
       else None);
    cretime =
      (if config.Config.cretime_index then
         Some
           (match config.Config.cretime_backing with
            | `Paged -> Cretime_index.create_paged pool
            | `Memory -> Cretime_index.create ())
       else None);
    next_doc_id = 0;
    dtime_path =
      Option.map Txq_xml.Path.parse_exn config.Config.document_time_path;
    dtime_index = Txq_store.Bptree.create pool;
    dtime_counts = Hashtbl.create 64;
    stats =
      { commits = 0; deltas_read = 0; reconstructions = 0;
        reconstruct_cache_hits = 0 };
    vcache =
      Vcache.create ~budget:config.Config.version_cache_bytes
        ~io:(Txq_store.Buffer_pool.stats pool);
    lock = Txq_store.Rwlock.create ();
    pins =
      { pins_m = Mutex.create (); pin_table = Hashtbl.create 8;
        next_pin_id = 0 };
    view = None;
    deferred = [];
    replica = false;
    ship_history = Txq_store.Vec.create ();
    ship_ring = Hashtbl.create 8;
  }

let config t = t.config
let clock t = t.clock
let now t = Clock.now t.clock

let commit_ts t = function
  | None -> Clock.tick t.clock
  | Some ts ->
    Clock.set t.clock ts;
    ts

let url_bucket t url =
  match Hashtbl.find_opt t.urls url with
  | Some bucket -> bucket
  | None ->
    let bucket = ref [] in
    Hashtbl.replace t.urls url bucket;
    bucket

let doc t id =
  match Hashtbl.find_opt t.docs id with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Db.doc: unknown document id %d" id)

let find_live t url =
  match Hashtbl.find_opt t.urls url with
  | None -> None
  | Some bucket -> (
    match !bucket with
    | [] -> None
    | newest :: _ ->
      let d = doc t newest in
      if Docstore.is_alive d then Some d else None)

let find_all t url =
  match Hashtbl.find_opt t.urls url with
  | None -> []
  | Some bucket -> List.rev_map (doc t) !bucket

let find_at t url instant =
  List.find_map
    (fun d ->
      match Docstore.version_at d instant with
      | Some v -> Some (d, v)
      | None -> None)
    (find_all t url)

let doc_ids t = List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.docs [])
let document_count t = Hashtbl.length t.docs
let doc_opt t id = Hashtbl.find_opt t.docs id

(* --- MVCC snapshots ---------------------------------------------------- *)

let is_snapshot t = t.view <> None
let is_replica t = t.replica
let snapshot_watermark t = Option.map (fun v -> v.sv_watermark) t.view
let with_read t f = Txq_store.Rwlock.with_read t.lock f

let read_only_guard t what =
  if is_snapshot t then
    invalid_arg (Printf.sprintf "Db.%s: read-only snapshot" what)
  else if t.replica then
    invalid_arg
      (Printf.sprintf "Db.%s: read-only replica (writes arrive via Replay)" what)

let pins_locked t f =
  Mutex.lock t.pins.pins_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.pins.pins_m) f

let pinned_snapshots t =
  pins_locked t @@ fun () -> Hashtbl.length t.pins.pin_table

let oldest_pinned_watermark t =
  pins_locked t @@ fun () ->
  Hashtbl.fold
    (fun _ p acc ->
      match acc with
      | Some w when w <= p.pin_watermark -> acc
      | _ -> Some p.pin_watermark)
    t.pins.pin_table None

let snapshot t =
  if is_snapshot t then invalid_arg "Db.snapshot: already a snapshot";
  (* The read lock excludes the writer mid-mutation: the tables and every
     docstore are consistent at a commit boundary while we pin. *)
  Txq_store.Rwlock.with_read t.lock @@ fun () ->
  let watermark = t.stats.commits in
  let pin_id =
    pins_locked t @@ fun () ->
    let id = t.pins.next_pin_id in
    t.pins.next_pin_id <- id + 1;
    Hashtbl.replace t.pins.pin_table id
      { pin_watermark = watermark; pin_next_doc = t.next_doc_id };
    id
  in
  let view = { sv_pin = pin_id; sv_watermark = watermark; sv_released = false } in
  let docs = Hashtbl.create (Hashtbl.length t.docs) in
  Hashtbl.iter (fun id d -> Hashtbl.replace docs id (Docstore.bounded d)) t.docs;
  let urls = Hashtbl.create (Hashtbl.length t.urls) in
  Hashtbl.iter (fun url bucket -> Hashtbl.replace urls url (ref !bucket)) t.urls;
  {
    t with
    docs;
    urls;
    view = Some view;
    (* Reader-side accounting lands on the snapshot handle: reader domains
       each hold their own snapshot, so these counters never race. *)
    stats =
      { commits = watermark; deltas_read = 0; reconstructions = 0;
        reconstruct_cache_hits = 0 };
    deferred = [];
  }

(* Total and idempotent: per-connection cleanup calls this on every exit
   path, including error paths that may run twice and paths where the
   handle was never snapshotted at all.  Only the first release of a
   snapshot touches the pin table, so [pinned_snapshots] and
   [oldest_pinned_watermark] stay correct under double release. *)
let release t =
  match t.view with
  | None -> ()
  | Some v ->
    pins_locked t @@ fun () ->
    if not v.sv_released then begin
      v.sv_released <- true;
      Hashtbl.remove t.pins.pin_table v.sv_pin
    end

let is_released t =
  match t.view with None -> false | Some v -> v.sv_released

let snapshot_due t version =
  match t.config.Config.snapshot_every with
  | Some k -> version mod k = 0
  | None -> false

let record_created_tree t d ts tree =
  match t.cretime with
  | None -> ()
  | Some idx ->
    List.iter
      (fun xid ->
        Cretime_index.record_created idx
          (Eid.make ~doc:(Docstore.doc_id d) ~xid) ts)
      (Vnode.xids tree)

(* Extract the content-embedded document time, when configured. *)
let extract_doc_time t xml =
  match t.dtime_path with
  | None -> None
  | Some path -> (
    match Txq_xml.Path.select_from_children path (Xml.normalize xml) with
    | node :: _ ->
      Timestamp.of_string_opt (String.trim (Xml.text_content node))
    | [] -> None)

(* Document-time keys: seconds in the high bits, a per-second sequence
   number in the low 20, so identical publication instants stay distinct.
   Instants beyond ±2^42 seconds (~139k years) cannot be packed; no real
   document time is.  The sequence is per distinct seconds value (see
   [dtime_counts]): a global counter would wrap past [dtime_seq_limit]
   rows and collide with an earlier key — its low bits are masked, so the
   collision silently replaces an unrelated row and dtime range reads lose
   data.  At the (absurd) bound of 2^20 rows sharing one second the row is
   skipped, counted and logged instead of corrupting the index. *)
let dtime_key_bits = 20
let dtime_seq_limit = 1 lsl dtime_key_bits

let dtime_key seconds seq =
  Int64.logor
    (Int64.shift_left (Int64.of_int seconds) dtime_key_bits)
    (Int64.of_int (seq land (dtime_seq_limit - 1)))

let record_doc_time t ~doc ~version = function
  | None -> ()
  | Some dt ->
    let seconds = Timestamp.to_seconds dt in
    if abs seconds < 1 lsl 42 then begin
      let seq =
        match Hashtbl.find_opt t.dtime_counts seconds with
        | Some n -> n
        | None -> 0
      in
      if seq >= dtime_seq_limit then begin
        Txq_obs.Metrics.incr "db.dtime.overflow_skipped";
        Log.warn (fun m ->
            m
              "document-time index full at %d rows for instant %s; \
               doc %d v%d not indexed"
              dtime_seq_limit (Timestamp.to_string dt) doc version)
      end
      else begin
        Txq_store.Bptree.insert t.dtime_index
          ~key:(dtime_key seconds seq)
          (Int64.of_int doc, Int64.of_int version);
        Hashtbl.replace t.dtime_counts seconds (seq + 1)
      end
    end

(* Test hook for the overflow boundary: forcing 2^20 real inserts through
   the B+-tree would dominate the test suite's runtime. *)
let set_dtime_count_for_tests t ~seconds count =
  Hashtbl.replace t.dtime_counts seconds count

(* --- derived-index maintenance ---------------------------------------- *)

(* One committed version / one deletion, as seen by every replay path: the
   live mutators, crash recovery's pass B, and shipped-record replay all
   maintain the FTI, delta-FTI and CreTime index through these three
   functions, so the index state after replaying a record sequence is the
   index state the sequence built live.  [new_tree] is lazy: only the
   version index needs the materialized tree. *)

let index_insert t ~doc ~version d ts tree =
  Option.iter (fun fti -> Fti.index_version fti ~doc ~version tree) t.fti;
  Option.iter (fun dfti -> Delta_fti.index_initial dfti ~doc ~version tree) t.dfti;
  record_created_tree t d ts tree

let index_commit t ~doc ~version ~ts delta new_tree =
  Option.iter
    (fun fti -> Fti.index_version fti ~doc ~version (Lazy.force new_tree))
    t.fti;
  Option.iter (fun dfti -> Delta_fti.index_delta dfti ~doc ~version delta) t.dfti;
  match t.cretime with
  | None -> ()
  | Some idx ->
    List.iter
      (fun xid -> Cretime_index.record_created idx (Eid.make ~doc ~xid) ts)
      (Delta.inserted_xids delta);
    List.iter
      (fun xid -> Cretime_index.record_deleted idx (Eid.make ~doc ~xid) ts)
      (Delta.deleted_xids delta)

let index_delete t ~doc ~version ~ts current =
  Option.iter (fun fti -> Fti.delete_document fti ~doc ~version) t.fti;
  Option.iter
    (fun dfti -> Delta_fti.delete_document dfti ~doc ~version current)
    t.dfti;
  match t.cretime with
  | None -> ()
  | Some idx ->
    List.iter
      (fun xid -> Cretime_index.record_deleted idx (Eid.make ~doc ~xid) ts)
      (Vnode.xids current)

(* --- journaling -------------------------------------------------------- *)

let blob_ref b =
  {
    Journal_record.br_pages = Txq_store.Blob_store.page_ids b;
    br_length = Txq_store.Blob_store.length b;
  }

(* Caller holds the write lock.  Every journaled record also lands in the
   shipping history; [contents] (lazily) supplies its logical blob contents
   for the optional ship ring. *)
let ship_push t ticket payload contents =
  let index = Txq_store.Vec.length t.ship_history in
  Txq_store.Vec.push t.ship_history (ticket, payload);
  let buffer = t.config.Config.ship_buffer in
  if buffer > 0 then begin
    (match contents () with
     | [] -> ()
     | cs -> Hashtbl.replace t.ship_ring index cs);
    Hashtbl.remove t.ship_ring (index - buffer)
  end

let no_contents () = []

(* Buffered under group commit (the caller syncs at the barrier, after
   the write lock is released); one record, one durability point
   otherwise.  Returns the group ticket when one was issued. *)
let journal_append ?(contents = no_contents) t record =
  match t.journal with
  | None -> None
  | Some j ->
    let payload = Journal_record.encode record in
    if t.config.Config.group_commit then begin
      let ticket = Txq_store.Journal.append_buffered j payload in
      ship_push t ticket payload contents;
      Some ticket
    end
    else begin
      Txq_store.Journal.append j payload;
      ship_push t 0 payload contents;
      None
    end

(* Vacuum frees pages in its apply phase, so its record can never stay
   buffered behind them: append-and-sync regardless of group mode. *)
let journal_append_now t record =
  match t.journal with
  | None -> ()
  | Some j ->
    let payload = Journal_record.encode record in
    Txq_store.Journal.append j payload;
    ship_push t 0 payload no_contents

(* caller holds the write lock *)
let drain_deferred t =
  match (t.deferred, t.journal) with
  | [], _ | _, None -> ()
  | deferred, Some j ->
    let synced = Txq_store.Journal.synced_count j in
    let ready, still = List.partition (fun (tk, _, _) -> tk <= synced) deferred in
    t.deferred <- still;
    List.iter
      (fun (_, blob, cluster) ->
        Txq_store.Blob_store.free t.blobs ~cluster blob)
      ready

let defer_free t ticket blob ~cluster =
  match ticket with
  | Some tk -> t.deferred <- (tk, blob, cluster) :: t.deferred
  | None ->
    (* group mode without a journal: nothing to wait for *)
    Txq_store.Blob_store.free t.blobs ~cluster blob

(* After the write lock is released: wait until this commit's journal
   record is durable, riding (or leading) a group flush.  The collection
   window lets concurrent committers join the batch — one fsync for all
   of them.  Once the ticket is durable, opportunistically drain the
   deferred frees it unblocked — otherwise a workload going quiescent
   after its last commit would hold the superseded pages until the next
   mutation (or vacuum), for the life of the process. *)
let group_barrier t = function
  | None -> ()
  | Some ticket ->
    match t.journal with
    | None -> ()
    | Some j ->
      let window =
        float_of_int t.config.Config.group_commit_window_us /. 1_000_000.
      in
      let sleep () = if window > 0. then Unix.sleepf window in
      Txq_store.Journal.group_sync j ~sleep ticket;
      ignore
        (Txq_store.Rwlock.try_with_write t.lock (fun () -> drain_deferred t)
          : unit option)

let seconds ts = Timestamp.to_seconds ts

let insert_document t ~url ?ts xml =
  read_only_guard t "insert_document";
  let ticket = ref None in
  let doc_id =
    Txq_store.Rwlock.with_write t.lock @@ fun () ->
    drain_deferred t;
  (match find_live t url with
   | Some _ ->
     invalid_arg (Printf.sprintf "Db.insert_document: %s already exists" url)
   | None -> ());
  let ts = commit_ts t ts in
  let doc_id = t.next_doc_id in
  let doc_time = extract_doc_time t xml in
  let d =
    Docstore.create ~blobs:t.blobs ~doc_id ~url ~ts
      ~snapshot:(snapshot_due t 0) ?doc_time xml
  in
  (* Commit point: the version-0 blobs are on disk, nothing registered yet. *)
  ticket :=
    journal_append t
      ~contents:(fun () ->
        [ Txq_store.Blob_store.get t.blobs (Docstore.current_blob d) ])
      (Journal_record.Insert
         {
           r_doc = doc_id;
           r_url = url;
           r_ts = seconds ts;
           r_doc_time = Option.map seconds doc_time;
           r_current = blob_ref (Docstore.current_blob d);
           r_snapshot = Option.map blob_ref (Docstore.snapshot_blob d 0);
         });
  t.next_doc_id <- doc_id + 1;
  record_doc_time t ~doc:doc_id ~version:0 doc_time;
  Hashtbl.replace t.docs doc_id d;
  let bucket = url_bucket t url in
  bucket := doc_id :: !bucket;
  let tree = Docstore.current d in
  index_insert t ~doc:doc_id ~version:0 d ts tree;
  t.stats.commits <- t.stats.commits + 1;
  Log.debug (fun m ->
      m "insert %s as doc %d at %s (%d nodes)" url doc_id
        (Timestamp.to_string ts) (Vnode.size tree));
  doc_id
  in
  group_barrier t !ticket;
  doc_id

let update_document t ~url ?ts xml =
  read_only_guard t "update_document";
  let ticket = ref None in
  let result =
    Txq_store.Rwlock.with_write t.lock @@ fun () ->
    drain_deferred t;
  match find_live t url with
  | None ->
    invalid_arg (Printf.sprintf "Db.update_document: no live document at %s" url)
  | Some d ->
    let ts = commit_ts t ts in
    let version = Docstore.version_count d in
    let doc_time = extract_doc_time t xml in
    let doc_id = Docstore.doc_id d in
    let on_durable cb =
      ticket :=
        journal_append t
          ~contents:(fun () ->
            [ Txq_store.Blob_store.get t.blobs cb.Docstore.cb_delta ])
          (Journal_record.Commit
             {
               r_doc = doc_id;
               r_version = version;
               r_ts = seconds ts;
               r_doc_time = Option.map seconds doc_time;
               r_delta = blob_ref cb.Docstore.cb_delta;
               r_current = blob_ref cb.Docstore.cb_current;
               r_snapshot = Option.map blob_ref cb.Docstore.cb_snapshot;
               r_freed = cb.Docstore.cb_freed;
             })
    in
    let free =
      if t.config.Config.group_commit then
        Some (fun blob -> defer_free t !ticket blob ~cluster:doc_id)
      else None
    in
    let delta, new_tree =
      Docstore.commit ~on_durable ?free d ~ts ~snapshot:(snapshot_due t version)
        ?doc_time xml
    in
    record_doc_time t ~doc:doc_id ~version doc_time;
    index_commit t ~doc:doc_id ~version ~ts delta (lazy new_tree);
    t.stats.commits <- t.stats.commits + 1;
    Log.debug (fun m ->
        m "update %s -> version %d at %s (%d ops)" url version
          (Timestamp.to_string ts) (Delta.op_count delta));
    delta
  in
  group_barrier t !ticket;
  result

let delete_document t ~url ?ts () =
  read_only_guard t "delete_document";
  let ticket = ref None in
  Txq_store.Rwlock.with_write t.lock (fun () ->
  drain_deferred t;
  match find_live t url with
  | None ->
    invalid_arg (Printf.sprintf "Db.delete_document: no live document at %s" url)
  | Some d ->
    let ts = commit_ts t ts in
    let doc_id = Docstore.doc_id d in
    let version = Docstore.version_count d in
    ticket :=
      journal_append t (Journal_record.Delete { r_doc = doc_id; r_ts = seconds ts });
    Docstore.mark_deleted d ~ts;
    index_delete t ~doc:doc_id ~version ~ts (Docstore.current d);
    (* Defensive eviction: entries for a deleted document stay correct
       (versions are immutable) but will never be asked for again. *)
    Vcache.evict_doc t.vcache doc_id;
    (* A deletion is a commit like any other: it journals a record and
       changes what every later snapshot reads.  Not counting it left two
       distinct states sharing one snapshot watermark, so a watermark no
       longer identified a unique operation prefix. *)
    t.stats.commits <- t.stats.commits + 1);
  group_barrier t !ticket

(* --- reconstruction --------------------------------------------------- *)

let io_stats t = Txq_store.Buffer_pool.stats t.pool

let cache_find t doc_id version =
  match Vcache.find t.vcache doc_id version with
  | Some tree ->
    t.stats.reconstruct_cache_hits <- t.stats.reconstruct_cache_hits + 1;
    Trace.add_count "vcache_hits" 1;
    Some tree
  | None ->
    Trace.add_count "vcache_misses" 1;
    None

let count_reconstruction t ~versions ~deltas =
  t.stats.reconstructions <- t.stats.reconstructions + versions;
  t.stats.deltas_read <- t.stats.deltas_read + deltas;
  let io = io_stats t in
  io.Txq_store.Io_stats.deltas_applied <-
    io.Txq_store.Io_stats.deltas_applied + deltas

let reconstruct t doc_id version =
  Trace.with_span "db.reconstruct" (fun () ->
      match cache_find t doc_id version with
      | Some tree -> tree
      | None ->
        let d = doc t doc_id in
        let cached = Vcache.nearest t.vcache doc_id version in
        let tree, cost = Docstore.reconstruct ?cached d version in
        count_reconstruction t ~versions:1 ~deltas:cost.Docstore.deltas_applied;
        Vcache.put t.vcache doc_id version tree;
        tree)

let reconstruct_range t doc_id ~lo ~hi =
  if lo > hi then []
  else
    Trace.with_span "db.reconstruct_range"
      ~attrs:[ ("versions", Txq_obs.Span.Int (hi - lo + 1)) ]
    @@ fun () ->
    let fully_cached =
      if not (Vcache.enabled t.vcache) then None
      else begin
        (* probe newest-first; prepending yields ascending order *)
        let rec probe v acc =
          if v < lo then Some acc
          else
            match cache_find t doc_id v with
            | Some tree -> probe (v - 1) ((v, tree) :: acc)
            | None -> None
        in
        probe hi []
      end
    in
    match fully_cached with
    | Some ascending -> List.rev ascending
    | None ->
      let d = doc t doc_id in
      let cached = Vcache.best_anchor t.vcache doc_id ~lo ~hi in
      let out = ref [] in
      let emit v tree =
        Vcache.put t.vcache doc_id v tree;
        out := (v, tree) :: !out
      in
      let deltas = Docstore.reconstruct_range ?cached d ~lo ~hi ~f:emit in
      count_reconstruction t ~versions:(hi - lo + 1) ~deltas;
      List.sort (fun (a, _) (b, _) -> Int.compare b a) !out

let read_delta t doc_id v =
  let delta = Docstore.read_delta (doc t doc_id) v in
  t.stats.deltas_read <- t.stats.deltas_read + 1;
  delta

let version_at t doc_id instant = Docstore.version_at (doc t doc_id) instant

let reconstruct_at t doc_id instant =
  match version_at t doc_id instant with
  | None -> None
  | Some v -> Some (v, reconstruct t doc_id v)

(* --- index access ----------------------------------------------------- *)

let fti t =
  match t.fti with
  | Some fti -> fti
  | None -> invalid_arg "Db.fti: no version-content index in this configuration"

let delta_fti t =
  match t.dfti with
  | Some dfti -> dfti
  | None -> invalid_arg "Db.delta_fti: no delta-operation index in this configuration"

let cretime t = t.cretime

let document_time t doc_id v = Docstore.doc_time_of_version (doc t doc_id) v

let find_by_document_time t ~t1 ~t2 =
  (* The document-time B+-tree is shared with the live writer, which
     rebalances nodes on insert: walk it only with the writer excluded. *)
  with_read t @@ fun () ->
  let clamp ts = Stdlib.max (-(1 lsl 42)) (Stdlib.min (1 lsl 42) (Timestamp.to_seconds ts)) in
  let lo = dtime_key (clamp t1) 0 in
  let hi = dtime_key (clamp t2) 0 in
  (* On a snapshot, rows committed past the watermark name documents or
     versions the pinned views cannot see: clip them out. *)
  let visible doc v =
    match t.view with
    | None -> true
    | Some _ -> (
      match doc_opt t doc with
      | None -> false
      | Some d -> v < Docstore.version_count d)
  in
  List.filter_map
    (fun (key, (doc, v)) ->
      (* rows for vacuumed versions are tombstoned with doc = -1 (the
         B+-tree is upsert-only) *)
      if Int64.compare doc 0L < 0 then None
      else
        let doc = Int64.to_int doc and v = Int64.to_int v in
        if not (visible doc v) then None
        else
          let seconds = Int64.to_int (Int64.shift_right key dtime_key_bits) in
          Some (Timestamp.of_seconds seconds, doc, v))
    (Txq_store.Bptree.range t.dtime_index ~lo ~hi)

(* --- vacuum ------------------------------------------------------------ *)

type vacuum_report = {
  vr_docs_squashed : int;
  vr_docs_dropped : int;
  vr_versions_dropped : int;
  vr_pages_freed : int;
  vr_bytes_reclaimed : int;
  vr_postings_pruned : int;
  vr_dfti_pruned : int;
  vr_cretime_pruned : int;
  vr_dtime_pruned : int;
}

let empty_vacuum_report =
  {
    vr_docs_squashed = 0;
    vr_docs_dropped = 0;
    vr_versions_dropped = 0;
    vr_pages_freed = 0;
    vr_bytes_reclaimed = 0;
    vr_postings_pruned = 0;
    vr_dfti_pruned = 0;
    vr_cretime_pruned = 0;
    vr_dtime_pruned = 0;
  }

(* One document's planned action.  [`Drop]: the whole lifetime ended before
   the horizon.  [`Squash]: truncate the chain prefix below [rb_base]. *)
type vacuum_plan =
  | Plan_drop of { pd_doc : Eid.doc_id; pd_freed : int list; pd_wm : int }
  | Plan_squash of {
      ps_doc : Eid.doc_id;
      ps_rebase : Docstore.rebase;
      ps_tree : Vnode.t;  (** the base version, for the delta-FTI *)
      ps_wm : int;
    }

(* Resolve the per-document target base under the retention policy: the
   horizon drops versions whose validity ended at or before it, keep-last-N
   drops everything below the newest N — when both are set the union of the
   two droppable prefixes goes.  The current version always survives. *)
let plan_base d (r : Config.retention) =
  let n = Docstore.version_count d in
  let b0 = Docstore.first_version d in
  let b_h =
    match r.Config.keep_newer_than with
    | None -> b0
    | Some h -> (
      match Docstore.version_at d h with
      | Some v -> v (* v was valid at h: keep it and everything newer *)
      | None -> b0 (* h precedes the retained chain: keep everything *))
  in
  let b_k =
    match r.Config.keep_versions with
    | None -> b0
    | Some k -> Stdlib.max b0 (n - k)
  in
  Stdlib.min (Stdlib.max b_h b_k) (n - 1)

(* Commit an already-planned vacuum: journal the record, apply the plans,
   prune the derived indexes, account.  The caller holds the write lock and
   has every new base snapshot durably written (inside the plans).  Shared
   verbatim between [vacuum] (plans from the retention policy) and replayed
   Vacuum records ([Replay], plans rebuilt from the shipped record), so a
   replica's vacuum is the same code path as the primary's. *)
let vacuum_commit t ~ts plans =
  begin
      (* Commit point: one record covering every document. *)
      journal_append_now t
        (Journal_record.Vacuum
           {
             r_ts = seconds ts;
             r_docs =
               List.map
                 (function
                   | Plan_drop { pd_doc; pd_freed; pd_wm } ->
                     {
                       Journal_record.vd_doc = pd_doc;
                       vd_base = 0;
                       vd_drop = true;
                       vd_snapshot = None;
                       vd_freed = pd_freed;
                       vd_xid_watermark = pd_wm;
                     }
                   | Plan_squash { ps_doc; ps_rebase; ps_wm; _ } ->
                     {
                       Journal_record.vd_doc = ps_doc;
                       vd_base = ps_rebase.Docstore.rb_base;
                       vd_drop = false;
                       vd_snapshot =
                         Option.map blob_ref ps_rebase.Docstore.rb_snapshot;
                       vd_freed = ps_rebase.Docstore.rb_freed;
                       vd_xid_watermark = ps_wm;
                     })
                 plans;
           });
      (* Apply: free blobs, truncate chains, unlink dropped documents. *)
      let versions_dropped = ref 0 in
      let pages_freed = ref 0 in
      let docs_squashed = ref 0 in
      let docs_dropped = ref 0 in
      Trace.with_span "db.vacuum.squash" (fun () ->
          List.iter
            (function
              | Plan_drop { pd_doc; pd_freed; _ } ->
                let d = doc t pd_doc in
                versions_dropped :=
                  !versions_dropped
                  + (Docstore.version_count d - Docstore.first_version d);
                pages_freed := !pages_freed + List.length pd_freed;
                incr docs_dropped;
                Docstore.apply_drop d;
                Hashtbl.remove t.docs pd_doc;
                (match Hashtbl.find_opt t.urls (Docstore.url d) with
                 | None -> ()
                 | Some bucket ->
                   bucket := List.filter (fun id -> id <> pd_doc) !bucket;
                   if !bucket = [] then Hashtbl.remove t.urls (Docstore.url d));
                Vcache.evict_doc t.vcache pd_doc
              | Plan_squash { ps_doc; ps_rebase; _ } ->
                let d = doc t ps_doc in
                versions_dropped :=
                  !versions_dropped + ps_rebase.Docstore.rb_versions_dropped;
                pages_freed :=
                  !pages_freed + List.length ps_rebase.Docstore.rb_freed;
                incr docs_squashed;
                Docstore.apply_rebase d ps_rebase;
                Vcache.evict_before t.vcache ps_doc ps_rebase.Docstore.rb_base)
            plans);
      (* Prune the derived indexes down to what a rebuild of the truncated
         chains would produce. *)
      let postings, dfti_removed, cretime_removed, dtime_removed =
        Trace.with_span "db.vacuum.prune" @@ fun () ->
        let fti_affected =
          List.map
            (function
              | Plan_drop { pd_doc; _ } -> (pd_doc, `Drop)
              | Plan_squash { ps_doc; ps_rebase; _ } ->
                (ps_doc, `Squash ps_rebase.Docstore.rb_base))
            plans
        in
        let postings =
          match t.fti with
          | None -> 0
          | Some fti -> Fti.vacuum fti ~affected:fti_affected
        in
        let dfti_removed =
          match t.dfti with
          | None -> 0
          | Some dfti ->
            fst
              (Delta_fti.vacuum dfti
                 ~affected:
                   (List.map
                      (function
                        | Plan_drop { pd_doc; _ } -> (pd_doc, `Drop)
                        | Plan_squash { ps_doc; ps_rebase; ps_tree; _ } ->
                          (ps_doc, `Squash (ps_rebase.Docstore.rb_base, ps_tree)))
                      plans))
        in
        let cretime_removed =
          match t.cretime with
          | None -> 0
          | Some idx ->
            Cretime_index.prune idx
              ~affected:
                (List.map
                   (function
                     | Plan_drop { pd_doc; _ } -> (pd_doc, `Drop)
                     | Plan_squash { ps_doc; ps_rebase; _ } ->
                       let d = doc t ps_doc in
                       ( ps_doc,
                         `Before
                           (Docstore.ts_of_version d ps_rebase.Docstore.rb_base)
                       ))
                   plans)
        in
        (* Document-time rows for vacuumed versions: the tree is keyed by
           document time, so matching rows are found by a full sweep and
           tombstoned in place (doc = -1) — the B+-tree is upsert-only. *)
        let cutoff = Hashtbl.create 8 in
        List.iter
          (function
            | Plan_drop { pd_doc; _ } -> Hashtbl.replace cutoff pd_doc max_int
            | Plan_squash { ps_doc; ps_rebase; _ } ->
              Hashtbl.replace cutoff ps_doc ps_rebase.Docstore.rb_base)
          plans;
        let victims = ref [] in
        Txq_store.Bptree.iter t.dtime_index (fun key (doc, v) ->
            if Int64.compare doc 0L >= 0 then
              match Hashtbl.find_opt cutoff (Int64.to_int doc) with
              | Some base when Int64.to_int v < base -> victims := key :: !victims
              | _ -> ());
        List.iter
          (fun key -> Txq_store.Bptree.insert t.dtime_index ~key (-1L, 0L))
          !victims;
        (postings, dfti_removed, cretime_removed, List.length !victims)
      in
      Txq_obs.Metrics.incr ~by:!versions_dropped "db.vacuum.versions_dropped";
      Txq_obs.Metrics.incr ~by:!pages_freed "db.vacuum.pages_freed";
      Txq_obs.Metrics.incr ~by:postings "db.vacuum.postings_pruned";
      Trace.add_count "versions_dropped" !versions_dropped;
      Trace.add_count "pages_freed" !pages_freed;
      Log.info (fun m ->
          m "vacuum: %d squashed, %d dropped, %d versions, %d pages freed"
            !docs_squashed !docs_dropped !versions_dropped !pages_freed);
      {
        vr_docs_squashed = !docs_squashed;
        vr_docs_dropped = !docs_dropped;
        vr_versions_dropped = !versions_dropped;
        vr_pages_freed = !pages_freed;
        vr_bytes_reclaimed = !pages_freed * Txq_store.Disk.page_size;
        vr_postings_pruned = postings;
        vr_dfti_pruned = dfti_removed;
        vr_cretime_pruned = cretime_removed;
        vr_dtime_pruned = dtime_removed;
      }
  end

let vacuum ?retention t =
  read_only_guard t "vacuum";
  let r = match retention with Some r -> r | None -> t.config.Config.retention in
  if r.Config.keep_newer_than = None && r.Config.keep_versions = None then
    empty_vacuum_report
  else
    Txq_store.Rwlock.with_write t.lock @@ fun () ->
    Trace.with_span "db.vacuum" @@ fun () ->
    (* Vacuum frees pages; buffered commit records whose superseded blobs
       those pages might be must reach disk first.  Syncing everything
       appended also lets every deferred free drain. *)
    (match t.journal with
     | Some j when t.config.Config.group_commit -> Txq_store.Journal.sync j
     | Some _ | None -> ());
    drain_deferred t;
    (* Hold-back horizon: a pinned snapshot reads any retained version of
       any document it captured, so those documents are exempt until the
       snapshot is released.  Documents created after every pin are fair
       game. *)
    let hold_below =
      pins_locked t @@ fun () ->
      Hashtbl.fold
        (fun _ p acc -> Stdlib.max acc p.pin_next_doc)
        t.pins.pin_table 0
    in
    (* Plan + prepare: write every base snapshot durably; nothing in memory
       changes, so a crash anywhere in here leaves only unreachable blobs
       for recovery's liveness scan. *)
    let plans =
      Trace.with_span "db.vacuum.plan" @@ fun () ->
      List.filter_map
        (fun id ->
          if id < hold_below then None
          else
          let d = doc t id in
          let wm = Docstore.xid_watermark d in
          let dropped_whole =
            match (Docstore.deleted_at d, r.Config.keep_newer_than) with
            | Some dts, Some h -> Timestamp.(dts <= h)
            | _ -> false
          in
          if dropped_whole then
            Some
              (Plan_drop
                 { pd_doc = id; pd_freed = Docstore.all_blob_pages d; pd_wm = wm })
          else
            let base = plan_base d r in
            if base <= Docstore.first_version d then None
            else
              let rb = Docstore.prepare_rebase d ~base in
              (* the base tree re-registers in the delta-FTI; reconstructed
                 while the full chain is still intact *)
              let tree, _ = Docstore.reconstruct d base in
              Some
                (Plan_squash { ps_doc = id; ps_rebase = rb; ps_tree = tree; ps_wm = wm }))
        (doc_ids t)
    in
    if plans = [] then empty_vacuum_report
    else vacuum_commit t ~ts:(Clock.now t.clock) plans

(* --- integrity --------------------------------------------------------- *)

let verify t =
  let errors = ref [] in
  let checked = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Hashtbl.iter
    (fun id d ->
      let n = Docstore.version_count d in
      let b0 = Docstore.first_version d in
      (* timestamps strictly monotone *)
      for v = b0 + 1 to n - 1 do
        if
          Timestamp.(Docstore.ts_of_version d v <= Docstore.ts_of_version d (v - 1))
        then note "doc %d: version %d timestamp does not advance" id v
      done;
      (* every retained version reconstructs; cache bypassed for a true
         readback *)
      for v = b0 to n - 1 do
        match Docstore.reconstruct d v with
        | tree, _ ->
          incr checked;
          if v = n - 1 && not (Vnode.equal_with_xids tree (Docstore.current d))
          then
            note "doc %d: reconstructed newest version differs from current" id
        | exception e ->
          note "doc %d: version %d does not reconstruct: %s" id v
            (Printexc.to_string e)
      done)
    t.docs;
  if !errors = [] then Ok !checked else Error (List.rev !errors)

(* --- crash recovery ---------------------------------------------------- *)

(* Per-document accumulator while replaying journal records (pass A). *)
type doc_build = {
  b_url : string;
  mutable b_entries : Docstore.restored_entry list; (* newest first *)
  mutable b_base : int; (* first retained version (vacuum truncation) *)
  mutable b_xid_watermark : int;
  mutable b_current : Txq_store.Blob_store.blob;
  mutable b_deleted : Timestamp.t option;
}

let restore_blob r =
  Txq_store.Blob_store.restore_blob ~pages:r.Journal_record.br_pages
    ~length:r.Journal_record.br_length

let recover disk config =
  enable_tracing config;
  let pool =
    Txq_store.Buffer_pool.create ~capacity:config.Config.buffer_pool_pages disk
  in
  let { Txq_store.Journal.journal; records = raw_records; journal_pages } =
    Txq_store.Journal.recover pool
  in
  (* The journal only hands us digest-checked payloads, but a record can
     still be logically corrupt (truncated encoder output, version skew
     from an older writer).  Two very different situations share that
     symptom, and the position of the bad record tells them apart:

     - an undecodable {e suffix} is a torn tail — the crash caught the last
       append(s) mid-flight; dropping it quietly is exactly recovering to a
       commit prefix;
     - an undecodable record with decodable records {e after} it is
       mid-journal corruption: those later records are durable commits the
       prefix rule would silently discard, and the store that produced them
       cannot be reconstructed faithfully.  Refuse to open rather than
       quietly lose committed data. *)
  let records =
    let rec prefix acc = function
      | [] -> List.rev acc
      | raw :: rest -> (
        match Journal_record.decode raw with
        | Ok r -> prefix (r :: acc) rest
        | Error reason ->
          if
            List.exists
              (fun later ->
                match Journal_record.decode later with
                | Ok _ -> true
                | Error _ -> false)
              rest
          then begin
            Txq_obs.Metrics.incr "db.recover.corrupt_mid_journal";
            failwith
              (Printf.sprintf
                 "Db.recover: journal record %d is undecodable (%s) but later \
                  records decode — mid-journal corruption, not a torn tail; \
                  refusing to open a store missing committed history"
                 (List.length acc) reason)
          end;
          let dropped = 1 + List.length rest in
          Txq_obs.Metrics.incr ~by:dropped "db.recover.records_dropped";
          Log.warn (fun m ->
              m
                "recover: journal record %d is undecodable (%s); truncating \
                 replay, dropping %d record(s)"
                (List.length acc) reason dropped);
          List.rev acc)
    in
    prefix [] raw_records
  in
  let blobs = Txq_store.Blob_store.create ~policy:config.Config.placement pool in
  (* Pass A: replay records into per-document chains.  Only blobs reachable
     from the latest record mentioning them are live; everything a crash
     left half-written is unreferenced and simply becomes free space. *)
  let builders : (Eid.doc_id, doc_build) Hashtbl.t = Hashtbl.create 64 in
  let insert_order = ref [] in
  (* Highest document id ever inserted — tracked independently of the
     surviving builders, because a vacuum may drop the newest document and
     ids must never be reused. *)
  let max_doc_id = ref (-1) in
  (* page -> cluster (doc id) for pages released by a committed commit *)
  let freed_cluster : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let commits = ref 0 in
  let last_ts = ref None in
  let note_ts s =
    let ts = Timestamp.of_seconds s in
    match !last_ts with
    | Some prev when Timestamp.(prev >= ts) -> ()
    | _ -> last_ts := Some ts
  in
  let builder doc what =
    match Hashtbl.find_opt builders doc with
    | Some b -> b
    | None ->
      failwith
        (Printf.sprintf "Db.recover: journal %s for unknown document %d" what doc)
  in
  List.iter
    (fun r ->
      match r with
      | Journal_record.Insert
          { r_doc; r_url; r_ts; r_doc_time; r_current; r_snapshot } ->
        note_ts r_ts;
        incr commits;
        max_doc_id := Stdlib.max !max_doc_id r_doc;
        Hashtbl.replace builders r_doc
          {
            b_url = r_url;
            b_entries =
              [
                {
                  Docstore.re_ts = Timestamp.of_seconds r_ts;
                  re_delta = None;
                  re_snapshot = Option.map restore_blob r_snapshot;
                  re_doc_time = Option.map Timestamp.of_seconds r_doc_time;
                };
              ];
            b_base = 0;
            b_xid_watermark = 0;
            b_current = restore_blob r_current;
            b_deleted = None;
          };
        insert_order := r_doc :: !insert_order
      | Journal_record.Commit
          { r_doc; r_version = _; r_ts; r_doc_time; r_delta; r_current;
            r_snapshot; r_freed } ->
        note_ts r_ts;
        incr commits;
        let b = builder r_doc "commit" in
        b.b_entries <-
          {
            Docstore.re_ts = Timestamp.of_seconds r_ts;
            re_delta = Some (restore_blob r_delta);
            re_snapshot = Option.map restore_blob r_snapshot;
            re_doc_time = Option.map Timestamp.of_seconds r_doc_time;
          }
          :: b.b_entries;
        List.iter (fun p -> Hashtbl.replace freed_cluster p r_doc) r_freed;
        b.b_current <- restore_blob r_current
      | Journal_record.Delete { r_doc; r_ts } ->
        note_ts r_ts;
        incr commits;
        (builder r_doc "delete").b_deleted <- Some (Timestamp.of_seconds r_ts)
      | Journal_record.Vacuum { r_ts; r_docs } ->
        note_ts r_ts;
        List.iter
          (fun vd ->
            let doc = vd.Journal_record.vd_doc in
            if vd.Journal_record.vd_drop then begin
              (* chain gone entirely: its blobs become dead pages below *)
              ignore (builder doc "vacuum");
              Hashtbl.remove builders doc
            end
            else begin
              let b = builder doc "vacuum" in
              let n = b.b_base + List.length b.b_entries in
              let keep = n - vd.Journal_record.vd_base in
              if keep < 1 || keep > List.length b.b_entries then
                failwith
                  (Printf.sprintf
                     "Db.recover: vacuum base %d outside document %d's chain"
                     vd.Journal_record.vd_base doc);
              (* b_entries is newest first: truncating the chain prefix
                 drops from the tail, then the now-oldest entry becomes the
                 base — no delta in, base snapshot installed. *)
              let retained = List.filteri (fun i _ -> i < keep) b.b_entries in
              let retained =
                List.mapi
                  (fun i e ->
                    if i < keep - 1 then e
                    else
                      {
                        e with
                        Docstore.re_delta = None;
                        re_snapshot =
                          (match vd.Journal_record.vd_snapshot with
                          | Some r -> Some (restore_blob r)
                          | None -> e.Docstore.re_snapshot);
                      })
                  retained
              in
              b.b_entries <- retained;
              b.b_base <- vd.Journal_record.vd_base;
              b.b_xid_watermark <-
                Stdlib.max b.b_xid_watermark
                  vd.Journal_record.vd_xid_watermark
            end;
            List.iter
              (fun p -> Hashtbl.replace freed_cluster p doc)
              vd.Journal_record.vd_freed)
          r_docs)
    records;
  (* Rebuild the blob allocator: a page is live iff a surviving chain
     references it; journal pages stay owned by the journal; the rest —
     crash debris, superseded versions, dead index pages — is free. *)
  let page_total = Txq_store.Disk.page_count disk in
  let live = Array.make (Stdlib.max 1 page_total) false in
  let claim b =
    List.iter (fun p -> live.(p) <- true) (Txq_store.Blob_store.page_ids b)
  in
  Hashtbl.iter
    (fun _ b ->
      claim b.b_current;
      List.iter
        (fun e ->
          Option.iter claim e.Docstore.re_delta;
          Option.iter claim e.Docstore.re_snapshot)
        b.b_entries)
    builders;
  let journal_owned = Array.make (Stdlib.max 1 page_total) false in
  List.iter (fun p -> journal_owned.(p) <- true) journal_pages;
  let live_count = ref 0 in
  let free_global = ref [] in
  let free_clustered : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  for p = page_total - 1 downto 0 do
    if live.(p) then incr live_count
    else if not journal_owned.(p) then begin
      match Hashtbl.find_opt freed_cluster p with
      | Some doc when config.Config.placement <> `Unclustered ->
        let slot =
          match Hashtbl.find_opt free_clustered doc with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace free_clustered doc l;
            l
        in
        slot := p :: !slot
      | _ -> free_global := p :: !free_global
    end
  done;
  Txq_store.Blob_store.restore_state blobs
    ~allocated:(page_total - List.length journal_pages)
    ~live:!live_count ~free_global:!free_global
    ~free_clustered:
      (Hashtbl.fold (fun doc l acc -> (doc, !l) :: acc) free_clustered []);
  (* Rebuild document stores and the URL directory. *)
  let docs = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id b ->
      Hashtbl.replace docs id
        (Docstore.restore ~blobs ~doc_id:id ~url:b.b_url ~base:b.b_base
           ~xid_watermark:b.b_xid_watermark ~entries:(List.rev b.b_entries)
           ~current_blob:b.b_current ~deleted:b.b_deleted ()))
    builders;
  let urls = Hashtbl.create 64 in
  List.iter
    (fun id ->
      (* ids dropped by a vacuum have no builder and no directory entry *)
      match Hashtbl.find_opt builders id with
      | None -> ()
      | Some b -> (
        match Hashtbl.find_opt urls b.b_url with
        | Some bucket -> bucket := id :: !bucket
        | None -> Hashtbl.replace urls b.b_url (ref [ id ])))
    (List.rev !insert_order);
  let clock = Clock.create () in
  (match !last_ts with
   | Some ts when Timestamp.(ts > Clock.now clock) -> Clock.set clock ts
   | _ -> ());
  let t =
    {
      config;
      clock;
      disk;
      pool;
      blobs;
      journal =
        (match config.Config.durability with
         | `Journal -> Some journal
         | `None -> None);
      docs;
      urls;
      fti =
        (if Config.maintains_version_index config then
         Some
           (Fti.create
              ~segment_postings:config.Config.fti_segment_postings ())
         else None);
      dfti =
        (if Config.maintains_delta_index config then Some (Delta_fti.create ())
         else None);
      cretime =
        (if config.Config.cretime_index then
           Some
             (match config.Config.cretime_backing with
              | `Paged -> Cretime_index.create_paged pool
              | `Memory -> Cretime_index.create ())
         else None);
      next_doc_id = !max_doc_id + 1;
      dtime_path =
        Option.map Txq_xml.Path.parse_exn config.Config.document_time_path;
      dtime_index = Txq_store.Bptree.create pool;
      dtime_counts = Hashtbl.create 64;
      stats =
        { commits = !commits; deltas_read = 0; reconstructions = 0;
          reconstruct_cache_hits = 0 };
      (* A fresh, empty cache: recovery must never serve pre-crash trees. *)
      vcache =
        Vcache.create ~budget:config.Config.version_cache_bytes
          ~io:(Txq_store.Buffer_pool.stats pool);
      lock = Txq_store.Rwlock.create ();
      pins =
        { pins_m = Mutex.create (); pin_table = Hashtbl.create 8;
          next_pin_id = 0 };
      view = None;
      deferred = [];
      replica = false;
      ship_history =
        (* The applied prefix, re-shippable as-is: every recovered record is
           durable, so each seeds the history with ticket 0. *)
        (let history = Txq_store.Vec.create () in
         let applied = List.length records in
         List.iteri
           (fun i raw ->
             if i < applied then Txq_store.Vec.push history (0, raw))
           raw_records;
         history);
      ship_ring = Hashtbl.create 8;
    }
  in
  (* Pass B: rebuild the derived indexes.  The document-time index replays
     in global record order (its tie-breaking sequence number follows
     commit order); the content indexes replay each document's versions
     forward — version trees are regenerated from the delta chain, since
     intermediate current-version blobs were reclaimed long ago. *)
  (* Vacuumed versions are filtered out against the builders' final state,
     exactly what in-process pruning leaves behind. *)
  let dtime_retained doc version =
    match Hashtbl.find_opt builders doc with
    | Some b -> version >= b.b_base
    | None -> false
  in
  List.iter
    (fun r ->
      match r with
      | Journal_record.Insert { r_doc; r_doc_time; _ } ->
        if dtime_retained r_doc 0 then
          record_doc_time t ~doc:r_doc ~version:0
            (Option.map Timestamp.of_seconds r_doc_time)
      | Journal_record.Commit { r_doc; r_version; r_doc_time; _ } ->
        if dtime_retained r_doc r_version then
          record_doc_time t ~doc:r_doc ~version:r_version
            (Option.map Timestamp.of_seconds r_doc_time)
      | Journal_record.Delete _ | Journal_record.Vacuum _ -> ())
    records;
  if t.fti <> None || t.dfti <> None || t.cretime <> None then
    List.iter
      (fun id ->
        let d = Hashtbl.find t.docs id in
        let n = Docstore.version_count d in
        (* a vacuumed chain starts at its base version, not 0 *)
        let b0 = Docstore.first_version d in
        let tree0, _ = Docstore.reconstruct d b0 in
        index_insert t ~doc:id ~version:b0 d (Docstore.ts_of_version d b0) tree0;
        let map = Txq_vxml.Xidmap.of_vnode tree0 in
        for v = b0 + 1 to n - 1 do
          let delta = Docstore.read_delta d v in
          Delta.apply_forward map delta;
          index_commit t ~doc:id ~version:v ~ts:(Docstore.ts_of_version d v)
            delta
            (lazy (Txq_vxml.Xidmap.to_vnode map))
        done;
        match Docstore.deleted_at d with
        | None -> ()
        | Some dts -> index_delete t ~doc:id ~version:n ~ts:dts (Docstore.current d))
      (List.sort Int.compare
         (Hashtbl.fold (fun id _ acc -> id :: acc) t.docs []));
  Log.debug (fun m ->
      m "recovered %d documents from %d journal records" (Hashtbl.length t.docs)
        (List.length records));
  t

let journal t = t.journal

(* --- journal shipping -------------------------------------------------- *)

exception Ship_gap of int

(* Highest shippable index: the durable prefix of the shipping history.
   Tickets are nondecreasing along the history (ticket 0 = synced at append
   time), so the un-synced records form a suffix; scan back over it.
   Caller holds at least the read lock. *)
let durable_upto t =
  match t.journal with
  | None -> 0
  | Some j ->
    let synced = Txq_store.Journal.synced_count j in
    let n = Txq_store.Vec.length t.ship_history in
    let rec back i =
      if i >= 0 && fst (Txq_store.Vec.get t.ship_history i) > synced then
        back (i - 1)
      else i + 1
    in
    back (n - 1)

let durable_records t = with_read t @@ fun () -> durable_upto t

(* Contents for a record whose ring entry (if any) is gone: regenerate them
   from the retained chains.  [Codec]/[Delta] encoding is deterministic and
   XID-preserving, so the regenerated bytes equal what the primary
   originally wrote.  A record whose history a vacuum truncated cannot be
   regenerated: the shipper gets [Ship_gap] and must re-clone — the same
   contract as a base backup that predates the retained WAL. *)
let fabricate_contents t index record =
  match record with
  | Journal_record.Delete _ | Journal_record.Vacuum _ -> []
  | Journal_record.Insert { r_doc; _ } -> (
    match Hashtbl.find_opt t.docs r_doc with
    | Some d when Docstore.first_version d = 0 ->
      [ Txq_vxml.Codec.encode (fst (Docstore.reconstruct d 0)) ]
    | Some _ | None -> raise (Ship_gap index))
  | Journal_record.Commit { r_doc; r_version; _ } -> (
    match Hashtbl.find_opt t.docs r_doc with
    | Some d
      when r_version > Docstore.first_version d
           && r_version < Docstore.version_count d ->
      [ Delta.encode (Docstore.read_delta d r_version) ]
    | Some _ | None -> raise (Ship_gap index))

let ship t ~from ?(limit = 256) () =
  (match t.journal with
   | None ->
     invalid_arg "Db.ship: durability is `None — there is no journal to ship"
   | Some _ -> ());
  if from < 0 then invalid_arg "Db.ship: negative start index";
  with_read t @@ fun () ->
  let stop = Stdlib.min (durable_upto t) (from + Stdlib.max 0 limit) in
  let out = ref [] in
  for i = stop - 1 downto from do
    let _, payload = Txq_store.Vec.get t.ship_history i in
    let contents =
      match Hashtbl.find_opt t.ship_ring i with
      | Some cs -> cs
      | None -> fabricate_contents t i (Journal_record.decode_exn payload)
    in
    out :=
      { Journal_record.sh_index = i; sh_payload = payload;
        sh_contents = contents }
      :: !out
  done;
  !out

(* --- replay: replicas and point-in-time restore ------------------------ *)

exception Replay_error of string

let replay_fail fmt = Printf.ksprintf (fun s -> raise (Replay_error s)) fmt

module Replay = struct
  type r = {
    rd : t;
    (* Current-tree XID maps, built lazily per document on its first
       replayed Commit and advanced delta-by-delta afterwards, so applying
       a long update stream never re-parses the whole tree per record. *)
    maps : (Eid.doc_id, Txq_vxml.Xidmap.t) Hashtbl.t;
    mutable applied : int;
  }

  let db r = r.rd
  let applied r = r.applied

  (* A replica journals every applied record locally (plain appends: each
     record is durable before [applied] advances) — the replica directory
     is a self-contained store that plain [recover] reopens after a kill at
     any record boundary. *)
  let replica_config config =
    { config with Config.durability = `Journal; group_commit = false }

  let create ?(config = Config.default) () =
    let rd = create ~config:(replica_config config) () in
    rd.replica <- true;
    { rd; maps = Hashtbl.create 64; applied = 0 }

  (* Resume after a restart: wrap a [recover]ed replica store.  Its local
     journal holds exactly the shipments it applied, in order, so the
     shipping history's length is the resume position. *)
  let of_db rd =
    if is_snapshot rd then invalid_arg "Db.Replay.of_db: snapshot handle";
    (match rd.journal with
     | None -> invalid_arg "Db.Replay.of_db: replica stores must journal"
     | Some _ -> ());
    rd.replica <- true;
    {
      rd;
      maps = Hashtbl.create 64;
      applied = Txq_store.Vec.length rd.ship_history;
    }

  let detach r =
    r.rd.replica <- false;
    r.rd

  let decode_content what decode c =
    match decode c with
    | Ok v -> v
    | Error msg -> replay_fail "shipped %s does not decode: %s" what msg

  let doc_of t doc what =
    match Hashtbl.find_opt t.docs doc with
    | Some d -> d
    | None -> replay_fail "shipped %s names unknown document %d" what doc

  (* Clock follow (and the restore monotonicity fix): the replica clock
     tracks the newest applied timestamp, so a detached restore's next
     commit — [commit_ts] ticks strictly past [now] — can never collide
     with a historical dtime key or version range. *)
  let follow_clock t s =
    let ts = Timestamp.of_seconds s in
    if Timestamp.(ts > Clock.now t.clock) then Clock.set t.clock ts

  let apply_insert t ~doc ~url ~ts_s ~doc_time_s ~has_snapshot c0 =
    if Hashtbl.mem t.docs doc then
      replay_fail "shipped insert re-uses live document id %d" doc;
    let current = decode_content "version-0 tree" Txq_vxml.Codec.decode c0 in
    let ts = Timestamp.of_seconds ts_s in
    let doc_time = Option.map Timestamp.of_seconds doc_time_s in
    let current_blob = Txq_store.Blob_store.put t.blobs ~cluster:doc c0 in
    let snapshot_blob =
      if has_snapshot then
        Some (Txq_store.Blob_store.put t.blobs ~cluster:doc c0)
      else None
    in
    ignore
      (journal_append t
         ~contents:(fun () -> [ c0 ])
         (Journal_record.Insert
            {
              r_doc = doc;
              r_url = url;
              r_ts = ts_s;
              r_doc_time = doc_time_s;
              r_current = blob_ref current_blob;
              r_snapshot = Option.map blob_ref snapshot_blob;
            })
        : int option);
    let d =
      Docstore.restore ~blobs:t.blobs ~doc_id:doc ~url
        ~entries:
          [
            {
              Docstore.re_ts = ts;
              re_delta = None;
              re_snapshot = snapshot_blob;
              re_doc_time = doc_time;
            };
          ]
        ~current_blob ~deleted:None ()
    in
    Hashtbl.replace t.docs doc d;
    let bucket = url_bucket t url in
    bucket := doc :: !bucket;
    t.next_doc_id <- Stdlib.max t.next_doc_id (doc + 1);
    record_doc_time t ~doc ~version:0 doc_time;
    index_insert t ~doc ~version:0 d ts current;
    t.stats.commits <- t.stats.commits + 1

  let apply_commit r t ~doc ~version ~ts_s ~doc_time_s ~has_snapshot c0 =
    let d = doc_of t doc "commit" in
    if Docstore.deleted_at d <> None then
      replay_fail "shipped commit targets deleted document %d" doc;
    let n = Docstore.version_count d in
    if n <> version then
      replay_fail "shipped commit creates version %d of document %d but %d is next"
        version doc n;
    let ts = Timestamp.of_seconds ts_s in
    if Timestamp.(ts <= Docstore.ts_of_version d (n - 1)) then
      replay_fail "shipped commit timestamp does not advance (document %d)" doc;
    let delta = decode_content "delta" Delta.decode c0 in
    let map =
      match Hashtbl.find_opt r.maps doc with
      | Some m -> m
      | None ->
        let m = Txq_vxml.Xidmap.of_vnode (Docstore.current d) in
        Hashtbl.replace r.maps doc m;
        m
    in
    Delta.apply_forward map delta;
    let new_tree = Txq_vxml.Xidmap.to_vnode map in
    let new_enc = Txq_vxml.Codec.encode new_tree in
    (* Blobs in the order the primary wrote them (delta, current, snapshot),
       so a replica built from scratch allocates the same shapes. *)
    let delta_blob = Txq_store.Blob_store.put t.blobs ~cluster:doc c0 in
    let current_blob = Txq_store.Blob_store.put t.blobs ~cluster:doc new_enc in
    let snapshot_blob =
      if has_snapshot then
        Some (Txq_store.Blob_store.put t.blobs ~cluster:doc new_enc)
      else None
    in
    let old_blob = Docstore.current_blob d in
    ignore
      (journal_append t
         ~contents:(fun () -> [ c0 ])
         (Journal_record.Commit
            {
              r_doc = doc;
              r_version = version;
              r_ts = ts_s;
              r_doc_time = doc_time_s;
              r_delta = blob_ref delta_blob;
              r_current = blob_ref current_blob;
              r_snapshot = Option.map blob_ref snapshot_blob;
              r_freed = Txq_store.Blob_store.page_ids old_blob;
            })
        : int option);
    Txq_store.Blob_store.free t.blobs ~cluster:doc old_blob;
    let doc_time = Option.map Timestamp.of_seconds doc_time_s in
    Docstore.append_restored d ~ts ?doc_time ~delta_blob ~snapshot_blob
      ~current:new_tree ~current_blob ();
    (* XIDs born or retired by this delta: never to be reused locally *)
    let gen = Docstore.gen d in
    List.iter (Txq_vxml.Xid.Gen.mark_used gen) (Delta.inserted_xids delta);
    List.iter (Txq_vxml.Xid.Gen.mark_used gen) (Delta.deleted_xids delta);
    record_doc_time t ~doc ~version doc_time;
    index_commit t ~doc ~version ~ts delta (lazy new_tree);
    t.stats.commits <- t.stats.commits + 1

  let apply_delete r t ~doc ~ts_s =
    let d = doc_of t doc "delete" in
    if Docstore.deleted_at d <> None then
      replay_fail "shipped delete targets already-deleted document %d" doc;
    let ts = Timestamp.of_seconds ts_s in
    ignore
      (journal_append t (Journal_record.Delete { r_doc = doc; r_ts = ts_s })
        : int option);
    Docstore.mark_deleted d ~ts;
    index_delete t ~doc ~version:(Docstore.version_count d) ~ts
      (Docstore.current d);
    Vcache.evict_doc t.vcache doc;
    Hashtbl.remove r.maps doc;
    t.stats.commits <- t.stats.commits + 1

  (* Rebuild the vacuum plans from the shipped record against the local
     chains, then run the exact same commit path as a primary-side vacuum.
     The replica's chains mirror the primary's, so [prepare_rebase] makes
     the same snapshot-writing decisions and frees the mirrored pages. *)
  let apply_vacuum r t ~ts_s r_docs =
    let plans =
      List.map
        (fun vd ->
          let doc = vd.Journal_record.vd_doc in
          let d = doc_of t doc "vacuum" in
          let wm =
            Stdlib.max (Docstore.xid_watermark d)
              vd.Journal_record.vd_xid_watermark
          in
          if vd.Journal_record.vd_drop then
            Plan_drop
              { pd_doc = doc; pd_freed = Docstore.all_blob_pages d; pd_wm = wm }
          else begin
            let base = vd.Journal_record.vd_base in
            if
              base <= Docstore.first_version d
              || base >= Docstore.version_count d
            then
              replay_fail "shipped vacuum base %d outside document %d's chain"
                base doc;
            let rb = Docstore.prepare_rebase d ~base in
            let tree, _ = Docstore.reconstruct d base in
            Plan_squash { ps_doc = doc; ps_rebase = rb; ps_tree = tree; ps_wm = wm }
          end)
        r_docs
    in
    if plans <> [] then
      ignore (vacuum_commit t ~ts:(Timestamp.of_seconds ts_s) plans
               : vacuum_report);
    List.iter
      (function
        | Plan_drop { pd_doc; _ } -> Hashtbl.remove r.maps pd_doc
        | Plan_squash _ -> ())
      plans

  (* The primary's vacuum held back only for the primary's pins; pins on
     THIS replica are invisible to it.  Block until local readers drain
     before truncating chains — the replica-side analogue of a hot-standby
     recovery-conflict pause.  Reader pins are per-request and short. *)
  let wait_for_local_pins t =
    while pinned_snapshots t > 0 do
      Unix.sleepf 0.0005
    done

  let apply r sh =
    let t = r.rd in
    let { Journal_record.sh_index; sh_payload; sh_contents } = sh in
    if sh_index < r.applied then () (* poll overlap: already applied *)
    else if sh_index > r.applied then
      replay_fail "shipment %d arrived but %d is next: gap in the stream"
        sh_index r.applied
    else begin
      let record =
        match Journal_record.decode sh_payload with
        | Ok rec_ -> rec_
        | Error msg -> raise (Replay_error msg)
      in
      let slots = Journal_record.content_slots record in
      if List.length sh_contents <> slots then
        replay_fail "shipment %d carries %d content blob(s); the record needs %d"
          sh_index (List.length sh_contents) slots;
      (match record with
       | Journal_record.Vacuum _ -> wait_for_local_pins t
       | _ -> ());
      Txq_store.Rwlock.with_write t.lock (fun () ->
          (match (record, sh_contents) with
           | ( Journal_record.Insert
                 { r_doc; r_url; r_ts; r_doc_time; r_current = _; r_snapshot },
               [ c0 ] ) ->
             follow_clock t r_ts;
             apply_insert t ~doc:r_doc ~url:r_url ~ts_s:r_ts
               ~doc_time_s:r_doc_time ~has_snapshot:(r_snapshot <> None) c0
           | ( Journal_record.Commit
                 { r_doc; r_version; r_ts; r_doc_time; r_snapshot; _ },
               [ c0 ] ) ->
             follow_clock t r_ts;
             apply_commit r t ~doc:r_doc ~version:r_version ~ts_s:r_ts
               ~doc_time_s:r_doc_time ~has_snapshot:(r_snapshot <> None) c0
           | Journal_record.Delete { r_doc; r_ts }, [] ->
             follow_clock t r_ts;
             apply_delete r t ~doc:r_doc ~ts_s:r_ts
           | Journal_record.Vacuum { r_ts; r_docs }, [] ->
             follow_clock t r_ts;
             apply_vacuum r t ~ts_s:r_ts r_docs
           | _ -> assert false (* slot count checked above *));
          r.applied <- r.applied + 1)
    end
end

let apply_stream r pull =
  let n = ref 0 in
  let rec loop () =
    match pull () with
    | None -> ()
    | Some sh ->
      Replay.apply r sh;
      incr n;
      loop ()
  in
  loop ();
  !n

(* Clone this store as of [as_of] (transaction time, {e inclusive} — a
   commit stamped exactly [as_of] is part of the restored state, matching
   [version_at]'s [ve_ts <= instant] rule).  The clone replays the journal
   prefix through [Replay] into a fresh in-memory store and is returned
   writable; its clock sits at the newest replayed timestamp, so the next
   commit ticks strictly past the restored watermark. *)
let restore_as_of t ~as_of =
  let record_seconds = function
    | Journal_record.Insert { r_ts; _ }
    | Journal_record.Commit { r_ts; _ }
    | Journal_record.Delete { r_ts; _ }
    | Journal_record.Vacuum { r_ts; _ } -> r_ts
  in
  let horizon = Timestamp.to_seconds as_of in
  let rp = Replay.create ~config:t.config () in
  let stop = ref false in
  (try
     while not !stop do
       let from = Replay.applied rp in
       match ship t ~from () with
       | [] -> stop := true
       | batch ->
         List.iter
           (fun sh ->
             if not !stop then begin
               let record =
                 Journal_record.decode_exn sh.Journal_record.sh_payload
               in
               if record_seconds record <= horizon then Replay.apply rp sh
               else stop := true
             end)
           batch
     done
   with Ship_gap i ->
     failwith
       (Printf.sprintf
          "Db.restore_as_of: record %d's history was vacuumed away on the \
           source; restore from a store that retains it (or raise \
           Config.ship_buffer)"
          i));
  Replay.detach rp

(* --- accounting ------------------------------------------------------- *)

let stats t = t.stats

let reset_io t =
  Txq_store.Io_stats.reset (io_stats t);
  t.stats.deltas_read <- 0;
  t.stats.reconstructions <- 0;
  t.stats.reconstruct_cache_hits <- 0

let flush_cache t =
  Txq_store.Buffer_pool.flush t.pool;
  Vcache.clear t.vcache

let live_pages t = Txq_store.Blob_store.live_pages t.blobs
let blobs t = t.blobs
let disk t = t.disk
