(** The temporal XML database façade.

    Ties together the storage simulator, the document store, the temporal
    full-text indexes and the CreTime index, and runs the commit pipeline:
    normalize → diff → persist completed delta → replace current version →
    maintain indexes.  The query operators of [txq_core] run against this
    interface. *)

type t

type stats = {
  mutable commits : int;
  mutable deltas_read : int;
  mutable reconstructions : int;
  mutable reconstruct_cache_hits : int;
}

val create : ?config:Config.t -> ?clock:Txq_temporal.Clock.t -> unit -> t

val config : t -> Config.t
val clock : t -> Txq_temporal.Clock.t
val now : t -> Txq_temporal.Timestamp.t

(** {1 MVCC snapshots}

    A snapshot is an immutable read handle pinned at the version watermark
    of the moment it was taken: every read API on it — reconstruction,
    histories, pattern scans, the temporal algebra — answers exactly as the
    live database would have at capture time, however many commits the
    single writer performs afterwards.  Snapshots are cheap (bounded views
    over the shared version chains, no copies of content) and safe to use
    from their own domain, so many reader domains query concurrently while
    the writer commits.  One domain per snapshot handle; a pinned snapshot
    holds vacuum back from every document it can see until {!release}. *)

val snapshot : t -> t
(** Pins a snapshot of the current committed state.  The returned handle
    supports every read operation and raises [Invalid_argument] from every
    mutator.  Raises on a handle that is already a snapshot. *)

val release : t -> unit
(** Unpins the snapshot so vacuum may reclaim versions only it could see.
    Reading from a released snapshot is still safe until a later vacuum
    actually truncates.  Total and idempotent: releasing twice, or
    releasing the live handle, is a no-op — connection cleanup code calls
    this on every exit path, including error paths that may run more than
    once, and the pinned-snapshot accounting must stay exact regardless. *)

val is_snapshot : t -> bool

val is_replica : t -> bool
(** [true] while the handle is fed by {!Replay}: reads work (including
    {!snapshot}), mutators raise. *)

val is_released : t -> bool
(** [true] once a snapshot has been released; always [false] on the live
    handle. *)

val snapshot_watermark : t -> int option
(** Commit count at capture; [None] on the live handle. *)

val pinned_snapshots : t -> int
(** Snapshots currently pinned (live handle and snapshots agree). *)

val oldest_pinned_watermark : t -> int option
(** Smallest watermark among pinned snapshots — the vacuum hold-back
    horizon; [None] when nothing is pinned. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Runs [f] holding the database's read lock, excluding the writer.
    Required around reads of writer-mutated shared structures (full-text
    fetches, CreTime lookups); re-entrant, and free when the calling
    domain already holds the write side. *)

(** {1 Ingestion}

    Each mutating call commits at the clock's current instant, or at [ts]
    when given ([ts] must advance the clock; transaction time is monotone).
    Timestamps of successive versions of one document must be distinct.

    The writer side is serialized internally: mutators take the write
    lock, so commits interleave safely with concurrent snapshot readers.
    With [Config.group_commit] on, concurrent committers (from different
    domains) buffer their journal records and one of them — the group
    leader — flushes the whole batch with a single durability point. *)

val insert_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> Txq_xml.Xml.t ->
  Txq_vxml.Eid.doc_id
(** Raises [Invalid_argument] if a live document already holds the URL. *)

val update_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> Txq_xml.Xml.t ->
  Txq_vxml.Delta.t
(** Commits a new version of the live document at [url]; returns the stored
    completed delta. *)

val delete_document :
  t -> url:string -> ?ts:Txq_temporal.Timestamp.t -> unit -> unit

(** {1 Document access} *)

val find_live : t -> string -> Docstore.t option
(** The live document currently holding the URL. *)

val find_all : t -> string -> Docstore.t list
(** Every document that ever held the URL, oldest first (a URL is reused
    when a document is deleted and later re-created; EIDs are not). *)

val find_at :
  t -> string -> Txq_temporal.Timestamp.t -> (Docstore.t * int) option
(** Document and version number holding the URL at an instant. *)

val doc : t -> Txq_vxml.Eid.doc_id -> Docstore.t
(** Raises [Invalid_argument] on an unknown id. *)

val doc_opt : t -> Txq_vxml.Eid.doc_id -> Docstore.t option
(** [None] on an unknown id — on a snapshot, that includes documents
    inserted after the watermark (shared index postings may name them). *)

val doc_ids : t -> Txq_vxml.Eid.doc_id list
val document_count : t -> int

(** {1 Reconstruction} *)

val reconstruct : t -> Txq_vxml.Eid.doc_id -> int -> Txq_vxml.Vnode.t
(** Materializes one version.  Served from the version cache on a hit;
    on a miss the nearest cached version competes with the stored current
    version and snapshots as the reconstruction anchor, so only the deltas
    between the nearest anchor and the target are applied.  All blob reads
    are IO-accounted; [stats] and [io_stats] count the deltas applied. *)

val reconstruct_range :
  t -> Txq_vxml.Eid.doc_id -> lo:int -> hi:int ->
  (int * Txq_vxml.Vnode.t) list
(** Materializes every version in [\[lo, hi\]] (inclusive), newest first, in
    a single sweep: one delta application per step instead of one chain walk
    per version (the batched form of Section 7.3.3's reconstruction), and
    populates the version cache as it goes.  When every version is already
    resident the sweep is skipped entirely.  Empty if [lo > hi]. *)

val reconstruct_at :
  t -> Txq_vxml.Eid.doc_id -> Txq_temporal.Timestamp.t ->
  (int * Txq_vxml.Vnode.t) option

val read_delta : t -> Txq_vxml.Eid.doc_id -> int -> Txq_vxml.Delta.t
(** Reads one completed delta from the store (IO- and stats-accounted);
    used by operators that work directly on deltas (CreTime traversal,
    history sweeps). *)

(** {1 Index access (for the query operators)} *)

val fti : t -> Txq_fti.Fti.t
(** Raises [Invalid_argument] when the configuration maintains no
    version-content index. *)

val delta_fti : t -> Txq_fti.Delta_fti.t
(** Raises [Invalid_argument] when no delta-operation index is maintained. *)

val cretime : t -> Cretime_index.t option

val document_time :
  t -> Txq_vxml.Eid.doc_id -> int -> Txq_temporal.Timestamp.t option
(** The content-embedded document time of a version (Section 3.1), when the
    configuration names a [document_time_path] and the version carried
    one. *)

val find_by_document_time :
  t ->
  t1:Txq_temporal.Timestamp.t ->
  t2:Txq_temporal.Timestamp.t ->
  (Txq_temporal.Timestamp.t * Txq_vxml.Eid.doc_id * int) list
(** Versions whose document time falls in [\[t1, t2)], ordered by document
    time — the "indexed and queried based on this document time" capability
    of Section 3.1.  No reconstruction involved. *)

val version_at : t -> Txq_vxml.Eid.doc_id -> Txq_temporal.Timestamp.t -> int option

(** {1 Vacuum}

    Retention vacuum (the paper's Section 7.4 space-reclamation side):
    per-document delta-chain prefixes that no retained version needs are
    squashed into a base snapshot, their blobs freed, and every derived
    index pruned to exactly what a rebuild of the truncated chains would
    produce.  External version numbers never change — version [v] of a
    document keeps its number for as long as it is retained, and accessors
    raise for vacuumed versions. *)

type vacuum_report = {
  vr_docs_squashed : int;
  vr_docs_dropped : int;  (** lifetime ended at or before the horizon *)
  vr_versions_dropped : int;
  vr_pages_freed : int;
  vr_bytes_reclaimed : int;  (** [vr_pages_freed * Disk.page_size] *)
  vr_postings_pruned : int;  (** version-content index postings removed *)
  vr_dfti_pruned : int;  (** delta-operation index entries removed *)
  vr_cretime_pruned : int;
  vr_dtime_pruned : int;  (** document-time rows tombstoned *)
}

val empty_vacuum_report : vacuum_report
(** All-zero report, as returned by a no-op vacuum. *)

val vacuum : ?retention:Config.retention -> t -> vacuum_report
(** Applies the retention policy ([retention] overrides the configured
    one; a policy with neither bound set is a no-op).  Crash-safe: base
    snapshots are written durably first, then a single [Vacuum] journal
    record commits the whole operation, then memory changes — recovery
    lands exactly before or exactly after the vacuum, never between.
    A deleted document whose deletion time is at or before the horizon is
    dropped entirely.  Queries over the retained window are unaffected;
    CreTime answers clamp to "at or before the truncation point" when the
    true creation instant was vacuumed (see {!Txq_core.Lifetime}). *)

val verify : t -> (int, string list) result
(** Full integrity check: every version of every document is reconstructed
    from its persisted delta chain; the newest must equal the in-memory
    current version including XIDs, timestamps must be strictly monotone,
    and no blob may fail to decode.  Returns the number of versions checked
    or the list of diagnostics.  (Corruption surfaces as decode failures —
    the completed-delta chain has no other redundancy to detect it.) *)

(** {1 Crash recovery} *)

val recover : Txq_store.Disk.t -> Config.t -> t
(** Rebuilds a database from the disk image alone, as after a crash: scans
    for the commit journal, discards any record a crash left incomplete,
    and replays the committed ones — document chains, blob directory and
    free lists, URL directory, full-text/CreTime/document-time indexes —
    to a state equivalent to the last committed operation.  Works equally
    on an uncrashed disk (clean restart).  [config] must describe the same
    layout the database was created with (placement policy, durability);
    index maintenance knobs take effect on the rebuilt state.  Requires a
    database created with a [`Journal] durability configuration — a disk
    without journal records recovers to an empty database. *)

val journal : t -> Txq_store.Journal.t option
(** The commit journal, when the configuration enables one (its page count
    is the durability storage overhead). *)

(** {1 Journal shipping}

    A primary streams its committed journal records — with the logical
    contents of the blobs they reference — to replicas that replay them
    incrementally through {!Replay}.  Shipment indexes count {e applied}
    records from 0 (not journal tickets: recovery may drop a torn tail
    record the journal still counts), so a replica's resume position is
    simply how many records it has applied. *)

exception Ship_gap of int
(** Raised by {!ship} when the record at the given index references history
    a vacuum has already truncated, and [Config.ship_buffer] no longer
    retains its contents.  The shipper must re-clone from the current
    state — the same contract as a base backup predating the retained
    WAL. *)

val durable_records : t -> int
(** How many applied records are durable (and therefore shippable).  Equals
    the applied-record count except under group commit, where buffered
    records are excluded until their batch syncs. *)

val ship :
  t -> from:int -> ?limit:int -> unit -> Journal_record.shipment list
(** Shipments [from .. min (from + limit) (durable_records t)), in order
    ([limit] defaults to 256; empty when [from] is at the durable
    watermark).  Contents come from the ship ring when retained, otherwise
    they are regenerated from the document chains ([Codec]/[Delta] encoding
    is deterministic, so regenerated bytes equal the originals).  Raises
    {!Ship_gap} when neither source survives, and [Invalid_argument] on a
    store without a journal. *)

exception Replay_error of string
(** A shipment that cannot be applied: out-of-order index, undecodable
    payload or contents, or a record inconsistent with the replica's state
    (all symptoms of feeding a replica from the wrong primary or a
    corrupted stream). *)

(** A replica: a live database advancing record-by-record under shipped
    journal records.  Reads go through the ordinary query surface of
    {!Replay.db} — including {!snapshot} — while mutators raise; every
    applied record is journaled locally first, so a replica killed at any
    record boundary reopens with {!recover} and resumes with
    {!Replay.of_db}. *)
module Replay : sig
  type r

  val create : ?config:Config.t -> unit -> r
  (** A fresh, empty replica.  [config] is taken from the primary but
      forced to journaling durability with plain (non-group) appends: a
      record must be locally durable before it counts as applied. *)

  val of_db : t -> r
  (** Resumes replication onto a {!recover}ed replica store: the recovered
      record count is the resume position ({!applied}).  Raises
      [Invalid_argument] on a snapshot handle or a store without a
      journal. *)

  val db : r -> t
  (** The live replica database, for reads.  Mutators raise
      [Invalid_argument] while the replica is attached. *)

  val applied : r -> int
  (** Records applied so far — the [from] for the next {!ship} pull. *)

  val apply : r -> Journal_record.shipment -> unit
  (** Applies one shipment at the replica's current position.  A shipment
      below {!applied} is skipped silently (poll overlap); one beyond it
      raises {!Replay_error} (a gap must never be papered over).  A
      [Vacuum] record first waits for local snapshot pins to drain — the
      primary's vacuum could not see this replica's readers. *)

  val detach : r -> t
  (** Ends replication and returns the store as an ordinary writable
      database (promotion).  Its clock sits at the newest applied
      timestamp, so the first post-promotion commit is stamped strictly
      after everything replicated. *)
end

val apply_stream : Replay.r -> (unit -> Journal_record.shipment option) -> int
(** Pulls shipments until the source returns [None], applying each;
    returns how many were applied.  The building block for a poll loop:
    [apply_stream r (next (ship primary ~from:(Replay.applied r) ()))]. *)

val restore_as_of : t -> as_of:Txq_temporal.Timestamp.t -> t
(** Point-in-time restore: a fresh store holding exactly the commits whose
    transaction time is at or before [as_of] ({e inclusive}, matching
    [version_at]'s boundary rule), built by replaying the primary's
    shipped records.  The result is writable; its clock resumes after the
    restored watermark, so new commits never collide with restored
    history.  Raises [Failure] when the needed history was vacuumed away
    on the source (see {!Ship_gap}). *)

(** {1 Accounting} *)

val stats : t -> stats
val io_stats : t -> Txq_store.Io_stats.t
val reset_io : t -> unit
val flush_cache : t -> unit
(** Empties buffer pool and reconstruction cache (cold-start measurements).
*)

val live_pages : t -> int
val blobs : t -> Txq_store.Blob_store.t

val disk : t -> Txq_store.Disk.t
(** The simulated disk beneath everything; exposed for diagnostics and for
    the failure-injection tests (which corrupt pages and expect {!verify}
    to notice). *)

(**/**)

val set_dtime_count_for_tests : t -> seconds:int -> int -> unit
(** Pre-loads the document-time index's per-second row counter, so the
    2^20-rows-per-second overflow boundary is testable without a million
    B+-tree inserts.  Tests only. *)
