module Xml = Txq_xml.Xml
module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta
module Codec = Txq_vxml.Codec
module Diff = Txq_vxml.Diff
module Xidmap = Txq_vxml.Xidmap
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Blob_store = Txq_store.Blob_store
module Vec = Txq_store.Vec
module Trace = Txq_obs.Trace

type version_entry = {
  ve_ts : Timestamp.t;
  ve_delta : Blob_store.blob option; (* None for version 0 *)
  mutable ve_snapshot : Blob_store.blob option;
  ve_doc_time : Timestamp.t option; (* Section 3.1 document time *)
}

type t = {
  blobs : Blob_store.t;
  doc_id : Txq_vxml.Eid.doc_id;
  url : string;
  gen : Txq_vxml.Xid.Gen.t;
  (* [entries] holds only the retained versions [base .. n-1]; external
     version numbers never change when a vacuum truncates the prefix. *)
  mutable entries : version_entry Vec.t;
  mutable base : int;
  mutable current : Vnode.t;
  mutable current_blob : Blob_store.blob;
  mutable deleted : Timestamp.t option;
  (* [Some n]: this record is a read-only view pinned at version count [n]
     (a snapshot).  The [entries] vec is shared with the live store — the
     writer only ever pushes past [n] — while [current], [base] and
     [deleted] are the capture-time copies.  [current_blob] is NOT valid
     on a view: the live writer frees it at its next commit; the captured
     [current] tree serves as the newest reconstruction anchor instead. *)
  bound : int option;
}

type reconstruct_cost = {
  deltas_applied : int;
  anchor : [ `Current | `Snapshot | `Cached ];
  direction : [ `Backward | `Forward | `None ];
}

type committed_blobs = {
  cb_delta : Blob_store.blob;
  cb_current : Blob_store.blob;
  cb_snapshot : Blob_store.blob option;
  cb_freed : int list;
}

let doc_id t = t.doc_id
let url t = t.url
let gen t = t.gen

let put_version_blob t vnode =
  Blob_store.put t.blobs ~cluster:t.doc_id (Codec.encode vnode)

let check_ingest xml =
  match Codec.check_plain xml with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Docstore: cannot ingest document: " ^ msg)

let create ~blobs ~doc_id ~url ~ts ~snapshot ?doc_time xml =
  check_ingest xml;
  let gen = Txq_vxml.Xid.Gen.create () in
  let current = Vnode.of_xml gen (Xml.normalize xml) in
  let t =
    {
      blobs;
      doc_id;
      url;
      gen;
      entries = Vec.create ();
      base = 0;
      current;
      current_blob = Blob_store.put blobs ~cluster:doc_id (Codec.encode current);
      deleted = None;
      bound = None;
    }
  in
  let ve_snapshot = if snapshot then Some (put_version_blob t current) else None in
  Vec.push t.entries
    { ve_ts = ts; ve_delta = None; ve_snapshot; ve_doc_time = doc_time };
  t

let version_count t =
  match t.bound with
  | Some n -> n
  | None -> t.base + Vec.length t.entries

(* retained entries visible through this handle *)
let retained t = version_count t - t.base

let first_version t = t.base
let current t = t.current
let current_blob t = t.current_blob
let deleted_at t = t.deleted
let is_alive t = t.deleted = None
let is_bounded t = t.bound <> None

let bounded t =
  match t.bound with
  | Some _ -> t (* already a view; re-pinning cannot move it forward *)
  | None -> { t with bound = Some (version_count t) }

let read_only_guard t what =
  if t.bound <> None then
    invalid_arg (Printf.sprintf "Docstore.%s: read-only snapshot view" what)

let entry t v =
  if v < t.base then
    invalid_arg
      (Printf.sprintf "Docstore: version %d vacuumed (first retained is %d)" v
         t.base);
  if v >= version_count t then
    invalid_arg
      (Printf.sprintf "Docstore: version %d out of bounds (count %d)" v
         (version_count t));
  Vec.get t.entries (v - t.base)

let ts_of_version t v = (entry t v).ve_ts
let created_at t = (Vec.get t.entries 0).ve_ts
let snapshot_blob t v = (entry t v).ve_snapshot

let commit ?on_durable ?free t ~ts ~snapshot ?doc_time xml =
  Trace.with_span "docstore.commit" @@ fun () ->
  read_only_guard t "commit";
  check_ingest xml;
  (match t.deleted with
   | Some _ ->
     invalid_arg
       (Printf.sprintf "Docstore.commit: document %s is deleted" t.url)
   | None -> ());
  (match Vec.last t.entries with
   | Some last when Timestamp.(ts <= last.ve_ts) ->
     invalid_arg "Docstore.commit: timestamp does not advance"
   | Some _ | None -> ());
  let v = version_count t in
  let delta, new_current =
    Diff.diff ~gen:t.gen ~old_tree:t.current ~new_tree:(Xml.normalize xml)
  in
  let delta = Delta.make ~from_version:(v - 1) ~to_version:v delta.Delta.ops in
  Trace.add_count "version" v;
  Trace.add_count "ops" (List.length delta.Delta.ops);
  (* Write every blob of this commit before touching the delta index or the
     free list: up to the commit point below, the previous version — and in
     particular its still-allocated current blob — remains fully intact, so
     an interrupted commit leaves only unreachable pages behind. *)
  let delta_blob = Blob_store.put t.blobs ~cluster:t.doc_id (Delta.encode delta) in
  let new_current_blob = put_version_blob t new_current in
  let ve_snapshot = if snapshot then Some (put_version_blob t new_current) else None in
  (* Commit point: all blobs durable.  The journal hook runs here; if it
     raises (a crash), no in-memory structure has changed yet. *)
  (match on_durable with
   | Some f ->
     f
       {
         cb_delta = delta_blob;
         cb_current = new_current_blob;
         cb_snapshot = ve_snapshot;
         cb_freed = Blob_store.page_ids t.current_blob;
       }
   | None -> ());
  (* Group commit defers this free until the journal record is durable:
     recovery to a prefix without this commit still needs the superseded
     current blob's pages intact. *)
  (match free with
   | Some f -> f t.current_blob
   | None -> Blob_store.free t.blobs ~cluster:t.doc_id t.current_blob);
  t.current <- new_current;
  t.current_blob <- new_current_blob;
  Vec.push t.entries
    { ve_ts = ts; ve_delta = Some delta_blob; ve_snapshot; ve_doc_time = doc_time };
  (delta, new_current)

let mark_deleted t ~ts =
  read_only_guard t "mark_deleted";
  match t.deleted with
  | Some _ -> invalid_arg "Docstore.mark_deleted: already deleted"
  | None -> t.deleted <- Some ts

let version_at t instant =
  let alive_at =
    match t.deleted with
    | Some d -> Timestamp.(instant < d)
    | None -> true
  in
  if not alive_at then None
  else
    Option.map
      (fun i -> i + t.base)
      (Vec.find_last_index ~limit:(retained t)
         (fun ve -> Timestamp.(ve.ve_ts <= instant))
         t.entries)

let version_interval t v =
  let start = ts_of_version t v in
  let stop =
    if v + 1 < version_count t then ts_of_version t (v + 1)
    else
      match t.deleted with
      | Some d -> d
      | None -> Timestamp.plus_infinity
  in
  Interval.make ~start ~stop

let versions_overlapping t ~t1 ~t2 =
  let n = version_count t in
  if n = 0 || Timestamp.(t2 <= t1) then None
  else begin
    (* v_hi: last version starting before t2 *)
    match
      Vec.find_last_index ~limit:(retained t)
        (fun ve -> Timestamp.(ve.ve_ts < t2))
        t.entries
    with
    | None -> None
    | Some v_hi ->
      let v_hi = v_hi + t.base in
      (* v_lo: first version whose interval reaches past t1; clamped to the
         first retained version when t1 predates the retained window *)
      let v_lo =
        match
          Vec.find_last_index ~limit:(retained t)
            (fun ve -> Timestamp.(ve.ve_ts <= t1))
            t.entries
        with
        | None -> t.base
        | Some v -> v + t.base
      in
      (* the earliest candidate may still end before t1 (deleted docs) *)
      let alive =
        match t.deleted with
        | Some d -> Timestamp.(t1 < d)
        | None -> true
      in
      if (not alive) || v_lo > v_hi then None else Some (v_lo, v_hi)
  end

let doc_time_of_version t v = (entry t v).ve_doc_time

let snapshot_versions t =
  let out = ref [] in
  for i = 0 to retained t - 1 do
    if (Vec.get t.entries i).ve_snapshot <> None then out := (i + t.base) :: !out
  done;
  List.rev !out

let read_delta t v =
  if v <= t.base || v >= version_count t then
    invalid_arg (Printf.sprintf "Docstore.read_delta: no delta for version %d" v);
  match (entry t v).ve_delta with
  | Some blob -> Delta.decode_exn (Blob_store.get t.blobs blob)
  | None -> assert false

(* Stored anchors: the current version's blob and every snapshot blob.
   Reconstruction starts from whichever anchor (stored or caller-cached)
   minimizes the number of deltas between it and the target.  A bounded
   view's newest anchor is the captured current {e tree} — its current
   blob may already be freed by the live writer. *)
let stored_anchors t =
  let n = version_count t in
  let newest =
    match t.bound with
    | None -> (n - 1, `Blob t.current_blob)
    | Some _ -> (n - 1, `Tree t.current)
  in
  newest
  :: List.filter_map
       (fun s ->
         match (entry t s).ve_snapshot with
         | Some blob -> Some (s, `Blob blob)
         | None -> None)
       (snapshot_versions t)

(* Deltas needed to materialize every version of [lo, hi] from an anchor at
   [a]: interior anchors walk outward both ways and attain the minimum. *)
let range_cost ~lo ~hi a =
  if a > hi then a - lo else if a < lo then hi - a else hi - lo

(* Best anchor for covering [lo, hi].  A cached tree wins ties against a
   stored blob of equal cost: it needs no blob read or decode. *)
let pick_anchor ?cached t ~lo ~hi =
  let best =
    match stored_anchors t with
    | [] -> assert false (* the newest anchor is always present *)
    | (s0, a0) :: rest ->
      List.fold_left
        (fun (_, best_cost as best) (s, a) ->
          let cost = range_cost ~lo ~hi s in
          if cost < best_cost then ((s, a), cost) else best)
        ((s0, a0), range_cost ~lo ~hi s0)
        rest
  in
  match cached with
  | Some (cv, ctree) when range_cost ~lo ~hi cv <= snd best ->
    (cv, `Cached ctree)
  | _ -> fst best

let anchor_tree t = function
  | `Tree tree | `Cached tree -> tree
  | `Blob blob -> Codec.decode_exn (Blob_store.get t.blobs blob)

let anchor_kind t anchor_v = function
  | `Cached _ -> `Cached
  | `Tree _ -> if anchor_v = version_count t - 1 then `Current else `Cached
  | `Blob _ -> if anchor_v = version_count t - 1 then `Current else `Snapshot

let reconstruct ?cached t v =
  let n = version_count t in
  if v < t.base || v >= n then
    invalid_arg (Printf.sprintf "Docstore.reconstruct: no version %d" v);
  Trace.with_span "docstore.reconstruct" @@ fun () ->
  let anchor_v, anchor = pick_anchor ?cached t ~lo:v ~hi:v in
  let tree = anchor_tree t anchor in
  let anchor = anchor_kind t anchor_v anchor in
  Trace.add_attr "anchor"
    (Txq_obs.Span.Str
       (match anchor with
       | `Current -> "current"
       | `Snapshot -> "snapshot"
       | `Cached -> "cached"));
  if anchor_v = v then
    (tree, { deltas_applied = 0; anchor; direction = `None })
  else begin
    let map = Xidmap.of_vnode tree in
    let deltas_applied = ref 0 in
    if anchor_v > v then
      (* walk backward: most recent deltas first (Section 7.3.3) *)
      for i = anchor_v downto v + 1 do
        Delta.apply_backward map (read_delta t i);
        incr deltas_applied
      done
    else
      for i = anchor_v + 1 to v do
        Delta.apply_forward map (read_delta t i);
        incr deltas_applied
      done;
    Trace.add_count "deltas_applied" !deltas_applied;
    ( Xidmap.to_vnode map,
      {
        deltas_applied = !deltas_applied;
        anchor;
        direction = (if anchor_v > v then `Backward else `Forward);
      } )
  end

let reconstruct_range ?cached t ~lo ~hi ~f =
  let n = version_count t in
  if lo < t.base || hi >= n || lo > hi then
    invalid_arg
      (Printf.sprintf "Docstore.reconstruct_range: bad range [%d, %d]" lo hi);
  Trace.with_span "docstore.reconstruct_range" @@ fun () ->
  let anchor_v, anchor = pick_anchor ?cached t ~lo ~hi in
  let tree = anchor_tree t anchor in
  let deltas_applied = ref 0 in
  (* One delta application per step; a version inside [lo, hi] is emitted
     as soon as the walk reaches it. *)
  let backward_to map from down_to =
    for i = from downto down_to + 1 do
      Delta.apply_backward map (read_delta t i);
      incr deltas_applied;
      if i - 1 <= hi then f (i - 1) (Xidmap.to_vnode map)
    done
  in
  let forward_to map from up_to =
    for i = from + 1 to up_to do
      Delta.apply_forward map (read_delta t i);
      incr deltas_applied;
      if i >= lo then f i (Xidmap.to_vnode map)
    done
  in
  if anchor_v > hi then backward_to (Xidmap.of_vnode tree) anchor_v lo
  else if anchor_v < lo then forward_to (Xidmap.of_vnode tree) anchor_v hi
  else begin
    (* interior anchor: emit it, then walk outward in both directions
       (two independent maps seeded from the same tree — no extra IO) *)
    f anchor_v tree;
    if anchor_v > lo then backward_to (Xidmap.of_vnode tree) anchor_v lo;
    if anchor_v < hi then forward_to (Xidmap.of_vnode tree) anchor_v hi
  end;
  Trace.add_count "deltas_applied" !deltas_applied;
  !deltas_applied

let delta_pages t =
  Vec.fold_left
    (fun acc ve ->
      match ve.ve_delta with
      | Some blob -> acc + Blob_store.pages_used blob
      | None -> acc)
    0 t.entries

(* --- vacuum ------------------------------------------------------------ *)

type rebase = {
  rb_base : int;
  rb_snapshot : Blob_store.blob option;
  rb_freed : int list;
  rb_versions_dropped : int;
}

let xid_watermark t = Txq_vxml.Xid.Gen.used t.gen

let prepare_rebase t ~base =
  read_only_guard t "prepare_rebase";
  let n = version_count t in
  if base <= t.base || base >= n then
    invalid_arg
      (Printf.sprintf "Docstore.prepare_rebase: base %d outside (%d, %d)" base
         t.base n);
  (* The new base version needs a stored anchor at or above it so backward
     reconstruction never reaches into the dropped prefix.  The current blob
     (version n-1) always qualifies, but a dedicated base snapshot keeps
     reconstruction cost bounded, so write one unless the entry already has a
     snapshot or [base] is the current version itself. *)
  let rb_snapshot =
    if base = n - 1 || (entry t base).ve_snapshot <> None then None
    else begin
      let tree, _ = reconstruct t base in
      Some (put_version_blob t tree)
    end
  in
  let freed = ref [] in
  let free_of = function
    | Some blob -> freed := List.rev_append (Blob_store.page_ids blob) !freed
    | None -> ()
  in
  for v = t.base to base - 1 do
    let ve = entry t v in
    free_of ve.ve_delta;
    free_of ve.ve_snapshot
  done;
  (* the delta leading into the new base can never be applied again *)
  free_of (entry t base).ve_delta;
  {
    rb_base = base;
    rb_snapshot;
    rb_freed = List.rev !freed;
    rb_versions_dropped = base - t.base;
  }

let apply_rebase t rb =
  read_only_guard t "apply_rebase";
  let n = version_count t in
  let free_of = function
    | Some blob -> Blob_store.free t.blobs ~cluster:t.doc_id blob
    | None -> ()
  in
  for v = t.base to rb.rb_base - 1 do
    let ve = entry t v in
    free_of ve.ve_delta;
    free_of ve.ve_snapshot
  done;
  free_of (entry t rb.rb_base).ve_delta;
  let retained = Vec.create () in
  let base_entry = entry t rb.rb_base in
  Vec.push retained
    {
      base_entry with
      ve_delta = None;
      ve_snapshot =
        (match rb.rb_snapshot with
        | Some _ as s -> s
        | None -> base_entry.ve_snapshot);
    };
  for v = rb.rb_base + 1 to n - 1 do
    Vec.push retained (entry t v)
  done;
  t.entries <- retained;
  t.base <- rb.rb_base

let all_blob_pages t =
  let pages = ref (Blob_store.page_ids t.current_blob) in
  let add = function
    | Some blob -> pages := List.rev_append (Blob_store.page_ids blob) !pages
    | None -> ()
  in
  Vec.iter
    (fun ve ->
      add ve.ve_delta;
      add ve.ve_snapshot)
    t.entries;
  !pages

let apply_drop t =
  read_only_guard t "apply_drop";
  let free_of = function
    | Some blob -> Blob_store.free t.blobs ~cluster:t.doc_id blob
    | None -> ()
  in
  Vec.iter
    (fun ve ->
      free_of ve.ve_delta;
      free_of ve.ve_snapshot)
    t.entries;
  Blob_store.free t.blobs ~cluster:t.doc_id t.current_blob;
  t.entries <- Vec.create ()

(* --- recovery ---------------------------------------------------------- *)

type restored_entry = {
  re_ts : Timestamp.t;
  re_delta : Blob_store.blob option;
  re_snapshot : Blob_store.blob option;
  re_doc_time : Timestamp.t option;
}

let restore ~blobs ~doc_id ~url ?(base = 0) ?(xid_watermark = 0) ~entries
    ~current_blob ~deleted () =
  if entries = [] then invalid_arg "Docstore.restore: no versions";
  let current = Codec.decode_exn (Blob_store.get blobs current_blob) in
  let gen = Txq_vxml.Xid.Gen.create () in
  let t =
    { blobs; doc_id; url; gen; entries = Vec.create (); base; current;
      current_blob; deleted; bound = None }
  in
  List.iter
    (fun re ->
      Vec.push t.entries
        { ve_ts = re.re_ts; ve_delta = re.re_delta; ve_snapshot = re.re_snapshot;
          ve_doc_time = re.re_doc_time })
    entries;
  (* XIDs are never reused (Section 3.2): advance the generator past every
     id that ever existed.  Ids alive now are in the current tree; every id
     born after the base version appears in some delta's insert trees; ids
     gone by now appear in some delta's delete trees; base-version ids are
     covered by the union of the current tree and the delete trees.  Ids
     confined to a vacuumed prefix are covered by [xid_watermark], the
     generator high-water mark persisted in the vacuum journal record. *)
  List.iter (Txq_vxml.Xid.Gen.mark_used gen) (Vnode.xids current);
  for v = base + 1 to version_count t - 1 do
    let delta = read_delta t v in
    List.iter (Txq_vxml.Xid.Gen.mark_used gen) (Delta.inserted_xids delta);
    List.iter (Txq_vxml.Xid.Gen.mark_used gen) (Delta.deleted_xids delta)
  done;
  if xid_watermark > 0 then
    Txq_vxml.Xid.Gen.mark_used gen (Txq_vxml.Xid.of_int xid_watermark);
  t

(* Incremental replay (journal shipping): push one already-persisted version
   onto a restored store.  The caller has written the delta/current/snapshot
   blobs and decoded the new current tree; freeing the superseded current
   blob and advancing the XID generator stay on the caller's side, mirroring
   the split [restore] relies on. *)
let append_restored t ~ts ?doc_time ~delta_blob ~snapshot_blob ~current
    ~current_blob () =
  read_only_guard t "append_restored";
  (match t.deleted with
   | Some _ ->
     invalid_arg
       (Printf.sprintf "Docstore.append_restored: document %s is deleted" t.url)
   | None -> ());
  (match Vec.last t.entries with
   | Some last when Timestamp.(ts <= last.ve_ts) ->
     invalid_arg "Docstore.append_restored: timestamp does not advance"
   | Some _ | None -> ());
  t.current <- current;
  t.current_blob <- current_blob;
  Vec.push t.entries
    { ve_ts = ts; ve_delta = Some delta_blob; ve_snapshot = snapshot_blob;
      ve_doc_time = doc_time }

let total_pages t =
  let snap_pages =
    Vec.fold_left
      (fun acc ve ->
        match ve.ve_snapshot with
        | Some blob -> acc + Blob_store.pages_used blob
        | None -> acc)
      0 t.entries
  in
  delta_pages t + snap_pages + Blob_store.pages_used t.current_blob
