(** Per-document version storage (Section 7.1).

    A stored document consists of one complete current version plus a chain
    of completed deltas, each persisted as a separate XML document in the
    blob store.  The {e delta index} — the in-memory array mapping version
    numbers to timestamps and delta blobs — is exactly the structure the
    paper describes; optional intermediate snapshots bound reconstruction
    cost (Section 7.3.3). *)

type t

type reconstruct_cost = {
  deltas_applied : int;
  anchor : [ `Current | `Snapshot | `Cached ];
      (** where the walk started: the stored current version, a stored
          snapshot, or a caller-supplied cached tree *)
  direction : [ `Backward | `Forward | `None ];
}

type committed_blobs = {
  cb_delta : Txq_store.Blob_store.blob;  (** the completed delta *)
  cb_current : Txq_store.Blob_store.blob;  (** the new current version *)
  cb_snapshot : Txq_store.Blob_store.blob option;
  cb_freed : int list;
      (** pages of the superseded current version — still intact when the
          commit hook runs, released immediately after *)
}
(** What a commit wrote, handed to the [on_durable] hook of {!commit} at the
    commit point (all blobs written, nothing in memory changed yet).  The
    database's journal serializes this into its commit record. *)

val create :
  blobs:Txq_store.Blob_store.t ->
  doc_id:Txq_vxml.Eid.doc_id ->
  url:string ->
  ts:Txq_temporal.Timestamp.t ->
  snapshot:bool ->
  ?doc_time:Txq_temporal.Timestamp.t ->
  Txq_xml.Xml.t ->
  t
(** Ingests version 0 (the input is normalized first).  [doc_time] is the
    content-embedded document time extracted by the caller (Section 3.1). *)

val doc_id : t -> Txq_vxml.Eid.doc_id
val url : t -> string
val gen : t -> Txq_vxml.Xid.Gen.t

val commit :
  ?on_durable:(committed_blobs -> unit) ->
  ?free:(Txq_store.Blob_store.blob -> unit) ->
  t ->
  ts:Txq_temporal.Timestamp.t ->
  snapshot:bool ->
  ?doc_time:Txq_temporal.Timestamp.t ->
  Txq_xml.Xml.t ->
  Txq_vxml.Delta.t * Txq_vxml.Vnode.t
(** Diffs the incoming revision against the current version, stores the
    completed delta, replaces the stored current version, and appends to the
    delta index.  [snapshot] additionally persists the full new version.
    Returns the delta (renumbered) and the new current tree.  Raises
    [Invalid_argument] if the document was deleted or [ts] does not advance.

    Write ordering: {e every} blob is written before any in-memory
    structure (delta index, free list, current pointer) changes.
    [on_durable] runs exactly at that boundary; if it raises, the document
    is left as if the commit never started (modulo unreachable pages).

    [free] overrides the release of the superseded current version's blob:
    instead of freeing it through the blob store at the commit point, the
    blob is handed to [free].  Group commit uses this to defer the free
    until the buffered journal record is durable — recovery onto a prefix
    without this commit still needs those pages intact. *)

val mark_deleted : t -> ts:Txq_temporal.Timestamp.t -> unit
val deleted_at : t -> Txq_temporal.Timestamp.t option
val is_alive : t -> bool

val current : t -> Txq_vxml.Vnode.t
(** In-memory current version (no IO accounted). *)

val current_blob : t -> Txq_store.Blob_store.blob
(** The stored current version's blob (journaling reads its page list). *)

val snapshot_blob : t -> int -> Txq_store.Blob_store.blob option
(** The snapshot blob persisted with a version, if any. *)

val bounded : t -> t
(** A read-only view of the document pinned at the current version count.
    The view shares the (append-only) delta index with the live store but
    captures [current], [first_version] and the deletion mark, so a writer
    committing new versions or marking the document deleted never changes
    what the view reads.  Mutators ([commit], [mark_deleted], vacuum
    operations) raise [Invalid_argument] on a view.  The view stays valid
    only while no vacuum truncates versions below its pin — the database's
    snapshot registry holds vacuum back.  [bounded] on a view returns it
    unchanged. *)

val is_bounded : t -> bool
(** True for read-only views produced by {!bounded}. *)

val version_count : t -> int
(** Versions 0 .. n-1; the current one is n-1.  Version numbers are stable
    across vacuums: the count includes vacuumed versions, which can no
    longer be read. *)

val first_version : t -> int
(** First retained version (0 until a vacuum truncates the prefix).
    Versions below it raise [Invalid_argument] from every accessor. *)

val ts_of_version : t -> int -> Txq_temporal.Timestamp.t
val version_at : t -> Txq_temporal.Timestamp.t -> int option
(** Version valid at the instant, [None] before creation or at/after
    deletion. *)

val version_interval : t -> int -> Txq_temporal.Interval.t
(** Validity interval of a version: [\[ts_v, ts_v+1)], the last one closed
    by the deletion time or open-ended. *)

val versions_overlapping :
  t -> t1:Txq_temporal.Timestamp.t -> t2:Txq_temporal.Timestamp.t ->
  (int * int) option
(** [(v_lo, v_hi)]: the inclusive range of versions whose validity overlaps
    [\[t1, t2)]; [None] when no version does. *)

val created_at : t -> Txq_temporal.Timestamp.t
(** Timestamp of the first {e retained} version — the creation time only
    while [first_version] is 0. *)

val doc_time_of_version : t -> int -> Txq_temporal.Timestamp.t option
(** The document time recorded with the version, if any. *)

val snapshot_versions : t -> int list

val read_delta : t -> int -> Txq_vxml.Delta.t
(** Reads and decodes the delta leading to the given version (>= 1) from the
    blob store (IO accounted).  Raises [Invalid_argument] for version 0. *)

val reconstruct :
  ?cached:int * Txq_vxml.Vnode.t -> t -> int ->
  Txq_vxml.Vnode.t * reconstruct_cost
(** Materializes the given version, choosing the cheapest anchor among the
    stored current version, any snapshots, and an optional already-
    materialized [cached] version supplied by the caller, applying completed
    deltas backward or forward (Section 7.3.3).  A cached anchor wins cost
    ties — it needs no blob read.  All blob reads are accounted. *)

val reconstruct_range :
  ?cached:int * Txq_vxml.Vnode.t ->
  t -> lo:int -> hi:int -> f:(int -> Txq_vxml.Vnode.t -> unit) -> int
(** Materializes {e every} version in [\[lo, hi\]] in a single sweep — one
    delta application per step instead of one full walk per version — and
    hands each to [f] (order unspecified; an interior anchor walks outward
    both ways).  Anchor selection as in {!reconstruct}, minimizing total
    applications: an anchor inside the range attains the [hi - lo] minimum.
    Returns the number of deltas applied.  Raises [Invalid_argument] on an
    empty or out-of-bounds range. *)

(** {1 Vacuum} *)

type rebase = {
  rb_base : int;  (** new first retained version *)
  rb_snapshot : Txq_store.Blob_store.blob option;
      (** freshly written base snapshot, if one was needed *)
  rb_freed : int list;  (** pages the rebase will release *)
  rb_versions_dropped : int;
}

val prepare_rebase : t -> base:int -> rebase
(** Plans the truncation of every version below [base]: writes a durable
    base snapshot when version [base] has neither a stored snapshot nor the
    current blob as anchor, and lists the pages of the dropped delta and
    snapshot blobs (including the delta leading {e into} [base], which can
    never be applied again).  No in-memory state changes — on a crash before
    the vacuum journal record commits, the new snapshot is simply an
    unreachable blob that recovery's liveness scan frees.  Raises
    [Invalid_argument] unless [first_version t < base < version_count t]. *)

val apply_rebase : t -> rebase -> unit
(** Commits a prepared rebase in memory: frees the dropped blobs through
    the blob store, installs the base snapshot, truncates the delta index
    and advances [first_version]. *)

val xid_watermark : t -> int
(** Highest XID the document's generator has handed out — persisted in the
    vacuum journal record so recovery never reuses an id that only ever
    appeared in a vacuumed delta. *)

val all_blob_pages : t -> int list
(** Pages of every blob of the document (current, deltas, snapshots) — what
    dropping the whole document frees. *)

val apply_drop : t -> unit
(** Frees every blob of the document.  The docstore is defunct afterwards
    and must be unlinked from the database's tables. *)

(** {1 Recovery} *)

type restored_entry = {
  re_ts : Txq_temporal.Timestamp.t;
  re_delta : Txq_store.Blob_store.blob option;  (** [None] for version 0 *)
  re_snapshot : Txq_store.Blob_store.blob option;
  re_doc_time : Txq_temporal.Timestamp.t option;
}

val restore :
  blobs:Txq_store.Blob_store.t ->
  doc_id:Txq_vxml.Eid.doc_id ->
  url:string ->
  ?base:int ->
  ?xid_watermark:int ->
  entries:restored_entry list ->
  current_blob:Txq_store.Blob_store.blob ->
  deleted:Txq_temporal.Timestamp.t option ->
  unit ->
  t
(** Rebuilds a document from journal-recovered parts: decodes the current
    version from [current_blob], re-creates the delta index from [entries]
    (version order; the first entry is version [base], default 0), and
    advances the XID generator past every id that ever existed in the
    document, so post-recovery commits never reuse one.  [xid_watermark]
    (from the vacuum journal record) covers ids confined to a vacuumed
    prefix.  Raises [Invalid_argument] on an empty [entries] and [Failure]
    if a blob fails to decode. *)

val append_restored :
  t ->
  ts:Txq_temporal.Timestamp.t ->
  ?doc_time:Txq_temporal.Timestamp.t ->
  delta_blob:Txq_store.Blob_store.blob ->
  snapshot_blob:Txq_store.Blob_store.blob option ->
  current:Txq_vxml.Vnode.t ->
  current_blob:Txq_store.Blob_store.blob ->
  unit ->
  unit
(** Incremental counterpart of {!restore} for journal shipping: appends one
    version whose blobs the caller already wrote, replacing the current
    tree/blob.  The caller frees the superseded current blob and advances
    the XID generator (via {!gen}), exactly as around {!restore}.  Raises
    [Invalid_argument] on a deleted document, a non-advancing timestamp, or
    a read-only view. *)

val delta_pages : t -> int
(** Pages holding delta blobs (storage accounting). *)

val total_pages : t -> int
(** Pages holding the current version, deltas and snapshots. *)
