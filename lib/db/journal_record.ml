type blob_ref = { br_pages : int list; br_length : int }

type t =
  | Insert of {
      r_doc : int;
      r_url : string;
      r_ts : int;
      r_doc_time : int option;
      r_current : blob_ref;
      r_snapshot : blob_ref option;
    }
  | Commit of {
      r_doc : int;
      r_version : int;
      r_ts : int;
      r_doc_time : int option;
      r_delta : blob_ref;
      r_current : blob_ref;
      r_snapshot : blob_ref option;
      r_freed : int list;
    }
  | Delete of { r_doc : int; r_ts : int }
  | Vacuum of { r_ts : int; r_docs : vacuum_doc list }

and vacuum_doc = {
  vd_doc : int;
  vd_base : int;
  vd_drop : bool;
  vd_snapshot : blob_ref option;
  vd_freed : int list;
  vd_xid_watermark : int;
}

(* Fixed-width binary encoding: a tag byte, every integer as a big-endian
   int64 (timestamps may be negative), strings and lists length-prefixed. *)

let add_int buf n = Buffer.add_int64_be buf (Int64.of_int n)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_int_list buf l =
  add_int buf (List.length l);
  List.iter (add_int buf) l

let add_opt add buf = function
  | None -> Buffer.add_char buf '\000'
  | Some v ->
    Buffer.add_char buf '\001';
    add buf v

let add_blob_ref buf { br_pages; br_length } =
  add_int_list buf br_pages;
  add_int buf br_length

let encode r =
  let buf = Buffer.create 128 in
  (match r with
   | Insert { r_doc; r_url; r_ts; r_doc_time; r_current; r_snapshot } ->
     Buffer.add_char buf 'I';
     add_int buf r_doc;
     add_string buf r_url;
     add_int buf r_ts;
     add_opt add_int buf r_doc_time;
     add_blob_ref buf r_current;
     add_opt add_blob_ref buf r_snapshot
   | Commit
       { r_doc; r_version; r_ts; r_doc_time; r_delta; r_current; r_snapshot;
         r_freed } ->
     Buffer.add_char buf 'C';
     add_int buf r_doc;
     add_int buf r_version;
     add_int buf r_ts;
     add_opt add_int buf r_doc_time;
     add_blob_ref buf r_delta;
     add_blob_ref buf r_current;
     add_opt add_blob_ref buf r_snapshot;
     add_int_list buf r_freed
   | Delete { r_doc; r_ts } ->
     Buffer.add_char buf 'D';
     add_int buf r_doc;
     add_int buf r_ts
   | Vacuum { r_ts; r_docs } ->
     Buffer.add_char buf 'V';
     add_int buf r_ts;
     add_int buf (List.length r_docs);
     List.iter
       (fun { vd_doc; vd_base; vd_drop; vd_snapshot; vd_freed;
              vd_xid_watermark } ->
         add_int buf vd_doc;
         add_int buf vd_base;
         Buffer.add_char buf (if vd_drop then '\001' else '\000');
         add_opt add_blob_ref buf vd_snapshot;
         add_int_list buf vd_freed;
         add_int buf vd_xid_watermark)
       r_docs);
  Buffer.contents buf

exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      raise (Bad (Printf.sprintf "truncated %s at byte %d" what !pos))
  in
  let get_char what =
    need 1 what;
    let c = s.[!pos] in
    incr pos;
    c
  in
  let get_int what =
    need 8 what;
    let n = Int64.to_int (String.get_int64_be s !pos) in
    pos := !pos + 8;
    n
  in
  let get_len what =
    let n = get_int what in
    if n < 0 || n > String.length s - !pos then
      raise (Bad (Printf.sprintf "bad %s length %d" what n));
    n
  in
  let get_string what =
    let n = get_len what in
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let get_int_list what =
    let n = get_len what in
    List.init n (fun _ -> get_int what)
  in
  let get_opt get what =
    match get_char what with
    | '\000' -> None
    | '\001' -> Some (get what)
    | c -> raise (Bad (Printf.sprintf "bad %s option tag %C" what c))
  in
  let get_blob_ref what =
    let br_pages = get_int_list (what ^ " pages") in
    let br_length = get_int (what ^ " length") in
    if br_pages = [] then raise (Bad (what ^ ": blob with no pages"));
    if br_length < 0 then raise (Bad (what ^ ": negative blob length"));
    { br_pages; br_length }
  in
  match
    let r =
      match get_char "tag" with
      | 'I' ->
        let r_doc = get_int "doc" in
        let r_url = get_string "url" in
        let r_ts = get_int "ts" in
        let r_doc_time = get_opt get_int "doc_time" in
        let r_current = get_blob_ref "current" in
        let r_snapshot = get_opt get_blob_ref "snapshot" in
        Insert { r_doc; r_url; r_ts; r_doc_time; r_current; r_snapshot }
      | 'C' ->
        let r_doc = get_int "doc" in
        let r_version = get_int "version" in
        let r_ts = get_int "ts" in
        let r_doc_time = get_opt get_int "doc_time" in
        let r_delta = get_blob_ref "delta" in
        let r_current = get_blob_ref "current" in
        let r_snapshot = get_opt get_blob_ref "snapshot" in
        let r_freed = get_int_list "freed" in
        Commit
          { r_doc; r_version; r_ts; r_doc_time; r_delta; r_current;
            r_snapshot; r_freed }
      | 'D' ->
        let r_doc = get_int "doc" in
        let r_ts = get_int "ts" in
        Delete { r_doc; r_ts }
      | 'V' ->
        let r_ts = get_int "ts" in
        let n = get_len "vacuum docs" in
        let r_docs =
          List.init n (fun _ ->
              let vd_doc = get_int "vacuum doc" in
              let vd_base = get_int "vacuum base" in
              let vd_drop =
                match get_char "vacuum drop" with
                | '\000' -> false
                | '\001' -> true
                | c -> raise (Bad (Printf.sprintf "bad vacuum drop flag %C" c))
              in
              let vd_snapshot = get_opt get_blob_ref "vacuum snapshot" in
              let vd_freed = get_int_list "vacuum freed" in
              let vd_xid_watermark = get_int "vacuum xid watermark" in
              if vd_base < 0 then
                raise (Bad (Printf.sprintf "negative vacuum base %d" vd_base));
              { vd_doc; vd_base; vd_drop; vd_snapshot; vd_freed;
                vd_xid_watermark })
        in
        Vacuum { r_ts; r_docs }
      | c -> raise (Bad (Printf.sprintf "unknown record tag %C" c))
    in
    if !pos <> String.length s then
      raise (Bad (Printf.sprintf "%d trailing bytes" (String.length s - !pos)));
    r
  with
  | r -> Ok r
  | exception Bad msg -> Error ("Journal_record.decode: " ^ msg)

let decode_exn s =
  match decode s with Ok r -> r | Error msg -> failwith msg

let content_slots = function
  | Insert _ -> 1 (* the version-0 tree, [Codec]-encoded *)
  | Commit _ -> 1 (* the delta v-1 → v, [Delta]-encoded *)
  | Delete _ | Vacuum _ -> 0

type shipment = {
  sh_index : int;
  sh_payload : string;
  sh_contents : string list;
}

let encode_shipment { sh_index; sh_payload; sh_contents } =
  let buf = Buffer.create (128 + String.length sh_payload) in
  add_int buf sh_index;
  add_string buf sh_payload;
  add_int buf (List.length sh_contents);
  List.iter (add_string buf) sh_contents;
  Buffer.contents buf

let decode_shipment s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      raise (Bad (Printf.sprintf "truncated %s at byte %d" what !pos))
  in
  let get_int what =
    need 8 what;
    let n = Int64.to_int (String.get_int64_be s !pos) in
    pos := !pos + 8;
    n
  in
  let get_len what =
    let n = get_int what in
    if n < 0 || n > String.length s - !pos then
      raise (Bad (Printf.sprintf "bad %s length %d" what n));
    n
  in
  let get_string what =
    let n = get_len what in
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  match
    let sh_index = get_int "index" in
    if sh_index < 0 then
      raise (Bad (Printf.sprintf "negative shipment index %d" sh_index));
    let sh_payload = get_string "payload" in
    let n = get_len "contents" in
    let sh_contents = List.init n (fun _ -> get_string "content") in
    if !pos <> String.length s then
      raise (Bad (Printf.sprintf "%d trailing bytes" (String.length s - !pos)));
    { sh_index; sh_payload; sh_contents }
  with
  | sh -> Ok sh
  | exception Bad msg -> Error ("Journal_record.decode_shipment: " ^ msg)

let equal (a : t) (b : t) = a = b

let pp_blob_ref ppf { br_pages; br_length } =
  Format.fprintf ppf "{pages=[%s]; len=%d}"
    (String.concat "," (List.map string_of_int br_pages))
    br_length

let pp_opt pp ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> pp ppf v

let pp ppf = function
  | Insert { r_doc; r_url; r_ts; r_doc_time; r_current; r_snapshot } ->
    Format.fprintf ppf "Insert(doc=%d url=%S ts=%d dt=%a cur=%a snap=%a)"
      r_doc r_url r_ts
      (pp_opt Format.pp_print_int) r_doc_time
      pp_blob_ref r_current
      (pp_opt pp_blob_ref) r_snapshot
  | Commit
      { r_doc; r_version; r_ts; r_doc_time; r_delta; r_current; r_snapshot;
        r_freed } ->
    Format.fprintf ppf
      "Commit(doc=%d v=%d ts=%d dt=%a delta=%a cur=%a snap=%a freed=[%s])"
      r_doc r_version r_ts
      (pp_opt Format.pp_print_int) r_doc_time
      pp_blob_ref r_delta pp_blob_ref r_current
      (pp_opt pp_blob_ref) r_snapshot
      (String.concat "," (List.map string_of_int r_freed))
  | Delete { r_doc; r_ts } -> Format.fprintf ppf "Delete(doc=%d ts=%d)" r_doc r_ts
  | Vacuum { r_ts; r_docs } ->
    Format.fprintf ppf "Vacuum(ts=%d docs=[%s])" r_ts
      (String.concat ";"
         (List.map
            (fun vd ->
              Format.asprintf "doc=%d%s base=%d snap=%a freed=%d xid=%d"
                vd.vd_doc
                (if vd.vd_drop then " drop" else "")
                vd.vd_base
                (pp_opt pp_blob_ref) vd.vd_snapshot
                (List.length vd.vd_freed) vd.vd_xid_watermark)
            r_docs))
