(** Typed commit-journal records and their byte-level codec.

    One record per mutating database operation, appended to
    {!Txq_store.Journal} after the operation's blobs are on disk.  A record
    carries everything recovery needs that is not derivable from the blobs
    themselves: document identity, timestamps, and the {e page directories}
    of the blobs the operation wrote (the blob directory is otherwise
    in-memory only, like the paper's delta index of Section 7.1).

    [Commit] additionally lists the pages the operation released (the
    superseded current version), so recovery can attribute free pages to
    the right placement cluster. *)

type blob_ref = { br_pages : int list; br_length : int }

type t =
  | Insert of {
      r_doc : int;
      r_url : string;
      r_ts : int;  (** timestamp, seconds *)
      r_doc_time : int option;
      r_current : blob_ref;  (** version-0 tree *)
      r_snapshot : blob_ref option;
    }
  | Commit of {
      r_doc : int;
      r_version : int;  (** the version this commit creates *)
      r_ts : int;
      r_doc_time : int option;
      r_delta : blob_ref;  (** completed delta v-1 → v *)
      r_current : blob_ref;  (** new current version *)
      r_snapshot : blob_ref option;
      r_freed : int list;  (** pages of the superseded current version *)
    }
  | Delete of { r_doc : int; r_ts : int }
  | Vacuum of { r_ts : int; r_docs : vacuum_doc list }
      (** One record for a whole vacuum pass, appended {e after} every new
          base snapshot blob is durable and {e before} any in-memory
          structure changes — recovery therefore lands exactly on the
          pre-vacuum state (record missing) or the post-vacuum state
          (record present), never in between. *)

and vacuum_doc = {
  vd_doc : int;
  vd_base : int;  (** new first retained version *)
  vd_drop : bool;  (** whole document dropped (deleted before the horizon) *)
  vd_snapshot : blob_ref option;  (** freshly written base snapshot *)
  vd_freed : int list;  (** pages the vacuum released, for cluster
                            attribution like [Commit.r_freed] *)
  vd_xid_watermark : int;
      (** XID generator high-water mark, covering ids that only ever
          appeared in vacuumed deltas *)
}

val encode : t -> string

val decode : string -> (t, string) result
(** Total: never raises on malformed input.  [encode]/[decode] round-trip
    (property-tested). *)

val decode_exn : string -> t
(** Raises [Failure]; used on payloads the journal already digest-checked,
    where malformation means a bug, not corruption. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Shipping}

    A {e shipment} is one committed journal record as sent to a replica:
    the record payload plus the {e logical contents} of the blobs it
    references, since the primary's page numbers mean nothing on the
    replica's disk.  The replica re-writes the blobs locally and appends
    its own (re-pointed) record, so a replica store is a self-contained
    database that plain [Db.recover] can reopen. *)

type shipment = {
  sh_index : int;  (** position in the primary's applied-record order *)
  sh_payload : string;  (** the encoded {!t} as the primary journaled it *)
  sh_contents : string list;
      (** one entry per {!content_slots} slot of the decoded payload:
          [Insert] ships the [Codec]-encoded version-0 tree, [Commit]
          ships the [Delta]-encoded delta (the replica derives the new
          current tree by applying it) *)
}

val content_slots : t -> int
(** How many content strings a shipment of this record must carry. *)

val encode_shipment : shipment -> string
val decode_shipment : string -> (shipment, string) result
