module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Io_stats = Txq_store.Io_stats

type entry = {
  e_doc : Eid.doc_id;
  e_version : int;
  e_tree : Vnode.t;
  e_bytes : int;
  mutable e_use : int;
}

type t = {
  budget : int;
  (* doc -> version -> entry; two levels so per-document eviction and
     nearest-anchor search touch only that document's residents *)
  by_doc : (Eid.doc_id, (int, entry) Hashtbl.t) Hashtbl.t;
  io : Io_stats.t;
  mutable bytes : int;
  mutable tick : int;
  (* One cache is shared by the live handle and every snapshot of it;
     concurrent reader domains hit [find]/[put] simultaneously, so every
     entry point runs under this mutex.  Hold times are tiny (hash probes,
     LRU bookkeeping) — tree materialization happens outside. *)
  m : Mutex.t;
}

let create ~budget ~io =
  { budget = Stdlib.max 0 budget; by_doc = Hashtbl.create 16; io; bytes = 0;
    tick = 0; m = Mutex.create () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let enabled t = t.budget > 0
let bytes t = locked t (fun () -> t.bytes)

let touch t entry =
  t.tick <- t.tick + 1;
  entry.e_use <- t.tick

let find t doc version =
  if not (enabled t) then None
  else
    locked t @@ fun () ->
    match Hashtbl.find_opt t.by_doc doc with
    | None ->
      t.io.Io_stats.vcache_misses <- t.io.Io_stats.vcache_misses + 1;
      None
    | Some versions -> (
      match Hashtbl.find_opt versions version with
      | Some entry ->
        touch t entry;
        t.io.Io_stats.vcache_hits <- t.io.Io_stats.vcache_hits + 1;
        Some entry.e_tree
      | None ->
        t.io.Io_stats.vcache_misses <- t.io.Io_stats.vcache_misses + 1;
        None)

(* Deltas needed to cover [lo, hi] from an anchor at version [a]: an
   interior anchor walks outward both ways (hi - lo applications, the
   attainable minimum); an exterior one first reaches the range. *)
let range_cost ~lo ~hi a =
  if a > hi then a - lo else if a < lo then hi - a else hi - lo

let best_anchor t doc ~lo ~hi =
  if not (enabled t) then None
  else
    locked t @@ fun () ->
    match Hashtbl.find_opt t.by_doc doc with
    | None -> None
    | Some versions ->
      Hashtbl.fold
        (fun v entry best ->
          match best with
          | Some (bv, _) when range_cost ~lo ~hi bv <= range_cost ~lo ~hi v ->
            best
          | _ -> Some (v, entry.e_tree))
        versions None

let nearest t doc v = best_anchor t doc ~lo:v ~hi:v

let remove_entry t entry =
  (match Hashtbl.find_opt t.by_doc entry.e_doc with
   | Some versions ->
     Hashtbl.remove versions entry.e_version;
     if Hashtbl.length versions = 0 then Hashtbl.remove t.by_doc entry.e_doc
   | None -> ());
  t.bytes <- t.bytes - entry.e_bytes

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ versions ->
      Hashtbl.iter
        (fun _ entry ->
          match !victim with
          | Some v when v.e_use <= entry.e_use -> ()
          | _ -> victim := Some entry)
        versions)
    t.by_doc;
  match !victim with
  | Some entry -> remove_entry t entry
  | None -> ()

let put t doc version tree =
  if enabled t then begin
    (* Size the tree before taking the lock: approx_bytes walks the tree. *)
    let e_bytes = Vnode.approx_bytes tree in
    locked t @@ fun () ->
    (* Oversized trees would evict everything and still not fit. *)
    if e_bytes <= t.budget then begin
      (match Hashtbl.find_opt t.by_doc doc with
       | Some versions -> (
         match Hashtbl.find_opt versions version with
         | Some old -> remove_entry t old
         | None -> ())
       | None -> ());
      while t.bytes + e_bytes > t.budget && t.bytes > 0 do
        evict_lru t
      done;
      let entry = { e_doc = doc; e_version = version; e_tree = tree; e_bytes;
                    e_use = 0 }
      in
      touch t entry;
      let versions =
        match Hashtbl.find_opt t.by_doc doc with
        | Some versions -> versions
        | None ->
          let versions = Hashtbl.create 8 in
          Hashtbl.replace t.by_doc doc versions;
          versions
      in
      Hashtbl.replace versions version entry;
      t.bytes <- t.bytes + e_bytes
    end;
    t.io.Io_stats.vcache_bytes <- t.bytes
  end

let evict_before t doc version =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.by_doc doc with
   | Some versions ->
     let victims =
       Hashtbl.fold
         (fun v e acc -> if v < version then e :: acc else acc)
         versions []
     in
     List.iter (remove_entry t) victims
   | None -> ());
  t.io.Io_stats.vcache_bytes <- t.bytes

let evict_doc t doc =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.by_doc doc with
   | Some versions ->
     Hashtbl.iter (fun _ e -> t.bytes <- t.bytes - e.e_bytes) versions;
     Hashtbl.remove t.by_doc doc
   | None -> ());
  t.io.Io_stats.vcache_bytes <- t.bytes

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.by_doc;
  t.bytes <- 0;
  t.io.Io_stats.vcache_bytes <- 0
