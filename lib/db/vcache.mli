(** Byte-budgeted LRU cache of materialized document versions.

    Keyed by [(doc_id, version)].  A cached entry is immutable forever:
    version numbers are never reassigned (commits only append, document ids
    are never reused), so a hit can be served without any validation —
    eviction exists purely to bound memory, and explicit eviction on
    document deletion or recovery is defensive housekeeping, not a
    correctness requirement.

    Residents double as {e anchors} for incremental reconstruction
    (Section 7.3.3): when version [v] is wanted and some [v'] is cached,
    applying the [|v - v'|] deltas between them is often far cheaper than
    walking from the stored current version or the nearest snapshot.

    Hit/miss counts and the byte-residency gauge are reported through the
    {!Txq_store.Io_stats} record handed to {!create}.  A budget of [0]
    disables the cache completely: every operation is a no-op and no
    counter moves.

    Every operation is safe under concurrent callers: one cache is shared
    by the live database handle and all of its snapshots, so reader
    domains hit it simultaneously.  Since entries are immutable and keys
    are never reassigned, concurrency only reorders LRU eviction — it can
    never serve a wrong tree. *)

type t

val create : budget:int -> io:Txq_store.Io_stats.t -> t
(** [budget] in (approximate) bytes; [0] disables. *)

val enabled : t -> bool
val bytes : t -> int
(** Current residency. *)

val find : t -> Txq_vxml.Eid.doc_id -> int -> Txq_vxml.Vnode.t option
(** Exact lookup; counts a hit or miss. *)

val nearest : t -> Txq_vxml.Eid.doc_id -> int -> (int * Txq_vxml.Vnode.t) option
(** The cached version of the document nearest to the target — an anchor
    candidate, not an answer, so no hit/miss is counted. *)

val best_anchor :
  t -> Txq_vxml.Eid.doc_id -> lo:int -> hi:int ->
  (int * Txq_vxml.Vnode.t) option
(** The cached version minimizing the deltas needed to materialize every
    version in [\[lo, hi\]] (an anchor inside the range attains the
    minimum, [hi - lo]). *)

val put : t -> Txq_vxml.Eid.doc_id -> int -> Txq_vxml.Vnode.t -> unit
(** Inserts, evicting least-recently-used entries until within budget;
    trees larger than the whole budget are not cached. *)

val evict_before : t -> Txq_vxml.Eid.doc_id -> int -> unit
(** Drops cached versions below the given version — required when a vacuum
    truncates a document's prefix, since {!find} is consulted before the
    docstore can bounds-check the version number. *)

val evict_doc : t -> Txq_vxml.Eid.doc_id -> unit
val clear : t -> unit
