module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta

type change_kind =
  | Inserted
  | Deleted
  | Updated
  | Renamed
  | Moved

let change_kind_to_string = function
  | Inserted -> "insert"
  | Deleted -> "delete"
  | Updated -> "update"
  | Renamed -> "rename"
  | Moved -> "move"

type entry = {
  ch_doc : Txq_vxml.Eid.doc_id;
  ch_version : int;
  ch_kind : change_kind;
  ch_word : string;
  ch_xid : Txq_vxml.Xid.t;
}

type t = {
  words : (string, entry list ref) Hashtbl.t;
  mutable entries : int;
}

let create () = { words = Hashtbl.create 1024; entries = 0 }

let add t entry =
  let bucket =
    match Hashtbl.find_opt t.words entry.ch_word with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace t.words entry.ch_word b;
      b
  in
  bucket := entry :: !bucket;
  t.entries <- t.entries + 1

let add_tree_words t ~doc ~version ~kind tree =
  List.iter
    (fun { Vnode.occ_word; occ_path; _ } ->
      let ch_xid =
        match Txq_vxml.Xidpath.leaf occ_path with
        | Some xid -> xid
        | None -> Vnode.xid tree
      in
      add t { ch_doc = doc; ch_version = version; ch_kind = kind;
              ch_word = occ_word; ch_xid })
    (Vnode.occurrences tree)

let split_words s =
  List.filter
    (fun w -> not (String.equal w ""))
    (String.split_on_char ' ' s)

let index_op t ~doc ~version = function
  | Delta.Insert { tree; _ } -> add_tree_words t ~doc ~version ~kind:Inserted tree
  | Delta.Delete { tree; _ } -> add_tree_words t ~doc ~version ~kind:Deleted tree
  | Delta.Update { xid; old_text; new_text } ->
    List.iter
      (fun w ->
        add t { ch_doc = doc; ch_version = version; ch_kind = Deleted;
                ch_word = w; ch_xid = xid })
      (split_words old_text);
    List.iter
      (fun w ->
        add t { ch_doc = doc; ch_version = version; ch_kind = Updated;
                ch_word = w; ch_xid = xid })
      (split_words new_text)
  | Delta.Rename { xid; old_tag; new_tag } ->
    add t { ch_doc = doc; ch_version = version; ch_kind = Deleted;
            ch_word = old_tag; ch_xid = xid };
    add t { ch_doc = doc; ch_version = version; ch_kind = Renamed;
            ch_word = new_tag; ch_xid = xid }
  | Delta.Set_attr { xid; name; old_value; new_value } ->
    let record kind = function
      | None -> ()
      | Some v ->
        List.iter
          (fun w ->
            add t { ch_doc = doc; ch_version = version; ch_kind = kind;
                    ch_word = w; ch_xid = xid })
          (name :: split_words v)
    in
    record Deleted old_value;
    record Updated new_value
  | Delta.Move { xid; _ } ->
    add t { ch_doc = doc; ch_version = version; ch_kind = Moved;
            ch_word = "_node"; ch_xid = xid }

let index_delta t ~doc ~version delta =
  List.iter (index_op t ~doc ~version) delta.Delta.ops

let index_initial t ~doc vnode =
  add_tree_words t ~doc ~version:0 ~kind:Inserted vnode

let delete_document t ~doc ~version vnode =
  add_tree_words t ~doc ~version ~kind:Deleted vnode

let changes t word =
  let plain () =
    match Hashtbl.find_opt t.words word with
    | Some bucket -> List.rev !bucket
    | None -> []
  in
  if not (Txq_obs.Trace.enabled ()) then plain ()
  else
    Txq_obs.Trace.with_span "dfti.changes"
      ~attrs:[ ("word", Txq_obs.Span.Str word) ]
      (fun () ->
        let r = plain () in
        Txq_obs.Trace.add_count "entries" (List.length r);
        r)

let changes_of_kind t word kind =
  List.filter (fun e -> e.ch_kind = kind) (changes t word)

let deletions_in_doc t word ~doc =
  List.filter (fun e -> e.ch_kind = Deleted && e.ch_doc = doc) (changes t word)

let entry_count t = t.entries
let word_count t = Hashtbl.length t.words
