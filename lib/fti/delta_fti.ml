module Vnode = Txq_vxml.Vnode
module Delta = Txq_vxml.Delta

type change_kind =
  | Inserted
  | Deleted
  | Updated
  | Renamed
  | Moved

let change_kind_to_string = function
  | Inserted -> "insert"
  | Deleted -> "delete"
  | Updated -> "update"
  | Renamed -> "rename"
  | Moved -> "move"

type entry = {
  ch_doc : Txq_vxml.Eid.doc_id;
  ch_version : int;
  ch_kind : change_kind;
  ch_word : string;
  ch_xid : Txq_vxml.Xid.t;
}

type t = {
  words : (string, entry list ref) Hashtbl.t;
  mutable entries : int;
}

let create () = { words = Hashtbl.create 1024; entries = 0 }

let add t entry =
  let bucket =
    match Hashtbl.find_opt t.words entry.ch_word with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace t.words entry.ch_word b;
      b
  in
  bucket := entry :: !bucket;
  t.entries <- t.entries + 1

let add_tree_words t ~doc ~version ~kind tree =
  List.iter
    (fun { Vnode.occ_word; occ_path; _ } ->
      let ch_xid =
        match Txq_vxml.Xidpath.leaf occ_path with
        | Some xid -> xid
        | None -> Vnode.xid tree
      in
      add t { ch_doc = doc; ch_version = version; ch_kind = kind;
              ch_word = occ_word; ch_xid })
    (Vnode.occurrences tree)

(* The snapshot FTI tokenizes through [Vnode.occurrences]; using the same
   tokenizer here keeps the two indexes word-for-word consistent on text
   containing tabs, newlines or punctuation. *)
let split_words = Vnode.split_words

let index_op t ~doc ~version = function
  | Delta.Insert { tree; _ } -> add_tree_words t ~doc ~version ~kind:Inserted tree
  | Delta.Delete { tree; _ } -> add_tree_words t ~doc ~version ~kind:Deleted tree
  | Delta.Update { xid; old_text; new_text } ->
    List.iter
      (fun w ->
        add t { ch_doc = doc; ch_version = version; ch_kind = Deleted;
                ch_word = w; ch_xid = xid })
      (split_words old_text);
    List.iter
      (fun w ->
        add t { ch_doc = doc; ch_version = version; ch_kind = Updated;
                ch_word = w; ch_xid = xid })
      (split_words new_text)
  | Delta.Rename { xid; old_tag; new_tag } ->
    add t { ch_doc = doc; ch_version = version; ch_kind = Deleted;
            ch_word = old_tag; ch_xid = xid };
    add t { ch_doc = doc; ch_version = version; ch_kind = Renamed;
            ch_word = new_tag; ch_xid = xid }
  | Delta.Set_attr { xid; name; old_value; new_value } ->
    let record kind = function
      | None -> ()
      | Some v ->
        List.iter
          (fun w ->
            add t { ch_doc = doc; ch_version = version; ch_kind = kind;
                    ch_word = w; ch_xid = xid })
          (name :: split_words v)
    in
    record Deleted old_value;
    record Updated new_value
  | Delta.Move { xid; _ } ->
    add t { ch_doc = doc; ch_version = version; ch_kind = Moved;
            ch_word = "_node"; ch_xid = xid }

let index_delta t ~doc ~version delta =
  List.iter (index_op t ~doc ~version) delta.Delta.ops

let index_initial t ~doc ?(version = 0) vnode =
  add_tree_words t ~doc ~version ~kind:Inserted vnode

(* Prune after a retention vacuum, mirroring what a rebuild of the
   truncated delta chains would index: entries at or below a squashed
   document's new base are dropped (the delta {e into} the base is gone
   too), then the base tree's occurrences are re-registered as [Inserted]
   at the base version.  The fresh base entries are appended at the old end
   of each bucket so [changes] stays oldest-first. *)
let vacuum t ~affected =
  let actions = Hashtbl.create 16 in
  List.iter (fun (doc, action) -> Hashtbl.replace actions doc action) affected;
  let keep e =
    match Hashtbl.find_opt actions e.ch_doc with
    | None -> true
    | Some `Drop -> false
    | Some (`Squash (base, _)) -> e.ch_version > base
  in
  let removed = ref 0 in
  Hashtbl.filter_map_inplace
    (fun _ bucket ->
      let kept = List.filter keep !bucket in
      removed := !removed + (List.length !bucket - List.length kept);
      if kept = [] then None
      else begin
        bucket := kept;
        Some bucket
      end)
    t.words;
  t.entries <- t.entries - !removed;
  let added = ref 0 in
  List.iter
    (fun (doc, action) ->
      match action with
      | `Drop -> ()
      | `Squash (base, tree) ->
        let fresh = create () in
        add_tree_words fresh ~doc ~version:base ~kind:Inserted tree;
        added := !added + fresh.entries;
        t.entries <- t.entries + fresh.entries;
        Hashtbl.iter
          (fun word fresh_bucket ->
            match Hashtbl.find_opt t.words word with
            | Some bucket -> bucket := !bucket @ !fresh_bucket
            | None -> Hashtbl.replace t.words word fresh_bucket)
          fresh.words)
    affected;
  (!removed, !added)

let delete_document t ~doc ~version vnode =
  add_tree_words t ~doc ~version ~kind:Deleted vnode

let changes t word =
  let plain () =
    match Hashtbl.find_opt t.words word with
    | Some bucket -> List.rev !bucket
    | None -> []
  in
  if not (Txq_obs.Trace.enabled ()) then plain ()
  else
    Txq_obs.Trace.with_span "dfti.changes"
      ~attrs:[ ("word", Txq_obs.Span.Str word) ]
      (fun () ->
        let r = plain () in
        Txq_obs.Trace.add_count "entries" (List.length r);
        r)

let changes_of_kind t word kind =
  List.filter (fun e -> e.ch_kind = kind) (changes t word)

let deletions_in_doc t word ~doc =
  List.filter (fun e -> e.ch_kind = Deleted && e.ch_doc = doc) (changes t word)

let entry_count t = t.entries
let word_count t = Hashtbl.length t.words

let word_entry_count t word =
  match Hashtbl.find_opt t.words word with
  | None -> 0
  | Some b -> List.length !b
