(** Delta-operation index — alternative A2 of Section 7.2: index the contents
    of the delta documents.

    Instead of indexing what each version {e contains}, this index records
    what each delta {e did}: which words/elements were inserted, deleted,
    updated, renamed or moved, and in which version.  It answers
    change-oriented queries ("when was [Napoli] deleted?") with a single
    lookup, where the version-content index must scan postings; conversely it
    cannot serve snapshot queries at all — precisely the trade-off the paper
    describes and leaves unmeasured.  Experiment E5 measures it. *)

type change_kind =
  | Inserted
  | Deleted
  | Updated  (** new text words of an update *)
  | Renamed
  | Moved

type entry = {
  ch_doc : Txq_vxml.Eid.doc_id;
  ch_version : int;  (** version in which the change became visible *)
  ch_kind : change_kind;
  ch_word : string;
  ch_xid : Txq_vxml.Xid.t;  (** the node the change touched *)
}

val change_kind_to_string : change_kind -> string

val split_words : string -> string list
(** The tokenizer — {e the} same one ({!Txq_vxml.Vnode.split_words}) the
    version-content index sees through [Vnode.occurrences], so a word
    findable in one index is findable in the other.  (A former private
    copy split on spaces only and silently missed words separated by
    tabs, newlines or punctuation.) *)

type t

val create : unit -> t

val index_delta :
  t -> doc:Txq_vxml.Eid.doc_id -> version:int -> Txq_vxml.Delta.t -> unit
(** Indexes the operations of the delta leading {e to} [version]. *)

val index_initial :
  t -> doc:Txq_vxml.Eid.doc_id -> ?version:int -> Txq_vxml.Vnode.t -> unit
(** The creation of a document is one big insertion ([version] defaults to
    0; recovery and vacuum re-register a squashed base tree at its own
    version number). *)

val vacuum :
  t ->
  affected:
    (Txq_vxml.Eid.doc_id * [ `Drop | `Squash of int * Txq_vxml.Vnode.t ]) list ->
  int * int
(** Prunes after a retention vacuum: [`Drop] removes every entry of the
    document; [`Squash (base, tree)] removes entries at or below [base]
    (those deltas are gone) and re-registers [tree] — the squashed base
    version — as one big insertion at [base], exactly what a rebuild of the
    truncated chain would index.  Returns (entries removed, entries
    added). *)

val delete_document :
  t -> doc:Txq_vxml.Eid.doc_id -> version:int -> Txq_vxml.Vnode.t -> unit
(** Document deletion records deletions for its last content. *)

val changes : t -> string -> entry list
(** All change entries mentioning the word, oldest first. *)

val changes_of_kind : t -> string -> change_kind -> entry list

val deletions_in_doc :
  t -> string -> doc:Txq_vxml.Eid.doc_id -> entry list
(** The paper's example query shape: "delete/…/Napoli" within a document. *)

val entry_count : t -> int
val word_count : t -> int

val word_entry_count : t -> string -> int
(** Change entries mentioning the word — the A2-route cardinality the
    planner weighs against {!Fti.word_postings} when both indexes are
    maintained.  O(bucket length), no allocation. *)
