module Vnode = Txq_vxml.Vnode

(* Key identifying one occurrence position within a document: word, kind and
   XID path.  XIDs are ints underneath, so structural hashing and equality on
   the triple are sound. *)
module Occ_key = struct
  type t = string * Vnode.occurrence_kind * int array

  let of_occ (word, kind, path) : t =
    (word, kind, Array.map Txq_vxml.Xid.to_int path)

  let equal (a : t) (b : t) = a = b
  let hash (t : t) = Hashtbl.hash t
end

module Occ_table = Hashtbl.Make (Occ_key)

type doc_state = {
  (* Open posting per live occurrence position of the document. *)
  open_postings : Posting.t Occ_table.t;
  (* The occurrence set of the version indexed last, to diff against. *)
  mutable current_occs : Vnode.Occ_set.t;
  mutable last_version : int;
}

type t = {
  words : (string, Posting.t list ref) Hashtbl.t;
  docs : (Txq_vxml.Eid.doc_id, doc_state) Hashtbl.t;
  mutable postings : int;
}

let create () = { words = Hashtbl.create 1024; docs = Hashtbl.create 64; postings = 0 }

let word_bucket t word =
  match Hashtbl.find_opt t.words word with
  | Some bucket -> bucket
  | None ->
    let bucket = ref [] in
    Hashtbl.replace t.words word bucket;
    bucket

let doc_state t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some st -> st
  | None ->
    let st =
      {
        open_postings = Occ_table.create 64;
        current_occs = Vnode.Occ_set.empty;
        last_version = -1;
      }
    in
    Hashtbl.replace t.docs doc st;
    st

let open_posting t ~doc ~version st ((word, kind, path) as occ) =
  let posting = Posting.make ~doc ~kind ~path ~vstart:version in
  let bucket = word_bucket t word in
  bucket := posting :: !bucket;
  t.postings <- t.postings + 1;
  Occ_table.replace st.open_postings (Occ_key.of_occ occ) posting

let close_posting ~version st occ =
  let key = Occ_key.of_occ occ in
  match Occ_table.find_opt st.open_postings key with
  | Some posting ->
    posting.Posting.vend <- version;
    Occ_table.remove st.open_postings key
  | None -> ()

let index_version t ~doc ~version vnode =
  let st = doc_state t doc in
  if version <= st.last_version then
    invalid_arg
      (Printf.sprintf
         "Fti.index_version: version %d of doc %d indexed out of order (last \
          %d)"
         version doc st.last_version);
  let occs = Vnode.occurrence_set vnode in
  let removed = Vnode.Occ_set.diff st.current_occs occs in
  let added = Vnode.Occ_set.diff occs st.current_occs in
  Vnode.Occ_set.iter (close_posting ~version st) removed;
  Vnode.Occ_set.iter (open_posting t ~doc ~version st) added;
  st.current_occs <- occs;
  st.last_version <- version

let delete_document t ~doc ~version =
  match Hashtbl.find_opt t.docs doc with
  | None -> ()
  | Some st ->
    Vnode.Occ_set.iter (close_posting ~version st) st.current_occs;
    st.current_occs <- Vnode.Occ_set.empty;
    st.last_version <- version

let postings_of t word =
  match Hashtbl.find_opt t.words word with
  | Some bucket -> !bucket
  | None -> []

(* Each lookup variant traces postings scanned vs returned — the
   quantities Section 7.2 argues with.  The [Trace.enabled] guard keeps
   the disabled path free of the extra list walks. *)
let traced name word scanned result =
  if not (Txq_obs.Trace.enabled ()) then result ()
  else
    Txq_obs.Trace.with_span name
      ~attrs:[ ("word", Txq_obs.Span.Str word) ]
      (fun () ->
        let r = result () in
        Txq_obs.Trace.add_count "postings_scanned" (List.length (scanned ()));
        Txq_obs.Trace.add_count "postings" (List.length r);
        r)

let lookup t word =
  let all () = postings_of t word in
  traced "fti.lookup" word all (fun () -> List.filter Posting.is_open (all ()))

let lookup_t t word ~version_at =
  let all () = postings_of t word in
  traced "fti.lookup_t" word all (fun () ->
      List.filter
        (fun p ->
          match version_at p.Posting.doc with
          | Some v -> Posting.valid_at p v
          | None -> false)
        (all ()))

let lookup_h t word =
  let all () = postings_of t word in
  traced "fti.lookup_h" word all all

let lookup_h_doc t word ~doc =
  let all () = postings_of t word in
  traced "fti.lookup_h" word all (fun () ->
      List.filter (fun p -> p.Posting.doc = doc) (all ()))

let word_count t = Hashtbl.length t.words
let posting_count t = t.postings
let vocabulary t = Hashtbl.fold (fun w _ acc -> w :: acc) t.words []
