module Vnode = Txq_vxml.Vnode

(* Key identifying one occurrence position within a document: word, kind and
   XID path.  XIDs are ints underneath, so structural hashing and equality on
   the triple are sound. *)
module Occ_key = struct
  type t = string * Vnode.occurrence_kind * int array

  let of_occ (word, kind, path) : t =
    (word, kind, Array.map Txq_vxml.Xid.to_int path)

  let equal (a : t) (b : t) = a = b

  (* [Hashtbl.hash] samples only ~10 meaningful words of its input, so deep
     XID paths that differ past the sampled prefix collide systematically
     and degrade the open-postings table to linear chains.  Fold the whole
     path instead (FNV-1a over the ints, seeded with word and kind). *)
  let hash ((word, kind, path) : t) =
    let kind_bit = match kind with Vnode.Tag -> 0 | Vnode.Word -> 1 in
    let h = ref (Hashtbl.hash word lxor kind_bit) in
    Array.iter (fun x -> h := (!h lxor x) * 0x01000193 land max_int) path;
    !h
end

module Occ_table = Hashtbl.Make (Occ_key)

type doc_state = {
  (* Open posting per live occurrence position of the document. *)
  open_postings : Posting.t Occ_table.t;
  (* The occurrence set of the version indexed last, to diff against. *)
  mutable current_occs : Vnode.Occ_set.t;
  mutable last_version : int;
}

(* Two-tier per-word index: a small mutable tail of postings opened since
   the last freeze (newest first, the only part writes touch) above a stack
   of immutable frozen segments.  Reads compact the stack to one segment,
   so every read path sees at most one sorted run plus the tail. *)
type word_state = {
  mutable tail : Posting.t list; (* newest first *)
  mutable tail_n : int;
  mutable segs : Segment.t list; (* newest first *)
  (* Live cardinality counters, maintained on open/close/vacuum: the
     planner's per-word selectivity estimates read them in O(1), with no
     posting-list walk.  Split by occurrence kind because a string used
     both as an element name and as a text word has very different
     selectivities under Tag and Word tests. *)
  mutable n_tag : int; (* postings ever opened as Tag, minus vacuumed *)
  mutable n_word : int;
  mutable open_tag : int; (* of those, still open (current versions) *)
  mutable open_word : int;
}

type t = {
  words : (string, word_state) Hashtbl.t;
  docs : (Txq_vxml.Eid.doc_id, doc_state) Hashtbl.t;
  mutable postings : int;
  (* freeze protocol *)
  watermark : int; (* tail postings triggering a freeze; max_int = never *)
  mutable tail_postings : int; (* across all words *)
  mutable freezes : int;
}

(* New tail runs pile up as separate segments until this many exist, then
   one k-way merge folds them (bulk loads freeze often but read rarely;
   merging every freeze would rewrite each word's whole run every time). *)
let merge_fanout = 4

let default_watermark = 4096

let create ?(segment_postings = default_watermark) () =
  {
    words = Hashtbl.create 1024;
    docs = Hashtbl.create 64;
    postings = 0;
    watermark = (if segment_postings <= 0 then max_int else segment_postings);
    tail_postings = 0;
    freezes = 0;
  }

let word_state t word =
  match Hashtbl.find_opt t.words word with
  | Some st -> st
  | None ->
    let st =
      { tail = []; tail_n = 0; segs = [];
        n_tag = 0; n_word = 0; open_tag = 0; open_word = 0 }
    in
    Hashtbl.replace t.words word st;
    st

let doc_state t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some st -> st
  | None ->
    let st =
      {
        open_postings = Occ_table.create 64;
        current_occs = Vnode.Occ_set.empty;
        last_version = -1;
      }
    in
    Hashtbl.replace t.docs doc st;
    st

(* --- freeze protocol --------------------------------------------------- *)

(* Move every word's tail into a fresh frozen segment (sorting only the
   tail run), k-way merging a word's stack down when it reaches the
   fanout.  Posting records are shared between tiers, so open postings
   frozen here still close in place on later versions. *)
let freeze t =
  if t.tail_postings > 0 then begin
    let frozen_now = t.tail_postings in
    Hashtbl.iter
      (fun _ st ->
        if st.tail_n > 0 then begin
          let run = Segment.of_unsorted (Array.of_list st.tail) in
          st.tail <- [];
          st.tail_n <- 0;
          st.segs <- run :: st.segs;
          if List.length st.segs >= merge_fanout then
            st.segs <- [ Segment.merge st.segs ]
        end)
      t.words;
    t.tail_postings <- 0;
    t.freezes <- t.freezes + 1;
    Txq_obs.Metrics.incr "fti.freezes";
    Txq_obs.Metrics.incr ~by:frozen_now "fti.postings_frozen"
  end

let maybe_freeze t = if t.tail_postings >= t.watermark then freeze t

(* Compact a word's segment stack to one run; amortized over reads, and a
   no-op for the common 0/1-segment cases. *)
let frozen_of st =
  match st.segs with
  | [] -> None
  | [ s ] -> Some s
  | many ->
    let s = Segment.merge many in
    st.segs <- [ s ];
    Some s

(* --- maintenance -------------------------------------------------------- *)

let open_posting t ~doc ~version st ((word, kind, path) as occ) =
  let posting = Posting.make ~doc ~kind ~path ~vstart:version in
  let ws = word_state t word in
  ws.tail <- posting :: ws.tail;
  ws.tail_n <- ws.tail_n + 1;
  (match kind with
   | Vnode.Tag ->
     ws.n_tag <- ws.n_tag + 1;
     ws.open_tag <- ws.open_tag + 1
   | Vnode.Word ->
     ws.n_word <- ws.n_word + 1;
     ws.open_word <- ws.open_word + 1);
  t.postings <- t.postings + 1;
  t.tail_postings <- t.tail_postings + 1;
  Occ_table.replace st.open_postings (Occ_key.of_occ occ) posting

let close_posting t ~version st ((word, kind, _) as occ) =
  let key = Occ_key.of_occ occ in
  match Occ_table.find_opt st.open_postings key with
  | Some posting ->
    posting.Posting.vend <- version;
    Occ_table.remove st.open_postings key;
    (match Hashtbl.find_opt t.words word with
     | None -> ()
     | Some ws -> (
       match kind with
       | Vnode.Tag -> ws.open_tag <- ws.open_tag - 1
       | Vnode.Word -> ws.open_word <- ws.open_word - 1))
  | None -> ()

let index_version t ~doc ~version vnode =
  let st = doc_state t doc in
  if version <= st.last_version then
    invalid_arg
      (Printf.sprintf
         "Fti.index_version: version %d of doc %d indexed out of order (last \
          %d)"
         version doc st.last_version);
  let occs = Vnode.occurrence_set vnode in
  let removed = Vnode.Occ_set.diff st.current_occs occs in
  let added = Vnode.Occ_set.diff occs st.current_occs in
  Vnode.Occ_set.iter (close_posting t ~version st) removed;
  Vnode.Occ_set.iter (open_posting t ~doc ~version st) added;
  st.current_occs <- occs;
  st.last_version <- version;
  (* One [index_version] call is one commit of the document, so the
     watermark check here is the "freeze on commit boundaries" trigger. *)
  maybe_freeze t

let delete_document t ~doc ~version =
  match Hashtbl.find_opt t.docs doc with
  | None -> ()
  | Some st ->
    Vnode.Occ_set.iter (close_posting t ~version st) st.current_occs;
    st.current_occs <- Vnode.Occ_set.empty;
    st.last_version <- version

(* --- vacuum ------------------------------------------------------------- *)

(* Remove every posting the retention truncation makes unreachable: all
   postings of dropped documents, and closed postings ending at or before a
   squashed document's new base version.  A surviving posting that spans the
   truncation point has its [vstart] clamped up to the base — exactly the
   posting a from-scratch rebuild of the truncated chain would open at the
   base version.  Filtering preserves segment order: within one (doc, path,
   kind) position at most one posting can span the base (intervals are
   disjoint and an occurrence closed at the base cannot also reopen there),
   so clamping never creates an order violation. *)
let vacuum t ~affected =
  let actions = Hashtbl.create 16 in
  List.iter (fun (doc, action) -> Hashtbl.replace actions doc action) affected;
  let keep p =
    match Hashtbl.find_opt actions p.Posting.doc with
    | None -> true
    | Some `Drop -> false
    | Some (`Squash base) ->
      if p.Posting.vend <> Posting.open_end && p.Posting.vend <= base then false
      else begin
        if p.Posting.vstart < base then p.Posting.vstart <- base;
        true
      end
  in
  let removed = ref 0 in
  let removed_tail = ref 0 in
  Hashtbl.filter_map_inplace
    (fun _ st ->
      let tail = List.filter keep st.tail in
      let tail_n = List.length tail in
      removed_tail := !removed_tail + (st.tail_n - tail_n);
      st.tail <- tail;
      st.tail_n <- tail_n;
      st.segs <-
        List.filter_map
          (fun seg ->
            let arr = Segment.postings seg in
            let kept = Array.of_list (List.filter keep (Array.to_list arr)) in
            let dropped = Array.length arr - Array.length kept in
            removed := !removed + dropped;
            if dropped = 0 then Some seg
            else if Array.length kept = 0 then None
            else Some (Segment.of_sorted kept))
          st.segs;
      (* Vacuum already walks every posting; recount the cardinality
         counters in the same pass rather than tracking which of the
         filtered postings were open. *)
      st.n_tag <- 0;
      st.n_word <- 0;
      st.open_tag <- 0;
      st.open_word <- 0;
      let count p =
        let opened = if Posting.is_open p then 1 else 0 in
        match p.Posting.kind with
        | Vnode.Tag ->
          st.n_tag <- st.n_tag + 1;
          st.open_tag <- st.open_tag + opened
        | Vnode.Word ->
          st.n_word <- st.n_word + 1;
          st.open_word <- st.open_word + opened
      in
      List.iter count st.tail;
      List.iter (fun seg -> Array.iter count (Segment.postings seg)) st.segs;
      if st.tail_n = 0 && st.segs = [] then None else Some st)
    t.words;
  removed := !removed + !removed_tail;
  t.tail_postings <- t.tail_postings - !removed_tail;
  t.postings <- t.postings - !removed;
  List.iter
    (fun (doc, action) ->
      match action with
      | `Drop -> Hashtbl.remove t.docs doc
      | `Squash _ -> ())
    affected;
  !removed

(* --- lookups ------------------------------------------------------------ *)

(* Each lookup variant traces postings scanned vs returned — the
   quantities Section 7.2 argues with.  The [Trace.enabled] guard keeps
   the disabled path free of the extra list walks. *)
let traced name word scanned result =
  if not (Txq_obs.Trace.enabled ()) then result ()
  else
    Txq_obs.Trace.with_span name
      ~attrs:[ ("word", Txq_obs.Span.Str word) ]
      (fun () ->
        let r = result () in
        Txq_obs.Trace.add_count "postings_scanned" (scanned ());
        Txq_obs.Trace.add_count "postings" (List.length r);
        r)

(* Shared filter shape: frozen slice first (already in total order), then
   the tail oldest-first — a deterministic order whatever freeze history
   produced the split. *)
let filtered st pred =
  let out = ref [] in
  (match frozen_of st with
   | None -> ()
   | Some seg ->
     let arr = Segment.postings seg in
     for i = Array.length arr - 1 downto 0 do
       if pred arr.(i) then out := arr.(i) :: !out
     done);
  let tail_old_first = List.rev st.tail in
  !out @ List.filter pred tail_old_first

let scanned_of t word () =
  match Hashtbl.find_opt t.words word with
  | None -> 0
  | Some st ->
    st.tail_n + List.fold_left (fun n s -> n + Segment.length s) 0 st.segs

let with_word t word f =
  match Hashtbl.find_opt t.words word with None -> [] | Some st -> f st

let lookup t word =
  traced "fti.lookup" word (scanned_of t word) (fun () ->
      with_word t word (fun st -> filtered st Posting.is_open))

let lookup_t t word ~version_at =
  traced "fti.lookup_t" word (scanned_of t word) (fun () ->
      with_word t word (fun st ->
          filtered st (fun p ->
              match version_at p.Posting.doc with
              | Some v -> Posting.valid_at p v
              | None -> false)))

let lookup_h t word =
  traced "fti.lookup_h" word (scanned_of t word) (fun () ->
      with_word t word (fun st -> filtered st (fun _ -> true)))

(* The history lookup the pattern scan hammers per document: a fence
   binary search plus a contiguous slice, O(log d + k) instead of a filter
   over the word's whole posting list. *)
let lookup_h_doc t word ~doc =
  traced "fti.lookup_h_doc" word
    (fun () ->
      match Hashtbl.find_opt t.words word with
      | None -> 0
      | Some st ->
        st.tail_n
        + List.fold_left
            (fun n s ->
              let a, b = Segment.doc_bounds s ~doc in
              n + (b - a))
            0 st.segs)
    (fun () ->
      with_word t word (fun st ->
          let out = ref [] in
          (match frozen_of st with
           | None -> ()
           | Some seg ->
             let arr = Segment.postings seg in
             let start, stop = Segment.doc_bounds seg ~doc in
             for i = stop - 1 downto start do
               out := arr.(i) :: !out
             done);
          !out
          @ List.filter
              (fun p -> p.Posting.doc = doc)
              (List.rev st.tail)))

(* --- sorted fetch for the pattern-scan join ----------------------------- *)

(* All postings of (word, kind) as one array in [Posting.compare_total]
   order: the frozen run is kind-filtered (filtering preserves order) and
   merged with the sorted, kind-filtered tail.  With a compacted segment
   and a watermark-bounded tail this performs no full sort — the per-query
   sorting the old scan engine paid is gone. *)
let sorted_postings t word ~kind =
  let build () =
    match Hashtbl.find_opt t.words word with
    | None -> [||]
    | Some st ->
      let tail_run =
        Array.of_list
          (List.filter (fun p -> p.Posting.kind = kind) st.tail)
      in
      Array.sort Posting.compare_total tail_run;
      let frozen_run =
        match frozen_of st with
        | None -> [||]
        | Some seg ->
          let arr = Segment.postings seg in
          let n = ref 0 in
          Array.iter (fun p -> if p.Posting.kind = kind then incr n) arr;
          if !n = Array.length arr then arr
          else begin
            let out = ref [] in
            for i = Array.length arr - 1 downto 0 do
              if arr.(i).Posting.kind = kind then out := arr.(i) :: !out
            done;
            match !out with
            | [] -> [||]
            | l -> Array.of_list l
          end
      in
      if Array.length tail_run = 0 then frozen_run
      else if Array.length frozen_run = 0 then tail_run
      else begin
        (* two-way merge of sorted runs *)
        let na = Array.length frozen_run and nb = Array.length tail_run in
        let out = Array.make (na + nb) frozen_run.(0) in
        let i = ref 0 and j = ref 0 in
        for slot = 0 to na + nb - 1 do
          let take_a =
            !j >= nb
            || (!i < na
                && Posting.compare_total frozen_run.(!i) tail_run.(!j) <= 0)
          in
          if take_a then begin
            out.(slot) <- frozen_run.(!i);
            incr i
          end
          else begin
            out.(slot) <- tail_run.(!j);
            incr j
          end
        done;
        out
      end
  in
  if not (Txq_obs.Trace.enabled ()) then build ()
  else
    Txq_obs.Trace.with_span "fti.sorted_postings"
      ~attrs:[ ("word", Txq_obs.Span.Str word) ]
      (fun () ->
        let r = build () in
        Txq_obs.Trace.add_count "postings" (Array.length r);
        r)

(* --- stats -------------------------------------------------------------- *)

let word_count t = Hashtbl.length t.words
let posting_count t = t.postings
let vocabulary t = Hashtbl.fold (fun w _ acc -> w :: acc) t.words []
let freeze_count t = t.freezes
let tail_posting_count t = t.tail_postings

let segment_count t =
  Hashtbl.fold (fun _ st n -> n + List.length st.segs) t.words 0

let frozen_posting_count t =
  Hashtbl.fold
    (fun _ st n ->
      n + List.fold_left (fun n s -> n + Segment.length s) 0 st.segs)
    t.words 0

let occ_key_hash = Occ_key.hash

let frozen_bytes t =
  Hashtbl.fold
    (fun _ st n ->
      n + List.fold_left (fun n s -> n + Segment.approx_bytes s) 0 st.segs)
    t.words 0

(* --- cardinality statistics (planner feed) ------------------------------ *)

let word_postings t word ~kind =
  match Hashtbl.find_opt t.words word with
  | None -> 0
  | Some st -> ( match kind with Vnode.Tag -> st.n_tag | Vnode.Word -> st.n_word)

let word_open_postings t word ~kind =
  match Hashtbl.find_opt t.words word with
  | None -> 0
  | Some st -> (
    match kind with Vnode.Tag -> st.open_tag | Vnode.Word -> st.open_word)

(* Per-document refinement: frozen postings are counted through the
   segment fences (binary search, no walk of other documents); only the
   matched document's slice is scanned to split by kind, plus the
   watermark-bounded tail. *)
let doc_word_postings t word ~kind ~doc =
  match Hashtbl.find_opt t.words word with
  | None -> 0
  | Some st ->
    let n = ref 0 in
    List.iter
      (fun seg ->
        Segment.iter_doc seg ~doc (fun p ->
            if p.Posting.kind = kind then incr n))
      st.segs;
    List.iter
      (fun p -> if p.Posting.doc = doc && p.Posting.kind = kind then incr n)
      st.tail;
    !n

type stats = {
  fs_words : int;
  fs_postings : int;
  fs_open_postings : int;
  fs_tail_postings : int;
  fs_frozen_postings : int;
  fs_segments : int;
  fs_frozen_bytes : int;
  fs_freezes : int;
}

let stats t =
  let open_postings, segments, frozen, bytes =
    Hashtbl.fold
      (fun _ st (o, s, f, b) ->
        ( o + st.open_tag + st.open_word,
          s + List.length st.segs,
          f + List.fold_left (fun n seg -> n + Segment.length seg) 0 st.segs,
          b + List.fold_left (fun n seg -> n + Segment.approx_bytes seg) 0 st.segs
        ))
      t.words (0, 0, 0, 0)
  in
  {
    fs_words = Hashtbl.length t.words;
    fs_postings = t.postings;
    fs_open_postings = open_postings;
    fs_tail_postings = t.tail_postings;
    fs_frozen_postings = frozen;
    fs_segments = segments;
    fs_frozen_bytes = bytes;
    fs_freezes = t.freezes;
  }
