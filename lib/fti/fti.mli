(** Temporal free-text index — alternative A1 of Section 7.2: index the
    contents of the versions.

    Every word of every document version is indexed, including element names
    (as [Tag] occurrences) and attribute names/values; a posting carries the
    document id, the XID path giving hierarchy information, and the version
    interval over which the occurrence persisted.

    The three lookups of Section 7.2 are provided:
    [lookup] (current snapshot), [lookup_t] (snapshot at a time, resolved to
    per-document version numbers by the caller), and [lookup_h] (whole
    history).

    The index is two-tier: postings open into a small mutable {e tail}
    per word; once the tail grows past a watermark (checked at commit
    boundaries, i.e. after each [index_version]) it is frozen into an
    immutable sorted {!Segment.t} with a per-document fence, and per-word
    segment stacks are k-way merged.  Document-restricted and
    whole-history lookups then run as binary search plus contiguous
    slice rather than full-list filters.  Posting records are shared
    between tiers, so freezing never delays closing an open posting. *)

type t

val create : ?segment_postings:int -> unit -> t
(** [segment_postings] is the tail watermark (total open-tier postings
    across all words) that triggers a freeze; default 4096.  A
    non-positive value — or [max_int] — disables freezing, which keeps
    the index on the original single-tier list path (useful as a
    differential-testing oracle). *)

val freeze : t -> unit
(** Force the current tail into frozen segments now, regardless of the
    watermark.  No-op on an empty tail. *)

val index_version :
  t -> doc:Txq_vxml.Eid.doc_id -> version:int -> Txq_vxml.Vnode.t -> unit
(** Incremental maintenance on commit of [version] (0-based) of [doc]:
    occurrences present in the previous version but absent from this one are
    closed at [version]; new occurrences open at [version].  Versions of a
    document must be indexed in increasing order. *)

val delete_document : t -> doc:Txq_vxml.Eid.doc_id -> version:int -> unit
(** Closes every open posting of the document: the delete "version" bound.
    [version] is the number the next version {e would} have had. *)

val vacuum :
  t ->
  affected:(Txq_vxml.Eid.doc_id * [ `Drop | `Squash of int ]) list ->
  int
(** Prunes the index after a retention vacuum: [`Drop] removes every
    posting of the document; [`Squash base] removes closed postings ending
    at or before [base] and clamps the [vstart] of postings spanning the
    truncation point up to [base] — leaving exactly the postings a rebuild
    of the truncated delta chain would produce.  Affected segments are
    rebuilt (order is preserved; see the implementation note).  Returns the
    number of postings removed. *)

val lookup : t -> string -> Posting.t list
(** Postings of current versions only (open postings). *)

val lookup_t :
  t -> string -> version_at:(Txq_vxml.Eid.doc_id -> int option) -> Posting.t list
(** Snapshot lookup: [version_at doc] gives the version number of [doc]
    valid at the query time ([None] when the document did not exist); the
    database derives it from the delta index. *)

val lookup_h : t -> string -> Posting.t list
(** Every posting ever recorded for the word. *)

val lookup_h_doc : t -> string -> doc:Txq_vxml.Eid.doc_id -> Posting.t list
(** History lookup restricted to one document.  Over the frozen tier
    this is a fence binary search plus a contiguous slice,
    O(log d + k). *)

val sorted_postings :
  t -> string -> kind:Txq_vxml.Vnode.occurrence_kind -> Posting.t array
(** All postings of the word with the given occurrence kind, as a fresh
    array in {!Posting.compare_total} order — the order the pattern-scan
    merge-join consumes.  Frozen segments are already sorted, so only the
    (watermark-bounded) tail is sorted per call. *)

val word_count : t -> int
val posting_count : t -> int

val vocabulary : t -> string list
(** All indexed words (unordered). *)

(** {1 Two-tier stats} *)

val segment_count : t -> int
(** Frozen segments currently live, across all words. *)

val tail_posting_count : t -> int
(** Postings in the mutable tail tier (not yet frozen). *)

val frozen_posting_count : t -> int

val frozen_bytes : t -> int
(** Approximate in-memory footprint of the frozen tier. *)

val freeze_count : t -> int
(** Freezes performed since creation. *)

(** {1 Cardinality statistics}

    O(1) per-word posting counts maintained incrementally on open, close
    and vacuum — the planner's selectivity estimates read these without
    walking any posting list. *)

val word_postings :
  t -> string -> kind:Txq_vxml.Vnode.occurrence_kind -> int
(** Postings of the word with this occurrence kind, over the whole
    history (the [lookup_h]/[sorted_postings] cardinality).  O(1). *)

val word_open_postings :
  t -> string -> kind:Txq_vxml.Vnode.occurrence_kind -> int
(** Of those, still open — the [lookup] (current-version) cardinality.
    O(1). *)

val doc_word_postings :
  t -> string -> kind:Txq_vxml.Vnode.occurrence_kind ->
  doc:Txq_vxml.Eid.doc_id -> int
(** Postings of the word within one document: frozen segments are sliced
    through their per-document fences (O(log d + k)), plus a filter over
    the watermark-bounded tail. *)

type stats = {
  fs_words : int;
  fs_postings : int;
  fs_open_postings : int;
  fs_tail_postings : int;
  fs_frozen_postings : int;
  fs_segments : int;
  fs_frozen_bytes : int;
  fs_freezes : int;
}

val stats : t -> stats
(** One aggregate read of every index-level statistic above — the record
    [txmldb stats] and the server's [/stats] endpoint surface. *)

(**/**)

val occ_key_hash :
  string * Txq_vxml.Vnode.occurrence_kind * int array -> int
(** Hash of an open-occurrence key (word, kind, XID path as ints).  Folds
    the whole path — unlike [Hashtbl.hash], which samples a prefix and
    collides systematically on deep paths.  Exposed for the collision
    regression test only. *)
