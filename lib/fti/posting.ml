type t = {
  doc : Txq_vxml.Eid.doc_id;
  kind : Txq_vxml.Vnode.occurrence_kind;
  path : Txq_vxml.Xidpath.t;
  mutable vstart : int;
  mutable vend : int;
}

let open_end = max_int
let make ~doc ~kind ~path ~vstart = { doc; kind; path; vstart; vend = open_end }
let is_open t = t.vend = open_end
let valid_at t v = t.vstart <= v && v < t.vend
let element_xid t = Txq_vxml.Xidpath.leaf t.path

let compare_for_join a b =
  match Int.compare a.doc b.doc with
  | 0 -> (
    match Txq_vxml.Xidpath.compare a.path b.path with
    | 0 -> Int.compare a.vstart b.vstart
    | c -> c)
  | c -> c

(* A strict total order over the postings of one word: within a (word, kind,
   path) position, version intervals never share a start (an occurrence must
   close before it reopens), so breaking the remaining tie on [kind] —
   possible because a Tag and a Word occurrence can carry the same path —
   makes the order total.  Segments sorted by it are therefore identical
   whatever freeze/merge history produced them. *)
let kind_rank = function Txq_vxml.Vnode.Tag -> 0 | Txq_vxml.Vnode.Word -> 1

let compare_total a b =
  match compare_for_join a b with
  | 0 -> Int.compare (kind_rank a.kind) (kind_rank b.kind)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "d%d%s[%d,%s)" t.doc
    (Txq_vxml.Xidpath.to_string t.path)
    t.vstart
    (if is_open t then "∞" else string_of_int t.vend)
