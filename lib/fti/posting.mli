(** Postings of the temporal full-text index.

    One posting records that a word occurs at a position (XID path) of a
    document across a contiguous range of versions.  Version {e numbers} are
    stored here; their timestamps live only in the per-document delta index,
    exactly as Section 7.1 prescribes ("Each version is numbered, so that we
    do not have to store the timestamps in the text indexes"). *)

type t = {
  doc : Txq_vxml.Eid.doc_id;
  kind : Txq_vxml.Vnode.occurrence_kind;
  path : Txq_vxml.Xidpath.t;
  mutable vstart : int;
      (** first version containing the occurrence; mutable only so a vacuum
          can clamp postings spanning the truncation point up to the new
          base version *)
  mutable vend : int;  (** first version no longer containing it; [open_end]
                           while the occurrence is in the current version *)
}

val open_end : int
(** Sentinel ([max_int]) marking a still-open posting. *)

val make :
  doc:Txq_vxml.Eid.doc_id ->
  kind:Txq_vxml.Vnode.occurrence_kind ->
  path:Txq_vxml.Xidpath.t ->
  vstart:int ->
  t

val is_open : t -> bool
val valid_at : t -> int -> bool
(** Valid at the given version number. *)

val element_xid : t -> Txq_vxml.Xid.t option
(** The XID of the element the posting points into: last path component. *)

val compare_for_join : t -> t -> int
(** Orders by document then path then version start: the order the
    pattern-scan join consumes. *)

val compare_total : t -> t -> int
(** [compare_for_join] refined with the occurrence kind: a strict total
    order over any one word's postings (no two postings of a word compare
    equal), so sorting or merging by it is deterministic regardless of the
    history of freezes that produced the inputs. *)

val pp : Format.formatter -> t -> unit
