(* A frozen run of one word's postings: an immutable array sorted by
   Posting.compare_total, doc-partitioned by a fence so any one document's
   run is found by binary search over the distinct doc ids instead of a
   filter over the whole word.  The posting records themselves stay shared
   with the open-occurrence table, so a still-open posting frozen here is
   closed in place (vend is mutable); membership and order never change. *)

type t = {
  postings : Posting.t array;
  fence_docs : int array;  (* distinct doc ids, ascending *)
  fence_offs : int array;  (* start offset per doc; length fence_docs + 1 *)
}

let length t = Array.length t.postings
let postings t = t.postings
let doc_count t = Array.length t.fence_docs

let build_fence postings =
  let n = Array.length postings in
  let docs = ref [] and offs = ref [] in
  for i = n - 1 downto 0 do
    if i = 0 || postings.(i - 1).Posting.doc <> postings.(i).Posting.doc then begin
      docs := postings.(i).Posting.doc :: !docs;
      offs := i :: !offs
    end
  done;
  (Array.of_list !docs, Array.of_list (!offs @ [ n ]))

let of_sorted postings =
  let fence_docs, fence_offs = build_fence postings in
  { postings; fence_docs; fence_offs }

let of_unsorted postings =
  let postings = Array.copy postings in
  Array.sort Posting.compare_total postings;
  of_sorted postings

(* First fence index whose doc id is >= [doc]. *)
let fence_search t doc =
  let lo = ref 0 and hi = ref (Array.length t.fence_docs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.fence_docs.(mid) < doc then lo := mid + 1 else hi := mid
  done;
  !lo

let doc_bounds t ~doc =
  let i = fence_search t doc in
  if i < Array.length t.fence_docs && t.fence_docs.(i) = doc then
    (t.fence_offs.(i), t.fence_offs.(i + 1))
  else (0, 0)

let iter_doc t ~doc f =
  let start, stop = doc_bounds t ~doc in
  for i = start to stop - 1 do
    f t.postings.(i)
  done

(* K-way merge of sorted runs.  The fanout is small (the per-word segment
   stack is capped), so selecting the minimum head by a linear pass beats
   maintaining a heap.  Posting.compare_total is a strict total order over
   one word's postings, so the output is independent of the input order. *)
let merge segs =
  match segs with
  | [] -> of_sorted [||]
  | [ s ] -> s
  | segs ->
    let runs = Array.of_list (List.map (fun s -> s.postings) segs) in
    let k = Array.length runs in
    let pos = Array.make k 0 in
    let total = Array.fold_left (fun n r -> n + Array.length r) 0 runs in
    if total = 0 then of_sorted [||]
    else begin
    let first_run =
      let rec find i = if Array.length runs.(i) = 0 then find (i + 1) else i in
      find 0
    in
    let out = Array.make total runs.(first_run).(0) in
    for slot = 0 to total - 1 do
      let best = ref (-1) in
      for i = 0 to k - 1 do
        if pos.(i) < Array.length runs.(i) then
          let head = runs.(i).(pos.(i)) in
          if !best < 0
             || Posting.compare_total head runs.(!best).(pos.(!best)) < 0
          then best := i
      done;
      out.(slot) <- runs.(!best).(pos.(!best));
      pos.(!best) <- pos.(!best) + 1
    done;
    of_sorted out
    end

type stats = {
  st_postings : int;
  st_docs : int;
  st_bytes : int;
}

(* Rough in-memory footprint: per posting the record (5 fields + header)
   plus its path array, plus the array slots and the fences.  Word-sized
   units times 8; shared path arrays are counted once per posting, which
   over-counts sharing but tracks growth faithfully. *)
let approx_bytes t =
  let words =
    Array.fold_left
      (fun acc p -> acc + 7 + Array.length p.Posting.path + 2)
      0 t.postings
  in
  8
  * (words + Array.length t.postings + Array.length t.fence_docs
     + Array.length t.fence_offs + 6)

let stats t =
  { st_postings = length t; st_docs = doc_count t; st_bytes = approx_bytes t }
