(** Frozen posting segments of the temporal FTI.

    A segment is an immutable run of one word's postings sorted by
    {!Posting.compare_total} — (doc, path, vstart, kind) — with a fence over
    the distinct document ids, so a document's postings form a contiguous
    slice located by binary search over the fence (O(log d + k) instead of a
    filter over the whole word).  The posting {e records} remain shared with
    the mutable tail index: a posting frozen while open is later closed in
    place; only segment membership and order are immutable. *)

type t

val of_sorted : Posting.t array -> t
(** Takes ownership of the array, which must already be sorted by
    [Posting.compare_total]. *)

val of_unsorted : Posting.t array -> t
(** Copies and sorts. *)

val merge : t list -> t
(** K-way merge into a single segment.  Deterministic: the total order
    leaves no ties, so the result does not depend on the argument order or
    on which freeze produced which run. *)

val length : t -> int
val doc_count : t -> int
(** Number of distinct documents in the fence. *)

val postings : t -> Posting.t array
(** The backing array — callers must not mutate membership or order. *)

val doc_bounds : t -> doc:Txq_vxml.Eid.doc_id -> int * int
(** [\[start, stop)] slice of the document's postings ([0, 0] when the
    document has none). *)

val iter_doc : t -> doc:Txq_vxml.Eid.doc_id -> (Posting.t -> unit) -> unit

val approx_bytes : t -> int
(** Rough in-memory footprint, for the stats report. *)

type stats = {
  st_postings : int;
  st_docs : int;  (** distinct documents in the fence *)
  st_bytes : int;  (** {!approx_bytes} *)
}

val stats : t -> stats
(** The three size facts of one frozen run, in one read — what the cost
    model and the stats surfaces consume. *)
