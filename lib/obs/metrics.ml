let buckets = 64

type histo = {
  mutable count : int;
  mutable sum : float;
  bucket : int array;
}

type histogram = { h_count : int; h_sum : float; h_buckets : int array }

(* One lock serializes the registry: counters arrive from every domain
   (snapshot readers, Dpool metric folds, group-commit writers), and the
   find-or-add in [cell] plus the field bumps are not atomic.  The
   registry is far off any hot path — a contended bump is still one
   uncontended mutex in the common case. *)
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauge_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 16
let histo_tbl : (string, histo) Hashtbl.t = Hashtbl.create 16

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl name r;
    r

let incr ?(by = 1) name =
  locked @@ fun () ->
  let r = cell counter_tbl name in
  r := !r + by

let set_gauge name v = locked @@ fun () -> cell gauge_tbl name := v

let bucket_of v =
  if not (v >= 1.0) then 0 (* also catches nan *)
  else
    let i = 1 + int_of_float (Float.log2 v) in
    if i >= buckets then buckets - 1 else i

let bucket_lo i = if i <= 0 then 0.0 else Float.ldexp 1.0 (i - 1)

let observe name v =
  locked @@ fun () ->
  let h =
    match Hashtbl.find_opt histo_tbl name with
    | Some h -> h
    | None ->
      let h = { count = 0; sum = 0.0; bucket = Array.make buckets 0 } in
      Hashtbl.add histo_tbl name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  let i = bucket_of v in
  h.bucket.(i) <- h.bucket.(i) + 1

let counter_value name =
  locked @@ fun () -> Option.map ( ! ) (Hashtbl.find_opt counter_tbl name)

let gauge_value name =
  locked @@ fun () -> Option.map ( ! ) (Hashtbl.find_opt gauge_tbl name)

let snapshot h =
  { h_count = h.count; h_sum = h.sum; h_buckets = Array.copy h.bucket }

let histogram_value name =
  locked @@ fun () -> Option.map snapshot (Hashtbl.find_opt histo_tbl name)

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_locked () = sorted_bindings counter_tbl ( ! )
let gauges_locked () = sorted_bindings gauge_tbl ( ! )
let histograms_locked () = sorted_bindings histo_tbl snapshot
let counters () = locked counters_locked
let gauges () = locked gauges_locked
let histograms () = locked histograms_locked

let pp_dump ppf () =
  let cs, gs, hs =
    locked @@ fun () ->
    (counters_locked (), gauges_locked (), histograms_locked ())
  in
  let section title = Format.fprintf ppf "%s:@." title in
  if cs <> [] then begin
    section "counters";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-44s %d@." k v) cs
  end;
  if gs <> [] then begin
    section "gauges";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-44s %d@." k v) gs
  end;
  if hs <> [] then begin
    section "histograms";
    List.iter
      (fun (k, h) ->
        let mean = if h.h_count = 0 then 0.0 else h.h_sum /. float h.h_count in
        Format.fprintf ppf "  %-44s count=%d mean=%.1f@." k h.h_count mean;
        Array.iteri
          (fun i n ->
            if n > 0 then
              Format.fprintf ppf "    [>= %-9.5g] %d@." (bucket_lo i) n)
          h.h_buckets)
      hs
  end;
  if cs = [] && gs = [] && hs = [] then
    Format.fprintf ppf "(registry empty)@."

let reset () =
  locked @@ fun () ->
  Hashtbl.reset counter_tbl;
  Hashtbl.reset gauge_tbl;
  Hashtbl.reset histo_tbl
