(** Process-wide metrics registry: counters, gauges, and log2-bucketed
    histograms.  Always live (unlike tracing there is no enable switch):
    registration and update are cheap hashtable-plus-increment operations,
    so hot paths that want zero cost when tracing is off should guard on
    {!Trace.enabled} themselves.

    Naming convention: dotted lowercase paths, [subsystem.event], e.g.
    [db.recover.records_dropped], [span.scan.tpattern_scan_all]. *)

val incr : ?by:int -> string -> unit
(** Bump a counter, creating it at 0 on first use. *)

val set_gauge : string -> int -> unit
(** Set a gauge to an absolute value, creating it on first use. *)

val observe : string -> float -> unit
(** Record a sample (any unit; span latencies use microseconds) into a
    log2-bucketed histogram.  Bucket 0 holds samples < 1.0; bucket [i >= 1]
    holds samples in [[2^(i-1), 2^i)]; the last bucket absorbs overflow. *)

val bucket_of : float -> int
(** Bucket index [observe] files a sample under (exposed for tests). *)

val bucket_lo : int -> float
(** Inclusive lower bound of a bucket. *)

val buckets : int
(** Number of histogram buckets (64). *)

val counter_value : string -> int option
val gauge_value : string -> int option

type histogram = {
  h_count : int;
  h_sum : float;
  h_buckets : int array;  (** length [buckets] *)
}

val histogram_value : string -> histogram option
(** A copy of the histogram's current state. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val gauges : unit -> (string * int) list

val histograms : unit -> (string * histogram) list

val pp_dump : Format.formatter -> unit -> unit
(** Human-readable dump of the whole registry: counters, gauges, then
    histograms with count/mean and the non-empty buckets. *)

val reset : unit -> unit
(** Forget everything (tests and per-experiment scoping in the bench). *)
