type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  sp_name : string;
  mutable sp_start_ns : int64;
  mutable sp_dur_ns : int64;
  mutable sp_attrs : (string * attr) list;
  mutable sp_children : t list;
}

let make ?(attrs = []) name =
  {
    sp_name = name;
    sp_start_ns = Monotonic_clock.now ();
    sp_dur_ns = 0L;
    (* kept reversed while the span is open so prepends are O(1); Trace
       restores insertion order when it finishes the span *)
    sp_attrs = List.rev attrs;
    sp_children = [];
  }

let dur_us t = Int64.to_float t.sp_dur_ns /. 1e3

let attr t key =
  List.find_map
    (fun (k, v) -> if String.equal k key then Some v else None)
    t.sp_attrs

let int_attr t key =
  match attr t key with Some (Int n) -> Some n | _ -> None

let rec find t name =
  if String.equal t.sp_name name then Some t
  else List.find_map (fun c -> find c name) t.sp_children

let rec count t = List.fold_left (fun acc c -> acc + count c) 1 t.sp_children

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.sp_children

let sum_int_attrs trees =
  (* assoc list keeps first-seen order; attribute sets are tiny *)
  let totals = ref [] in
  let add key n =
    match List.assoc_opt key !totals with
    | Some r -> r := !r + n
    | None -> totals := !totals @ [ (key, ref n) ]
  in
  List.iter
    (fun tree ->
      fold
        (fun () sp ->
          List.iter
            (fun (k, v) -> match v with Int n -> add k n | _ -> ())
            sp.sp_attrs)
        () tree)
    trees;
  List.map (fun (k, r) -> (k, !r)) !totals

let pp_attr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let pp ppf t =
  let rec go indent sp =
    Format.fprintf ppf "%s%s %.1fus" indent sp.sp_name (dur_us sp);
    if sp.sp_attrs <> [] then begin
      Format.fprintf ppf " [";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.pp_print_char ppf ' ';
          Format.fprintf ppf "%s=%a" k pp_attr v)
        sp.sp_attrs;
      Format.fprintf ppf "]"
    end;
    List.iter
      (fun c ->
        Format.pp_print_newline ppf ();
        go (indent ^ "  ") c)
      sp.sp_children
  in
  go "" t

let to_string t = Format.asprintf "%a" pp t

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json t =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_char buf '"';
    json_escape buf s;
    Buffer.add_char buf '"'
  in
  let rec go sp =
    Buffer.add_string buf "{\"name\":";
    str sp.sp_name;
    Buffer.add_string buf (Printf.sprintf ",\"dur_us\":%.3f" (dur_us sp));
    if sp.sp_attrs <> [] then begin
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          str k;
          Buffer.add_char buf ':';
          match v with
          | Int n -> Buffer.add_string buf (string_of_int n)
          | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
          | Bool b -> Buffer.add_string buf (string_of_bool b)
          | Str s -> str s)
        sp.sp_attrs;
      Buffer.add_char buf '}'
    end;
    if sp.sp_children <> [] then begin
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          go c)
        sp.sp_children;
      Buffer.add_char buf ']'
    end;
    Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf
