(** Spans: named, nested, monotonic-clock-timed measurements with typed
    attributes.  A span tree describes one operator invocation: the root is
    the outermost traced call and children are the traced calls it made.

    Spans are produced by {!Trace.with_span}; this module is the passive
    data structure plus rendering. *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  sp_name : string;
  mutable sp_start_ns : int64;  (** monotonic clock at entry *)
  mutable sp_dur_ns : int64;  (** filled when the span finishes *)
  mutable sp_attrs : (string * attr) list;  (** insertion order *)
  mutable sp_children : t list;  (** chronological order once finished *)
}

val make : ?attrs:(string * attr) list -> string -> t
(** A fresh unfinished span stamped with the current monotonic clock. *)

val dur_us : t -> float
(** Wall time in microseconds. *)

val attr : t -> string -> attr option
(** First attribute with that key, if any. *)

val int_attr : t -> string -> int option
(** [attr] restricted to [Int] payloads. *)

val find : t -> string -> t option
(** Depth-first search (self included) for a span by name. *)

val count : t -> int
(** Number of spans in the tree, self included. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Depth-first, parent before children. *)

val sum_int_attrs : t list -> (string * int) list
(** Sum every [Int] attribute across all spans of the given trees,
    keyed by attribute name, in first-seen order. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering, one span per line:
    [name 12.3us \[k=v ...\]]. *)

val to_string : t -> string

val to_json : t -> string
(** Single-line JSON object: name, dur_us, attrs, children. *)
