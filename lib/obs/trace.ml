type sink = { on_root : Span.t -> unit }

let null_sink = { on_root = ignore }

let ring_sink ~capacity =
  let q : Span.t Queue.t = Queue.create () in
  let on_root sp =
    Queue.push sp q;
    if Queue.length q > capacity then ignore (Queue.pop q)
  in
  ({ on_root }, fun () -> List.of_seq (Queue.to_seq q))

let jsonl_sink oc =
  {
    on_root =
      (fun sp ->
        output_string oc (Span.to_json sp);
        output_char oc '\n');
  }

let state : sink option ref = ref None

(* Innermost open span first. *)
let stack : Span.t list ref = ref []

let set_sink s =
  state := s;
  stack := []

let enabled () = !state <> None

let finish sp =
  sp.Span.sp_dur_ns <- Int64.sub (Monotonic_clock.now ()) sp.Span.sp_start_ns;
  sp.Span.sp_attrs <- List.rev sp.Span.sp_attrs;
  sp.Span.sp_children <- List.rev sp.Span.sp_children;
  Metrics.observe ("span." ^ sp.Span.sp_name) (Span.dur_us sp);
  match !stack with
  | parent :: _ -> parent.Span.sp_children <- sp :: parent.Span.sp_children
  | [] -> ( match !state with Some s -> s.on_root sp | None -> ())

let with_span ?(attrs = []) name f =
  match !state with
  | None -> f ()
  | Some _ ->
    let sp = Span.make ~attrs name in
    stack := sp :: !stack;
    let pop () =
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ ->
        (* unbalanced (an escaping callee reset the sink mid-span):
           drop everything rather than misattribute children *)
        stack := []);
      finish sp
    in
    (match f () with
    | v ->
      pop ();
      v
    | exception e ->
      pop ();
      raise e)

let add_attr key v =
  match !stack with
  | [] -> ()
  | sp :: _ -> sp.Span.sp_attrs <- (key, v) :: sp.Span.sp_attrs

let add_count key n =
  match !stack with
  | [] -> ()
  | sp :: _ ->
    let rec bump = function
      | [] -> [ (key, Span.Int n) ]
      | (k, Span.Int m) :: rest when String.equal k key ->
        (k, Span.Int (m + n)) :: rest
      | a :: rest -> a :: bump rest
    in
    sp.Span.sp_attrs <- bump sp.Span.sp_attrs

let collect f =
  let saved_state = !state and saved_stack = !stack in
  let acc = ref [] in
  state := Some { on_root = (fun sp -> acc := sp :: !acc) };
  stack := [];
  let restore () =
    state := saved_state;
    stack := saved_stack
  in
  match f () with
  | v ->
    restore ();
    (v, List.rev !acc)
  | exception e ->
    restore ();
    raise e
