type sink = { on_root : Span.t -> unit }

let null_sink = { on_root = ignore }

(* Sinks receive root spans from whichever domain finished them; each
   stateful sink serializes its own state. *)
let ring_sink ~capacity =
  let m = Mutex.create () in
  let q : Span.t Queue.t = Queue.create () in
  let on_root sp =
    Mutex.lock m;
    Queue.push sp q;
    if Queue.length q > capacity then ignore (Queue.pop q);
    Mutex.unlock m
  in
  ( { on_root },
    fun () ->
      Mutex.lock m;
      let spans = List.of_seq (Queue.to_seq q) in
      Mutex.unlock m;
      spans )

let jsonl_sink oc =
  let m = Mutex.create () in
  {
    on_root =
      (fun sp ->
        Mutex.lock m;
        output_string oc (Span.to_json sp);
        output_char oc '\n';
        Mutex.unlock m);
  }

let state : sink option ref = ref None

(* Innermost open span first.  The stack is domain-local: concurrent
   snapshot readers each nest their own spans; a shared stack would
   attach one domain's children to another's parent. *)
let stack_key : Span.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let set_sink s =
  state := s;
  (stack ()) := []

let enabled () = !state <> None

let finish sp =
  sp.Span.sp_dur_ns <- Int64.sub (Monotonic_clock.now ()) sp.Span.sp_start_ns;
  sp.Span.sp_attrs <- List.rev sp.Span.sp_attrs;
  sp.Span.sp_children <- List.rev sp.Span.sp_children;
  Metrics.observe ("span." ^ sp.Span.sp_name) (Span.dur_us sp);
  match !(stack ()) with
  | parent :: _ -> parent.Span.sp_children <- sp :: parent.Span.sp_children
  | [] -> ( match !state with Some s -> s.on_root sp | None -> ())

let with_span ?(attrs = []) name f =
  match !state with
  | None -> f ()
  | Some _ ->
    let sp = Span.make ~attrs name in
    let stack = stack () in
    stack := sp :: !stack;
    let pop () =
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ ->
        (* unbalanced (an escaping callee reset the sink mid-span):
           drop everything rather than misattribute children *)
        stack := []);
      finish sp
    in
    (match f () with
    | v ->
      pop ();
      v
    | exception e ->
      pop ();
      raise e)

let add_attr key v =
  match !(stack ()) with
  | [] -> ()
  | sp :: _ -> sp.Span.sp_attrs <- (key, v) :: sp.Span.sp_attrs

let add_count key n =
  match !(stack ()) with
  | [] -> ()
  | sp :: _ ->
    let rec bump = function
      | [] -> [ (key, Span.Int n) ]
      | (k, Span.Int m) :: rest when String.equal k key ->
        (k, Span.Int (m + n)) :: rest
      | a :: rest -> a :: bump rest
    in
    sp.Span.sp_attrs <- bump sp.Span.sp_attrs

let collect f =
  let stack = stack () in
  let saved_state = !state and saved_stack = !stack in
  let acc = ref [] in
  let acc_m = Mutex.create () in
  state :=
    Some
      { on_root =
          (fun sp ->
            Mutex.lock acc_m;
            acc := sp :: !acc;
            Mutex.unlock acc_m);
      };
  stack := [];
  let restore () =
    state := saved_state;
    stack := saved_stack
  in
  match f () with
  | v ->
    restore ();
    (v, List.rev !acc)
  | exception e ->
    restore ();
    raise e
