(** Tracing entry points.  A single process-wide sink; when no sink is
    installed (the default) every tracing call short-circuits to a pointer
    compare, so instrumented hot paths cost nothing measurable.

    Spans nest dynamically: [with_span] pushes onto a stack, so traced
    callees become children of the innermost open span.  When a root span
    finishes it is handed to the sink and its latency is recorded in the
    metrics histogram [span.<name>] (microseconds). *)

type sink
(** Consumes finished root span trees. *)

val null_sink : sink
(** Accepts and discards spans.  Exercises the full span-building path —
    used by the bench overhead check and by [Config.tracing]. *)

val ring_sink : capacity:int -> sink * (unit -> Span.t list)
(** Keeps the last [capacity] root spans; the closure returns them oldest
    first.  For tests. *)

val jsonl_sink : out_channel -> sink
(** Writes each root span tree as one JSON line.  Does not close or flush
    the channel; callers owning the channel should flush when done. *)

val set_sink : sink option -> unit
(** Install ([Some]) or remove ([None]) the process sink.  Clears any
    open span stack. *)

val enabled : unit -> bool

val with_span : ?attrs:(string * Span.attr) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  No-op wrapper when tracing is disabled.
    Exceptions propagate; the span still finishes. *)

val add_attr : string -> Span.attr -> unit
(** Attach an attribute to the innermost open span (no-op outside a span
    or when disabled).  Duplicate keys are kept; readers see the first. *)

val add_count : string -> int -> unit
(** Add to an [Int] attribute of the innermost open span, creating it at
    the given value — the idiom for counters like [deltas_applied]. *)

val collect : (unit -> 'a) -> 'a * Span.t list
(** Run the thunk with a temporary collecting sink and return the root
    spans it produced, oldest first.  Works whether or not tracing was
    enabled before, and restores the previous sink after.  Basis of
    EXPLAIN ANALYZE. *)
