module Db = Txq_db.Db
module Config = Txq_db.Config
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Pattern = Txq_core.Pattern
module Lifetime = Txq_core.Lifetime
module Algebra = Txq_algebra.Algebra
module Relation = Txq_algebra.Relation
module Timeline = Txq_algebra.Timeline
module Trace = Txq_obs.Trace
module Span = Txq_obs.Span

type t = {
  stats : Stats.t;
  config : Config.t;
}

type mode = Current | At | Every

let create db = { stats = Stats.create db; config = Db.config db }
let stats t = t.stats

let mode_to_string = function
  | Current -> "current"
  | At -> "snapshot"
  | Every -> "history"

(* Delta-chain walks shorter than this beat a paged B+-tree descent:
   CreTime/DelTime read at most [cutoff] delta blobs, most of them
   already in the buffer pool for a chain this short (E6 measures the
   trade; the index only pays off once the walk is deeper than a
   handful of deltas). *)
let traverse_cutoff = 4

let test_of (p : Pattern.t) =
  match p.Pattern.test with
  | Pattern.Tag w -> (w, Vnode.Tag)
  | Pattern.Word w -> (w, Vnode.Word)

(* Cardinality of one word test under the operator's temporal mode.
   On a snapshot handle the shared index's open-posting counters are
   wrong for the pinned instant (a posting closed after the watermark is
   still open as of the pin), so [Current] falls back to history counts
   there — an upper bound, which keeps a zero a proof of emptiness. *)
let test_count t mode word kind =
  match mode with
  | Current when not (Db.is_snapshot (Stats.db t.stats)) ->
    Stats.word_open t.stats word kind
  | Current | Every -> fst (Stats.word_history t.stats word kind)
  | At ->
    let total, _route = Stats.word_history t.stats word kind in
    if total = 0 then 0
    else
      (* Postings valid at one instant: churning elements splinter their
         history into ~chain-depth postings (total / avg_chain of them
         valid at a time); stable elements coalesce into one posting
         spanning the whole history, so the still-open count is a floor
         the division misses.  Take the larger of the two regimes. *)
      let c = Stats.corpus t.stats in
      let churn =
        Stdlib.max 1 (int_of_float (float_of_int total /. Stats.avg_chain c))
      in
      let stable =
        if Db.is_snapshot (Stats.db t.stats) then 0
        else Stats.word_open t.stats word kind
      in
      Stdlib.max churn stable

let rec subtree_min t mode (p : Pattern.t) =
  let word, kind = test_of p in
  List.fold_left
    (fun m c -> Stdlib.min m (subtree_min t mode c))
    (test_count t mode word kind)
    p.Pattern.children

(* --- plan choices ------------------------------------------------------- *)

(* Join-leg ordering: within every pattern node, constrain by the most
   selective child subtree first.  Reordering children never changes the
   result — each child only intersects validities or multiplies output
   candidates, both order-insensitive and deduplicated afterwards — but
   it shrinks the row set before the expensive (high-cardinality)
   constrain passes run.  The sort is stable on the estimate, so equal
   (or unknown) estimates preserve the written order. *)
let rec order_pattern t mode (p : Pattern.t) =
  let children = List.map (order_pattern t mode) p.Pattern.children in
  let keyed =
    List.mapi (fun i c -> (subtree_min t mode c, i, c)) children
  in
  let sorted =
    List.sort
      (fun (ea, ia, _) (eb, ib, _) ->
        if ea <> eb then Stdlib.compare ea eb else Stdlib.compare ia ib)
      keyed
  in
  { p with Pattern.children = List.map (fun (_, _, c) -> c) sorted }

(* Doc lists longer than this aren't worth fencing per document — the
   corpus-wide counter is the honest estimate at that point. *)
let max_fence_docs = 32

(* Bindings are matches of the output node, so the row estimate is the
   min over the output node's subtree: its own cardinality, capped by any
   word test hanging under it.  A test above or beside the output bounds
   matching {e documents}, not bindings — one ancestor can hold many
   outputs — so outside tests contribute only their emptiness (any empty
   test anywhere empties the whole join). *)
let rec output_node (p : Pattern.t) =
  if p.Pattern.output then Some p
  else List.find_map output_node p.Pattern.children

let rec any_empty t mode (p : Pattern.t) =
  let word, kind = test_of p in
  test_count t mode word kind = 0
  || List.exists (any_empty t mode) p.Pattern.children

let est_scan t mode ?docs (pattern : Pattern.t) =
  let base =
    if any_empty t mode pattern then 0
    else
      subtree_min t mode
        (match output_node pattern with Some o -> o | None -> pattern)
  in
  match docs with
  | Some ds
    when base > 0 && ds <> []
         && List.compare_length_with ds max_fence_docs <= 0
         && Stats.has_a1 t.stats ->
    let out_word, out_kind =
      test_of (match output_node pattern with Some o -> o | None -> pattern)
    in
    let fenced =
      List.fold_left
        (fun n doc -> n + Stats.doc_word_history t.stats out_word out_kind doc)
        0 ds
    in
    Stdlib.min base fenced
  | _ -> base

(* A provably-empty scan may be skipped outright — but only when the A1
   index exists, because without it the scan itself would raise and the
   literal path's error must be preserved byte for byte. *)
let scan_skippable t ~est ~docs =
  Stats.has_a1 t.stats && (est = 0 || docs = Some [])

(* Domain fan-out from estimated rows: below the per-domain amortization
   floor a parallel scan only pays spawn cost, so plan it inline.  The
   floor reuses [dpool_min_docs] — the same knob that gates fan-out by
   candidate documents inside the pool — here applied earlier, to the
   estimate. *)
let scan_domains t ~est =
  if t.config.Config.domains <= 1 then None
  else if est <= Stdlib.max 1 t.config.Config.dpool_min_docs then Some 1
  else None

(* CreTime/DelTime strategy from estimated chain depth: a short chain is
   cheaper to walk than to look up.  On snapshots the choice is forced to
   the default ([None]): the shared CreTime index sees post-watermark
   deletions, and [Lifetime.default_strategy] already pins [`Traverse]
   there for correctness. *)
let lifetime_strategy t ~doc =
  let db = Stats.db t.stats in
  if Db.is_snapshot db then None
  else
    match Db.cretime db with
    | None -> Some `Traverse
    | Some _ ->
      if Stats.chain_len t.stats doc <= traverse_cutoff then Some `Traverse
      else Some `Index

(* --- algebra ------------------------------------------------------------ *)

let est_leaf t (l : Algebra.leaf) =
  match Algebra.leaf_pattern l with
  | Error _ -> 0
  | Ok pattern ->
    let docs = Algebra.leaf_doc_ids (Stats.db t.stats) l in
    est_scan t Every ~docs pattern

let rec est_algebra t (node : Algebra.t) =
  let c = Stats.corpus t.stats in
  let docs = Stdlib.max 1 c.Stats.docs_total in
  let sat a b =
    (* saturating product: estimates never overflow into negatives *)
    if a = 0 || b = 0 then 0
    else if a > max_int / 4 / b then max_int / 4
    else a * b
  in
  match node with
  | Algebra.Scan l -> est_leaf t l
  | Algebra.Set (Algebra.Union, a, b) -> est_algebra t a + est_algebra t b
  | Algebra.Set (Algebra.Intersect, a, b) ->
    Stdlib.min (est_algebra t a) (est_algebra t b)
  | Algebra.Set (Algebra.Except, a, _) -> est_algebra t a
  | Algebra.Joinop (kind, on, a, b) ->
    let ea = est_algebra t a and eb = est_algebra t b in
    let inner =
      match on with
      | Algebra.On_always -> sat ea eb
      | Algebra.On_doc | Algebra.On_ancestor -> Stdlib.max 1 (sat ea eb / docs)
    in
    (match kind with
     | Algebra.Join -> inner
     | Algebra.Left_join -> inner + ea
     | Algebra.Semi_join | Algebra.Anti_join -> ea)
  | Algebra.Group (Algebra.By_all, a) -> Stdlib.min (est_algebra t a) 8
  | Algebra.Group (Algebra.By_doc, a) ->
    Stdlib.min (est_algebra t a) (docs * 4)

(* Planner-aware algebra evaluation: same combiners, same spans and
   ["rows"] counters as [Algebra.eval] (plus ["est_rows"]), but binary
   nodes evaluate their cheaper-estimated input first and skip the other
   side entirely when the first is an annihilator.  Skipping is
   byte-identical: every combiner normalizes, empty relations are [[]],
   and [[]] annihilates Join/Semi-join/Intersect from either side and
   everything but Union from the left. *)
let eval_algebra t ?domains db tl node =
  let rec eval node =
    let traced f =
      if not (Trace.enabled ()) then f ()
      else
        Trace.with_span (Algebra.span_name node)
          ~attrs:[ ("node", Span.Str (Algebra.to_string node)) ]
          (fun () ->
            let rel = f () in
            Trace.add_count "est_rows" (est_algebra t node);
            Trace.add_count "rows" (Relation.cardinality rel);
            rel)
    in
    traced @@ fun () ->
    match node with
    | Algebra.Scan l ->
      if
        Stats.has_a1 t.stats
        && (est_leaf t l = 0 || Algebra.leaf_doc_ids db l = [])
      then []
      else Algebra.eval_leaf ?domains db tl l
    | Algebra.Set (op, a, b) -> (
      let a_first = est_algebra t a <= est_algebra t b in
      match (op, a_first) with
      | Algebra.Union, _ ->
        (* no annihilator: both sides always evaluate *)
        Algebra.eval_set op (eval a) (eval b)
      | (Algebra.Intersect | Algebra.Except), true ->
        let l = eval a in
        if l = [] then [] else Algebra.eval_set op l (eval b)
      | Algebra.Intersect, false ->
        let r = eval b in
        if r = [] then [] else Algebra.eval_set op (eval a) r
      | Algebra.Except, false -> Algebra.eval_set op (eval a) (eval b))
    | Algebra.Joinop (kind, on, a, b) -> (
      let right_arity = Algebra.arity b in
      let a_first = est_algebra t a <= est_algebra t b in
      if a_first then begin
        let l = eval a in
        if l = [] then []
        else Algebra.eval_join kind on l (eval b) ~right_arity
      end
      else begin
        let r = eval b in
        match kind with
        | (Algebra.Join | Algebra.Semi_join) when r = [] -> []
        | _ -> Algebra.eval_join kind on (eval a) r ~right_arity
      end)
    | Algebra.Group (key, a) -> Algebra.eval_group key (eval a)
  in
  eval node

(* --- plan description (EXPLAIN) ----------------------------------------- *)

let describe_scan t mode ?docs pattern =
  let est = est_scan t mode ?docs pattern in
  let tests =
    let rec collect p acc =
      let k = test_of p in
      let acc = if List.mem k acc then acc else k :: acc in
      List.fold_left (fun acc c -> collect c acc) acc p.Pattern.children
    in
    List.rev (collect pattern [])
  in
  let leg (word, kind) =
    let n, route =
      match mode with
      | Current when not (Db.is_snapshot (Stats.db t.stats)) ->
        (Stats.word_open t.stats word kind, Stats.A1)
      | _ -> Stats.word_history t.stats word kind
    in
    Printf.sprintf "%s%s=%d[%s]"
      (match kind with Vnode.Tag -> "" | Vnode.Word -> "~")
      word n
      (Stats.route_to_string route)
  in
  let domains =
    match scan_domains t ~est with
    | Some n -> string_of_int n
    | None -> string_of_int t.config.Config.domains
  in
  Printf.sprintf "~%d row(s) over %s counts (%s); domains=%s" est
    (mode_to_string mode)
    (String.concat " " (List.map leg tests))
    domains
