(** Cost-based plan choices from live index statistics.

    A planner handle costs candidate physical plans with {!Stats} numbers
    and rewrites executable plans where the rewrite is provably
    output-preserving:

    - {b join-leg order}: pattern-node children (the word conjuncts of a
      multiway containment join) sort by ascending estimated selectivity
      ({!order_pattern}); algebra operators evaluate their
      cheaper-estimated input first with byte-safe annihilation
      short-circuits ({!eval_algebra});
    - {b lifetime strategy}: CreTime/DelTime walk the delta chain when the
      estimated chain is shallow, descend the index when deep
      ({!lifetime_strategy});
    - {b index route}: each word predicate is costed through both
      maintained indexes (A1 version-content vs A2 delta entries) and the
      tighter one's count drives the plan ({!Stats.word_history});
    - {b domain fan-out}: scans estimated below the per-domain
      amortization floor are planned single-domain ({!scan_domains}).

    Every choice degrades to the literal plan when the statistics cannot
    bound it; planner-on and planner-off evaluation are byte-identical by
    construction (and differentially tested). *)

type t

val create : Txq_db.Db.t -> t
(** One planner per query execution; statistics memoize inside it. *)

val stats : t -> Stats.t

type mode = Current | At | Every
(** Temporal mode of the operator being costed: current-version scan,
    scan as of one instant, or whole-history scan. *)

val traverse_cutoff : int
(** Chain depth at or below which CreTime/DelTime walk deltas instead of
    descending the time index. *)

val order_pattern : t -> mode -> Txq_core.Pattern.t -> Txq_core.Pattern.t
(** Reorders every pattern node's children by ascending estimated
    subtree selectivity (stable: ties keep the written order).  The
    scan's result — rows, order, validities — is unchanged; only the
    constrain-pass order (and so its cost) moves. *)

val est_scan : t -> mode -> ?docs:Txq_vxml.Eid.doc_id list ->
  Txq_core.Pattern.t -> int
(** Estimated result rows of a pattern scan: minimum cardinality over
    the pattern's word tests under [mode], refined through per-document
    segment fences when the candidate [docs] list is small. *)

val scan_skippable : t -> est:int -> docs:Txq_vxml.Eid.doc_id list option ->
  bool
(** The scan is provably empty {e and} skipping it cannot mask an error
    the literal path would raise (requires the A1 index). *)

val scan_domains : t -> est:int -> int option
(** [Some 1] to force an inline scan when the estimate is below the
    fan-out floor; [None] to leave the configured fan-out in force. *)

val lifetime_strategy : t -> doc:Txq_vxml.Eid.doc_id ->
  Txq_core.Lifetime.strategy option
(** Per-document CreTime/DelTime strategy from estimated chain depth;
    [None] (use the default) on snapshot handles, where [`Traverse] is
    forced for correctness. *)

val est_leaf : t -> Txq_algebra.Algebra.leaf -> int

val est_algebra : t -> Txq_algebra.Algebra.t -> int
(** Estimated rows of an algebra node, composed bottom-up from leaf
    estimates with standard cardinality arithmetic. *)

val eval_algebra : t -> ?domains:int -> Txq_db.Db.t ->
  Txq_algebra.Timeline.t -> Txq_algebra.Algebra.t -> Txq_algebra.Relation.t
(** Planner-driven algebra evaluation: the same combiners, spans and
    ["rows"] counters as {!Txq_algebra.Algebra.eval} (plus an
    ["est_rows"] counter per node), with the cheaper-estimated input of
    each binary node evaluated first and annihilator short-circuits that
    are byte-identical to full evaluation. *)

val mode_to_string : mode -> string

val describe_scan : t -> mode -> ?docs:Txq_vxml.Eid.doc_id list ->
  Txq_core.Pattern.t -> string
(** One EXPLAIN line: estimated rows, per-test cardinalities with their
    index route, and the planned domain fan-out. *)
