module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Config = Txq_db.Config
module Fti = Txq_fti.Fti
module Delta_fti = Txq_fti.Delta_fti
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid

(* Every number here is read off a structure the engine already maintains:
   per-word posting counters from the two-tier FTI, change-entry buckets
   from the delta index, chain bounds from the docstore, the commit
   watermark from the Db accounting record.  Nothing scans a posting list
   or reconstructs a version.  Lookups are memoized per handle — one
   handle lives for one query, so the statistics are a consistent-enough
   snapshot for costing (estimates, never answers). *)

type corpus = {
  docs_total : int;
  docs_live : int;
  versions : int;
  max_chain : int;
  watermark : int;
}

type route = A1 | A2

let route_to_string = function A1 -> "A1" | A2 -> "A2"

(* "No index can bound this": estimates saturate instead of lying. *)
let unknown = max_int / 4

type t = {
  db : Db.t;
  has_a1 : bool;
  has_a2 : bool;
  mutable corpus_memo : corpus option;
  word_memo : (string * Vnode.occurrence_kind, int * int) Hashtbl.t;
      (* (history postings, open postings) from the A1 counters *)
  delta_memo : (string, int) Hashtbl.t; (* change entries from A2 *)
}

let create db =
  let config = Db.config db in
  {
    db;
    has_a1 = Config.maintains_version_index config;
    has_a2 = Config.maintains_delta_index config;
    corpus_memo = None;
    word_memo = Hashtbl.create 16;
    delta_memo = Hashtbl.create 16;
  }

let db t = t.db
let has_a1 t = t.has_a1
let has_a2 t = t.has_a2

let chain_len_of d = Docstore.version_count d - Docstore.first_version d

let corpus t =
  match t.corpus_memo with
  | Some c -> c
  | None ->
    let docs_total = ref 0
    and docs_live = ref 0
    and versions = ref 0
    and max_chain = ref 0 in
    List.iter
      (fun id ->
        match Db.doc_opt t.db id with
        | None -> ()
        | Some d ->
          incr docs_total;
          if Docstore.is_alive d then incr docs_live;
          let chain = chain_len_of d in
          versions := !versions + chain;
          if chain > !max_chain then max_chain := chain)
      (Db.doc_ids t.db);
    let c =
      {
        docs_total = !docs_total;
        docs_live = !docs_live;
        versions = !versions;
        max_chain = !max_chain;
        watermark = (Db.stats t.db).Db.commits;
      }
    in
    t.corpus_memo <- Some c;
    c

let avg_chain c =
  if c.docs_total = 0 then 1.0
  else Stdlib.max 1.0 (float_of_int c.versions /. float_of_int c.docs_total)

let chain_len t doc =
  match Db.doc_opt t.db doc with None -> 0 | Some d -> chain_len_of d

(* A1 per-word counters, under the read lock (the tail is writer-mutated). *)
let a1_counts t word kind =
  match Hashtbl.find_opt t.word_memo (word, kind) with
  | Some c -> c
  | None ->
    let c =
      if not t.has_a1 then (unknown, unknown)
      else
        Db.with_read t.db (fun () ->
            let fti = Db.fti t.db in
            ( Fti.word_postings fti word ~kind,
              Fti.word_open_postings fti word ~kind ))
    in
    Hashtbl.replace t.word_memo (word, kind) c;
    c

let a2_count t word =
  match Hashtbl.find_opt t.delta_memo word with
  | Some n -> n
  | None ->
    let n =
      if not t.has_a2 then unknown
      else
        Db.with_read t.db (fun () ->
            Delta_fti.word_entry_count (Db.delta_fti t.db) word)
    in
    Hashtbl.replace t.delta_memo word n;
    n

(* History cardinality of a word test, through whichever index bounds it
   tighter.  Both indexes see the same tokenizer, so a zero from either
   is a proof the word never occurred in any retained version. *)
let word_history t word kind =
  let a1, _ = a1_counts t word kind in
  let a2 = a2_count t word in
  if a1 <= a2 then (a1, A1) else (a2, A2)

let word_open t word kind = snd (a1_counts t word kind)

let doc_word_history t word kind doc =
  if not t.has_a1 then unknown
  else
    Db.with_read t.db (fun () ->
        Fti.doc_word_postings (Db.fti t.db) word ~kind ~doc)
