(** Live cardinality statistics for the cost-based planner.

    The engine's own structures already know the numbers a planner needs:
    the two-tier FTI maintains O(1) per-word posting counters (split by
    occurrence kind, total and still-open), frozen segments carry
    per-document fences, the delta index buckets change entries per word,
    the docstore knows each chain's retained depth, and [Db] counts
    commits.  A [Stats.t] is a cheap memoizing view over all of them —
    {e no extra scans}: nothing here walks a posting list or reconstructs
    a version.

    One handle is created per query; its memo tables make repeated
    costing of the same words free and pin a consistent view for the
    duration of planning. *)

type t

val create : Txq_db.Db.t -> t
val db : t -> Txq_db.Db.t

val has_a1 : t -> bool
(** The configuration maintains the version-content index (A1). *)

val has_a2 : t -> bool
(** The configuration maintains the delta-operation index (A2). *)

type corpus = {
  docs_total : int;  (** incarnations known to the store *)
  docs_live : int;
  versions : int;  (** retained versions, across all incarnations *)
  max_chain : int;  (** deepest retained chain *)
  watermark : int;  (** commit watermark ([Db.stats.commits]) *)
}

val corpus : t -> corpus
(** One O(documents) sweep over the docstore directory, computed on first
    demand and memoized. *)

val avg_chain : corpus -> float
(** Mean retained chain depth (at least 1.0). *)

val chain_len : t -> Txq_vxml.Eid.doc_id -> int
(** Retained delta-chain length of one document
    ([version_count - first_version]); 0 for an unknown document. *)

type route = A1 | A2
(** Which index a cardinality came from — the per-predicate index choice
    of Section 7.2's alternatives, decided by cost instead of by fiat. *)

val route_to_string : route -> string

val word_history : t -> string -> Txq_vxml.Vnode.occurrence_kind -> int * route
(** Whole-history cardinality of a word test through whichever
    maintained index bounds it tighter: A1 posting counters vs A2
    change-entry counts.  Both indexes share one tokenizer, so a zero
    from either proves the word never occurred in a retained version.
    Saturates (rather than returning 0) when neither index exists. *)

val word_open : t -> string -> Txq_vxml.Vnode.occurrence_kind -> int
(** Current-version cardinality: the A1 open-posting counter.
    Saturates when A1 is not maintained. *)

val doc_word_history :
  t -> string -> Txq_vxml.Vnode.occurrence_kind -> Txq_vxml.Eid.doc_id -> int
(** Per-document refinement through the frozen segments' fences
    (O(log d + slice) plus the bounded tail). *)
