module Timestamp = Txq_temporal.Timestamp
module Duration = Txq_temporal.Duration

type time_expr =
  | T_literal of Timestamp.t
  | T_now
  | T_plus of time_expr * Duration.t
  | T_minus of time_expr * Duration.t

type time_spec =
  | Current
  | At of time_expr
  | Every

type source_kind =
  | Doc
  | Collection

type source = {
  src_kind : source_kind;
  src_url : string;
  src_time : time_spec;
  src_path : Txq_xml.Path.t;
  src_var : string;
}

type expr =
  | E_var of string
  | E_path of string * Txq_xml.Path.t
  | E_string of string
  | E_number of float
  | E_time_lit of time_expr
  | E_time of string
  | E_create_time of string
  | E_delete_time of string
  | E_previous of string
  | E_next of string
  | E_current of string
  | E_diff of expr * expr
  | E_count of expr
  | E_sum of expr
  | E_avg of expr
  | E_apply_path of expr * Txq_xml.Path.t

type ordered =
  | O_eq
  | O_neq
  | O_lt
  | O_le
  | O_gt
  | O_ge

type cmp =
  | Ordered of ordered
  | Identity
  | Similar
  | Contains

type cond =
  | C_cmp of expr * cmp * expr
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

type query = {
  distinct : bool;
  select : expr list;
  from : source list;
  where : cond option;
}

let rec is_aggregate = function
  | E_count _ | E_sum _ | E_avg _ -> true
  | E_apply_path (e, _) -> is_aggregate e
  | E_var _ | E_path _ | E_string _ | E_number _ | E_time_lit _ | E_time _
  | E_create_time _ | E_delete_time _ | E_previous _ | E_next _ | E_current _
  | E_diff _ -> false

let has_aggregates q = List.exists is_aggregate q.select

let rec resolve_time ~now = function
  | T_literal ts -> ts
  | T_now -> now
  | T_plus (e, d) -> Timestamp.add (resolve_time ~now e) d
  | T_minus (e, d) -> Timestamp.sub (resolve_time ~now e) d

let rec time_expr_to_string = function
  | T_literal ts -> Timestamp.to_string ts
  | T_now -> "NOW"
  | T_plus (e, d) ->
    Printf.sprintf "%s + %s" (time_expr_to_string e) (Duration.to_string d)
  | T_minus (e, d) ->
    Printf.sprintf "%s - %s" (time_expr_to_string e) (Duration.to_string d)

let path_to_string p = Txq_xml.Path.to_string p

let rec expr_to_string = function
  | E_var v -> v
  | E_path (v, p) -> v ^ path_to_string p
  | E_string s -> Printf.sprintf "%S" s
  | E_number f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | E_time_lit t -> time_expr_to_string t
  | E_time v -> Printf.sprintf "TIME(%s)" v
  | E_create_time v -> Printf.sprintf "CREATE TIME(%s)" v
  | E_delete_time v -> Printf.sprintf "DELETE TIME(%s)" v
  | E_previous v -> Printf.sprintf "PREVIOUS(%s)" v
  | E_next v -> Printf.sprintf "NEXT(%s)" v
  | E_current v -> Printf.sprintf "CURRENT(%s)" v
  | E_diff (a, b) ->
    Printf.sprintf "DIFF(%s,%s)" (expr_to_string a) (expr_to_string b)
  | E_count e -> Printf.sprintf "COUNT(%s)" (expr_to_string e)
  | E_sum e -> Printf.sprintf "SUM(%s)" (expr_to_string e)
  | E_avg e -> Printf.sprintf "AVG(%s)" (expr_to_string e)
  | E_apply_path (e, p) -> expr_to_string e ^ path_to_string p

let ordered_holds op c =
  match op with
  | O_eq -> c = 0
  | O_neq -> c <> 0
  | O_lt -> c < 0
  | O_le -> c <= 0
  | O_gt -> c > 0
  | O_ge -> c >= 0

let ordered_to_string = function
  | O_eq -> "="
  | O_neq -> "!="
  | O_lt -> "<"
  | O_le -> "<="
  | O_gt -> ">"
  | O_ge -> ">="

let cmp_to_string = function
  | Ordered op -> ordered_to_string op
  | Identity -> "=="
  | Similar -> "~"
  | Contains -> "CONTAINS"

let rec cond_to_string = function
  | C_cmp (a, op, b) ->
    Printf.sprintf "%s %s %s" (expr_to_string a) (cmp_to_string op)
      (expr_to_string b)
  | C_and (a, b) ->
    Printf.sprintf "(%s AND %s)" (cond_to_string a) (cond_to_string b)
  | C_or (a, b) ->
    Printf.sprintf "(%s OR %s)" (cond_to_string a) (cond_to_string b)
  | C_not c -> Printf.sprintf "NOT (%s)" (cond_to_string c)

let source_to_string s =
  let time =
    match s.src_time with
    | Current -> ""
    | Every -> "[EVERY]"
    | At t -> Printf.sprintf "[%s]" (time_expr_to_string t)
  in
  let kind =
    match s.src_kind with
    | Doc -> "doc"
    | Collection -> "collection"
  in
  Printf.sprintf "%s(%S)%s%s %s" kind s.src_url time (path_to_string s.src_path)
    s.src_var

let to_string q =
  Printf.sprintf "SELECT %s%s FROM %s%s"
    (if q.distinct then "DISTINCT " else "")
    (String.concat ", " (List.map expr_to_string q.select))
    (String.concat ", " (List.map source_to_string q.from))
    (match q.where with
     | None -> ""
     | Some c -> " WHERE " ^ cond_to_string c)

type statement =
  | S_query of query
  | S_algebra of Txq_algebra.Algebra.t

let statement_to_string = function
  | S_query q -> to_string q
  | S_algebra a -> Txq_algebra.Algebra.to_string a
