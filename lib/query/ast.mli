(** Abstract syntax of the temporal XML query language.

    The concrete language follows the paper's examples (Section 5): a
    SELECT/FROM/WHERE skeleton in the style of Lorel and the Xyleme query
    language, paths from XPath, plus the temporal constructs — a timestamp
    or [EVERY] qualifier on the [doc(…)] source, [TIME]/[CREATE TIME]/
    [DELETE TIME], [PREVIOUS]/[NEXT]/[CURRENT], [DIFF], and relative time
    arithmetic such as [NOW - 14 DAYS]. *)

type time_expr =
  | T_literal of Txq_temporal.Timestamp.t
  | T_now
  | T_plus of time_expr * Txq_temporal.Duration.t
  | T_minus of time_expr * Txq_temporal.Duration.t

type time_spec =
  | Current  (** no qualifier: the current snapshot *)
  | At of time_expr  (** [doc("…")\[26/01/2001\]] *)
  | Every  (** [doc("…")\[EVERY\]] — all versions *)

type source_kind =
  | Doc  (** [doc("url")] — one URL *)
  | Collection
      (** [collection("glob")] — every URL matching the glob ([*] matches
          any substring); the XML-warehouse query shape, where a scan spans
          the whole crawled collection *)

type source = {
  src_kind : source_kind;
  src_url : string;  (** URL, or glob under [Collection] *)
  src_time : time_spec;
  src_path : Txq_xml.Path.t;  (** steps binding the variable *)
  src_var : string;
}

type expr =
  | E_var of string
  | E_path of string * Txq_xml.Path.t  (** [R/price] *)
  | E_string of string
  | E_number of float
  | E_time_lit of time_expr
  | E_time of string  (** [TIME(R)] *)
  | E_create_time of string
  | E_delete_time of string
  | E_previous of string
  | E_next of string
  | E_current of string
  | E_diff of expr * expr
  | E_count of expr
  | E_sum of expr
  | E_avg of expr
  | E_apply_path of expr * Txq_xml.Path.t
      (** postfix path on a node-valued expression, e.g.
          [CURRENT(R)/name] *)

(** Comparisons that reduce to a three-way [compare] on atom values.
    Keeping them in their own type makes the evaluators' dispatch total:
    the structural operators ([==], [~], [CONTAINS]) can never reach an
    ordered-only code path. *)
type ordered =
  | O_eq  (** [=] — content equality *)
  | O_neq
  | O_lt
  | O_le
  | O_gt
  | O_ge

type cmp =
  | Ordered of ordered
  | Identity  (** [==] — EID identity (Section 7.4) *)
  | Similar  (** [~] — similarity *)
  | Contains

type cond =
  | C_cmp of expr * cmp * expr
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

type query = {
  distinct : bool;
  select : expr list;
  from : source list;
  where : cond option;
}

val is_aggregate : expr -> bool
val has_aggregates : query -> bool

val resolve_time :
  now:Txq_temporal.Timestamp.t -> time_expr -> Txq_temporal.Timestamp.t

val ordered_holds : ordered -> int -> bool
(** [ordered_holds op c] interprets a [compare]-style result [c] under
    [op] — the single shared dispatch for every evaluator. *)

type statement =
  | S_query of query  (** a [SELECT …] query *)
  | S_algebra of Txq_algebra.Algebra.t
      (** a temporal-algebra expression over version sets, e.g.
          [doc("a")//name EXCEPT doc("b")//name] *)

val statement_to_string : statement -> string

val expr_to_string : expr -> string
val ordered_to_string : ordered -> string
val cmp_to_string : cmp -> string
val to_string : query -> string
