module Xml = Txq_xml.Xml
module Path = Txq_xml.Path
module Print = Txq_xml.Print
module Vnode = Txq_vxml.Vnode
module Eid = Txq_vxml.Eid
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Config = Txq_db.Config
module Planner = Txq_planner.Planner
module Scan = Txq_core.Scan
module Pattern = Txq_core.Pattern
module History = Txq_core.History
module Lifetime = Txq_core.Lifetime
module Nav = Txq_core.Nav
module Diff_op = Txq_core.Diff_op
module Equality = Txq_core.Equality
module Glob = Txq_core.Glob
module Algebra = Txq_algebra.Algebra
module Timeline = Txq_algebra.Timeline
module Relation = Txq_algebra.Relation
module Trace = Txq_obs.Trace
module Span = Txq_obs.Span

type error =
  | Parse_error of string
  | Unknown_variable of string
  | Unsupported of string
  | Internal of string

let error_to_string = function
  | Parse_error e -> "parse error: " ^ e
  | Unknown_variable v -> "unknown variable: " ^ v
  | Unsupported msg -> "unsupported: " ^ msg
  | Internal msg -> "internal error: " ^ msg

exception Fail of error

let unsupported fmt = Printf.ksprintf (fun s -> raise (Fail (Unsupported s))) fmt

(* Once statements arrive from untrusted clients, no input may tear the
   process down: anything the evaluator leaks beyond its own typed [Fail]
   — including [Stack_overflow] from adversarially deep input — becomes a
   typed [Internal] error at every entry point below. *)
let guard f =
  try f () with
  | Fail e -> Error e
  | Stack_overflow -> Error (Internal "stack overflow during evaluation")
  | Out_of_memory -> Error (Internal "out of memory during evaluation")
  | exn -> Error (Internal (Printexc.to_string exn))

(* --- query context ------------------------------------------------------ *)

(* A query evaluates against one NOW and reconstructs each (document,
   version) at most once, whatever the number of bindings into it — the
   per-query memo is the first of the paper's "techniques that can reduce
   the number of delta versions that have to be retrieved" (Section 8). *)
type ctx = {
  db : Db.t;
  now : Timestamp.t;
  memo : (Eid.doc_id * int, Vnode.t) Hashtbl.t;
  plan : Planner.t option;
      (* cost-based plan choices; [None] runs every operator literally
         as written (the differential oracle for the planner) *)
}

let planner_on db = (Db.config db).Config.planner

let make_ctx db =
  {
    db;
    now = Db.now db;
    memo = Hashtbl.create 32;
    plan = (if planner_on db then Some (Planner.create db) else None);
  }

let version_tree ctx doc v =
  match Hashtbl.find_opt ctx.memo (doc, v) with
  | Some tree -> tree
  | None ->
    let tree = Db.reconstruct ctx.db doc v in
    Hashtbl.replace ctx.memo (doc, v) tree;
    tree

let subtree_at ctx (teid : Eid.Temporal.t) =
  let doc = teid.Eid.Temporal.eid.Eid.doc in
  match Db.version_at ctx.db doc teid.Eid.Temporal.ts with
  | None -> None
  | Some v -> Vnode.find (version_tree ctx doc v) teid.Eid.Temporal.eid.Eid.xid

(* --- row model ---------------------------------------------------------- *)

type row_binding = {
  rb_teid : Eid.Temporal.t;
  rb_time : Timestamp.t;  (* timestamp of the bound version (TIME(R)) *)
  rb_tree : Vnode.t Lazy.t;  (* the element's subtree at that time *)
}

type row = (string * row_binding) list

let binding row v =
  match List.assoc_opt v row with
  | Some rb -> rb
  | None -> raise (Fail (Unknown_variable v))

let lazy_subtree ctx teid =
  lazy
    (match subtree_at ctx teid with
     | Some t -> t
     | None -> unsupported "binding vanished: %s" (Eid.Temporal.to_string teid))

(* CreTime/DelTime strategy for one bound element, from its document's
   estimated chain depth; [None] (the literal default) with the planner
   off. *)
let lifetime_strategy ctx rb =
  match ctx.plan with
  | None -> None
  | Some p -> Planner.lifetime_strategy p ~doc:rb.rb_teid.Eid.Temporal.eid.Eid.doc

(* --- path selection over vnodes ------------------------------------------ *)

let vname_matches name node =
  match Vnode.tag node with
  | Some t -> String.equal name "*" || String.equal t name
  | None -> false

let rec vdescendants_or_self node =
  node :: List.concat_map vdescendants_or_self (Vnode.children node)

let vselect path root =
  let step cands { Path.axis; name } =
    match axis with
    | Path.Child ->
      List.concat_map
        (fun n -> List.filter (vname_matches name) (Vnode.children n))
        cands
    | Path.Descendant ->
      List.concat_map
        (fun n ->
          List.filter (vname_matches name)
            (List.concat_map vdescendants_or_self (Vnode.children n)))
        cands
  in
  List.fold_left step [root] path

(* --- values --------------------------------------------------------------- *)

type value =
  | V_null
  | V_string of string
  | V_number of float
  | V_time of Timestamp.t
  | V_binding of row_binding
  | V_nodes of Eid.doc_id * Vnode.t list  (* doc of the nodes' owner *)
  | V_xml of Xml.t

let rec eval_expr ctx row (expr : Ast.expr) : value =
  match expr with
  | Ast.E_string s -> V_string s
  | Ast.E_number f -> V_number f
  | Ast.E_time_lit t -> V_time (Ast.resolve_time ~now:ctx.now t)
  | Ast.E_var v -> V_binding (binding row v)
  | Ast.E_path (v, path) ->
    let rb = binding row v in
    V_nodes
      (rb.rb_teid.Eid.Temporal.eid.Eid.doc, vselect path (Lazy.force rb.rb_tree))
  | Ast.E_time v -> V_time (binding row v).rb_time
  | Ast.E_create_time v -> (
    let rb = binding row v in
    match Lifetime.cre_time ctx.db ?strategy:(lifetime_strategy ctx rb) rb.rb_teid with
    | Some ts -> V_time ts
    | None -> V_null)
  | Ast.E_delete_time v -> (
    let rb = binding row v in
    match Lifetime.del_time ctx.db ?strategy:(lifetime_strategy ctx rb) rb.rb_teid with
    | Some ts -> V_time ts
    | None -> V_null)
  | Ast.E_previous v -> nav_binding ctx (binding row v) Nav.previous
  | Ast.E_next v -> nav_binding ctx (binding row v) Nav.next
  | Ast.E_current v ->
    let rb = binding row v in
    (match Nav.current ctx.db rb.rb_teid.Eid.Temporal.eid with
     | Some teid -> teid_binding ctx teid
     | None -> V_null)
  | Ast.E_diff (a, b) -> (
    let tree_of = function
      | V_binding rb -> Some (Lazy.force rb.rb_tree)
      | V_nodes (_, [n]) -> Some n
      | _ -> None
    in
    match (tree_of (eval_expr ctx row a), tree_of (eval_expr ctx row b)) with
    | Some ta, Some tb -> V_xml (Diff_op.diff_trees ta tb)
    | _ -> V_null)
  | Ast.E_apply_path (e, path) -> (
    match eval_expr ctx row e with
    | V_binding rb ->
      V_nodes
        (rb.rb_teid.Eid.Temporal.eid.Eid.doc, vselect path (Lazy.force rb.rb_tree))
    | V_nodes (doc, nodes) -> V_nodes (doc, List.concat_map (vselect path) nodes)
    | V_xml xml ->
      let v = Vnode.of_xml (Txq_vxml.Xid.Gen.create ()) xml in
      V_nodes (-1, vselect path v)
    | V_null -> V_null
    | V_string _ | V_number _ | V_time _ ->
      unsupported "path applied to a non-node value")
  | Ast.E_count _ | Ast.E_sum _ | Ast.E_avg _ ->
    unsupported "aggregate in a non-aggregate position"

and nav_binding ctx rb nav =
  match nav ctx.db rb.rb_teid with
  | Some teid -> teid_binding ctx teid
  | None -> V_null

and teid_binding ctx teid =
  V_binding
    {
      rb_teid = teid;
      rb_time = teid.Eid.Temporal.ts;
      rb_tree = lazy_subtree ctx teid;
    }

(* --- comparisons ------------------------------------------------------------ *)

type atom =
  | A_string of string
  | A_number of float
  | A_time of Timestamp.t
  | A_node of Eid.doc_id option * Vnode.t

let atoms = function
  | V_null -> []
  | V_string s -> [A_string s]
  | V_number f -> [A_number f]
  | V_time t -> [A_time t]
  | V_binding rb ->
    [A_node (Some rb.rb_teid.Eid.Temporal.eid.Eid.doc, Lazy.force rb.rb_tree)]
  | V_nodes (doc, nodes) -> List.map (fun n -> A_node (Some doc, n)) nodes
  | V_xml xml -> [A_node (None, Vnode.of_xml (Txq_vxml.Xid.Gen.create ()) xml)]

let atom_text = function
  | A_string s -> s
  | A_number f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | A_time t -> Timestamp.to_string t
  | A_node (_, n) -> Vnode.text_content n

let atom_number = function
  | A_number f -> Some f
  | A_string s -> float_of_string_opt (String.trim s)
  | A_node (_, n) -> float_of_string_opt (String.trim (Vnode.text_content n))
  | A_time _ -> None

let compare_atoms op a b =
  (* ordered operators over atom values: times compare as times, then
     numerically when both sides parse, then as text *)
  let by_value op =
    match (a, b) with
    | A_time t1, A_time t2 -> Ast.ordered_holds op (Timestamp.compare t1 t2)
    | _ -> (
      match (atom_number a, atom_number b) with
      | Some x, Some y -> Ast.ordered_holds op (Float.compare x y)
      | _ -> Ast.ordered_holds op (String.compare (atom_text a) (atom_text b)))
  in
  match op with
  | Ast.Identity -> (
    (* node identity: persistent EIDs (Section 7.4) *)
    match (a, b) with
    | A_node (Some d1, n1), A_node (Some d2, n2) ->
      d1 = d2 && Txq_vxml.Xid.equal (Vnode.xid n1) (Vnode.xid n2)
    | _ -> false)
  | Ast.Similar -> (
    match (a, b) with
    | A_node (_, n1), A_node (_, n2) -> Equality.similar n1 n2
    | _ -> String.equal (atom_text a) (atom_text b))
  | Ast.Contains ->
    let hay = atom_text a and needle = atom_text b in
    let hl = String.length hay and nl = String.length needle in
    nl = 0
    || (hl >= nl
        && Seq.exists
             (fun i -> String.equal (String.sub hay i nl) needle)
             (Seq.init (hl - nl + 1) Fun.id))
  | Ast.Ordered ((Ast.O_eq | Ast.O_neq) as op) -> (
    match (a, b) with
    | A_node (_, n1), A_node (_, n2) ->
      let eq = Vnode.deep_equal n1 n2 in
      if op = Ast.O_eq then eq else not eq
    | _ -> by_value op)
  | Ast.Ordered op -> by_value op

let rec eval_cond ctx row = function
  | Ast.C_and (a, b) -> eval_cond ctx row a && eval_cond ctx row b
  | Ast.C_or (a, b) -> eval_cond ctx row a || eval_cond ctx row b
  | Ast.C_not c -> not (eval_cond ctx row c)
  | Ast.C_cmp (le, op, re) ->
    let la = atoms (eval_expr ctx row le) in
    let ra = atoms (eval_expr ctx row re) in
    (* existential semantics over node sets, as in XPath *)
    List.exists (fun a -> List.exists (fun b -> compare_atoms op a b) ra) la

(* --- predicate pushdown ---------------------------------------------------- *)

(* Collect top-level conjuncts [VAR/path = "word"] and turn them into word
   tests inside VAR's pattern; the WHERE clause still verifies them after
   reconstruction (containment first, equality testing second, Section
   6.1). *)
let rec conjuncts = function
  | Ast.C_and (a, b) -> conjuncts a @ conjuncts b
  | c -> [c]

let single_word s =
  match String.split_on_char ' ' (String.trim s) with
  | [w] when not (String.equal w "") -> Some w
  | _ -> None

let pushdown_for_var var cond =
  match cond with
  | None -> []
  | Some cond ->
    List.filter_map
      (function
        | Ast.C_cmp (Ast.E_path (v, path), Ast.Ordered Ast.O_eq, Ast.E_string s)
        | Ast.C_cmp (Ast.E_string s, Ast.Ordered Ast.O_eq, Ast.E_path (v, path))
          when String.equal v var && path <> [] ->
          Option.map (fun w -> (path, w)) (single_word s)
        | _ -> None)
      (conjuncts cond)

(* Extend a pattern with a word-test branch along [path]. *)
let rec graft pattern path word =
  match path with
  | [] ->
    { pattern with Pattern.children = Pattern.word word :: pattern.Pattern.children }
  | { Path.axis; name } :: rest ->
    let axis =
      match axis with
      | Path.Child -> Pattern.Child
      | Path.Descendant -> Pattern.Descendant
    in
    let child = graft (Pattern.tag ~axis name []) rest word in
    { pattern with Pattern.children = child :: pattern.Pattern.children }

(* --- source binding ---------------------------------------------------------- *)

let pattern_of_source src extra_words =
  match Pattern.of_path (Path.to_string src.Ast.src_path) with
  | Error e -> unsupported "source path: %s" e
  | Ok p ->
    (* of_path marks the last step as output; graft pushdown words there *)
    let rec at_output p =
      if p.Pattern.output then
        List.fold_left (fun p (path, w) -> graft p path w) p extra_words
      else { p with Pattern.children = List.map at_output p.Pattern.children }
    in
    at_output p

(* Documents a source ranges over: one URL's incarnations, or — for
   collection() — every document whose URL matches the glob. *)
let source_docstores ctx src =
  match src.Ast.src_kind with
  | Ast.Doc -> Db.find_all ctx.db src.Ast.src_url
  | Ast.Collection ->
    List.filter_map
      (fun id ->
        let d = Db.doc ctx.db id in
        if Glob.matches ~pattern:src.Ast.src_url (Docstore.url d) then Some d
        else None)
      (Db.doc_ids ctx.db)

let source_doc_ids ctx src = List.map Docstore.doc_id (source_docstores ctx src)

(* Root bindings (empty source path) go through the delta index alone. *)
let bind_roots_every_doc ctx d =
  (* one batched sweep materializes every version: the per-binding
     lazy reconstruction re-walked the chain once per version *)
  let history =
    History.doc_history_trees ctx.db (Docstore.doc_id d)
      ~t1:Timestamp.minus_infinity ~t2:Timestamp.plus_infinity
  in
  List.rev_map
    (fun (dv, tree) ->
      {
        rb_teid = dv.History.dv_teid;
        rb_time = Interval.start dv.History.dv_interval;
        rb_tree = Lazy.from_val tree;
      })
    history

let bind_roots ctx src =
  let docs = source_docstores ctx src in
  match src.Ast.src_time with
  | Ast.Current ->
    List.filter_map
      (fun d ->
        if Docstore.is_alive d then begin
          let v = Docstore.version_count d - 1 in
          let ts = Docstore.ts_of_version d v in
          let root_xid = Vnode.xid (Docstore.current d) in
          let teid =
            Eid.Temporal.make (Eid.make ~doc:(Docstore.doc_id d) ~xid:root_xid) ts
          in
          Some { rb_teid = teid; rb_time = ts; rb_tree = lazy_subtree ctx teid }
        end
        else None)
      docs
  | Ast.At texpr ->
    let t = Ast.resolve_time ~now:ctx.now texpr in
    List.filter_map
      (fun d ->
        match Docstore.version_at d t with
        | Some v ->
          let root_xid = Vnode.xid (Docstore.current d) in
          let teid =
            Eid.Temporal.make (Eid.make ~doc:(Docstore.doc_id d) ~xid:root_xid) t
          in
          Some
            {
              rb_teid = teid;
              rb_time = Docstore.ts_of_version d v;
              rb_tree = lazy_subtree ctx teid;
            }
        | None -> None)
      docs
  | Ast.Every -> List.concat_map (bind_roots_every_doc ctx) docs

(* Expand one TPatternScanAll binding into its full version history. *)
let every_binding_rows ctx b =
  let eid = Scan.eid_of_binding b in
  List.concat_map
    (fun iv ->
      let evs =
        (* the single-sweep variant reads each delta once;
           newest-first, so reverse into chronological order *)
        List.rev
          (History.element_history_sweep ctx.db eid
             ~t1:(Interval.start iv) ~t2:(Interval.stop iv) ())
      in
      List.map
        (fun ev ->
          {
            rb_teid = ev.History.ev_teid;
            rb_time = Interval.start ev.History.ev_interval;
            rb_tree = Lazy.from_val ev.History.ev_tree;
          })
        evs)
    (Scan.binding_intervals ctx.db b)

let planner_mode = function
  | Ast.Current -> Planner.Current
  | Ast.At _ -> Planner.At
  | Ast.Every -> Planner.Every

(* The planner's pattern-scan choices, folded over one source: reordered
   join legs, skip-if-provably-empty, estimated rows (for the trace) and
   the planned domain fan-out.  With the planner off everything stays
   literal. *)
let plan_scan ctx src pattern docs =
  match ctx.plan with
  | None -> (pattern, false, None, None)
  | Some p ->
    let mode = planner_mode src.Ast.src_time in
    let pattern = Planner.order_pattern p mode pattern in
    let est = Planner.est_scan p mode ~docs pattern in
    ( pattern,
      Planner.scan_skippable p ~est ~docs:(Some docs),
      Planner.scan_domains p ~est,
      Some est )

let bind_source ctx where src : row_binding list =
  if src.Ast.src_path = [] then bind_roots ctx src
  else begin
    let words = pushdown_for_var src.Ast.src_var where in
    let pattern = pattern_of_source src words in
    let docs = source_doc_ids ctx src in
    let in_url b = List.mem b.Scan.b_doc docs in
    let pattern, skip, domains, est = plan_scan ctx src pattern docs in
    if skip then []
    else
    match src.Ast.src_time with
    | Ast.Current ->
      let bindings =
        List.filter in_url (Scan.pattern_scan ?domains ?est ctx.db pattern)
      in
      List.map
        (fun teid ->
          {
            rb_teid = teid;
            rb_time = teid.Eid.Temporal.ts;
            rb_tree = lazy_subtree ctx teid;
          })
        (Scan.to_teids ctx.db bindings)
    | Ast.At texpr ->
      let t = Ast.resolve_time ~now:ctx.now texpr in
      let bindings =
        List.filter in_url (Scan.tpattern_scan ?domains ?est ctx.db pattern t)
      in
      List.filter_map
        (fun b ->
          let eid = Scan.eid_of_binding b in
          let d = Db.doc ctx.db b.Scan.b_doc in
          match Docstore.version_at d t with
          | None -> None
          | Some v ->
            let teid = Eid.Temporal.make eid t in
            Some
              {
                rb_teid = teid;
                rb_time = Docstore.ts_of_version d v;
                rb_tree = lazy_subtree ctx teid;
              })
        bindings
    | Ast.Every ->
      let bindings =
        List.filter in_url (Scan.tpattern_scan_all ?domains ?est ctx.db pattern)
      in
      List.concat_map (every_binding_rows ctx) bindings
  end

(* Streaming variant of [bind_source]: an [EVERY] source expands its
   (potentially huge) per-binding version histories lazily, one scan
   binding at a time, so a server can emit rows without materializing
   the whole history.  [Current]/[At] sources bind eagerly — their
   result sets are bounded by the live instant. *)
let source_binding_seq ctx where src : row_binding Seq.t =
 fun () ->
  (match src.Ast.src_time with
   | Ast.Every when src.Ast.src_path = [] ->
     Seq.concat_map
       (fun d -> List.to_seq (bind_roots_every_doc ctx d))
       (List.to_seq (source_docstores ctx src))
   | Ast.Every ->
     let words = pushdown_for_var src.Ast.src_var where in
     let pattern = pattern_of_source src words in
     let docs = source_doc_ids ctx src in
     let in_url b = List.mem b.Scan.b_doc docs in
     let pattern, skip, domains, est = plan_scan ctx src pattern docs in
     let bindings =
       if skip then []
       else
         List.filter in_url (Scan.tpattern_scan_all ?domains ?est ctx.db pattern)
     in
     Seq.concat_map
       (fun b -> List.to_seq (every_binding_rows ctx b))
       (List.to_seq bindings)
   | Ast.Current | Ast.At _ -> List.to_seq (bind_source ctx where src))
    ()

(* --- result construction ------------------------------------------------------- *)

let value_to_xml = function
  | V_null -> [Xml.element "null" []]
  | V_string s -> [Xml.text s]
  | V_number f ->
    [Xml.text
       (if Float.is_integer f then string_of_int (int_of_float f)
        else string_of_float f)]
  | V_time t -> [Xml.element "time" [Xml.text (Timestamp.to_string t)]]
  | V_binding rb -> [Vnode.to_xml (Lazy.force rb.rb_tree)]
  | V_nodes (_, nodes) -> List.map Vnode.to_xml nodes
  | V_xml xml -> [xml]

let cartesian lists =
  List.fold_right
    (fun xs acc ->
      List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) xs)
    lists [[]]

let row_xml ctx select row =
  Xml.element "result"
    (List.concat_map (fun e -> value_to_xml (eval_expr ctx row e)) select)

(* Aggregate queries produce exactly one result row over the full row set. *)
let aggregate_results ctx query rows =
  let aggregate_value = function
    | Ast.E_count _ -> V_number (float_of_int (List.length rows))
    | Ast.E_sum e ->
      V_number
        (List.fold_left
           (fun acc row ->
             List.fold_left
               (fun acc a ->
                 match atom_number a with
                 | Some f -> acc +. f
                 | None -> acc)
               acc
               (atoms (eval_expr ctx row e)))
           0.0 rows)
    | Ast.E_avg e ->
      let values =
        List.concat_map
          (fun row -> List.filter_map atom_number (atoms (eval_expr ctx row e)))
          rows
      in
      if values = [] then V_null
      else
        V_number
          (List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values))
    | _ -> unsupported "mixing aggregates and row expressions in SELECT"
  in
  [Xml.element "result"
     (List.concat_map
        (fun e -> value_to_xml (aggregate_value e))
        query.Ast.select)]

let run db query =
  guard @@ fun () ->
  Trace.with_span "query.run" @@ fun () ->
  let ctx = make_ctx db in
  let per_source =
    List.map
      (fun src ->
        Trace.with_span "query.bind_source"
          ~attrs:[ ("var", Span.Str src.Ast.src_var) ]
        @@ fun () ->
        List.map
          (fun rb -> (src.Ast.src_var, rb))
          (bind_source ctx query.Ast.where src))
      query.Ast.from
  in
  let rows : row list = cartesian per_source in
  let rows =
    match query.Ast.where with
    | None -> rows
    | Some cond ->
      Trace.with_span "query.where" @@ fun () ->
      List.filter (fun row -> eval_cond ctx row cond) rows
  in
  if Trace.enabled () then Trace.add_count "rows" (List.length rows);
  let results =
    if Ast.has_aggregates query then aggregate_results ctx query rows
    else List.map (row_xml ctx query.Ast.select) rows
  in
  let results =
    if query.Ast.distinct then begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun r ->
          let key = Print.to_string r in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        results
    end
    else results
  in
  Ok (Xml.element "results" results)

(* --- algebra statements ---------------------------------------------------- *)

let eval_algebra db node =
  match Algebra.validate node with
  | Error e -> raise (Fail (Unsupported e))
  | Ok () ->
    let tl =
      Trace.with_span "algebra.timeline" (fun () ->
          let tl = Timeline.of_db db in
          if Trace.enabled () then Trace.add_count "instants" (Timeline.length tl);
          tl)
    in
    let rel =
      if planner_on db then Planner.eval_algebra (Planner.create db) db tl node
      else Algebra.eval db tl node
    in
    (tl, rel)

let run_algebra db node =
  guard @@ fun () ->
  Trace.with_span "query.run" @@ fun () ->
  let tl, rel = eval_algebra db node in
  Ok (Relation.to_xml tl rel)

(* With the planner on, statements pass through the (output-preserving)
   rewrite rules before costing, so the planner sees folded time literals
   and pruned conditions instead of their as-written forms; [run] and
   [run_algebra] stay literal, preserving the un-rewritten evaluator as a
   differential baseline. *)
let plan_statement db stmt =
  if planner_on db then Rewrite.statement ~now:(Db.now db) stmt else stmt

let run_statement db stmt =
  match plan_statement db stmt with
  | Ast.S_query q -> run db q
  | Ast.S_algebra a -> run_algebra db a

let run_string db input =
  match Parser.parse_statement input with
  | Error e -> Error (Parse_error e)
  | Ok s -> run_statement db s

(* --- streaming execution --------------------------------------------------- *)

(* Lazy cartesian product over per-source binding sequences: the first
   source streams straight off its scan; every later source is pulled at
   most once and memoized, since the product revisits it per outer row. *)
let rec row_seq = function
  | [] -> Seq.return []
  | (var, s) :: rest ->
    let rest_seq = Seq.memoize (row_seq rest) in
    Seq.concat_map (fun rb -> Seq.map (fun row -> (var, rb) :: row) rest_seq) s

let stream_query db query ~on_row =
  Trace.with_span "query.run" @@ fun () ->
  let ctx = make_ctx db in
  let rows =
    row_seq
      (List.map
         (fun src ->
           (src.Ast.src_var, source_binding_seq ctx query.Ast.where src))
         query.Ast.from)
  in
  let rows =
    match query.Ast.where with
    | None -> rows
    | Some cond -> Seq.filter (fun row -> eval_cond ctx row cond) rows
  in
  let n =
    if Ast.has_aggregates query then begin
      (* a single output row over the whole row set: nothing to stream *)
      let results = aggregate_results ctx query (List.of_seq rows) in
      List.iter on_row results;
      List.length results
    end
    else if query.Ast.distinct then begin
      let seen = Hashtbl.create 16 in
      Seq.fold_left
        (fun n row ->
          let r = row_xml ctx query.Ast.select row in
          let key = Print.to_string r in
          if Hashtbl.mem seen key then n
          else begin
            Hashtbl.replace seen key ();
            on_row r;
            n + 1
          end)
        0 rows
    end
    else
      Seq.fold_left
        (fun n row ->
          on_row (row_xml ctx query.Ast.select row);
          n + 1)
        0 rows
  in
  if Trace.enabled () then Trace.add_count "rows" n;
  n

let stream_statement db stmt ~on_row =
  guard @@ fun () ->
  match plan_statement db stmt with
  | Ast.S_query q -> Ok (stream_query db q ~on_row)
  | Ast.S_algebra a ->
    Trace.with_span "query.run" @@ fun () ->
    let tl, rel = eval_algebra db a in
    List.iter (fun r -> on_row (Relation.row_to_xml tl r)) rel;
    Ok (List.length rel)

(* --- explain ------------------------------------------------------------- *)

let explain db query =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ctx = make_ctx db in
  addf "query: %s\n" (Ast.to_string query);
  List.iteri
    (fun i src ->
      let scope =
        match src.Ast.src_kind with
        | Ast.Doc -> Printf.sprintf "doc %S" src.Ast.src_url
        | Ast.Collection -> Printf.sprintf "collection %S" src.Ast.src_url
      in
      addf "source %d: %s binds %s\n" (i + 1) scope src.Ast.src_var;
      if src.Ast.src_path = [] then
        addf "  operator: delta-index root binding (no FTI)\n"
      else begin
        let words = pushdown_for_var src.Ast.src_var query.Ast.where in
        let operator =
          match src.Ast.src_time with
          | Ast.Current -> "PatternScan (current versions, FTI_lookup)"
          | Ast.At _ -> "TPatternScan (snapshot, FTI_lookup_T) + Reconstruct on demand"
          | Ast.Every ->
            "TPatternScanAll (temporal multiway join, FTI_lookup_H) + \
             single-sweep ElementHistory"
        in
        addf "  operator: %s\n" operator;
        (try
           let pattern = pattern_of_source src words in
           match ctx.plan with
           | None -> addf "  pattern:  %s\n" (Pattern.to_string pattern)
           | Some p ->
             let mode = planner_mode src.Ast.src_time in
             let pattern = Planner.order_pattern p mode pattern in
             let docs = source_doc_ids ctx src in
             addf "  pattern:  %s\n" (Pattern.to_string pattern);
             addf "  estimate: %s\n" (Planner.describe_scan p mode ~docs pattern)
         with Fail e -> addf "  pattern:  <invalid: %s>\n" (error_to_string e));
        if words <> [] then
          addf "  pushdown: %d equality predicate(s) as word tests, re-verified after scan\n"
            (List.length words)
      end)
    query.Ast.from;
  (match query.Ast.where with
   | Some cond ->
     let n = List.length (conjuncts cond) in
     addf "where: %d conjunct(s), evaluated per row%s\n" n
       (if List.exists
            (fun src -> pushdown_for_var src.Ast.src_var query.Ast.where <> [])
            query.Ast.from
        then " (some already pushed into patterns)"
        else "")
   | None -> ());
  (if Ast.has_aggregates query then
     addf "select: aggregate over bindings%s\n"
       (if
          List.for_all
            (function Ast.E_count _ -> true | _ -> false)
            query.Ast.select
        then " (COUNT only: no reconstruction, the Q2 fast path)"
        else " (values force reconstruction, memoized per (doc, version))")
   else
     addf "select: %d expression(s) per row; node values reconstruct lazily\n"
       (List.length query.Ast.select));
  Buffer.contents buf

let explain_algebra db node =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "algebra: %s\n" (Algebra.to_string node);
  let valid =
    match Algebra.validate node with
    | Error e ->
      addf "invalid: %s\n" e;
      false
    | Ok () -> true
  in
  let plan = if planner_on db && valid then Some (Planner.create db) else None in
  let est n =
    match plan with
    | None -> ""
    | Some p -> Printf.sprintf "  est=%d row(s)" (Planner.est_algebra p n)
  in
  let rec tree indent n =
    let pad = String.make indent ' ' in
    match (n : Algebra.t) with
    | Algebra.Scan _ ->
      addf "%s%s  arity=%d%s  %s\n" pad (Algebra.span_name n) (Algebra.arity n)
        (est n) (Algebra.to_string n)
    | Algebra.Set (_, a, b) | Algebra.Joinop (_, _, a, b) ->
      addf "%s%s  arity=%d%s\n" pad (Algebra.span_name n) (Algebra.arity n)
        (est n);
      tree (indent + 2) a;
      tree (indent + 2) b
    | Algebra.Group (_, a) ->
      addf "%s%s  arity=%d%s  (interval-split COUNT)\n" pad
        (Algebra.span_name n) (Algebra.arity n) (est n);
      tree (indent + 2) a
  in
  tree 0 node;
  addf
    "leaves: TPatternScanAll validity sets mapped onto the global timeline \
     (%d instants, %d documents)\n"
    (Timeline.length (Timeline.of_db db))
    (List.length (Db.doc_ids db));
  Buffer.contents buf

let explain_statement db stmt =
  match plan_statement db stmt with
  | Ast.S_query q -> explain db q
  | Ast.S_algebra a -> explain_algebra db a

let explain_string db input =
  match Parser.parse_statement input with
  | Error e -> Error (Parse_error e)
  | Ok s -> guard (fun () -> Ok (explain_statement db s))

(* --- explain analyze ------------------------------------------------------ *)

(* Per-operator aggregation over the span forest a run produced: number of
   calls, cumulative wall time (a parent's time includes its children's,
   as in SQL EXPLAIN ANALYZE), and the sum of every integer attribute
   (deltas applied, postings scanned, vcache hits, …). *)
type op_stats = {
  mutable os_calls : int;
  mutable os_total_us : float;
  mutable os_counts : (string * int) list;
}

let aggregate_spans roots =
  let order = ref [] in
  let tbl : (string, op_stats) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun root ->
      Span.fold
        (fun () sp ->
          let name = sp.Span.sp_name in
          let st =
            match Hashtbl.find_opt tbl name with
            | Some st -> st
            | None ->
              let st = { os_calls = 0; os_total_us = 0.0; os_counts = [] } in
              Hashtbl.add tbl name st;
              order := name :: !order;
              st
          in
          st.os_calls <- st.os_calls + 1;
          st.os_total_us <- st.os_total_us +. Span.dur_us sp;
          List.iter
            (fun (k, v) ->
              match v with
              | Span.Int n ->
                st.os_counts <-
                  (if List.mem_assoc k st.os_counts then
                     List.map
                       (fun (k', m') ->
                         if String.equal k' k then (k', m' + n) else (k', m'))
                       st.os_counts
                   else st.os_counts @ [ (k, n) ])
              | _ -> ())
            sp.Span.sp_attrs)
        () root)
    roots;
  List.map (fun name -> (name, Hashtbl.find tbl name)) (List.rev !order)

let render_analysis plan result roots =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf plan;
  addf "-- analyze --\n";
  (match result with
  | Ok xml -> addf "result: %d row(s)\n" (List.length (Xml.children xml))
  | Error e -> addf "result: error: %s\n" (error_to_string e));
  let ops = aggregate_spans roots in
  (* widest operator name bounds the column *)
  let name_w =
    List.fold_left (fun w (n, _) -> Stdlib.max w (String.length n)) 8 ops
  in
  (* planner estimate vs what the operator actually produced: scans count
     "bindings", everything downstream counts "rows" *)
  let est_of st = List.assoc_opt "est_rows" st.os_counts in
  let actual_of st =
    match List.assoc_opt "bindings" st.os_counts with
    | Some n -> Some n
    | None -> List.assoc_opt "rows" st.os_counts
  in
  let est_err e a =
    (* smoothed symmetric ratio: 1.0 is exact, robust at zero rows *)
    let e = float_of_int (e + 1) and a = float_of_int (a + 1) in
    Float.max (e /. a) (a /. e)
  in
  addf "%-*s %6s %12s %8s %8s %8s  %s\n" name_w "operator" "calls" "total"
    "est" "actual" "est_err" "counters";
  List.iter
    (fun (name, st) ->
      let est_s, act_s, err_s =
        match (est_of st, actual_of st) with
        | Some e, Some a ->
          ( string_of_int e,
            string_of_int a,
            Printf.sprintf "%.1fx" (est_err e a) )
        | Some e, None -> (string_of_int e, "-", "-")
        | None, Some a -> ("-", string_of_int a, "-")
        | None, None -> ("-", "-", "-")
      in
      addf "%-*s %6d %10.1fus %8s %8s %8s  %s\n" name_w name st.os_calls
        st.os_total_us est_s act_s err_s
        (String.concat " "
           (List.filter_map
              (fun (k, n) ->
                if String.equal k "est_rows" then None
                else Some (Printf.sprintf "%s=%d" k n))
              st.os_counts)))
    (List.sort
       (fun (_, a) (_, b) -> Float.compare b.os_total_us a.os_total_us)
       ops);
  List.iter (fun root -> addf "span tree:\n%s\n" (Span.to_string root)) roots;
  Buffer.contents buf

let explain_analyze db query =
  let plan = explain db query in
  let result, roots = Txq_obs.Trace.collect (fun () -> run db query) in
  (result, render_analysis plan result roots)

(* [run]/[run_algebra] are total, but plan rendering touches live state
   (timeline size, pattern compilation); keep the whole thing inside a
   guard so a daemon's EXPLAIN path can't raise either. *)
let explain_analyze_statement db stmt =
  match
    guard @@ fun () ->
    Ok
      (match plan_statement db stmt with
      | Ast.S_query q -> explain_analyze db q
      | Ast.S_algebra a ->
        let plan = explain_algebra db a in
        let result, roots = Txq_obs.Trace.collect (fun () -> run_algebra db a) in
        (result, render_analysis plan result roots))
  with
  | Ok v -> v
  | Error e -> (Error e, "explain analyze failed: " ^ error_to_string e)

let explain_analyze_string db input =
  match Parser.parse_statement input with
  | Error e -> Error (Parse_error e)
  | Ok s -> Ok (snd (explain_analyze_statement db s))

let run_string_exn db input =
  match run_string db input with
  | Ok xml -> xml
  | Error e -> invalid_arg (error_to_string e)
