(** Query executor: compiles the AST onto the operator algebra of
    [txq_core] and evaluates it.

    Source compilation (Section 6.2's operator mappings):
    - a source with a timestamp → TPatternScan at that time (Q1);
    - a source with [EVERY] → TPatternScanAll, then per-element version
      expansion with coalescing of unchanged states (Q3);
    - no qualifier → PatternScan over current versions;
    - an empty source path binds document roots through the delta index
      (no FTI involved).

    Simple equality predicates ([R/name = "Napoli"]) are pushed into the
    pattern as word tests and re-verified after reconstruction, the
    containment-then-test strategy of Section 6.1.  [COUNT] over snapshot
    sources runs without reconstruction (the Q2 observation).

    When {!Txq_db.Config.planner} is on (the default), the statement
    entry points additionally run the cost-based planner
    ({!Txq_planner.Planner}): statements pass through the rewrite rules
    before costing, pattern join legs reorder by estimated selectivity,
    provably-empty scans are skipped, CreTime/DelTime pick their
    strategy from estimated chain depth, and algebra operators evaluate
    their cheaper input first.  Every choice is output-preserving:
    planner-on and planner-off results are byte-identical ([run] and
    [run_algebra] always evaluate literally, as the differential
    baseline). *)

type error =
  | Parse_error of string
  | Unknown_variable of string
  | Unsupported of string
  | Internal of string
      (** anything the evaluator leaked beyond its typed failures —
          including stack overflow on adversarially deep input.  The
          entry points below never raise on any input: a daemon serving
          untrusted statements depends on it. *)

val error_to_string : error -> string

val run : Txq_db.Db.t -> Ast.query -> (Txq_xml.Xml.t, error) result
(** Evaluates the query at the database's current NOW; the result document
    is [<results><result>…</result>…</results>] (Section 5). *)

val run_algebra :
  Txq_db.Db.t -> Txq_algebra.Algebra.t -> (Txq_xml.Xml.t, error) result
(** Evaluates a temporal-algebra expression: {!Txq_algebra.Algebra.validate},
    then {!Txq_algebra.Timeline.of_db} (under an ["algebra.timeline"] span),
    then {!Txq_algebra.Algebra.eval}; the result document is
    [<results><row>…<valid>…</valid></row>…</results>].  A validation
    failure is [Unsupported]. *)

val run_statement :
  Txq_db.Db.t -> Ast.statement -> (Txq_xml.Xml.t, error) result
(** Rewrites then plans the statement when the planner is on; queries
    otherwise run exactly as written. *)

val run_string : Txq_db.Db.t -> string -> (Txq_xml.Xml.t, error) result
(** Parse (as a statement: query or algebra expression) and run. *)

val run_string_exn : Txq_db.Db.t -> string -> Txq_xml.Xml.t

val stream_statement :
  Txq_db.Db.t -> Ast.statement -> on_row:(Txq_xml.Xml.t -> unit) ->
  (int, error) result
(** Evaluates the statement, calling [on_row] once per result element in
    result order, and returns the number of rows emitted.  Semantically
    identical to {!run_statement} — wrapping the emitted elements in
    [<results>…</results>] reproduces its result document byte for byte
    (a zero-row stream corresponds to the empty [<results/>]) — but
    [EVERY] sources expand their version histories lazily, one scan
    binding at a time, so arbitrarily large history scans stream in
    bounded memory.  Aggregates still materialize their row set (they
    produce a single output row).  An exception raised by [on_row]
    aborts evaluation and surfaces as [Error (Internal _)]. *)

val explain : Txq_db.Db.t -> Ast.query -> string
(** Human-readable evaluation plan: which of the paper's operators each
    source compiles to (PatternScan / TPatternScan / TPatternScanAll /
    delta-index root binding), the pattern tree after predicate pushdown,
    and how the SELECT list is produced.  With the planner on, each
    pattern source also shows its estimated row count, the per-word-test
    index cardinalities with the chosen route (A1 vs A2), and the planned
    domain fan-out.  Purely informational; computing it runs nothing. *)

val explain_algebra : Txq_db.Db.t -> Txq_algebra.Algebra.t -> string
(** The algebra node tree with span names and arities, plus the size of
    the global timeline its leaves map onto. *)

val explain_statement : Txq_db.Db.t -> Ast.statement -> string

val explain_string : Txq_db.Db.t -> string -> (string, error) result

val explain_analyze :
  Txq_db.Db.t -> Ast.query -> (Txq_xml.Xml.t, error) result * string
(** The plan of {!explain} followed by an execution profile: the query is
    actually run under {!Txq_obs.Trace.collect}, and the report appends
    per-operator call counts, cumulative wall time, estimated vs actual
    row counts with an [est_err] ratio column (the smoothed symmetric
    ratio [max((est+1)/(act+1), (act+1)/(est+1))]; ["-"] for operators
    the planner does not estimate), summed integer span attributes
    (deltas applied, postings scanned, vcache hits, …) and the raw span
    tree(s).  Works whether or not a trace sink is installed.  Returns
    the run's result alongside the report. *)

val explain_analyze_statement :
  Txq_db.Db.t -> Ast.statement -> (Txq_xml.Xml.t, error) result * string
(** {!explain_analyze} generalized to statements; an algebra statement's
    profile reports per-algebra-node spans (["algebra.union"],
    ["algebra.join"], …) with call counts, timings and row counters. *)

val explain_analyze_string : Txq_db.Db.t -> string -> (string, error) result
