type token =
  | KW of string
  | IDENT of string
  | STRING of string
  | NUMBER of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SLASH
  | DSLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | IDEQ
  | TILDE
  | PLUS
  | MINUS
  | EOF

let token_to_string = function
  | KW k -> k
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | NUMBER s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SLASH -> "/"
  | DSLASH -> "//"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | IDEQ -> "=="
  | TILDE -> "~"
  | PLUS -> "+"
  | MINUS -> "-"
  | EOF -> "<eof>"

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "EVERY"; "NOW";
    "TIME"; "CREATE"; "DELETE"; "PREVIOUS"; "NEXT"; "CURRENT"; "DIFF"; "COUNT";
    "SUM"; "AVG"; "CONTAINS"; "DOC"; "COLLECTION"; "UNION"; "INTERSECT";
    "EXCEPT"; "JOIN"; "LEFTJOIN"; "SEMIJOIN"; "ANTIJOIN"; "ON"; "ANCESTOR";
    "ALWAYS"; "BY";
  ]

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '-' || c = '.'

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let error = ref None in
  let emit t = out := t :: !out in
  let i = ref 0 in
  (try
     while !i < n do
       let c = input.[!i] in
       if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
       else if c = '(' then (emit LPAREN; incr i)
       else if c = ')' then (emit RPAREN; incr i)
       else if c = '[' then (emit LBRACKET; incr i)
       else if c = ']' then (emit RBRACKET; incr i)
       else if c = ',' then (emit COMMA; incr i)
       else if c = '+' then (emit PLUS; incr i)
       else if c = '~' then (emit TILDE; incr i)
       else if c = '-' then (emit MINUS; incr i)
       else if c = '/' then
         if !i + 1 < n && input.[!i + 1] = '/' then (emit DSLASH; i := !i + 2)
         else (emit SLASH; incr i)
       else if c = '=' then
         if !i + 1 < n && input.[!i + 1] = '=' then (emit IDEQ; i := !i + 2)
         else (emit EQ; incr i)
       else if c = '!' then
         if !i + 1 < n && input.[!i + 1] = '=' then (emit NEQ; i := !i + 2)
         else begin
           error := Some (Printf.sprintf "unexpected character '!' at %d" !i);
           raise Exit
         end
       else if c = '<' then
         if !i + 1 < n && input.[!i + 1] = '=' then (emit LE; i := !i + 2)
         else if !i + 1 < n && input.[!i + 1] = '>' then (emit NEQ; i := !i + 2)
         else (emit LT; incr i)
       else if c = '>' then
         if !i + 1 < n && input.[!i + 1] = '=' then (emit GE; i := !i + 2)
         else (emit GT; incr i)
       else if c = '"' then begin
         let buf = Buffer.create 16 in
         incr i;
         let closed = ref false in
         while (not !closed) && !i < n do
           if input.[!i] = '"' then begin
             closed := true;
             incr i
           end
           else begin
             Buffer.add_char buf input.[!i];
             incr i
           end
         done;
         if !closed then emit (STRING (Buffer.contents buf))
         else begin
           error := Some "unterminated string literal";
           raise Exit
         end
       end
       else if is_digit c then begin
         let start = !i in
         while !i < n && (is_digit input.[!i] || input.[!i] = '.') do
           incr i
         done;
         emit (NUMBER (String.sub input start (!i - start)))
       end
       else if is_ident_start c then begin
         let start = !i in
         while !i < n && is_ident_char input.[!i] do
           incr i
         done;
         let word = String.sub input start (!i - start) in
         let upper = String.uppercase_ascii word in
         if List.mem upper keywords then emit (KW upper) else emit (IDENT word)
       end
       else begin
         error := Some (Printf.sprintf "unexpected character %C at %d" c !i);
         raise Exit
       end
     done
   with Exit -> ());
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev (EOF :: !out))
