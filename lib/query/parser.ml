open Lexer

exception Parse_failure of string

type state = { toks : token array; mutable pos : int; mutable depth : int }

(* Recursion in this parser (and in the evaluator walking its output) is
   bounded by expression nesting, which untrusted input controls; cap it
   so adversarially deep statements fail with a parse error instead of a
   stack overflow. *)
let max_nesting = 400

let nested st f =
  st.depth <- st.depth + 1;
  if st.depth > max_nesting then
    raise (Parse_failure "statement nesting too deep");
  let r = f () in
  st.depth <- st.depth - 1;
  r

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else EOF
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_failure
       (Printf.sprintf "%s (at token %d: %s)" msg st.pos
          (token_to_string (peek st))))

let expect st t msg =
  if peek st = t then advance st else fail st ("expected " ^ msg)

let expect_kw st kw = expect st (KW kw) kw

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | _ -> fail st "expected an identifier"

(* --- time expressions -------------------------------------------------- *)

let parse_date st =
  match peek st with
  | NUMBER d -> (
    advance st;
    expect st SLASH "'/' in date";
    match peek st with
    | NUMBER m -> (
      advance st;
      expect st SLASH "'/' in date";
      match peek st with
      | NUMBER y -> (
        advance st;
        match
          (int_of_string_opt d, int_of_string_opt m, int_of_string_opt y)
        with
        | Some day, Some month, Some year -> (
          try Txq_temporal.Timestamp.of_date ~day ~month ~year
          with Invalid_argument e -> fail st e)
        | _ -> fail st "malformed date")
      | _ -> fail st "expected year")
    | _ -> fail st "expected month")
  | _ -> fail st "expected a date"

let parse_duration st =
  match peek st with
  | NUMBER n -> (
    advance st;
    match peek st with
    | IDENT unit -> (
      advance st;
      try Txq_temporal.Duration.of_string (n ^ " " ^ unit)
      with Invalid_argument _ -> fail st ("unknown time unit " ^ unit))
    | _ -> fail st "expected a time unit (DAYS, WEEKS, …)")
  | _ -> fail st "expected a number before the time unit"

let rec parse_time_suffix st base =
  match peek st with
  | PLUS ->
    advance st;
    parse_time_suffix st (Ast.T_plus (base, parse_duration st))
  | MINUS ->
    advance st;
    parse_time_suffix st (Ast.T_minus (base, parse_duration st))
  | _ -> base

let parse_time_expr st =
  let base =
    match peek st with
    | KW "NOW" ->
      advance st;
      Ast.T_now
    | NUMBER _ -> Ast.T_literal (parse_date st)
    | _ -> fail st "expected NOW or a date"
  in
  parse_time_suffix st base

(* --- paths -------------------------------------------------------------- *)

let parse_path_steps st =
  let steps = ref [] in
  let rec go () =
    match peek st with
    | SLASH | DSLASH ->
      let axis =
        if peek st = SLASH then Txq_xml.Path.Child else Txq_xml.Path.Descendant
      in
      advance st;
      (match peek st with
       | IDENT name ->
         advance st;
         steps := { Txq_xml.Path.axis; name } :: !steps;
         go ()
       | _ -> fail st "expected a step name after '/'")
    | _ -> ()
  in
  go ();
  List.rev !steps

(* --- expressions --------------------------------------------------------- *)

let var_arg st =
  expect st LPAREN "'('";
  let v = ident st in
  expect st RPAREN "')'";
  v

let rec parse_expr st =
  let e = parse_primary st in
  (* postfix path on node-valued expressions: CURRENT(R)/name *)
  match (e, peek st) with
  | (Ast.E_var _ | Ast.E_path _), _ -> e (* paths already consumed *)
  | _, (SLASH | DSLASH) -> Ast.E_apply_path (e, parse_path_steps st)
  | _, _ -> e

and parse_primary st =
  nested st @@ fun () ->
  match peek st with
  | STRING s ->
    advance st;
    Ast.E_string s
  | KW "TIME" ->
    advance st;
    Ast.E_time (var_arg st)
  | KW "CREATE" ->
    advance st;
    expect_kw st "TIME";
    Ast.E_create_time (var_arg st)
  | KW "DELETE" ->
    advance st;
    expect_kw st "TIME";
    Ast.E_delete_time (var_arg st)
  | KW "PREVIOUS" ->
    advance st;
    Ast.E_previous (var_arg st)
  | KW "NEXT" ->
    advance st;
    Ast.E_next (var_arg st)
  | KW "CURRENT" ->
    advance st;
    Ast.E_current (var_arg st)
  | KW "DIFF" ->
    advance st;
    expect st LPAREN "'('";
    let a = parse_expr st in
    expect st COMMA "','";
    let b = parse_expr st in
    expect st RPAREN "')'";
    Ast.E_diff (a, b)
  | KW "COUNT" ->
    advance st;
    expect st LPAREN "'('";
    let e = parse_expr st in
    expect st RPAREN "')'";
    Ast.E_count e
  | KW "SUM" ->
    advance st;
    expect st LPAREN "'('";
    let e = parse_expr st in
    expect st RPAREN "')'";
    Ast.E_sum e
  | KW "AVG" ->
    advance st;
    expect st LPAREN "'('";
    let e = parse_expr st in
    expect st RPAREN "')'";
    Ast.E_avg e
  | KW "NOW" -> Ast.E_time_lit (parse_time_expr st)
  | NUMBER n ->
    (* a date when followed by /NUMBER/NUMBER, else a number *)
    if peek2 st = SLASH then Ast.E_time_lit (parse_time_expr st)
    else begin
      advance st;
      match float_of_string_opt n with
      | Some f -> Ast.E_number f
      | None -> fail st "malformed number"
    end
  | IDENT v -> (
    advance st;
    match peek st with
    | SLASH | DSLASH -> Ast.E_path (v, parse_path_steps st)
    | _ -> Ast.E_var v)
  | _ -> fail st "expected an expression"

(* --- conditions ------------------------------------------------------------ *)

let parse_cmp_op st =
  match peek st with
  | EQ -> advance st; Ast.Ordered Ast.O_eq
  | NEQ -> advance st; Ast.Ordered Ast.O_neq
  | LT -> advance st; Ast.Ordered Ast.O_lt
  | LE -> advance st; Ast.Ordered Ast.O_le
  | GT -> advance st; Ast.Ordered Ast.O_gt
  | GE -> advance st; Ast.Ordered Ast.O_ge
  | IDEQ -> advance st; Ast.Identity
  | TILDE -> advance st; Ast.Similar
  | KW "CONTAINS" -> advance st; Ast.Contains
  | _ -> fail st "expected a comparison operator"

let rec parse_cond st = parse_or st

and parse_or st =
  nested st @@ fun () ->
  let left = parse_and st in
  if peek st = KW "OR" then begin
    advance st;
    Ast.C_or (left, parse_or st)
  end
  else left

and parse_and st =
  nested st @@ fun () ->
  let left = parse_unary st in
  if peek st = KW "AND" then begin
    advance st;
    Ast.C_and (left, parse_and st)
  end
  else left

and parse_unary st =
  nested st @@ fun () ->
  match peek st with
  | KW "NOT" ->
    advance st;
    Ast.C_not (parse_unary st)
  | LPAREN ->
    advance st;
    let c = parse_cond st in
    expect st RPAREN "')'";
    c
  | _ ->
    let left = parse_expr st in
    let op = parse_cmp_op st in
    let right = parse_expr st in
    Ast.C_cmp (left, op, right)

(* --- sources ----------------------------------------------------------------- *)

let parse_source st =
  let kind =
    match peek st with
    | KW "DOC" ->
      advance st;
      Ast.Doc
    | KW "COLLECTION" ->
      advance st;
      Ast.Collection
    | _ -> fail st "expected doc(...) or collection(...)"
  in
  expect st LPAREN "'(' after the source keyword";
  let url =
    match peek st with
    | STRING s ->
      advance st;
      s
    | _ -> fail st "expected a quoted URL"
  in
  expect st RPAREN "')'";
  let time =
    if peek st = LBRACKET then begin
      advance st;
      let spec =
        if peek st = KW "EVERY" then begin
          advance st;
          Ast.Every
        end
        else Ast.At (parse_time_expr st)
      in
      expect st RBRACKET "']'";
      spec
    end
    else Ast.Current
  in
  let path = parse_path_steps st in
  let var = ident st in
  { Ast.src_kind = kind; src_url = url; src_time = time; src_path = path;
    src_var = var }

(* --- query --------------------------------------------------------------------- *)

let parse_query st =
  expect_kw st "SELECT";
  let distinct =
    if peek st = KW "DISTINCT" then begin
      advance st;
      true
    end
    else false
  in
  let rec exprs acc =
    let e = parse_expr st in
    if peek st = COMMA then begin
      advance st;
      exprs (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let select = exprs [] in
  expect_kw st "FROM";
  let rec sources acc =
    let s = parse_source st in
    if peek st = COMMA then begin
      advance st;
      sources (s :: acc)
    end
    else List.rev (s :: acc)
  in
  let from = sources [] in
  let where =
    if peek st = KW "WHERE" then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  if peek st <> EOF then fail st "unexpected trailing input";
  { Ast.distinct; select; from; where }

(* --- algebra statements -------------------------------------------------- *)

(* alg      := alg_join ((UNION | INTERSECT | EXCEPT) alg_join)*
   alg_join := alg_prim ((JOIN | LEFTJOIN | SEMIJOIN | ANTIJOIN)
                          [ON (DOC | ANCESTOR | ALWAYS)] alg_prim)*
   alg_prim := (doc | collection) '(' STRING ')' path ['=' STRING]
             | COUNT [BY DOC] '(' alg ')'
             | '(' alg ')'
   Set and join operators are left-associative; joins bind tighter.  A
   join with no ON clause defaults to ON DOC. *)

module Alg = Txq_algebra.Algebra

let parse_alg_leaf st kind =
  expect st LPAREN "'(' after the source keyword";
  let url =
    match peek st with
    | STRING s ->
      advance st;
      s
    | _ -> fail st "expected a quoted URL"
  in
  expect st RPAREN "')'";
  let path = parse_path_steps st in
  let word =
    if peek st = EQ then begin
      advance st;
      match peek st with
      | STRING s ->
        advance st;
        Some s
      | _ -> fail st "expected a quoted word after '='"
    end
    else None
  in
  Alg.Scan
    {
      Alg.l_kind = kind;
      l_url = url;
      l_path = Txq_xml.Path.to_string path;
      l_word = word;
    }

let rec parse_alg st =
  let rec go left =
    match peek st with
    | KW "UNION" ->
      advance st;
      go (Alg.Set (Alg.Union, left, parse_alg_join st))
    | KW "INTERSECT" ->
      advance st;
      go (Alg.Set (Alg.Intersect, left, parse_alg_join st))
    | KW "EXCEPT" ->
      advance st;
      go (Alg.Set (Alg.Except, left, parse_alg_join st))
    | _ -> left
  in
  go (parse_alg_join st)

and parse_alg_join st =
  let join_kind st =
    match peek st with
    | KW "JOIN" -> Some Alg.Join
    | KW "LEFTJOIN" -> Some Alg.Left_join
    | KW "SEMIJOIN" -> Some Alg.Semi_join
    | KW "ANTIJOIN" -> Some Alg.Anti_join
    | _ -> None
  in
  let rec go left =
    match join_kind st with
    | None -> left
    | Some k ->
      advance st;
      let on =
        if peek st = KW "ON" then begin
          advance st;
          match peek st with
          | KW "DOC" ->
            advance st;
            Alg.On_doc
          | KW "ANCESTOR" ->
            advance st;
            Alg.On_ancestor
          | KW "ALWAYS" ->
            advance st;
            Alg.On_always
          | _ -> fail st "expected DOC, ANCESTOR or ALWAYS after ON"
        end
        else Alg.On_doc
      in
      go (Alg.Joinop (k, on, left, parse_alg_prim st))
  in
  go (parse_alg_prim st)

and parse_alg_prim st =
  nested st @@ fun () ->
  match peek st with
  | KW "DOC" ->
    advance st;
    parse_alg_leaf st Alg.Doc
  | KW "COLLECTION" ->
    advance st;
    parse_alg_leaf st Alg.Collection
  | KW "COUNT" ->
    advance st;
    let key =
      if peek st = KW "BY" then begin
        advance st;
        expect_kw st "DOC";
        Alg.By_doc
      end
      else Alg.By_all
    in
    expect st LPAREN "'(' after COUNT";
    let a = parse_alg st in
    expect st RPAREN "')'";
    Alg.Group (key, a)
  | LPAREN ->
    advance st;
    let a = parse_alg st in
    expect st RPAREN "')'";
    a
  | _ -> fail st "expected doc(...), collection(...), COUNT or '('"

let parse_statement_tokens st =
  if peek st = KW "SELECT" then Ast.S_query (parse_query st)
  else begin
    let a = parse_alg st in
    if peek st <> EOF then fail st "unexpected trailing input";
    Ast.S_algebra a
  end

(* --- entry points --------------------------------------------------------- *)

let with_tokens input f =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks = Array.of_list toks; pos = 0; depth = 0 } in
    try Ok (f st) with Parse_failure msg -> Stdlib.Error msg)

let parse input = with_tokens input parse_query

let parse_exn input =
  match parse input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Parser.parse_exn: " ^ msg)

let parse_statement input = with_tokens input parse_statement_tokens

let parse_statement_exn input =
  match parse_statement input with
  | Ok s -> s
  | Error msg -> invalid_arg ("Parser.parse_statement_exn: " ^ msg)
