(** Recursive-descent parser for the query language of Section 5.

    Accepted shape:
    {v
    SELECT [DISTINCT] expr, …
    FROM doc("url")[timespec]/path/steps VAR, …
    [WHERE cond [AND|OR cond]…]
    v}
    where [timespec] is a date ([26/01/2001]), relative time
    ([NOW - 14 DAYS]) or [EVERY]; expressions include [VAR/path],
    [TIME(VAR)], [CREATE TIME(VAR)], [DELETE TIME(VAR)], [PREVIOUS(VAR)],
    [NEXT(VAR)], [CURRENT(VAR)], [DIFF(a,b)], [COUNT]/[SUM]/[AVG]; and
    comparison operators are [= != < <= > >= == ~ CONTAINS]. *)

val parse : string -> (Ast.query, string) result
val parse_exn : string -> Ast.query

val parse_statement : string -> (Ast.statement, string) result
(** A statement is either a [SELECT] query or a temporal-algebra
    expression:
    {v
    alg      := alg_join ((UNION | INTERSECT | EXCEPT) alg_join)*
    alg_join := alg_prim ((JOIN | LEFTJOIN | SEMIJOIN | ANTIJOIN)
                           [ON (DOC | ANCESTOR | ALWAYS)] alg_prim)*
    alg_prim := (doc | collection)("url")/path ['=' "word"]
              | COUNT [BY DOC] '(' alg ')'
              | '(' alg ')'
    v}
    Set and join operators are left-associative, joins bind tighter, and
    a join without an [ON] clause defaults to [ON DOC]. *)

val parse_statement_exn : string -> Ast.statement
