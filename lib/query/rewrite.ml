module Timestamp = Txq_temporal.Timestamp

(* Fold constant arithmetic; NOW stays symbolic (a query may be planned
   before it runs), but suffixes applied to literals disappear. *)
let rec time_expr ~now te =
  match te with
  | Ast.T_literal _ | Ast.T_now -> te
  | Ast.T_plus (e, d) -> (
    match time_expr ~now e with
    | Ast.T_literal ts -> Ast.T_literal (Timestamp.add ts d)
    | e' -> Ast.T_plus (e', d))
  | Ast.T_minus (e, d) -> (
    match time_expr ~now e with
    | Ast.T_literal ts -> Ast.T_literal (Timestamp.sub ts d)
    | e' -> Ast.T_minus (e', d))

(* Lower bound of a time expression, assuming NOW >= now (transaction time
   never decreases).  Sound for deciding spec >= current-time. *)
let rec lower_bound ~now = function
  | Ast.T_literal ts -> ts
  | Ast.T_now -> now
  | Ast.T_plus (e, _) -> lower_bound ~now e (* duration >= 0 *)
  | Ast.T_minus (e, d) -> Timestamp.sub (lower_bound ~now e) d

let source ~now src =
  match src.Ast.src_time with
  | Ast.Current | Ast.Every -> src
  | Ast.At te ->
    let te = time_expr ~now te in
    (* a snapshot at or after NOW is the current snapshot *)
    if Timestamp.(lower_bound ~now te >= now) then
      { src with Ast.src_time = Ast.Current }
    else { src with Ast.src_time = Ast.At te }

let rec expr ~now e =
  match e with
  | Ast.E_time_lit te -> Ast.E_time_lit (time_expr ~now te)
  | Ast.E_diff (a, b) -> Ast.E_diff (expr ~now a, expr ~now b)
  | Ast.E_count a -> Ast.E_count (expr ~now a)
  | Ast.E_sum a -> Ast.E_sum (expr ~now a)
  | Ast.E_avg a -> Ast.E_avg (expr ~now a)
  | Ast.E_apply_path (a, p) -> Ast.E_apply_path (expr ~now a, p)
  | Ast.E_var _ | Ast.E_path _ | Ast.E_string _ | Ast.E_number _ | Ast.E_time _
  | Ast.E_create_time _ | Ast.E_delete_time _ | Ast.E_previous _ | Ast.E_next _
  | Ast.E_current _ -> e

(* Three-valued outcome of rewriting a condition: decided or residual. *)
type folded =
  | Decided of bool
  | Residual of Ast.cond

let known_cmp op a b =
  match op with
  | Ast.Ordered op -> Some (Ast.ordered_holds op (Timestamp.compare a b))
  | Ast.Identity | Ast.Similar | Ast.Contains -> None

let rec cond ~now c =
  match c with
  | Ast.C_cmp (a, op, b) -> (
    let a = expr ~now a and b = expr ~now b in
    match (a, op, b) with
    | Ast.E_time_lit (Ast.T_literal ta), _, Ast.E_time_lit (Ast.T_literal tb)
      -> (
      match known_cmp op ta tb with
      | Some decided -> Decided decided
      | None -> Residual (Ast.C_cmp (a, op, b)))
    | _ -> Residual (Ast.C_cmp (a, op, b)))
  | Ast.C_not inner -> (
    match cond ~now inner with
    | Decided b -> Decided (not b)
    | Residual r -> Residual (Ast.C_not r))
  | Ast.C_and (l, r) -> (
    match (cond ~now l, cond ~now r) with
    | Decided false, _ | _, Decided false -> Decided false
    | Decided true, other | other, Decided true -> other
    | Residual a, Residual b -> Residual (Ast.C_and (a, b)))
  | Ast.C_or (l, r) -> (
    match (cond ~now l, cond ~now r) with
    | Decided true, _ | _, Decided true -> Decided true
    | Decided false, other | other, Decided false -> other
    | Residual a, Residual b -> Residual (Ast.C_or (a, b)))

let query ~now q =
  let from = List.map (source ~now) q.Ast.from in
  let select = List.map (expr ~now) q.Ast.select in
  let where =
    match q.Ast.where with
    | None -> `Keep None
    | Some c -> (
      match cond ~now c with
      | Decided true -> `Keep None
      | Decided false -> `Empty
      | Residual r -> `Keep (Some r))
  in
  let distinct = q.Ast.distinct && not (Ast.has_aggregates q) in
  match where with
  | `Keep where -> { Ast.distinct; select; from; where }
  | `Empty ->
    (* a provably-false WHERE keeps the query well-formed but binds no
       rows: bind an impossible time window *)
    {
      Ast.distinct;
      select;
      from =
        List.map
          (fun src ->
            { src with Ast.src_time = Ast.At (Ast.T_literal Timestamp.minus_infinity) })
          from;
      where = None;
    }

let statement ~now = function
  | Ast.S_query q -> Ast.S_query (query ~now q)
  | Ast.S_algebra a ->
    (* algebra statements have no rewrite rules yet *)
    Ast.S_algebra a
