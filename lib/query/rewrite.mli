(** Algebraic query rewriting.

    Section 8 names "algebraic rewriting techniques" as one of the two
    strategies for reducing the cost of the temporal operators.  The rules
    here are the ones that pay off on this engine; each preserves results
    exactly (property-tested):

    - {b snapshot-to-current}: a source qualified with a time that is
      provably ≥ NOW evaluates over current versions — [FTI_lookup] on open
      postings instead of the costlier [FTI_lookup_T];
    - {b time folding}: [26/01/2001 + 2 WEEKS - 1 DAY] becomes one literal,
      so it is resolved once, not per comparison row;
    - {b condition pruning}: comparisons between two time literals are
      decided at rewrite time and collapsed through the boolean connectives
      ([TRUE AND c] → [c], [NOT FALSE] → [TRUE], …);
    - {b distinct-under-aggregate}: [DISTINCT] is dropped when the SELECT
      list is all aggregates (one row; deduplication is a no-op). *)

val time_expr :
  now:Txq_temporal.Timestamp.t -> Ast.time_expr -> Ast.time_expr
(** Folds to [T_literal] when no [NOW] occurs; otherwise folds the constant
    parts. *)

val query : now:Txq_temporal.Timestamp.t -> Ast.query -> Ast.query
(** Applies all rules.  [now] is the transaction-time instant the query
    will run at (rewriting is the last step before execution). *)

val statement : now:Txq_temporal.Timestamp.t -> Ast.statement -> Ast.statement
(** {!query} on [SELECT] statements; algebra statements pass through
    unchanged (no algebra rewrite rules yet). *)
