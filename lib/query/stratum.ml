module Xml = Txq_xml.Xml
module Path = Txq_xml.Path
module Parse = Txq_xml.Parse
module Print = Txq_xml.Print
module Timestamp = Txq_temporal.Timestamp
module Clock = Txq_temporal.Clock
module Glob = Txq_core.Glob

type stored_doc = {
  mutable versions : (Timestamp.t * string) list;  (** newest first *)
  mutable deleted : Timestamp.t option;
}

type t = {
  clock : Clock.t;
  docs : (string, stored_doc list ref) Hashtbl.t;  (** newest incarnation first *)
  mutable bytes : int;
  mutable parsed : int;
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.create () in
  { clock; docs = Hashtbl.create 64; bytes = 0; parsed = 0 }

let commit_ts t = function
  | None -> Clock.tick t.clock
  | Some ts ->
    Clock.set t.clock ts;
    ts

let bucket t url =
  match Hashtbl.find_opt t.docs url with
  | Some b -> b
  | None ->
    let b = ref [] in
    Hashtbl.replace t.docs url b;
    b

let live t url =
  match Hashtbl.find_opt t.docs url with
  | None -> None
  | Some b -> (
    match !b with
    | d :: _ when d.deleted = None -> Some d
    | _ -> None)

let store t doc ts xml =
  let s = Print.to_string (Xml.normalize xml) in
  t.bytes <- t.bytes + String.length s;
  doc.versions <- (ts, s) :: doc.versions

let insert_document t ~url ?ts xml =
  (match live t url with
   | Some _ ->
     invalid_arg (Printf.sprintf "Stratum.insert_document: %s already exists" url)
   | None -> ());
  let ts = commit_ts t ts in
  let doc = { versions = []; deleted = None } in
  store t doc ts xml;
  let b = bucket t url in
  b := doc :: !b

let update_document t ~url ?ts xml =
  match live t url with
  | None ->
    invalid_arg (Printf.sprintf "Stratum.update_document: no live document at %s" url)
  | Some doc ->
    let ts = commit_ts t ts in
    store t doc ts xml

let delete_document t ~url ?ts () =
  match live t url with
  | None ->
    invalid_arg (Printf.sprintf "Stratum.delete_document: no live document at %s" url)
  | Some doc -> doc.deleted <- Some (commit_ts t ts)

let stored_bytes t = t.bytes
let stored_pages t = (t.bytes + 4095) / 4096
let versions_parsed t = t.parsed
let reset_counters t = t.parsed <- 0

(* --- evaluation ---------------------------------------------------------- *)

exception Fail of Exec.error

let unsupported fmt =
  Printf.ksprintf (fun s -> raise (Fail (Exec.Unsupported s))) fmt

let parse_version t s =
  t.parsed <- t.parsed + 1;
  Parse.parse_exn s

(* A row binds variables to (node, version timestamp). *)
type row_binding = { rb_node : Xml.t; rb_time : Timestamp.t }
type row = (string * row_binding) list

let binding row v =
  match List.assoc_opt v row with
  | Some rb -> rb
  | None -> raise (Fail (Exec.Unknown_variable v))

let doc_versions t src =
  match src.Ast.src_kind with
  | Ast.Doc -> (
    match Hashtbl.find_opt t.docs src.Ast.src_url with
    | None -> []
    | Some b -> !b)
  | Ast.Collection ->
    Hashtbl.fold
      (fun url b acc ->
        if Glob.matches ~pattern:src.Ast.src_url url then !b @ acc else acc)
      t.docs []

(* versions of one incarnation valid at [instant] *)
let version_at doc instant =
  if
    (match doc.deleted with
     | Some d -> Timestamp.(instant >= d)
     | None -> false)
  then None
  else
    (* versions are newest first *)
    List.find_opt (fun (ts, _) -> Timestamp.(ts <= instant)) doc.versions

let bind_source t ~now src : row_binding list =
  let select xml =
    if src.Ast.src_path = [] then [xml]
    else Path.select (Path.parse_exn (Path.to_string src.Ast.src_path)) xml
  in
  let incarnations = doc_versions t src in
  match src.Ast.src_time with
  | Ast.Current ->
    List.concat_map
      (fun doc ->
        if doc.deleted <> None then []
        else
          match doc.versions with
          | (ts, s) :: _ ->
            List.map
              (fun n -> { rb_node = n; rb_time = ts })
              (select (parse_version t s))
          | [] -> [])
      incarnations
  | Ast.At texpr ->
    let instant = Ast.resolve_time ~now texpr in
    List.concat_map
      (fun doc ->
        match version_at doc instant with
        | Some (ts, s) ->
          List.map
            (fun n -> { rb_node = n; rb_time = ts })
            (select (parse_version t s))
        | None -> [])
      incarnations
  | Ast.Every ->
    (* every version of every incarnation, oldest first *)
    List.concat_map
      (fun doc ->
        List.concat_map
          (fun (ts, s) ->
            List.map
              (fun n -> { rb_node = n; rb_time = ts })
              (select (parse_version t s)))
          (List.rev doc.versions))
      incarnations

(* --- expressions ----------------------------------------------------------- *)

type value =
  | V_null
  | V_string of string
  | V_number of float
  | V_time of Timestamp.t
  | V_nodes of Xml.t list

let rec eval_expr ~now row : Ast.expr -> value = function
  | Ast.E_string s -> V_string s
  | Ast.E_number f -> V_number f
  | Ast.E_time_lit te -> V_time (Ast.resolve_time ~now te)
  | Ast.E_var v -> V_nodes [(binding row v).rb_node]
  | Ast.E_path (v, path) ->
    V_nodes
      (Path.select_from_children
         (Path.parse_exn (Path.to_string path))
         (binding row v).rb_node)
  | Ast.E_time v -> V_time (binding row v).rb_time
  | Ast.E_create_time _ -> unsupported "CREATE TIME needs element identity (stratum)"
  | Ast.E_delete_time _ -> unsupported "DELETE TIME needs element identity (stratum)"
  | Ast.E_previous _ -> unsupported "PREVIOUS needs element identity (stratum)"
  | Ast.E_next _ -> unsupported "NEXT needs element identity (stratum)"
  | Ast.E_current _ -> unsupported "CURRENT needs element identity (stratum)"
  | Ast.E_diff _ -> unsupported "DIFF needs element identity (stratum)"
  | Ast.E_apply_path (e, path) -> (
    match eval_expr ~now row e with
    | V_nodes nodes ->
      V_nodes
        (List.concat_map
           (Path.select_from_children (Path.parse_exn (Path.to_string path)))
           nodes)
    | V_null -> V_null
    | V_string _ | V_number _ | V_time _ ->
      unsupported "path applied to a non-node value")
  | Ast.E_count _ | Ast.E_sum _ | Ast.E_avg _ ->
    unsupported "aggregate in a non-aggregate position"

type atom =
  | A_string of string
  | A_number of float
  | A_time of Timestamp.t
  | A_node of Xml.t

let atoms = function
  | V_null -> []
  | V_string s -> [A_string s]
  | V_number f -> [A_number f]
  | V_time ts -> [A_time ts]
  | V_nodes ns -> List.map (fun n -> A_node n) ns

let atom_text = function
  | A_string s -> s
  | A_number f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | A_time ts -> Timestamp.to_string ts
  | A_node n -> Xml.text_content n

let atom_number = function
  | A_number f -> Some f
  | A_string s -> float_of_string_opt (String.trim s)
  | A_node n -> float_of_string_opt (String.trim (Xml.text_content n))
  | A_time _ -> None

let compare_atoms op a b =
  let by_value op =
    match (a, b) with
    | A_time t1, A_time t2 -> Ast.ordered_holds op (Timestamp.compare t1 t2)
    | _ -> (
      match (atom_number a, atom_number b) with
      | Some x, Some y -> Ast.ordered_holds op (Float.compare x y)
      | _ -> Ast.ordered_holds op (String.compare (atom_text a) (atom_text b)))
  in
  match op with
  | Ast.Identity -> unsupported "== needs element identity (stratum)"
  | Ast.Similar -> (
    match (a, b) with
    | A_node n1, A_node n2 ->
      let module W = Set.Make (String) in
      let wa = W.of_list (Xml.words n1) and wb = W.of_list (Xml.words n2) in
      let u = W.cardinal (W.union wa wb) in
      u = 0
      || float_of_int (W.cardinal (W.inter wa wb)) /. float_of_int u >= 0.6
    | _ -> String.equal (atom_text a) (atom_text b))
  | Ast.Contains ->
    let hay = atom_text a and needle = atom_text b in
    let hl = String.length hay and nl = String.length needle in
    nl = 0
    || (hl >= nl
        && Seq.exists
             (fun i -> String.equal (String.sub hay i nl) needle)
             (Seq.init (hl - nl + 1) Fun.id))
  | Ast.Ordered ((Ast.O_eq | Ast.O_neq) as op) -> (
    match (a, b) with
    | A_node n1, A_node n2 ->
      let eq = Xml.equal n1 n2 in
      if op = Ast.O_eq then eq else not eq
    | _ -> by_value op)
  | Ast.Ordered op -> by_value op

let rec eval_cond ~now row = function
  | Ast.C_and (a, b) -> eval_cond ~now row a && eval_cond ~now row b
  | Ast.C_or (a, b) -> eval_cond ~now row a || eval_cond ~now row b
  | Ast.C_not c -> not (eval_cond ~now row c)
  | Ast.C_cmp (le, op, re) ->
    let la = atoms (eval_expr ~now row le) in
    let ra = atoms (eval_expr ~now row re) in
    List.exists (fun a -> List.exists (fun b -> compare_atoms op a b) ra) la

let value_to_xml = function
  | V_null -> [Xml.element "null" []]
  | V_string s -> [Xml.text s]
  | V_number f ->
    [Xml.text
       (if Float.is_integer f then string_of_int (int_of_float f)
        else string_of_float f)]
  | V_time ts -> [Xml.element "time" [Xml.text (Timestamp.to_string ts)]]
  | V_nodes ns -> ns

let cartesian lists =
  List.fold_right
    (fun xs acc ->
      List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) xs)
    lists [[]]

let run t query =
  let now = Clock.now t.clock in
  try
    let per_source =
      List.map
        (fun src ->
          List.map (fun rb -> (src.Ast.src_var, rb)) (bind_source t ~now src))
        query.Ast.from
    in
    let rows : row list = cartesian per_source in
    let rows =
      match query.Ast.where with
      | None -> rows
      | Some cond -> List.filter (fun row -> eval_cond ~now row cond) rows
    in
    let results =
      if Ast.has_aggregates query then begin
        let aggregate_value = function
          | Ast.E_count _ -> V_number (float_of_int (List.length rows))
          | Ast.E_sum e ->
            V_number
              (List.fold_left
                 (fun acc row ->
                   List.fold_left
                     (fun acc a ->
                       match atom_number a with
                       | Some f -> acc +. f
                       | None -> acc)
                     acc
                     (atoms (eval_expr ~now row e)))
                 0.0 rows)
          | Ast.E_avg e ->
            let values =
              List.concat_map
                (fun row ->
                  List.filter_map atom_number (atoms (eval_expr ~now row e)))
                rows
            in
            if values = [] then V_null
            else
              V_number
                (List.fold_left ( +. ) 0.0 values
                /. float_of_int (List.length values))
          | _ -> unsupported "mixing aggregates and row expressions in SELECT"
        in
        [Xml.element "result"
           (List.concat_map
              (fun e -> value_to_xml (aggregate_value e))
              query.Ast.select)]
      end
      else
        List.map
          (fun row ->
            Xml.element "result"
              (List.concat_map
                 (fun e -> value_to_xml (eval_expr ~now row e))
                 query.Ast.select))
          rows
    in
    let results =
      if query.Ast.distinct then begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun r ->
            let key = Print.to_string r in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end)
          results
      end
      else results
    in
    Ok (Xml.element "results" results)
  with Fail e -> Error e

let run_string t input =
  match Parser.parse input with
  | Error e -> Error (Exec.Parse_error e)
  | Ok q -> run t q
