module P = Protocol

type t = { c_fd : Unix.file_descr; max_frame : int }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     (* requests are small and latency-bound: never wait on Nagle *)
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { c_fd = fd; max_frame = P.default_max_frame }

let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()
let fd t = t.c_fd

type reply = { rows : int; watermark : int; ts : int; body : string }

exception Disconnected

let request ?on_chunk t req =
  (try P.write_request t.c_fd req
   with Unix.Unix_error _ -> raise Disconnected);
  let buf = Buffer.create 256 in
  let rec await () =
    match P.read_frame ~max_frame:t.max_frame t.c_fd with
    | `Timeout -> await ()
    | `Eof | `Too_large _ -> raise Disconnected
    | exception Unix.Unix_error _ -> raise Disconnected
    | `Frame (opcode, body) -> (
      match P.decode_response opcode body with
      | Stdlib.Error _ -> raise Disconnected
      | Ok (P.Chunk s) ->
        (match on_chunk with
         | Some f -> f s
         | None -> Buffer.add_string buf s);
        await ()
      | Ok (P.Shipment _) ->
        (* shipments only answer SHIP, which goes through [ship] *)
        raise Disconnected
      | Ok (P.Done { rows; watermark; ts }) ->
        Ok { rows; watermark; ts; body = Buffer.contents buf }
      | Ok P.Pong -> Ok { rows = 0; watermark = 0; ts = 0; body = "" }
      | Ok (P.Error (code, msg)) -> Stdlib.Error (code, msg))
  in
  await ()

let ping t = match request t P.Ping with Ok _ -> true | Stdlib.Error _ -> false

let ship t ~from ?(max = 0) () =
  (try P.write_request t.c_fd (P.Ship { from; max })
   with Unix.Unix_error _ -> raise Disconnected);
  let shipments = ref [] in
  let rec await () =
    match P.read_frame ~max_frame:t.max_frame t.c_fd with
    | `Timeout -> await ()
    | `Eof | `Too_large _ -> raise Disconnected
    | exception Unix.Unix_error _ -> raise Disconnected
    | `Frame (opcode, body) -> (
      match P.decode_response opcode body with
      | Stdlib.Error _ -> raise Disconnected
      | Ok (P.Shipment s) -> (
        match Txq_db.Journal_record.decode_shipment s with
        | Ok sh ->
          shipments := sh :: !shipments;
          await ()
        | Stdlib.Error _ -> raise Disconnected)
      | Ok (P.Done { rows; watermark; ts }) ->
        Ok (List.rev !shipments, { rows; watermark; ts; body = "" })
      | Ok (P.Error (code, msg)) -> Stdlib.Error (code, msg)
      | Ok (P.Chunk _ | P.Pong) -> raise Disconnected)
  in
  await ()

let query ?on_chunk t stmt = request ?on_chunk t (P.Query stmt)
let insert t ~url doc = request t (P.Insert (url, doc))
let update t ~url doc = request t (P.Update (url, doc))
let delete t ~url = request t (P.Delete url)
let metrics t = request t P.Metrics
let stats t = request t P.Stats
