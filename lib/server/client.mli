(** Blocking txmldbd client: one connection, one request in flight.

    The unit the soak tests, the load generator and the CLI share.  Each
    request accumulates the reply's chunks (or hands them to [on_chunk])
    until the terminal frame arrives. *)

type t

val connect : ?host:string -> port:int -> unit -> t
val close : t -> unit
val fd : t -> Unix.file_descr
(** Exposed so tests can kill a connection mid-stream. *)

type reply = {
  rows : int;
  watermark : int;  (** snapshot watermark (reads) / post-commit (writes) *)
  ts : int;  (** epoch seconds; for writes, the commit timestamp *)
  body : string;  (** concatenated chunks *)
}

exception Disconnected
(** The server closed (or the transport died) before a terminal frame. *)

val request :
  ?on_chunk:(string -> unit) -> t -> Protocol.request ->
  (reply, int * string) result
(** [Error (code, message)] carries the server's error frame.  Raises
    {!Disconnected} on transport failure — after which the connection
    must be closed, not reused. *)

val ping : t -> bool

val query :
  ?on_chunk:(string -> unit) -> t -> string -> (reply, int * string) result
(** A statement (query or algebra); [reply.body] is the full
    [<results>…</results>] document unless [on_chunk] consumed it. *)

val insert : t -> url:string -> string -> (reply, int * string) result
val update : t -> url:string -> string -> (reply, int * string) result
val delete : t -> url:string -> (reply, int * string) result
val metrics : t -> (reply, int * string) result
val stats : t -> (reply, int * string) result

val ship :
  t -> from:int -> ?max:int -> unit ->
  (Txq_db.Journal_record.shipment list * reply, int * string) result
(** One SHIP pull: decoded shipments in order plus the terminal reply —
    [reply.rows] is the count shipped, [reply.watermark] the primary's
    durable record total (lag = watermark − from − rows).  [max = 0]
    (the default) lets the server choose its batch size.  An
    [E_ship_gap] error means the replica must re-clone. *)
