module Mixed = Txq_workload.Mixed
module Load = Txq_workload.Load
module Print = Txq_xml.Print
module P = Protocol

type report = {
  r_ops : int;
  r_errors : int;
  r_disconnects : int;
  r_rows : int;
  r_bytes : int;
  r_elapsed_s : float;
  r_qps : float;
  r_latencies_us : float array;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

(* Per-thread tally, merged under a mutex at the end. *)
type tally = {
  mutable t_ops : int;
  mutable t_errors : int;
  mutable t_disconnects : int;
  mutable t_rows : int;
  mutable t_bytes : int;
  mutable t_lat : float list;
}

let new_tally () =
  { t_ops = 0; t_errors = 0; t_disconnects = 0; t_rows = 0; t_bytes = 0;
    t_lat = [] }

let request_of_op = function
  | Mixed.Query stmt -> P.Query stmt
  | Mixed.Insert (url, xml) -> P.Insert (url, Print.to_string xml)
  | Mixed.Update (url, xml) -> P.Update (url, Print.to_string xml)
  | Mixed.Delete url -> P.Delete url

let issue tally conn op =
  let t0 = Unix.gettimeofday () in
  match Client.request conn (request_of_op op) with
  | Ok reply ->
    tally.t_ops <- tally.t_ops + 1;
    tally.t_rows <- tally.t_rows + reply.Client.rows;
    tally.t_bytes <- tally.t_bytes + String.length reply.Client.body;
    tally.t_lat <- ((Unix.gettimeofday () -. t0) *. 1e6) :: tally.t_lat;
    `Ok
  | Stdlib.Error _ ->
    tally.t_ops <- tally.t_ops + 1;
    tally.t_errors <- tally.t_errors + 1;
    tally.t_lat <- ((Unix.gettimeofday () -. t0) *. 1e6) :: tally.t_lat;
    `Ok
  | exception Client.Disconnected ->
    tally.t_disconnects <- tally.t_disconnects + 1;
    `Lost

let merge tallies elapsed =
  let ops = List.fold_left (fun a t -> a + t.t_ops) 0 tallies in
  let lat =
    Array.of_list (List.concat_map (fun t -> t.t_lat) tallies)
  in
  Array.sort Float.compare lat;
  {
    r_ops = ops;
    r_errors = List.fold_left (fun a t -> a + t.t_errors) 0 tallies;
    r_disconnects = List.fold_left (fun a t -> a + t.t_disconnects) 0 tallies;
    r_rows = List.fold_left (fun a t -> a + t.t_rows) 0 tallies;
    r_bytes = List.fold_left (fun a t -> a + t.t_bytes) 0 tallies;
    r_elapsed_s = elapsed;
    r_qps = (if elapsed > 0.0 then float_of_int ops /. elapsed else 0.0);
    r_latencies_us = lat;
  }

let closed_loop ?(host = "127.0.0.1") ~port ~clients ~ops_per_client ?mix ?spec
    ?reconnect_every ~seed () =
  let t0 = Unix.gettimeofday () in
  let run client_id tally =
    let gen = Mixed.create ?mix ?spec ~client:client_id ~seed () in
    let conn = ref (Client.connect ~host ~port ()) in
    let reconnect () =
      Client.close !conn;
      conn := Client.connect ~host ~port ()
    in
    (try
       for i = 1 to ops_per_client do
         (match reconnect_every with
          | Some k when k > 0 && i mod k = 0 -> reconnect ()
          | _ -> ());
         match issue tally !conn (Mixed.next_op gen) with
         | `Ok -> ()
         | `Lost -> reconnect ()
       done
     with _ -> ());
    Client.close !conn
  in
  let tallies = List.init clients (fun _ -> new_tally ()) in
  let threads =
    List.mapi (fun i tally -> Thread.create (fun () -> run i tally) ()) tallies
  in
  List.iter Thread.join threads;
  merge tallies (Unix.gettimeofday () -. t0)

let open_loop ?(host = "127.0.0.1") ~port ~conns ~rate_per_s ~duration_s ?mix
    ?spec ~seed () =
  let schedule = Mixed.arrivals ~seed ~rate_per_s ~duration_s in
  (* shard arrivals round-robin over the pool: each connection serves its
     own sub-schedule in order (a late reply delays only its shard) *)
  let shards = Array.make conns [] in
  List.iteri
    (fun i at -> shards.(i mod conns) <- at :: shards.(i mod conns))
    schedule;
  let t0 = Unix.gettimeofday () in
  let run shard_id tally =
    let gen = Mixed.create ?mix ?spec ~client:shard_id ~seed () in
    let conn = Client.connect ~host ~port () in
    (try
       List.iter
         (fun at ->
           let now = Unix.gettimeofday () -. t0 in
           if at > now then Thread.delay (at -. now);
           ignore (issue tally conn (Mixed.next_op gen)))
         (List.rev shards.(shard_id))
     with _ -> ());
    Client.close conn
  in
  let tallies = List.init conns (fun _ -> new_tally ()) in
  let threads =
    List.mapi (fun i tally -> Thread.create (fun () -> run i tally) ()) tallies
  in
  List.iter Thread.join threads;
  merge tallies (Unix.gettimeofday () -. t0)
