(** Socket-level load generation against a running txmldbd.

    Drives {!Txq_workload.Mixed} operation streams over real connections,
    in two disciplines:

    - {b closed loop}: [clients] threads, each with its own connection
      and deterministic op stream, issuing the next request as soon as
      the previous reply lands — measures sustainable throughput;
    - {b open loop}: requests are dispatched on a Poisson arrival
      schedule over a fixed connection pool regardless of completion —
      measures behavior at an offered rate, queueing included.

    [reconnect_every n] makes each client drop and re-open its
    connection every [n] operations (connection churn). *)

type report = {
  r_ops : int;  (** requests answered (including error replies) *)
  r_errors : int;  (** error replies *)
  r_disconnects : int;  (** connections the transport dropped *)
  r_rows : int;  (** total result rows *)
  r_bytes : int;  (** response body bytes received *)
  r_elapsed_s : float;
  r_qps : float;  (** [r_ops /. r_elapsed_s] *)
  r_latencies_us : float array;  (** per-request, sorted ascending *)
}

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,100\]]; 0 on empty input. *)

val closed_loop :
  ?host:string ->
  port:int ->
  clients:int ->
  ops_per_client:int ->
  ?mix:Txq_workload.Mixed.mix ->
  ?spec:Txq_workload.Load.spec ->
  ?reconnect_every:int ->
  seed:int ->
  unit ->
  report

val open_loop :
  ?host:string ->
  port:int ->
  conns:int ->
  rate_per_s:float ->
  duration_s:float ->
  ?mix:Txq_workload.Mixed.mix ->
  ?spec:Txq_workload.Load.spec ->
  seed:int ->
  unit ->
  report
