type request =
  | Ping
  | Query of string
  | Explain of string
  | Analyze of string
  | Insert of string * string
  | Update of string * string
  | Delete of string
  | Metrics
  | Stats
  | Ship of { from : int; max : int }

type response =
  | Done of { rows : int; watermark : int; ts : int }
  | Chunk of string
  | Error of int * string
  | Pong
  | Shipment of string

type error_code =
  | E_parse
  | E_unknown_variable
  | E_unsupported
  | E_internal
  | E_bad_frame
  | E_conflict
  | E_shutting_down
  | E_too_large
  | E_ship_gap

let error_code_to_int = function
  | E_parse -> 1
  | E_unknown_variable -> 2
  | E_unsupported -> 3
  | E_internal -> 4
  | E_bad_frame -> 5
  | E_conflict -> 6
  | E_shutting_down -> 7
  | E_too_large -> 8
  | E_ship_gap -> 9

let error_code_of_int = function
  | 1 -> Some E_parse
  | 2 -> Some E_unknown_variable
  | 3 -> Some E_unsupported
  | 4 -> Some E_internal
  | 5 -> Some E_bad_frame
  | 6 -> Some E_conflict
  | 7 -> Some E_shutting_down
  | 8 -> Some E_too_large
  | 9 -> Some E_ship_gap
  | _ -> None

let default_max_frame = 4 * 1024 * 1024

(* --- request encoding ---------------------------------------------------- *)

let op_ping = 0x00
let op_query = 0x01
let op_explain = 0x02
let op_analyze = 0x03
let op_insert = 0x10
let op_update = 0x11
let op_delete = 0x12
let op_metrics = 0x20
let op_stats = 0x21
let op_ship = 0x30
let op_done = 0x80
let op_chunk = 0x81
let op_error = 0x82
let op_pong = 0x83
let op_shipment = 0x84

(* url ++ document, with a u16 BE url-length prefix *)
let encode_url_doc url doc =
  let ul = String.length url in
  if ul > 0xffff then invalid_arg "Protocol: url longer than 65535 bytes";
  let b = Buffer.create (2 + ul + String.length doc) in
  Buffer.add_uint16_be b ul;
  Buffer.add_string b url;
  Buffer.add_string b doc;
  Buffer.contents b

let decode_url_doc body =
  if String.length body < 2 then Stdlib.Error "truncated url length"
  else begin
    let ul = String.get_uint16_be body 0 in
    if String.length body < 2 + ul then Stdlib.Error "truncated url"
    else
      Ok
        ( String.sub body 2 ul,
          String.sub body (2 + ul) (String.length body - 2 - ul) )
  end

let encode_request = function
  | Ping -> (op_ping, "")
  | Query s -> (op_query, s)
  | Explain s -> (op_explain, s)
  | Analyze s -> (op_analyze, s)
  | Insert (url, doc) -> (op_insert, encode_url_doc url doc)
  | Update (url, doc) -> (op_update, encode_url_doc url doc)
  | Delete url -> (op_delete, url)
  | Metrics -> (op_metrics, "")
  | Stats -> (op_stats, "")
  | Ship { from; max } ->
    let b = Buffer.create 12 in
    Buffer.add_int64_be b (Int64.of_int from);
    Buffer.add_int32_be b (Int32.of_int max);
    (op_ship, Buffer.contents b)

let decode_request opcode body =
  match opcode with
  | op when op = op_ping -> Ok Ping
  | op when op = op_query -> Ok (Query body)
  | op when op = op_explain -> Ok (Explain body)
  | op when op = op_analyze -> Ok (Analyze body)
  | op when op = op_insert ->
    Result.map (fun (u, d) -> Insert (u, d)) (decode_url_doc body)
  | op when op = op_update ->
    Result.map (fun (u, d) -> Update (u, d)) (decode_url_doc body)
  | op when op = op_delete -> Ok (Delete body)
  | op when op = op_metrics -> Ok Metrics
  | op when op = op_stats -> Ok Stats
  | op when op = op_ship ->
    if String.length body <> 12 then
      Stdlib.Error "SHIP frame body must be 12 bytes"
    else begin
      let from = Int64.to_int (String.get_int64_be body 0) in
      let max = Int32.to_int (String.get_int32_be body 8) in
      if from < 0 || max < 0 then Stdlib.Error "negative SHIP field"
      else Ok (Ship { from; max })
    end
  | op -> Stdlib.Error (Printf.sprintf "unknown request opcode 0x%02x" op)

let encode_response = function
  | Pong -> (op_pong, "")
  | Chunk s -> (op_chunk, s)
  | Shipment s -> (op_shipment, s)
  | Error (code, msg) ->
    let b = Buffer.create (1 + String.length msg) in
    Buffer.add_uint8 b (code land 0xff);
    Buffer.add_string b msg;
    (op_error, Buffer.contents b)
  | Done { rows; watermark; ts } ->
    let b = Buffer.create 24 in
    Buffer.add_int64_be b (Int64.of_int rows);
    Buffer.add_int64_be b (Int64.of_int watermark);
    Buffer.add_int64_be b (Int64.of_int ts);
    (op_done, Buffer.contents b)

let decode_response opcode body =
  match opcode with
  | op when op = op_pong -> Ok Pong
  | op when op = op_chunk -> Ok (Chunk body)
  | op when op = op_shipment -> Ok (Shipment body)
  | op when op = op_error ->
    if String.length body < 1 then Stdlib.Error "truncated error frame"
    else
      Ok
        (Error
           ( Char.code body.[0],
             String.sub body 1 (String.length body - 1) ))
  | op when op = op_done ->
    if String.length body <> 24 then Stdlib.Error "DONE frame must be 24 bytes"
    else
      Ok
        (Done
           {
             rows = Int64.to_int (String.get_int64_be body 0);
             watermark = Int64.to_int (String.get_int64_be body 8);
             ts = Int64.to_int (String.get_int64_be body 16);
           })
  | op -> Stdlib.Error (Printf.sprintf "unknown response opcode 0x%02x" op)

(* --- frame I/O ----------------------------------------------------------- *)

let rec really_write fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd buf (off + n) (len - n)
  end

let write_frame fd opcode body =
  let len = 1 + String.length body in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_uint8 b 4 opcode;
  Bytes.blit_string body 0 b 5 (String.length body);
  really_write fd b 0 (Bytes.length b)

(* Reads exactly [len] bytes.  With [idle_timeout], a receive timeout
   before the first byte surfaces as [`Timeout] (so a serving loop can
   poll its shutdown flag between frames); once a read has started, or
   without the flag, timeouts keep waiting — a receive timeout never
   tears a frame in half. *)
let really_read ?(idle_timeout = false) fd buf len =
  let rec go off =
    if off >= len then `Ok
    else begin
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if idle_timeout && off = 0 then `Timeout else go off
    end
  in
  go 0

let read_frame ~max_frame fd =
  let hdr = Bytes.create 4 in
  match really_read ~idle_timeout:true fd hdr 4 with
  | `Eof 0 -> `Eof
  | `Eof _ -> `Eof (* peer died mid-header: nothing recoverable either way *)
  | `Timeout -> `Timeout
  | `Ok ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 1 || len > max_frame then `Too_large len
    else begin
      let b = Bytes.create len in
      match really_read fd b len with
      | `Eof _ | `Timeout -> `Eof
      | `Ok ->
        (`Frame (Bytes.get_uint8 b 0, Bytes.sub_string b 1 (len - 1)))
    end

let write_request fd r =
  let opcode, body = encode_request r in
  write_frame fd opcode body

let write_response fd r =
  let opcode, body = encode_response r in
  write_frame fd opcode body

let http_preamble s = String.length s >= 4 && String.equal (String.sub s 0 4) "GET "
