(** The txmldbd wire protocol: length-prefixed binary frames.

    A frame is [u32 BE length ++ u8 opcode ++ body], where [length] counts
    the opcode byte plus the body.  Requests flow client→server, responses
    server→client; a request is answered by zero or more [Chunk] frames
    followed by exactly one terminal frame ([Done], [Error] or [Pong]).
    Chunks carry raw UTF-8 text; for statements, the concatenation of a
    reply's chunks wrapped in [<results>…</results>] equals the
    non-streaming result document byte for byte.

    The server also answers plain HTTP/1.1 [GET] on the same port
    (detected by the first bytes of the connection): [/metrics] and
    [/stats] return [text/plain; Connection: close] renderings of the
    METRICS and STATS frames, for scrapers that don't speak the binary
    protocol.

    See [docs/PROTOCOL.md] for the normative description. *)

type request =
  | Ping
  | Query of string  (** a statement: SELECT query or algebra expression *)
  | Explain of string
  | Analyze of string  (** EXPLAIN ANALYZE: runs the statement *)
  | Insert of string * string  (** url, document bytes *)
  | Update of string * string
  | Delete of string
  | Metrics
  | Stats
  | Ship of { from : int; max : int }
      (** journal shipping pull: records [from ..], at most [max] per
          reply ([max = 0] lets the server pick its default batch).
          Answered by [Shipment] frames then [Done], whose [rows] is the
          number shipped and [watermark] the primary's durable record
          count — the replica's lag is [watermark - (from + rows)]. *)

type response =
  | Done of { rows : int; watermark : int; ts : int }
      (** terminal success: rows emitted; the snapshot watermark the
          request ran at (for writes, the watermark after the commit); the
          request's transaction-time instant in epoch seconds (for writes,
          the commit timestamp). *)
  | Chunk of string
  | Error of int * string  (** {!error_code} value and rendered message *)
  | Pong
  | Shipment of string
      (** one encoded [Journal_record.shipment] (see
          [Journal_record.decode_shipment]) *)

(** Error codes, stable across releases (the message text is not). *)
type error_code =
  | E_parse  (** 1 — statement failed to parse *)
  | E_unknown_variable  (** 2 *)
  | E_unsupported  (** 3 *)
  | E_internal  (** 4 — the evaluator leaked a non-typed failure *)
  | E_bad_frame  (** 5 — unknown opcode or malformed request body *)
  | E_conflict  (** 6 — write refused (duplicate URL, no such URL, …) *)
  | E_shutting_down  (** 7 *)
  | E_too_large  (** 8 — frame exceeds the server's limit *)
  | E_ship_gap
      (** 9 — the requested journal records were vacuumed away on the
          primary; the replica must re-clone from current state *)

val error_code_to_int : error_code -> int
val error_code_of_int : int -> error_code option

val default_max_frame : int
(** 4 MiB: bounds a malicious length prefix. *)

(** {1 Framing} *)

val encode_request : request -> int * string
(** Opcode and body. *)

val decode_request : int -> string -> (request, string) result
(** Inverse of {!encode_request}; [Error] describes the malformation. *)

val encode_response : response -> int * string
val decode_response : int -> string -> (response, string) result

(** {1 Blocking frame I/O}

    All functions retry [EINTR].  They are the only code that touches the
    socket, so the framing layer is fuzzable in isolation. *)

val write_frame : Unix.file_descr -> int -> string -> unit
(** [write_frame fd opcode body]; raises [Unix.Unix_error] on a dead
    peer. *)

val read_frame :
  max_frame:int ->
  Unix.file_descr ->
  [ `Frame of int * string | `Eof | `Too_large of int | `Timeout ]
(** One frame.  [`Eof] on a clean close before the length prefix;
    a peer that dies mid-frame raises [Unix.Unix_error].  [`Too_large]
    reports an announced length over [max_frame] (the connection must
    then be dropped: the stream is no longer in sync).  [`Timeout]
    surfaces [EAGAIN]/[EWOULDBLOCK] from a receive timeout, with no
    bytes consumed, so servers can poll a shutdown flag. *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit

val http_preamble : string -> bool
(** Does this look like the start of an HTTP GET rather than a binary
    frame?  (A binary frame never starts with ["GET "]: that would be a
    1.2 GiB length prefix, over any sane [max_frame].) *)
