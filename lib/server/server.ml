module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Exec = Txq_query.Exec
module Parser = Txq_query.Parser
module Ast = Txq_query.Ast
module Rewrite = Txq_query.Rewrite
module Metrics = Txq_obs.Metrics
module Timestamp = Txq_temporal.Timestamp
module Xml = Txq_xml.Xml
module Print = Txq_xml.Print
module P = Protocol

let log_src = Logs.Src.create "txq.server" ~doc:"txmldbd"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  host : string;
  port : int;
  readers : int;
  max_frame : int;
  chunk_bytes : int;
  idle_timeout_s : float;
  grace_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    readers = 4;
    max_frame = P.default_max_frame;
    chunk_bytes = 8 * 1024;
    idle_timeout_s = 0.25;
    grace_s = 5.0;
  }

(* Per-connection counters; merged into the global registry on close so
   /metrics aggregates, while STATS on a live connection reports its own. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_requests : int;
  mutable c_bytes_out : int;
  mutable c_errors : int;
}

type t = {
  db : Db.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  stop_mu : Mutex.t;
  mutable workers : unit Domain.t list;
  conns : (int, conn) Hashtbl.t;
  conns_mu : Mutex.t;
  next_conn : int Atomic.t;
  (* Highest record index any SHIP reply has reached (from + sent):
     feeds the replica-lag gauge without tracking replicas by name. *)
  last_shipped : int Atomic.t;
}

let port t = t.bound_port

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let active_connections t = locked t.conns_mu @@ fun () -> Hashtbl.length t.conns

let register_conn t conn =
  locked t.conns_mu (fun () -> Hashtbl.replace t.conns conn.c_id conn);
  Metrics.incr "server.connections_total"

let unregister_conn t conn =
  locked t.conns_mu (fun () -> Hashtbl.remove t.conns conn.c_id);
  Metrics.incr "server.requests" ~by:conn.c_requests;
  Metrics.incr "server.bytes_out" ~by:conn.c_bytes_out;
  Metrics.incr "server.errors" ~by:conn.c_errors

(* --- responses ----------------------------------------------------------- *)

let send conn resp =
  let opcode, body = P.encode_response resp in
  P.write_frame conn.c_fd opcode body;
  conn.c_bytes_out <- conn.c_bytes_out + 5 + String.length body

let send_error conn code msg =
  conn.c_errors <- conn.c_errors + 1;
  send conn (P.Error (P.error_code_to_int code, msg))

let code_of_exec_error = function
  | Exec.Parse_error _ -> P.E_parse
  | Exec.Unknown_variable _ -> P.E_unknown_variable
  | Exec.Unsupported _ -> P.E_unsupported
  | Exec.Internal _ -> P.E_internal

let send_exec_error conn e =
  send_error conn (code_of_exec_error e) (Exec.error_to_string e)

(* Send a (possibly large) text as bounded chunks. *)
let send_text t conn text =
  let len = String.length text in
  let rec go off =
    if off < len then begin
      let n = Stdlib.min t.cfg.chunk_bytes (len - off) in
      send conn (P.Chunk (String.sub text off n));
      go (off + n)
    end
  in
  go 0

(* --- read requests: one snapshot per request ----------------------------- *)

let with_snapshot t f =
  let snap = Db.snapshot t.db in
  Fun.protect ~finally:(fun () -> Db.release snap) (fun () -> f snap)

let rewrite_statement snap stmt = Rewrite.statement ~now:(Db.now snap) stmt

let done_at snap ~rows =
  P.Done
    {
      rows;
      watermark = Option.value ~default:0 (Db.snapshot_watermark snap);
      ts = Timestamp.to_seconds (Db.now snap);
    }

(* Statement results stream: rows render one at a time into a bounded
   buffer that flushes as CHUNK frames, so a TPatternScanAll over a deep
   chain never materializes its result document server-side. *)
let handle_query t conn stmt =
  with_snapshot t @@ fun snap ->
  let stmt = rewrite_statement snap stmt in
  let buf = Buffer.create (t.cfg.chunk_bytes + 512) in
  let flush () =
    if Buffer.length buf > 0 then begin
      send conn (P.Chunk (Buffer.contents buf));
      Buffer.clear buf
    end
  in
  Buffer.add_string buf "<results>";
  let on_row xml =
    Buffer.add_string buf (Print.to_string xml);
    if Buffer.length buf >= t.cfg.chunk_bytes then flush ()
  in
  match Exec.stream_statement snap stmt ~on_row with
  | Ok rows ->
    if rows = 0 then begin
      (* nothing flushed yet: replace the opener with the canonical
         empty-element form, matching the non-streaming printer *)
      Buffer.clear buf;
      Buffer.add_string buf "<results/>"
    end
    else Buffer.add_string buf "</results>";
    flush ();
    send conn (done_at snap ~rows)
  | Error e -> send_exec_error conn e

let handle_explain t conn input =
  with_snapshot t @@ fun snap ->
  match Exec.explain_string snap input with
  | Ok plan ->
    send_text t conn plan;
    send conn (done_at snap ~rows:0)
  | Error e -> send_exec_error conn e

let handle_analyze t conn stmt =
  with_snapshot t @@ fun snap ->
  let stmt = rewrite_statement snap stmt in
  let result, report = Exec.explain_analyze_statement snap stmt in
  send_text t conn report;
  let rows =
    match result with Ok xml -> List.length (Xml.children xml) | Error _ -> 0
  in
  send conn (done_at snap ~rows)

(* --- write requests ------------------------------------------------------ *)

(* The commit timestamp is read back from the committed version itself
   (version 0 for an insert, the delta's target version for an update,
   the docstore's deletion mark for a delete), so a concurrent writer
   advancing the clock between our commit and the response cannot skew
   it.  The differential soak test depends on this exactness. *)
let write_result t ~ts =
  let watermark = Db.with_read t.db (fun () -> (Db.stats t.db).Db.commits) in
  P.Done { rows = 1; watermark; ts = Timestamp.to_seconds ts }

let handle_insert t conn url doc =
  match Txq_xml.Parse.parse doc with
  | Error e -> send_error conn P.E_parse ("document: " ^ Txq_xml.Parse.error_to_string e)
  | Ok xml -> (
    match Db.insert_document t.db ~url xml with
    | id ->
      let ts =
        Db.with_read t.db (fun () -> Docstore.ts_of_version (Db.doc t.db id) 0)
      in
      send conn (write_result t ~ts)
    | exception Invalid_argument msg -> send_error conn P.E_conflict msg)

let handle_update t conn url doc =
  match Txq_xml.Parse.parse doc with
  | Error e -> send_error conn P.E_parse ("document: " ^ Txq_xml.Parse.error_to_string e)
  | Ok xml -> (
    match Db.update_document t.db ~url xml with
    | delta ->
      let v = delta.Txq_vxml.Delta.to_version in
      let ts =
        Db.with_read t.db (fun () ->
            match Db.find_live t.db url with
            | Some d -> Docstore.ts_of_version d v
            | None -> (
              (* deleted concurrently after our commit: the incarnation
                 that carries version [v] is the newest dead one *)
              match List.rev (Db.find_all t.db url) with
              | d :: _ -> Docstore.ts_of_version d v
              | [] -> Db.now t.db))
      in
      send conn (write_result t ~ts)
    | exception Invalid_argument msg -> send_error conn P.E_conflict msg)

let handle_delete t conn url =
  let target = Db.with_read t.db (fun () -> Db.find_live t.db url) in
  match Db.delete_document t.db ~url () with
  | () ->
    let ts =
      match target with
      | Some d -> (
        match Docstore.deleted_at d with Some ts -> ts | None -> Db.now t.db)
      | None -> Db.now t.db
    in
    send conn (write_result t ~ts)
  | exception Invalid_argument msg -> send_error conn P.E_conflict msg

(* --- journal shipping ----------------------------------------------------- *)

(* One SHIP pull: the shipments as individual frames, then DONE carrying
   the primary's durable watermark so the replica knows its lag without a
   second round trip. *)
let handle_ship t conn ~from ~max =
  let limit = if max = 0 then 256 else Stdlib.min max 4096 in
  match Db.ship t.db ~from ~limit () with
  | shipments ->
    List.iter
      (fun sh ->
        send conn (P.Shipment (Txq_db.Journal_record.encode_shipment sh)))
      shipments;
    let watermark = Db.durable_records t.db in
    let sent = List.length shipments in
    let upto = from + sent in
    (* monotone max: concurrent pulls for older ranges must not regress it *)
    let rec bump () =
      let seen = Atomic.get t.last_shipped in
      if upto > seen && not (Atomic.compare_and_set t.last_shipped seen upto)
      then bump ()
    in
    bump ();
    Metrics.set_gauge "server.replica_lag"
      (Stdlib.max 0 (watermark - Atomic.get t.last_shipped));
    send conn
      (P.Done { rows = sent; watermark; ts = Timestamp.to_seconds (Db.now t.db) })
  | exception Db.Ship_gap i ->
    send_error conn P.E_ship_gap
      (Printf.sprintf
         "record %d was vacuumed away; re-clone from current state" i)
  | exception Invalid_argument msg -> send_error conn P.E_unsupported msg

(* --- metrics and stats --------------------------------------------------- *)

let metrics_text t =
  Metrics.set_gauge "server.active_connections" (active_connections t);
  Metrics.set_gauge "server.active_snapshots" (Db.pinned_snapshots t.db);
  (* Registry counters only merge a connection's tallies when it closes;
     append the live connections so a scrape never under-reports. *)
  let live =
    locked t.conns_mu @@ fun () ->
    Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
    |> List.sort (fun a b -> compare a.c_id b.c_id)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b (Fmt.str "%a" Metrics.pp_dump ());
  if live <> [] then begin
    Buffer.add_string b "active connections:\n";
    List.iter
      (fun c ->
        Buffer.add_string b
          (Printf.sprintf
             "  conn.%d  requests %d  bytes_out %d  errors %d\n" c.c_id
             c.c_requests c.c_bytes_out c.c_errors))
      live
  end;
  Buffer.contents b

let fti_stats t =
  match Db.config t.db with
  | { Txq_db.Config.fti_mode = Txq_db.Config.Fti_versions | Txq_db.Config.Fti_both; _ } ->
    (* the tail counters are writer-mutated: read them under the lock *)
    Some (Db.with_read t.db (fun () -> Txq_fti.Fti.stats (Db.fti t.db)))
  | _ -> None

let stats_text t conn =
  let s = Db.stats t.db in
  let b = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "commits: %d\n" s.Db.commits;
  addf "documents: %d\n" (Db.document_count t.db);
  addf "pinned snapshots: %d\n" (Db.pinned_snapshots t.db);
  addf "active connections: %d\n" (active_connections t);
  (match Db.journal t.db with
   | Some _ ->
     let durable = Db.durable_records t.db in
     addf "durable records: %d\n" durable;
     addf "replica lag: %d\n"
       (Stdlib.max 0 (durable - Atomic.get t.last_shipped))
   | None -> ());
  (match fti_stats t with
   | Some f ->
     addf "fti words: %d\n" f.Txq_fti.Fti.fs_words;
     addf "fti postings: %d (%d open)\n" f.Txq_fti.Fti.fs_postings
       f.Txq_fti.Fti.fs_open_postings;
     addf "fti segments: %d (%d freezes)\n" f.Txq_fti.Fti.fs_segments
       f.Txq_fti.Fti.fs_freezes
   | None -> ());
  (match conn with
   | Some c ->
     addf "conn.id: %d\n" c.c_id;
     addf "conn.requests: %d\n" c.c_requests;
     addf "conn.bytes_out: %d\n" c.c_bytes_out;
     addf "conn.errors: %d\n" c.c_errors
   | None -> ());
  Buffer.contents b

(* The HTTP endpoint serves the same numbers as machine-readable JSON
   (everything here is a non-negative int: no escaping concerns). *)
let stats_json t =
  let s = Db.stats t.db in
  let field (k, v) = Printf.sprintf "%S: %d" k v in
  let fti =
    match fti_stats t with
    | None -> []
    | Some f ->
      [ Printf.sprintf "%S: {%s}" "fti"
          (String.concat ", "
             (List.map field
                [ ("words", f.Txq_fti.Fti.fs_words);
                  ("postings", f.Txq_fti.Fti.fs_postings);
                  ("open_postings", f.Txq_fti.Fti.fs_open_postings);
                  ("tail_postings", f.Txq_fti.Fti.fs_tail_postings);
                  ("frozen_postings", f.Txq_fti.Fti.fs_frozen_postings);
                  ("segments", f.Txq_fti.Fti.fs_segments);
                  ("frozen_bytes", f.Txq_fti.Fti.fs_frozen_bytes);
                  ("freezes", f.Txq_fti.Fti.fs_freezes) ])) ]
  in
  let ship =
    match Db.journal t.db with
    | None -> []
    | Some _ ->
      let durable = Db.durable_records t.db in
      let shipped = Atomic.get t.last_shipped in
      [ Printf.sprintf "%S: {%s}" "ship"
          (String.concat ", "
             (List.map field
                [ ("durable_records", durable);
                  ("last_shipped", shipped);
                  ("replica_lag", Stdlib.max 0 (durable - shipped)) ])) ]
  in
  "{"
  ^ String.concat ", "
      (List.map field
         [ ("commits", s.Db.commits);
           ("documents", Db.document_count t.db);
           ("pinned_snapshots", Db.pinned_snapshots t.db);
           ("active_connections", active_connections t) ]
      @ fti @ ship)
  ^ "}\n"

(* --- request dispatch ---------------------------------------------------- *)

let parse_and f t conn input =
  match Parser.parse_statement input with
  | Error e -> send_error conn P.E_parse e
  | Ok stmt -> f t conn stmt

let handle_request t conn = function
  | P.Ping -> send conn P.Pong
  | P.Query s -> parse_and handle_query t conn s
  | P.Explain s -> handle_explain t conn s
  | P.Analyze s -> parse_and handle_analyze t conn s
  | P.Insert (url, doc) -> handle_insert t conn url doc
  | P.Update (url, doc) -> handle_update t conn url doc
  | P.Delete url -> handle_delete t conn url
  | P.Metrics ->
    send_text t conn (metrics_text t);
    send conn (P.Done { rows = 0; watermark = 0; ts = 0 })
  | P.Stats ->
    send_text t conn (stats_text t (Some conn));
    send conn (P.Done { rows = 0; watermark = 0; ts = 0 })
  | P.Ship { from; max } -> handle_ship t conn ~from ~max

let serve_binary t conn =
  let rec loop () =
    match P.read_frame ~max_frame:t.cfg.max_frame conn.c_fd with
    | `Timeout -> if Atomic.get t.stopping then () else loop ()
    | `Eof -> ()
    | `Too_large len ->
      (* the stream is out of sync past a rejected length: answer, drop *)
      send_error conn P.E_too_large
        (Printf.sprintf "frame of %d bytes exceeds limit %d" len t.cfg.max_frame)
    | `Frame (opcode, body) ->
      conn.c_requests <- conn.c_requests + 1;
      (match P.decode_request opcode body with
       | Error msg ->
         send_error conn P.E_bad_frame msg;
         loop ()
       | Ok req ->
         if Atomic.get t.stopping && req <> P.Ping then begin
           send_error conn P.E_shutting_down "server is shutting down"
           (* terminal: the client is told to go away *)
         end
         else begin
           handle_request t conn req;
           loop ()
         end)
  in
  loop ()

(* --- minimal HTTP/1.1 ---------------------------------------------------- *)

let http_respond ?(content_type = "text/plain; charset=utf-8") conn ~status
    ~body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status content_type (String.length body)
  in
  let payload = head ^ body in
  let b = Bytes.of_string payload in
  let rec wr off =
    if off < Bytes.length b then begin
      let n =
        try Unix.write conn.c_fd b off (Bytes.length b - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      wr (off + n)
    end
  in
  wr 0;
  conn.c_bytes_out <- conn.c_bytes_out + String.length payload

(* Read the request head (we only care about the request line; bounded). *)
let http_read_head fd =
  let buf = Buffer.create 512 in
  let b = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else begin
      match Unix.read fd b 0 (Bytes.length b) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf b 0 n;
        let s = Buffer.contents buf in
        if
          String.length s >= 4
          && String.sub s (String.length s - 4) 4 = "\r\n\r\n"
        then Some s
        else go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* idle timeout while reading the head: give up on the request *)
        None
    end
  in
  go ()

let serve_http t conn =
  match http_read_head conn.c_fd with
  | None -> ()
  | Some head ->
    conn.c_requests <- conn.c_requests + 1;
    let path =
      match String.split_on_char ' ' head with
      | _meth :: path :: _ -> path
      | _ -> "/"
    in
    (match path with
     | "/metrics" -> http_respond conn ~status:"200 OK" ~body:(metrics_text t)
     | "/stats" ->
       http_respond conn ~content_type:"application/json" ~status:"200 OK"
         ~body:(stats_json t)
     | _ ->
       conn.c_errors <- conn.c_errors + 1;
       http_respond conn ~status:"404 Not Found" ~body:"not found\n")

(* --- connection & accept loops ------------------------------------------- *)

(* Decide binary vs HTTP from the first bytes without consuming them. *)
let sniff t fd =
  let b = Bytes.create 4 in
  let rec go () =
    match Unix.recv fd b 0 4 [ Unix.MSG_PEEK ] with
    | 0 -> `Eof
    | n when n >= 4 ->
      if P.http_preamble (Bytes.sub_string b 0 4) then `Http else `Binary
    | _ ->
      (* fewer than 4 bytes buffered; a binary frame header is 4 bytes
         and "GET " is 4 bytes, so just wait for more *)
      if Atomic.get t.stopping then `Eof
      else begin
        Thread.yield ();
        go ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if Atomic.get t.stopping then `Eof else go ()
  in
  go ()

let handle_connection t fd =
  let conn =
    {
      c_id = Atomic.fetch_and_add t.next_conn 1;
      c_fd = fd;
      c_requests = 0;
      c_bytes_out = 0;
      c_errors = 0;
    }
  in
  register_conn t conn;
  Fun.protect
    ~finally:(fun () ->
      unregister_conn t conn;
      (try Unix.close fd with Unix.Unix_error _ -> ()))
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout_s;
      (* a reply spans several small writes (chunks, then the terminal
         frame): without TCP_NODELAY, Nagle holds the tail for the peer's
         delayed ACK and every request-reply turn eats ~40 ms *)
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> () (* unix-domain or already dead *));
      try
        match sniff t fd with
        | `Eof -> ()
        | `Http -> serve_http t conn
        | `Binary -> serve_binary t conn
      with
      | Unix.Unix_error _ ->
        (* dead peer mid-response (EPIPE/ECONNRESET under ignored
           SIGPIPE): drop the connection, never the worker *)
        conn.c_errors <- conn.c_errors + 1
      | exn ->
        conn.c_errors <- conn.c_errors + 1;
        Log.err (fun m ->
            m "connection %d: unexpected %s" conn.c_id (Printexc.to_string exn)))

let worker_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
        handle_connection t fd;
        loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        loop () (* accept timeout: re-check the stop flag *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed under us during shutdown *)
    end
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let start ?(config = default_config) db =
  if Db.is_snapshot db then invalid_arg "Server.start: need the live handle";
  (* a peer that disappears mid-write must surface as EPIPE on that
     connection, not as a process-killing signal *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen fd 128;
  (* accept() honours the receive timeout: workers poll the stop flag *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.idle_timeout_s;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    {
      db;
      cfg = config;
      listen_fd = fd;
      bound_port;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      stop_mu = Mutex.create ();
      workers = [];
      conns = Hashtbl.create 16;
      conns_mu = Mutex.create ();
      next_conn = Atomic.make 1;
      last_shipped = Atomic.make 0;
    }
  in
  t.workers <- List.init config.readers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Log.info (fun m ->
      m "listening on %s:%d (%d readers)" config.host bound_port config.readers);
  t

let stop t =
  locked t.stop_mu @@ fun () ->
  if Atomic.get t.stopped then Db.pinned_snapshots t.db
  else begin
    Atomic.set t.stopping true;
    (* wait for in-flight connections to drain *)
    let deadline = Unix.gettimeofday () +. t.cfg.grace_s in
    let rec drain () =
      if active_connections t > 0 && Unix.gettimeofday () < deadline then begin
        Thread.delay 0.01;
        drain ()
      end
    in
    drain ();
    (* force-disconnect stragglers: their workers' reads fail over *)
    locked t.conns_mu (fun () ->
        Hashtbl.iter
          (fun _ c ->
            try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns);
    List.iter Domain.join t.workers;
    t.workers <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Atomic.set t.stopped true;
    let leaked = Db.pinned_snapshots t.db in
    if leaked > 0 then
      Log.err (fun m -> m "shutdown leaked %d pinned snapshot(s)" leaked);
    Log.info (fun m -> m "stopped");
    leaked
  end
