(** txmldbd: the multi-client query server.

    One process owns the live {!Txq_db.Db.t}.  A bounded pool of reader
    domains each runs an accept-and-serve loop on a shared listening
    socket, so at most [readers] connections are served at once (further
    connections queue in the listen backlog).  Every read request pins a
    fresh {!Txq_db.Db.snapshot} for exactly the duration of the request —
    released on every exit path — while writes go straight to the live
    handle, serialized by the engine's single group-committed writer.

    Statement results stream: rows are rendered one at a time into
    bounded chunks ({!config.chunk_bytes}), so a scan over an arbitrarily
    deep version chain never materializes its result document.

    The same port speaks minimal HTTP/1.1 for [GET /metrics] and
    [GET /stats] (detected per connection from the first bytes), serving
    the {!Txq_obs.Metrics} registry — including the server's own
    counters: [server.requests], [server.bytes_out], [server.errors],
    [server.connections_total], and the [server.active_connections] /
    [server.active_snapshots] gauges. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  readers : int;  (** size of the reader-domain pool *)
  max_frame : int;  (** reject request frames above this *)
  chunk_bytes : int;  (** flush threshold for streamed results *)
  idle_timeout_s : float;
      (** receive-timeout granularity at which idle connections and the
          accept loop re-check the shutdown flag *)
  grace_s : float;
      (** how long {!stop} waits for in-flight connections to drain
          before force-closing them *)
}

val default_config : config
(** localhost, ephemeral port, 4 readers, 4 MiB frames, 8 KiB chunks,
    0.25 s poll, 5 s grace. *)

type t

val start : ?config:config -> Txq_db.Db.t -> t
(** Binds, listens, and spawns the reader pool.  The handle must be the
    live database, not a snapshot.  Ignores [SIGPIPE] process-wide (a
    dead peer must surface as [EPIPE] on the connection, not kill the
    daemon). *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val active_connections : t -> int

val stop : t -> int
(** Graceful shutdown: stop accepting, answer in-flight requests with
    [E_shutting_down], wait up to [grace_s] for connections to drain,
    force-shutdown the stragglers, join every reader domain, close the
    listener.  Returns the number of snapshots still pinned afterwards —
    always 0 unless a request leaked its pin, which the shutdown tests
    assert never happens.  Idempotent; concurrent calls are safe. *)
