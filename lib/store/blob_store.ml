type policy = [ `Unclustered | `Clustered of int ]
type blob = { pages : int array; length : int }

type extent = { mutable free_slots : int list }

type t = {
  pool : Buffer_pool.t;
  policy : policy;
  extents : (int, extent) Hashtbl.t; (* cluster key -> free slots *)
  mutable global_free : int list;
  mutable allocated : int;
  mutable live : int;
}

let create ?(policy = `Unclustered) pool =
  (match policy with
   | `Clustered extent when extent <= 0 ->
     invalid_arg "Blob_store.create: extent must be positive"
   | `Clustered _ | `Unclustered -> ());
  {
    pool;
    policy;
    extents = Hashtbl.create 64;
    global_free = [];
    allocated = 0;
    live = 0;
  }

let policy t = t.policy

let next_page t cluster =
  t.live <- t.live + 1;
  match (t.policy, cluster) with
  | `Unclustered, _ | `Clustered _, None -> (
    match t.global_free with
    | id :: rest ->
      t.global_free <- rest;
      id
    | [] ->
      t.allocated <- t.allocated + 1;
      Buffer_pool.alloc t.pool)
  | `Clustered extent_size, Some key -> (
    let ext =
      match Hashtbl.find_opt t.extents key with
      | Some e -> e
      | None ->
        let e = { free_slots = [] } in
        Hashtbl.replace t.extents key e;
        e
    in
    match ext.free_slots with
    | id :: rest ->
      ext.free_slots <- rest;
      id
    | [] ->
      (* Grow the cluster by a fresh contiguous extent. *)
      let fresh = List.init extent_size (fun _ -> Buffer_pool.alloc t.pool) in
      t.allocated <- t.allocated + extent_size;
      (match fresh with
       | first :: rest ->
         ext.free_slots <- rest;
         first
       | [] -> assert false))

let put t ?cluster data =
  let len = String.length data in
  let n_pages = Stdlib.max 1 ((len + Disk.page_size - 1) / Disk.page_size) in
  let pages = Array.init n_pages (fun _ -> next_page t cluster) in
  Array.iteri
    (fun i id ->
      let off = i * Disk.page_size in
      let chunk_len = Stdlib.max 0 (Stdlib.min Disk.page_size (len - off)) in
      let buf = Bytes.create chunk_len in
      Bytes.blit_string data off buf 0 chunk_len;
      Buffer_pool.write t.pool id buf)
    pages;
  { pages; length = len }

let free t ?cluster blob =
  t.live <- t.live - Array.length blob.pages;
  match (t.policy, cluster) with
  | `Unclustered, _ | `Clustered _, None ->
    t.global_free <- Array.to_list blob.pages @ t.global_free
  | `Clustered _, Some key -> (
    match Hashtbl.find_opt t.extents key with
    | Some ext -> ext.free_slots <- Array.to_list blob.pages @ ext.free_slots
    | None -> t.global_free <- Array.to_list blob.pages @ t.global_free)

let get t blob =
  let buf = Buffer.create blob.length in
  Array.iteri
    (fun i id ->
      let page = Buffer_pool.read t.pool id in
      let off = i * Disk.page_size in
      let chunk_len = Stdlib.min Disk.page_size (blob.length - off) in
      if chunk_len > 0 then Buffer.add_subbytes buf page 0 chunk_len)
    blob.pages;
  Buffer.contents buf

let length blob = blob.length
let page_ids blob = Array.to_list blob.pages
let pages_used blob = Array.length blob.pages
let total_pages t = t.allocated
let live_pages t = t.live

(* --- recovery ---------------------------------------------------------- *)

let restore_blob ~pages ~length =
  if pages = [] then invalid_arg "Blob_store.restore_blob: no pages";
  if length < 0 then invalid_arg "Blob_store.restore_blob: negative length";
  { pages = Array.of_list pages; length }

let restore_state t ~allocated ~live ~free_global ~free_clustered =
  t.allocated <- allocated;
  t.live <- live;
  t.global_free <- free_global;
  Hashtbl.reset t.extents;
  List.iter
    (fun (key, pages) ->
      match Hashtbl.find_opt t.extents key with
      | Some ext -> ext.free_slots <- pages @ ext.free_slots
      | None -> Hashtbl.replace t.extents key { free_slots = pages })
    free_clustered
