(** Blob store: byte strings laid out over disk pages.

    Document versions and delta documents are stored as blobs.  The placement
    policy is the experimental knob of Section 7.2's clustering remark:

    - [`Unclustered]: every blob takes the next free pages of the global
      append area, so the deltas of one document end up interleaved with
      everything else written in between — "the deltas from one particular
      document is not stored together", each read seeks;
    - [`Clustered extent]: blobs that share a cluster key (we use the
      document id) are placed in per-cluster extents of [extent] pages, so a
      document's delta chain is read mostly sequentially. *)

type policy = [ `Unclustered | `Clustered of int ]

type blob
(** Handle to a stored blob; the page directory lives in memory, like the
    paper's in-memory delta index (Section 7.1). *)

type t

val create : ?policy:policy -> Buffer_pool.t -> t
(** Default policy: [`Unclustered]. *)

val policy : t -> policy

val put : t -> ?cluster:int -> string -> blob
(** Stores the string and returns its handle.  [cluster] selects the
    placement group under [`Clustered]; ignored under [`Unclustered]. *)

val get : t -> blob -> string

val length : blob -> int
val page_ids : blob -> int list
val pages_used : blob -> int

val free : t -> ?cluster:int -> blob -> unit
(** Releases the blob's pages for reuse by later [put]s (same cluster when
    clustered).  The handle must not be used afterwards. *)

val total_pages : t -> int
(** Pages ever allocated by this store (high-water mark). *)

val live_pages : t -> int
(** Pages currently holding live blobs; the storage-space experiments (E7)
    report this. *)

(** {1 Recovery}

    After a crash the blob directory is rebuilt from the commit journal:
    handles are re-created from the page lists the journal recorded, and the
    allocator is told which pages are reusable. *)

val restore_blob : pages:int list -> length:int -> blob
(** A handle over pages already holding the blob's bytes (pure; no IO). *)

val restore_state :
  t ->
  allocated:int ->
  live:int ->
  free_global:int list ->
  free_clustered:(int * int list) list ->
  unit
(** Resets the allocator: [allocated]/[live] page counters, the global free
    list, and per-cluster free slots.  Extent boundaries of a [`Clustered]
    store are not reconstructed — only which pages a cluster may reuse —
    so post-recovery placement is best-effort, never unsafe. *)
