type entry = { page : bytes; mutable last_use : int }

type t = {
  disk : Disk.t;
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable tick : int;
  (* One lock serializes every pool (and therefore disk) operation:
     concurrent snapshot readers share the pool with the writer, and the
     LRU table, the disk page array and the page/seek/cache counters all
     mutate on each access.  The simulator's "device" is as serial as a
     real one. *)
  m : Mutex.t;
}

let create ?(capacity = 256) disk =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { disk; capacity; table = Hashtbl.create (2 * capacity); tick = 0;
    m = Mutex.create () }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    let victim = ref (-1) in
    let oldest = ref max_int in
    Hashtbl.iter
      (fun id entry ->
        if entry.last_use < !oldest then begin
          oldest := entry.last_use;
          victim := id
        end)
      t.table;
    if !victim >= 0 then Hashtbl.remove t.table !victim
  end

let insert t id page =
  evict_if_full t;
  let entry = { page; last_use = 0 } in
  touch t entry;
  Hashtbl.replace t.table id entry

let read t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some entry ->
    let stats = Disk.stats t.disk in
    stats.Io_stats.cache_hits <- stats.Io_stats.cache_hits + 1;
    touch t entry;
    entry.page
  | None ->
    let stats = Disk.stats t.disk in
    stats.Io_stats.cache_misses <- stats.Io_stats.cache_misses + 1;
    let page = Disk.read t.disk id in
    insert t id page;
    page

let write t id buf =
  locked t @@ fun () ->
  Disk.write t.disk id buf;
  (* Cache the padded page image, as a later read would see it. *)
  let page = Bytes.make Disk.page_size '\000' in
  Bytes.blit buf 0 page 0 (Bytes.length buf);
  insert t id page

let alloc t = locked t @@ fun () -> Disk.alloc t.disk
let flush t = locked t @@ fun () -> Hashtbl.reset t.table
let stats t = Disk.stats t.disk
let disk t = t.disk
let page_count t = locked t @@ fun () -> Disk.page_count t.disk
