(** LRU buffer pool over the simulated disk.

    Temporal query processing is IO-bound on delta reads; a buffer pool makes
    the simulator's cost model realistic (repeated reconstruction of nearby
    versions hits cache) and exposes hit/miss counts to the benchmarks. *)

type t

val create : ?capacity:int -> Disk.t -> t
(** [capacity] is the number of resident pages (default 256). *)

val capacity : t -> int

val read : t -> int -> bytes
(** The page contents; cached copies are shared, do not mutate. *)

val write : t -> int -> bytes -> unit
(** Write-through: updates both the cache and the disk. *)

val alloc : t -> int

val flush : t -> unit
(** Drops all cached pages (the disk already holds every write). *)

val stats : t -> Io_stats.t
(** The underlying disk's counters; cache hits/misses are recorded here
    too. *)

val disk : t -> Disk.t
(** The disk beneath the pool (fault injection and recovery hook into it). *)

val page_count : t -> int
(** Pages currently on the underlying disk. *)
