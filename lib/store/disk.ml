let page_size = 4096

exception Crash

type t = {
  mutable pages : bytes array;
  mutable used : int;
  mutable last_accessed : int;
  mutable fault_countdown : int; (* 0 = disarmed; n > 0: the n-th write tears *)
  mutable crashed : bool;
  stats : Io_stats.t;
}

let create () =
  {
    pages = Array.make 64 Bytes.empty;
    used = 0;
    last_accessed = -1;
    fault_countdown = 0;
    crashed = false;
    stats = Io_stats.create ();
  }

let page_count t = t.used

let ensure_capacity t n =
  if n > Array.length t.pages then begin
    let bigger = Array.make (Stdlib.max n (2 * Array.length t.pages)) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.used;
    t.pages <- bigger
  end

let alloc t =
  ensure_capacity t (t.used + 1);
  t.pages.(t.used) <- Bytes.make page_size '\000';
  t.used <- t.used + 1;
  t.used - 1

let check t id =
  if id < 0 || id >= t.used then
    invalid_arg (Printf.sprintf "Disk: bad page id %d (of %d)" id t.used)

let account_seek t id =
  if t.last_accessed >= 0 && abs (id - t.last_accessed) > 1 then
    t.stats.Io_stats.seeks <- t.stats.Io_stats.seeks + 1;
  t.last_accessed <- id

let read t id =
  check t id;
  account_seek t id;
  t.stats.Io_stats.page_reads <- t.stats.Io_stats.page_reads + 1;
  Bytes.copy t.pages.(id)

let write t id buf =
  check t id;
  if Bytes.length buf > page_size then
    invalid_arg "Disk.write: buffer larger than a page";
  if t.crashed then raise Crash;
  if t.fault_countdown > 0 then begin
    t.fault_countdown <- t.fault_countdown - 1;
    if t.fault_countdown = 0 then begin
      (* Torn write: a prefix of the buffer lands, the rest of the page is
         junk — neither old nor new content survives there. *)
      account_seek t id;
      t.stats.Io_stats.page_writes <- t.stats.Io_stats.page_writes + 1;
      let page = Bytes.make page_size '\xde' in
      let keep = Stdlib.min (Bytes.length buf) (page_size / 2) in
      Bytes.blit buf 0 page 0 keep;
      t.pages.(id) <- page;
      t.crashed <- true;
      raise Crash
    end
  end;
  account_seek t id;
  t.stats.Io_stats.page_writes <- t.stats.Io_stats.page_writes + 1;
  let page = Bytes.make page_size '\000' in
  Bytes.blit buf 0 page 0 (Bytes.length buf);
  t.pages.(id) <- page

let fail_after_writes t n =
  if n < 1 then invalid_arg "Disk.fail_after_writes: n must be >= 1";
  t.fault_countdown <- n;
  t.crashed <- false

let clear_fault t =
  t.fault_countdown <- 0;
  t.crashed <- false

let crashed t = t.crashed

let stats t = t.stats
