let page_size = 4096

exception Crash

type t = {
  mutable pages : bytes array;
  mutable used : int;
  mutable last_accessed : int;
  mutable fault_countdown : int; (* 0 = disarmed; n > 0: the n-th write tears *)
  mutable crashed : bool;
  mutable fs_ops : int; (* filesystem operations performed (save_to_dir) *)
  stats : Io_stats.t;
}

let create () =
  {
    pages = Array.make 64 Bytes.empty;
    used = 0;
    last_accessed = -1;
    fault_countdown = 0;
    crashed = false;
    fs_ops = 0;
    stats = Io_stats.create ();
  }

let page_count t = t.used

let ensure_capacity t n =
  if n > Array.length t.pages then begin
    let bigger = Array.make (Stdlib.max n (2 * Array.length t.pages)) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.used;
    t.pages <- bigger
  end

let alloc t =
  ensure_capacity t (t.used + 1);
  t.pages.(t.used) <- Bytes.make page_size '\000';
  t.used <- t.used + 1;
  t.used - 1

let check t id =
  if id < 0 || id >= t.used then
    invalid_arg (Printf.sprintf "Disk: bad page id %d (of %d)" id t.used)

let account_seek t id =
  if t.last_accessed >= 0 && abs (id - t.last_accessed) > 1 then
    t.stats.Io_stats.seeks <- t.stats.Io_stats.seeks + 1;
  t.last_accessed <- id

let read t id =
  check t id;
  account_seek t id;
  t.stats.Io_stats.page_reads <- t.stats.Io_stats.page_reads + 1;
  Bytes.copy t.pages.(id)

let write t id buf =
  check t id;
  if Bytes.length buf > page_size then
    invalid_arg "Disk.write: buffer larger than a page";
  if t.crashed then raise Crash;
  if t.fault_countdown > 0 then begin
    t.fault_countdown <- t.fault_countdown - 1;
    if t.fault_countdown = 0 then begin
      (* Torn write: a prefix of the buffer lands, the rest of the page is
         junk — neither old nor new content survives there. *)
      account_seek t id;
      t.stats.Io_stats.page_writes <- t.stats.Io_stats.page_writes + 1;
      let page = Bytes.make page_size '\xde' in
      let keep = Stdlib.min (Bytes.length buf) (page_size / 2) in
      Bytes.blit buf 0 page 0 keep;
      t.pages.(id) <- page;
      t.crashed <- true;
      raise Crash
    end
  end;
  account_seek t id;
  t.stats.Io_stats.page_writes <- t.stats.Io_stats.page_writes + 1;
  let page = Bytes.make page_size '\000' in
  Bytes.blit buf 0 page 0 (Bytes.length buf);
  t.pages.(id) <- page

let fail_after_writes t n =
  if n < 1 then invalid_arg "Disk.fail_after_writes: n must be >= 1";
  t.fault_countdown <- n;
  t.crashed <- false

let clear_fault t =
  t.fault_countdown <- 0;
  t.crashed <- false

let crashed t = t.crashed

let stats t = t.stats

(* Filesystem operations share the page-write fault machinery: the same
   countdown arms them, the same [Crash] fires, and a fired fault leaves the
   operation half-done — a torn chunk writes a prefix, a torn rename never
   happens.  Returns [true] when this operation is the one that tears; the
   caller performs its partial effect and raises [Crash]. *)
let fs_op t =
  if t.crashed then raise Crash;
  t.fs_ops <- t.fs_ops + 1;
  if t.fault_countdown > 0 then begin
    t.fault_countdown <- t.fault_countdown - 1;
    if t.fault_countdown = 0 then begin
      t.crashed <- true;
      true
    end
    else false
  end
  else false

let fs_ops t = t.fs_ops

let save_chunk_pages = 256
let manifest_name = "MANIFEST"
let pages_name = "pages.bin"

let remove_dir_recursive dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then invalid_arg "Disk: unexpected subdirectory"
        else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let save_to_dir t dir =
  if Sys.file_exists dir then
    invalid_arg (Printf.sprintf "Disk.save_to_dir: %s already exists" dir);
  let tmp = dir ^ ".tmp" in
  (* A leftover staging directory is the debris of a crashed save; a new
     save replaces it. *)
  remove_dir_recursive tmp;
  if fs_op t then begin
    (* torn mkdir: the directory exists, nothing is in it *)
    Sys.mkdir tmp 0o755;
    raise Crash
  end;
  Sys.mkdir tmp 0o755;
  let oc = open_out_bin (Filename.concat tmp pages_name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let id = ref 0 in
      while !id < t.used do
        let stop = Stdlib.min t.used (!id + save_chunk_pages) in
        if fs_op t then begin
          (* torn chunk: a prefix of it lands *)
          let keep = (stop - !id + 1) / 2 in
          for i = !id to !id + keep - 1 do
            output_bytes oc t.pages.(i)
          done;
          flush oc;
          raise Crash
        end;
        for i = !id to stop - 1 do
          output_bytes oc t.pages.(i)
        done;
        id := stop
      done;
      flush oc);
  let manifest = Printf.sprintf "txq-disk 1\npages %d\n" t.used in
  let oc = open_out_bin (Filename.concat tmp manifest_name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      if fs_op t then begin
        (* torn manifest: half of it lands *)
        output_string oc (String.sub manifest 0 (String.length manifest / 2));
        flush oc;
        raise Crash
      end;
      output_string oc manifest;
      flush oc);
  if fs_op t then
    (* torn rename: it simply never happens; [dir] does not appear *)
    raise Crash;
  Sys.rename tmp dir

let load_failure dir msg =
  failwith (Printf.sprintf "Disk.load_from_dir: %s: %s" dir msg)

let load_from_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    load_failure dir "no such directory";
  let manifest_path = Filename.concat dir manifest_name in
  if not (Sys.file_exists manifest_path) then
    load_failure dir "missing MANIFEST (incomplete clone?)";
  let manifest =
    let ic = open_in_bin manifest_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let pages =
    match
      try Some (Scanf.sscanf manifest "txq-disk %d\npages %d" (fun v n -> (v, n)))
      with Scanf.Scan_failure _ | End_of_file -> None
    with
    | Some (1, n) when n >= 0 -> n
    | Some _ -> load_failure dir "unsupported format version"
    | None -> load_failure dir "malformed MANIFEST"
  in
  let pages_path = Filename.concat dir pages_name in
  if not (Sys.file_exists pages_path) then load_failure dir "missing pages.bin";
  let t = create () in
  let ic = open_in_bin pages_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      if in_channel_length ic <> pages * page_size then
        load_failure dir
          (Printf.sprintf "pages.bin holds %d bytes, MANIFEST promises %d"
             (in_channel_length ic) (pages * page_size));
      ensure_capacity t pages;
      for i = 0 to pages - 1 do
        let page = Bytes.create page_size in
        really_input ic page 0 page_size;
        t.pages.(i) <- page
      done;
      t.used <- pages);
  t
