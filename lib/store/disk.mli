(** Simulated disk: a growable array of fixed-size pages.

    Stands in for the Xyleme repository's disk (see DESIGN.md substitutions).
    Reads and writes update {!Io_stats}; an access to a page that is not
    adjacent to the previously accessed page counts as a seek, which is the
    cost model behind the paper's clustering discussion (Section 7.2). *)

type t

exception Crash
(** Raised by {!write} when an injected fault fires (and by every write
    thereafter until {!clear_fault}).  Reads keep working: recovery code
    inspects the disk exactly as it was left. *)

val page_size : int
(** Bytes per page (4096). *)

val create : unit -> t

val page_count : t -> int

val alloc : t -> int
(** Appends a fresh zeroed page and returns its id. *)

val read : t -> int -> bytes
(** Copy of the page contents.  Raises [Invalid_argument] on a bad id. *)

val write : t -> int -> bytes -> unit
(** Overwrites a page.  The buffer must be at most [page_size] bytes; shorter
    buffers are zero-padded. *)

(** {1 Deterministic fault injection}

    The crash-consistency tests provoke a crash at every possible write
    boundary.  Arming [fail_after_writes d n] makes the [n]-th subsequent
    {!write} {e tear}: only a prefix of the buffer reaches the page, the rest
    of the page is overwritten with junk (neither the old nor the new content
    survives — the strictest torn-page model), and {!Crash} is raised.  Every
    later write raises {!Crash} without touching the disk, as a crashed
    machine accepts no further IO. *)

val fail_after_writes : t -> int -> unit
(** Arms the fault: the [n]-th write from now fails ([n >= 1]).  Raises
    [Invalid_argument] on [n < 1]. *)

val clear_fault : t -> unit
(** Disarms any pending fault and clears the crashed state. *)

val crashed : t -> bool

val stats : t -> Io_stats.t
