(** Simulated disk: a growable array of fixed-size pages.

    Stands in for the Xyleme repository's disk (see DESIGN.md substitutions).
    Reads and writes update {!Io_stats}; an access to a page that is not
    adjacent to the previously accessed page counts as a seek, which is the
    cost model behind the paper's clustering discussion (Section 7.2). *)

type t

exception Crash
(** Raised by {!write} when an injected fault fires (and by every write
    thereafter until {!clear_fault}).  Reads keep working: recovery code
    inspects the disk exactly as it was left. *)

val page_size : int
(** Bytes per page (4096). *)

val create : unit -> t

val page_count : t -> int

val alloc : t -> int
(** Appends a fresh zeroed page and returns its id. *)

val read : t -> int -> bytes
(** Copy of the page contents.  Raises [Invalid_argument] on a bad id. *)

val write : t -> int -> bytes -> unit
(** Overwrites a page.  The buffer must be at most [page_size] bytes; shorter
    buffers are zero-padded. *)

(** {1 Deterministic fault injection}

    The crash-consistency tests provoke a crash at every possible write
    boundary.  Arming [fail_after_writes d n] makes the [n]-th subsequent
    {!write} {e tear}: only a prefix of the buffer reaches the page, the rest
    of the page is overwritten with junk (neither the old nor the new content
    survives — the strictest torn-page model), and {!Crash} is raised.  Every
    later write raises {!Crash} without touching the disk, as a crashed
    machine accepts no further IO. *)

val fail_after_writes : t -> int -> unit
(** Arms the fault: the [n]-th write from now fails ([n >= 1]).  Raises
    [Invalid_argument] on [n < 1].  Filesystem operations of {!save_to_dir}
    count against the same countdown, with the analogous torn semantics: a
    torn chunk write lands a prefix, a torn rename never happens. *)

val clear_fault : t -> unit
(** Disarms any pending fault and clears the crashed state. *)

val crashed : t -> bool

val stats : t -> Io_stats.t

(** {1 Directory persistence}

    [restore --as-of] clones a store into a real directory on the host
    filesystem.  The clone is crash-safe: pages and a manifest are staged
    into [dir ^ ".tmp"] and the staging directory is renamed into place as
    the last step, so [dir] either appears complete or not at all.  Every
    filesystem step runs through the same fault-injection countdown as page
    writes (see {!fail_after_writes}), and {!fs_ops} counts the steps so a
    sweep can arm a fault at each one. *)

val save_to_dir : t -> string -> unit
(** Writes the disk image to a fresh directory [dir] ([pages.bin] +
    [MANIFEST]).  Raises [Invalid_argument] if [dir] already exists, and
    {!Crash} when an armed fault fires mid-save (leaving at most the
    staging directory behind; a later save reclaims it). *)

val load_from_dir : string -> t
(** Reads a directory written by {!save_to_dir} into a fresh disk.  Raises
    [Failure] with a diagnostic on a missing, incomplete or malformed
    clone — in particular on the staging debris of a crashed save. *)

val fs_ops : t -> int
(** Filesystem operations performed by {!save_to_dir} calls so far. *)
