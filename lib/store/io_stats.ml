type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable seeks : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable vcache_hits : int;
  mutable vcache_misses : int;
  mutable vcache_bytes : int;
  mutable deltas_applied : int;
  mutable fsyncs : int;
}

let create () =
  { page_reads = 0; page_writes = 0; seeks = 0; cache_hits = 0;
    cache_misses = 0; vcache_hits = 0; vcache_misses = 0; vcache_bytes = 0;
    deltas_applied = 0; fsyncs = 0 }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.seeks <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.vcache_hits <- 0;
  t.vcache_misses <- 0;
  t.deltas_applied <- 0;
  t.fsyncs <- 0
(* vcache_bytes is a gauge maintained by the version cache, not a counter:
   reset leaves it alone. *)

let copy t =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    seeks = t.seeks;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    vcache_hits = t.vcache_hits;
    vcache_misses = t.vcache_misses;
    vcache_bytes = t.vcache_bytes;
    deltas_applied = t.deltas_applied;
    fsyncs = t.fsyncs;
  }

let diff ~after ~before =
  {
    page_reads = after.page_reads - before.page_reads;
    page_writes = after.page_writes - before.page_writes;
    seeks = after.seeks - before.seeks;
    cache_hits = after.cache_hits - before.cache_hits;
    cache_misses = after.cache_misses - before.cache_misses;
    vcache_hits = after.vcache_hits - before.vcache_hits;
    vcache_misses = after.vcache_misses - before.vcache_misses;
    vcache_bytes = after.vcache_bytes;
    deltas_applied = after.deltas_applied - before.deltas_applied;
    fsyncs = after.fsyncs - before.fsyncs;
  }

let add acc x =
  acc.page_reads <- acc.page_reads + x.page_reads;
  acc.page_writes <- acc.page_writes + x.page_writes;
  acc.seeks <- acc.seeks + x.seeks;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  acc.vcache_hits <- acc.vcache_hits + x.vcache_hits;
  acc.vcache_misses <- acc.vcache_misses + x.vcache_misses;
  acc.vcache_bytes <- Stdlib.max acc.vcache_bytes x.vcache_bytes;
  acc.deltas_applied <- acc.deltas_applied + x.deltas_applied;
  acc.fsyncs <- acc.fsyncs + x.fsyncs

let fields t =
  [
    ("page_reads", t.page_reads);
    ("page_writes", t.page_writes);
    ("seeks", t.seeks);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("vcache_hits", t.vcache_hits);
    ("vcache_misses", t.vcache_misses);
    ("vcache_bytes", t.vcache_bytes);
    ("deltas_applied", t.deltas_applied);
    ("fsyncs", t.fsyncs);
  ]

(* Mirror the counters into the process metrics registry as gauges
   ("io.page_reads", …): one registry dump then shows IO next to the
   per-operator histograms. Gauges, not counter increments, because this
   record *is* the source of truth — publish is idempotent. *)
let publish ?(prefix = "io.") t =
  List.iter (fun (k, v) -> Txq_obs.Metrics.set_gauge (prefix ^ k) v) (fields t)

let to_string t =
  Printf.sprintf
    "reads=%d writes=%d seeks=%d cache_hits=%d cache_misses=%d \
     vcache_hits=%d vcache_misses=%d vcache_bytes=%d deltas_applied=%d \
     fsyncs=%d"
    t.page_reads t.page_writes t.seeks t.cache_hits t.cache_misses
    t.vcache_hits t.vcache_misses t.vcache_bytes t.deltas_applied t.fsyncs

let pp ppf t = Format.pp_print_string ppf (to_string t)
