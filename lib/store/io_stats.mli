(** IO accounting.

    The paper argues about operator cost in terms of delta reads and disk
    seeks ("each delta read will involve a disk seek in the worst case",
    Section 7.2).  Every layer of the storage simulator feeds these counters
    so the benchmarks can report exactly those quantities.  The version
    cache of [txq_db] reports through the same record ([vcache_*],
    [deltas_applied]) so one snapshot captures both page traffic and
    reconstruction work. *)

type t = {
  mutable page_reads : int;  (** pages fetched from the simulated disk *)
  mutable page_writes : int;
  mutable seeks : int;
      (** non-adjacent page accesses, the simulator's proxy for arm moves *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable vcache_hits : int;  (** version-cache lookups served in memory *)
  mutable vcache_misses : int;
  mutable vcache_bytes : int;
      (** current version-cache residency — a gauge, not a counter; [reset]
          leaves it alone and [diff] reports the [after] value *)
  mutable deltas_applied : int;
      (** completed-delta applications performed by reconstruction *)
  mutable fsyncs : int;
      (** journal durability points: one per flushed batch of journal
          pages, however many commits the batch carried (group commit
          amortizes this across transactions) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val diff : after:t -> before:t -> t
(** Counter deltas between two snapshots. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val fields : t -> (string * int) list
(** Field name/value pairs, in declaration order. *)

val publish : ?prefix:string -> t -> unit
(** Mirror every field into the {!Txq_obs.Metrics} registry as gauges
    named [prefix ^ field] (default prefix ["io."]).  Idempotent. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
