(* Page layout (page_size bytes):

     0 ..  3   magic "TXJP"
     4 .. 19   MD5 digest of bytes [20, page_size)
    20 .. 23   record sequence number (int32 be)
    24 .. 27   page index within the record (int32 be)
    28 .. 31   page count of the record (int32 be)
    32 .. 35   payload bytes used in this page (int32 be)
    36 ..      payload

   A blob page cannot masquerade as a journal page: it would need both the
   magic and a correct MD5 of its own body. *)

let magic = "TXJP"
let header_bytes = 36
let digest_off = 4
let body_off = 20
let payload_capacity = Disk.page_size - header_bytes

type t = {
  pool : Buffer_pool.t;
  mutable next_seq : int;
  mutable records : int;
  mutable pages : int;
}

let create pool = { pool; next_seq = 0; records = 0; pages = 0 }
let record_count t = t.records
let page_count t = t.pages

let get_i32 page off = Int32.to_int (Bytes.get_int32_be page off)

let encode_page ~seq ~index ~count chunk =
  let page = Bytes.make Disk.page_size '\000' in
  Bytes.blit_string magic 0 page 0 4;
  Bytes.set_int32_be page 20 (Int32.of_int seq);
  Bytes.set_int32_be page 24 (Int32.of_int index);
  Bytes.set_int32_be page 28 (Int32.of_int count);
  Bytes.set_int32_be page 32 (Int32.of_int (String.length chunk));
  Bytes.blit_string chunk 0 page header_bytes (String.length chunk);
  let digest =
    Digest.subbytes page body_off (Disk.page_size - body_off)
  in
  Bytes.blit_string digest 0 page digest_off 16;
  page

(* [None] when the page is not a (whole, untorn) journal page. *)
let decode_page page =
  if Bytes.length page <> Disk.page_size then None
  else if not (String.equal (Bytes.sub_string page 0 4) magic) then None
  else
    let stored = Bytes.sub_string page digest_off 16 in
    let actual = Digest.subbytes page body_off (Disk.page_size - body_off) in
    if not (String.equal stored actual) then None
    else
      let seq = get_i32 page 20 in
      let index = get_i32 page 24 in
      let count = get_i32 page 28 in
      let len = get_i32 page 32 in
      if seq < 0 || count < 1 || index < 0 || index >= count
         || len < 0 || len > payload_capacity
      then None
      else Some (seq, index, count, Bytes.sub_string page header_bytes len)

let append t payload =
  let len = String.length payload in
  if len = 0 then invalid_arg "Journal.append: empty record";
  let count = (len + payload_capacity - 1) / payload_capacity in
  (* The sequence number is consumed up front: should the append crash
     part-way, recovery burns it and the torn record can never complete. *)
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  for index = 0 to count - 1 do
    let off = index * payload_capacity in
    let chunk = String.sub payload off (Stdlib.min payload_capacity (len - off)) in
    let id = Buffer_pool.alloc t.pool in
    t.pages <- t.pages + 1;
    Buffer_pool.write t.pool id (encode_page ~seq ~index ~count chunk)
  done;
  t.records <- t.records + 1

type recovery = {
  journal : t;
  records : string list;
  journal_pages : int list;
}

let recover pool =
  let n = Buffer_pool.page_count pool in
  let by_seq : (int, (int * string array)) Hashtbl.t = Hashtbl.create 64 in
  let pages = ref [] in
  let max_seq = ref (-1) in
  for id = 0 to n - 1 do
    match decode_page (Buffer_pool.read pool id) with
    | None -> ()
    | Some (seq, index, count, chunk) ->
      pages := id :: !pages;
      if seq > !max_seq then max_seq := seq;
      let slots =
        match Hashtbl.find_opt by_seq seq with
        | Some (c, slots) when c = count -> slots
        | Some _ ->
          (* A digest-valid page disagreeing on the record's shape cannot
             arise from this writer; treat the record as unreadable. *)
          let slots = Array.make count "" in
          Hashtbl.replace by_seq seq (-1, slots);
          slots
        | None ->
          let slots = Array.make count "" in
          Hashtbl.replace by_seq seq (count, slots);
          slots
      in
      if index < Array.length slots then slots.(index) <- chunk
  done;
  let records = ref [] in
  let committed = ref 0 in
  for seq = 0 to !max_seq do
    match Hashtbl.find_opt by_seq seq with
    | None -> () (* burned sequence number: the append never completed *)
    | Some (c, slots) ->
      (* every page present?  (the empty string cannot occur as a chunk of a
         committed record: all chunks but possibly none are non-empty, and a
         record is non-empty) *)
      if c > 0 && Array.for_all (fun s -> s <> "") slots then begin
        records := String.concat "" (Array.to_list slots) :: !records;
        incr committed
      end
  done;
  let journal =
    {
      pool;
      next_seq = !max_seq + 1;
      records = !committed;
      pages = List.length !pages;
    }
  in
  { journal; records = List.rev !records; journal_pages = List.rev !pages }
