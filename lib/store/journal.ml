(* Page layout (page_size bytes):

     0 ..  3   magic "TXJP"
     4 .. 19   MD5 digest of bytes [20, page_size)
    20 .. 23   record sequence number (int32 be)
    24 .. 27   page index within the record (int32 be)
    28 .. 31   page count of the record (int32 be)
    32 .. 35   payload bytes used in this page (int32 be)
    36 ..      payload

   A blob page cannot masquerade as a journal page: it would need both the
   magic and a correct MD5 of its own body. *)

let magic = "TXJP"
let header_bytes = 36
let digest_off = 4
let body_off = 20
let payload_capacity = Disk.page_size - header_bytes

type t = {
  pool : Buffer_pool.t;
  (* Guards every mutable field.  Concurrent committers append and sync
     from different domains under group commit. *)
  m : Mutex.t;
  cond : Condition.t;  (* group-commit barrier: synced advanced *)
  mutable next_seq : int;
  mutable records : int;
  mutable pages : int;
  (* Encoded pages of appended-but-not-yet-synced records, oldest first.
     Page ids are allocated at append time (allocation writes nothing),
     the page images land on disk at the next [sync] — strictly in append
     order, which is what makes a torn batch recover to a record
     prefix. *)
  mutable pending : (int * bytes) list;  (* newest first *)
  mutable appended : int;  (* append tickets issued *)
  mutable synced : int;  (* highest ticket known durable *)
  mutable leader : bool;  (* a group-commit leader is collecting a batch *)
  mutable dead : bool;  (* a flush crashed: buffered tickets can never sync *)
}

let create pool =
  {
    pool;
    m = Mutex.create ();
    cond = Condition.create ();
    next_seq = 0;
    records = 0;
    pages = 0;
    pending = [];
    appended = 0;
    synced = 0;
    leader = false;
    dead = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let record_count t = locked t @@ fun () -> t.records
let page_count t = locked t @@ fun () -> t.pages
let synced_count t = locked t @@ fun () -> t.synced

let get_i32 page off = Int32.to_int (Bytes.get_int32_be page off)

let encode_page ~seq ~index ~count chunk =
  let page = Bytes.make Disk.page_size '\000' in
  Bytes.blit_string magic 0 page 0 4;
  Bytes.set_int32_be page 20 (Int32.of_int seq);
  Bytes.set_int32_be page 24 (Int32.of_int index);
  Bytes.set_int32_be page 28 (Int32.of_int count);
  Bytes.set_int32_be page 32 (Int32.of_int (String.length chunk));
  Bytes.blit_string chunk 0 page header_bytes (String.length chunk);
  let digest =
    Digest.subbytes page body_off (Disk.page_size - body_off)
  in
  Bytes.blit_string digest 0 page digest_off 16;
  page

(* [None] when the page is not a (whole, untorn) journal page. *)
let decode_page page =
  if Bytes.length page <> Disk.page_size then None
  else if not (String.equal (Bytes.sub_string page 0 4) magic) then None
  else
    let stored = Bytes.sub_string page digest_off 16 in
    let actual = Digest.subbytes page body_off (Disk.page_size - body_off) in
    if not (String.equal stored actual) then None
    else
      let seq = get_i32 page 20 in
      let index = get_i32 page 24 in
      let count = get_i32 page 28 in
      let len = get_i32 page 32 in
      if seq < 0 || count < 1 || index < 0 || index >= count
         || len < 0 || len > payload_capacity
      then None
      else Some (seq, index, count, Bytes.sub_string page header_bytes len)

(* caller holds t.m *)
let append_locked t payload =
  let len = String.length payload in
  if len = 0 then invalid_arg "Journal.append: empty record";
  let count = (len + payload_capacity - 1) / payload_capacity in
  (* The sequence number is consumed up front: should the append crash
     part-way, recovery burns it and the torn record can never complete. *)
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  for index = 0 to count - 1 do
    let off = index * payload_capacity in
    let chunk = String.sub payload off (Stdlib.min payload_capacity (len - off)) in
    let id = Buffer_pool.alloc t.pool in
    t.pages <- t.pages + 1;
    t.pending <- (id, encode_page ~seq ~index ~count chunk) :: t.pending
  done;
  t.records <- t.records + 1;
  t.appended <- t.appended + 1;
  t.appended

(* caller holds t.m.  Writes the batch strictly in append order: a torn
   write leaves every earlier record complete on disk and every later one
   entirely absent — all-or-prefix at record granularity.  One flushed
   batch is one durability point ("fsync"), however many records it
   carries.  On [Disk.Crash] the unwritten tail is dropped: the simulated
   machine is gone, only [recover] runs next. *)
let flush_locked t =
  match t.pending with
  | [] -> ()
  | pending ->
    t.pending <- [];
    let target = t.appended in
    (try
       List.iter
         (fun (id, page) -> Buffer_pool.write t.pool id page)
         (List.rev pending)
     with e ->
       t.dead <- true;
       raise e);
    let stats = Buffer_pool.stats t.pool in
    stats.Io_stats.fsyncs <- stats.Io_stats.fsyncs + 1;
    t.synced <- target

let append_buffered t payload = locked t @@ fun () -> append_locked t payload

let sync t = locked t @@ fun () -> flush_locked t

let append t payload =
  locked t @@ fun () ->
  ignore (append_locked t payload : int);
  flush_locked t

let group_sync t ~sleep ticket =
  Mutex.lock t.m;
  let rec loop () =
    if t.synced >= ticket then ()
    else if t.dead then raise Disk.Crash
    else if t.leader then begin
      (* a leader is collecting: ride its batch *)
      Condition.wait t.cond t.m;
      loop ()
    end
    else begin
      t.leader <- true;
      Mutex.unlock t.m;
      (* Window for other committers to append into the batch.  The lock
         is free while we sleep, so they buffer concurrently. *)
      (try sleep ()
       with e ->
         (* Hand leadership off, but leave the mutex held: re-raising
            unwinds into the outer [Fun.protect], whose finally performs
            the single unlock. *)
         Mutex.lock t.m;
         t.leader <- false;
         Condition.broadcast t.cond;
         raise e);
      Mutex.lock t.m;
      Fun.protect
        ~finally:(fun () ->
          t.leader <- false;
          Condition.broadcast t.cond)
        (fun () -> flush_locked t);
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) loop

(* Tailing cursor.

   Scans the disk for journal pages and yields committed records one at a
   time, in sequence order, remembering where it stopped.  The distinctions
   it draws rest on the flush discipline: pages land on disk strictly in
   append order, so once a {e later} sequence number is complete on disk,
   every page an earlier sequence number will ever have is already there —
   an incomplete earlier record is a burned sequence number ([Tail_gap]),
   never a record still in flight.  Conversely an incomplete record with
   nothing complete beyond it may simply not have been flushed yet
   ([Tail_wait]): more bytes may arrive, or — after a crash — never will.

   Positive page decodes are cached (journal pages are never rewritten);
   pages that decode to [None] are re-examined on every call, since a freed
   blob page can be reallocated to the journal later.  The 4-byte magic
   check rejects non-journal pages before any digest work. *)

type tail = Tail_record of string | Tail_wait | Tail_gap of int

type tailer = {
  tl_pool : Buffer_pool.t;
  tl_seen : (int, unit) Hashtbl.t;  (* page ids known to be journal pages *)
  tl_by_seq : (int, int * string array) Hashtbl.t;  (* undelivered records *)
  mutable tl_page_ids : int list;  (* newest first *)
  mutable tl_pages : int;
  mutable tl_max_seq : int;
  mutable tl_next_seq : int;
}

let tailer pool =
  {
    tl_pool = pool;
    tl_seen = Hashtbl.create 64;
    tl_by_seq = Hashtbl.create 64;
    tl_page_ids = [];
    tl_pages = 0;
    tl_max_seq = -1;
    tl_next_seq = 0;
  }

let tailer_scan tl =
  let n = Buffer_pool.page_count tl.tl_pool in
  for id = 0 to n - 1 do
    if not (Hashtbl.mem tl.tl_seen id) then
      match decode_page (Buffer_pool.read tl.tl_pool id) with
      | None -> ()
      | Some (seq, index, count, chunk) ->
        Hashtbl.replace tl.tl_seen id ();
        tl.tl_page_ids <- id :: tl.tl_page_ids;
        tl.tl_pages <- tl.tl_pages + 1;
        if seq > tl.tl_max_seq then tl.tl_max_seq <- seq;
        if seq >= tl.tl_next_seq then (
          match Hashtbl.find_opt tl.tl_by_seq seq with
          | Some (c, slots) when c = count ->
            if index < Array.length slots then slots.(index) <- chunk
          | Some (_, slots) ->
            (* A digest-valid page disagreeing on the record's shape cannot
               arise from this writer; treat the record as unreadable. *)
            Hashtbl.replace tl.tl_by_seq seq (-1, slots)
          | None ->
            let slots = Array.make count "" in
            slots.(index) <- chunk;
            Hashtbl.replace tl.tl_by_seq seq (count, slots))
  done

(* every page present?  (the empty string cannot occur as a chunk of a
   committed record: all chunks but possibly none are non-empty, and a
   record is non-empty) *)
let tailer_complete (c, slots) = c > 0 && Array.for_all (fun s -> s <> "") slots

let tail_next tl =
  tailer_scan tl;
  let seq = tl.tl_next_seq in
  match Hashtbl.find_opt tl.tl_by_seq seq with
  | Some ((_, slots) as entry) when tailer_complete entry ->
    tl.tl_next_seq <- seq + 1;
    Hashtbl.remove tl.tl_by_seq seq;
    Tail_record (String.concat "" (Array.to_list slots))
  | _ ->
    let beyond =
      Hashtbl.fold
        (fun s entry acc -> acc || (s > seq && tailer_complete entry))
        tl.tl_by_seq false
    in
    if beyond then begin
      tl.tl_next_seq <- seq + 1;
      Hashtbl.remove tl.tl_by_seq seq;
      Tail_gap seq
    end
    else Tail_wait

let tailer_position tl = tl.tl_next_seq

type recovery = {
  journal : t;
  records : string list;
  journal_pages : int list;
}

let recover pool =
  let tl = tailer pool in
  let records = ref [] in
  let committed = ref 0 in
  let rec drain () =
    match tail_next tl with
    | Tail_record r ->
      records := r :: !records;
      incr committed;
      drain ()
    | Tail_gap _ -> drain () (* burned sequence number: the append never completed *)
    | Tail_wait -> ()
  in
  drain ();
  let journal =
    {
      pool;
      m = Mutex.create ();
      cond = Condition.create ();
      next_seq = tl.tl_max_seq + 1;
      records = !committed;
      pages = tl.tl_pages;
      pending = [];
      appended = !committed;
      synced = !committed;
      leader = false;
      dead = false;
    }
  in
  {
    journal;
    records = List.rev !records;
    journal_pages = List.sort compare tl.tl_page_ids;
  }
