(** Page-level commit journal (write-ahead log) over the simulated disk.

    The database's in-memory structures — the delta index, the blob
    directory, every auxiliary index — die with a crash; the journal is the
    single on-disk structure from which they are rebuilt.  Each committed
    operation is appended as one {e atomic record}: an opaque byte string,
    framed over one or more freshly allocated pages.

    Atomicity under torn pages comes from the page format, not from write
    ordering.  Every journal page is self-validating: it carries a magic
    tag, the record's sequence number, its position within the record
    ([page_index]/[page_count]) and an MD5 digest of the page body.  A page
    is never rewritten once it holds part of a committed record, so a torn
    write can only damage the record being appended, never an earlier one.
    A record exists after recovery iff {e all} of its pages are present and
    digest-valid; otherwise the append never happened.

    Recovery ({!recover}) scans the whole disk for journal pages — there is
    no superblock to corrupt — groups them by sequence number, drops
    incomplete records, and returns the committed payloads in append order
    together with a journal positioned to continue appending (sequence
    numbers of incomplete records are burned, so their surviving pages can
    never be confused with later appends). *)

type t

val create : Buffer_pool.t -> t
(** A fresh journal.  Pages are allocated from the pool on demand; nothing
    is written until the first {!append}. *)

val append : t -> string -> unit
(** Appends one record.  The record is durable — visible to {!recover} —
    exactly when the call returns; if the disk crashes mid-append the
    record is discarded on recovery.  Raises [Invalid_argument] on the
    empty string (an empty record is indistinguishable from none).
    Equivalent to {!append_buffered} followed by {!sync}; one durability
    point ({!Io_stats.t.fsyncs}) per call. *)

val append_buffered : t -> string -> int
(** Appends one record without making it durable: pages are allocated and
    encoded but land on disk only at the next {!sync} (or a group-commit
    leader's flush).  Returns the record's {e ticket}; the record is
    durable once the journal's synced ticket reaches it.  Thread-safe. *)

val sync : t -> unit
(** Flushes every buffered record to disk, strictly in append order, as
    one durability point.  A torn write mid-flush leaves a {e prefix} of
    the buffered records committed — a later record is never recoverable
    without every earlier one.  No-op when nothing is buffered. *)

val group_sync : t -> sleep:(unit -> unit) -> int -> unit
(** [group_sync t ~sleep ticket] blocks until [ticket] is durable.  The
    first caller becomes the batch leader: it runs [sleep ()] (the
    collection window — other committers buffer records meanwhile) and
    then flushes the whole batch as a single durability point; concurrent
    callers ride the leader's flush and are released together.  Raises
    {!Disk.Crash} if a flush crashed before the ticket could sync. *)

val synced_count : t -> int
(** Tickets known durable (recovered records count as synced). *)

val record_count : t -> int
(** Committed records this journal knows of (appended plus recovered),
    including buffered ones not yet durable. *)

val page_count : t -> int
(** Pages owned by the journal (its storage overhead). *)

(** {1 Tailing}

    A {!tailer} is a resumable cursor over the committed records of a disk's
    journal: it scans for journal pages, yields records in sequence order,
    and remembers where it stopped so the next call continues from there —
    the read side of journal shipping.  Crucially it distinguishes "nothing
    further is committed {e yet}" from "this sequence number can never
    complete":

    - {!Tail_wait}: the next sequence number has no complete record and
      nothing complete exists beyond it.  Either the tail is still being
      written (keep polling) or a crash tore it (recovery drops it).
    - [Tail_gap seq]: [seq] is incomplete but a {e later} sequence number is
      complete on disk.  Since flushes land strictly in append order, [seq]
      was burned by an append that never finished; it can never complete and
      the cursor steps over it.

    The distinction is physical (page-level).  Whether a record that {e is}
    complete carries a decodable payload is the layer above's concern. *)

type tail =
  | Tail_record of string  (** the next committed record, in order *)
  | Tail_wait  (** nothing further committed; poll again for more bytes *)
  | Tail_gap of int  (** this sequence number was burned; stepped over it *)

type tailer

val tailer : Buffer_pool.t -> tailer
(** A cursor positioned before the first record.  Safe on a disk without
    journal pages (every call returns {!Tail_wait} until pages appear). *)

val tail_next : tailer -> tail
(** Advances past the returned record or gap; {!Tail_wait} does not move
    the cursor.  Each call rescans pages not yet known to be journal pages
    (a cheap magic-tag check filters non-journal pages), so new appends are
    picked up. *)

val tailer_position : tailer -> int
(** The sequence number the next {!tail_next} will consider. *)

type recovery = {
  journal : t;  (** positioned to append after the last record *)
  records : string list;  (** committed payloads, in append order *)
  journal_pages : int list;
      (** every disk page bearing a valid journal header, including pages of
          incomplete records; the blob allocator must not hand these out *)
}

val recover : Buffer_pool.t -> recovery
(** Scans every page of the underlying disk.  Also the read path for a
    clean (uncrashed) restart: on a disk without journal pages it returns
    an empty journal. *)
