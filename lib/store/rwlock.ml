(* A writer-preferring reader-writer lock over domains.

   Readers are re-entrant (a domain already holding a read lock may take
   it again), and a domain holding the write lock may take read locks
   freely — operators compose, so a read path invoked from inside a
   mutator must not self-deadlock.  Upgrading (read -> write) is refused:
   two upgraders would deadlock each other, so the bug is surfaced
   immediately instead.

   Writer preference: once a writer is waiting, fresh readers queue
   behind it.  Re-entrant acquisitions are exempt — they cannot wait
   without deadlocking the reader the writer is itself waiting for. *)

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (* domains holding a read lock (outermost only) *)
  mutable writer : int option;  (* domain id holding the write lock *)
  mutable writer_depth : int;
  mutable writers_waiting : int;
  (* per-domain read re-entry depth; absent = 0 *)
  depths : (int, int) Hashtbl.t;
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = None;
    writer_depth = 0;
    writers_waiting = 0;
    depths = Hashtbl.create 8;
  }

let self () = (Domain.self () :> int)

let depth_of t id =
  match Hashtbl.find_opt t.depths id with Some d -> d | None -> 0

let holds_write_locked t id = t.writer = Some id

let read_lock t =
  let id = self () in
  Mutex.lock t.m;
  (* write lock held by this domain: reads nest inside it for free *)
  if holds_write_locked t id then Mutex.unlock t.m
  else begin
    let d = depth_of t id in
    if d > 0 then begin
      Hashtbl.replace t.depths id (d + 1);
      Mutex.unlock t.m
    end
    else begin
      while t.writer <> None || t.writers_waiting > 0 do
        Condition.wait t.can_read t.m
      done;
      t.readers <- t.readers + 1;
      Hashtbl.replace t.depths id 1;
      Mutex.unlock t.m
    end
  end

let read_unlock t =
  let id = self () in
  Mutex.lock t.m;
  if holds_write_locked t id then Mutex.unlock t.m
  else begin
    (match depth_of t id with
     | 0 ->
       Mutex.unlock t.m;
       invalid_arg "Rwlock.read_unlock: lock not held by this domain"
     | 1 ->
       Hashtbl.remove t.depths id;
       t.readers <- t.readers - 1;
       if t.readers = 0 then Condition.signal t.can_write;
       Mutex.unlock t.m
     | d ->
       Hashtbl.replace t.depths id (d - 1);
       Mutex.unlock t.m)
  end

let write_lock t =
  let id = self () in
  Mutex.lock t.m;
  if holds_write_locked t id then begin
    t.writer_depth <- t.writer_depth + 1;
    Mutex.unlock t.m
  end
  else if depth_of t id > 0 then begin
    Mutex.unlock t.m;
    invalid_arg "Rwlock.write_lock: read -> write upgrade would deadlock"
  end
  else begin
    t.writers_waiting <- t.writers_waiting + 1;
    while t.writer <> None || t.readers > 0 do
      Condition.wait t.can_write t.m
    done;
    t.writers_waiting <- t.writers_waiting - 1;
    t.writer <- Some id;
    t.writer_depth <- 1;
    Mutex.unlock t.m
  end

let write_unlock t =
  let id = self () in
  Mutex.lock t.m;
  if not (holds_write_locked t id) then begin
    Mutex.unlock t.m;
    invalid_arg "Rwlock.write_unlock: lock not held by this domain"
  end
  else begin
    t.writer_depth <- t.writer_depth - 1;
    if t.writer_depth = 0 then begin
      t.writer <- None;
      if t.writers_waiting > 0 then Condition.signal t.can_write
      else Condition.broadcast t.can_read
    end;
    Mutex.unlock t.m
  end

(* Non-blocking write acquisition.  Refuses (rather than raises) when
   this domain holds a read lock, and defers to a queued writer even
   when the lock is momentarily free — an opportunistic caller should
   never jump the writer queue. *)
let try_write_lock t =
  let id = self () in
  Mutex.lock t.m;
  if holds_write_locked t id then begin
    t.writer_depth <- t.writer_depth + 1;
    Mutex.unlock t.m;
    true
  end
  else if
    depth_of t id > 0 || t.writer <> None || t.readers > 0
    || t.writers_waiting > 0
  then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    t.writer <- Some id;
    t.writer_depth <- 1;
    Mutex.unlock t.m;
    true
  end

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

let try_with_write t f =
  if try_write_lock t then
    Some (Fun.protect ~finally:(fun () -> write_unlock t) f)
  else None
