(** Writer-preferring, read-re-entrant reader-writer lock over domains.

    Any number of domains may hold the read side; the write side is
    exclusive.  A domain may re-acquire the read lock it already holds,
    and a domain holding the write lock may take read locks freely (they
    nest inside the write lock) — so composed operators never
    self-deadlock.  A read → write upgrade raises [Invalid_argument]
    instead of deadlocking.  Once a writer is waiting, fresh readers
    queue behind it, so a stream of readers cannot starve the writer. *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val try_with_write : t -> (unit -> 'a) -> 'a option
(** Run [f] under the write lock only if it can be taken without
    blocking; [None] when a writer, reader, or queued writer holds it
    off (or this domain holds a read lock).  Re-entrant like
    [with_write]. *)
