(* The backing array and the length are published together through one
   atomic reference.  [push] prepares the element (growing and copying if
   needed) and only then [Atomic.set]s the new state: the release write
   orders the element stores before the pointer/length becomes visible,
   so a reader domain that [Atomic.get]s a state sees fully-initialized
   contents for every index below its [len] — even across a reallocation
   on weakly-ordered hardware.  Single writer, any number of readers;
   readers never touch indices at or beyond the length they observed, so
   the writer's in-place store at [len] (pre-publication) never races. *)

type 'a state = { arr : 'a array; len : int }
type 'a t = 'a state Atomic.t

let create () = Atomic.make { arr = [||]; len = 0 }
let length t = (Atomic.get t).len

let push t x =
  let { arr; len } = Atomic.get t in
  let arr =
    if len = Array.length arr then begin
      (* [Array.make] seeds every slot — including [len] — with [x]. *)
      let bigger = Array.make (Stdlib.max 8 (2 * len)) x in
      Array.blit arr 0 bigger 0 len;
      bigger
    end
    else begin
      arr.(len) <- x;
      arr
    end
  in
  Atomic.set t { arr; len = len + 1 }

let check len i =
  if i < 0 || i >= len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i len)

let get t i =
  let { arr; len } = Atomic.get t in
  check len i;
  arr.(i)

let set t i x =
  let { arr; len } = Atomic.get t in
  check len i;
  arr.(i) <- x

let last t =
  let { arr; len } = Atomic.get t in
  if len = 0 then None else Some arr.(len - 1)

let iter f t =
  let { arr; len } = Atomic.get t in
  for i = 0 to len - 1 do
    f arr.(i)
  done

let iteri f t =
  let { arr; len } = Atomic.get t in
  for i = 0 to len - 1 do
    f i arr.(i)
  done

let fold_left f acc t =
  let { arr; len } = Atomic.get t in
  let acc = ref acc in
  for i = 0 to len - 1 do
    acc := f !acc arr.(i)
  done;
  !acc

let to_list t =
  let { arr; len } = Atomic.get t in
  List.init len (fun i -> arr.(i))

let find_last_index ?limit pred t =
  let { arr; len } = Atomic.get t in
  let len =
    match limit with
    | Some l when l < len -> (if l < 0 then 0 else l)
    | Some _ | None -> len
  in
  if len = 0 || not (pred arr.(0)) then None
  else begin
    (* invariant: pred holds at lo, fails at hi (or hi = len) *)
    let lo = ref 0 and hi = ref len in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if pred arr.(mid) then lo := mid else hi := mid
    done;
    Some !lo
  end
