type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let cap = Stdlib.max 8 (2 * Array.length t.data) in
    let bigger = Array.make cap x in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let find_last_index ?limit pred t =
  let len =
    match limit with
    | Some l when l < t.len -> (if l < 0 then 0 else l)
    | Some _ | None -> t.len
  in
  if len = 0 || not (pred t.data.(0)) then None
  else begin
    (* invariant: pred holds at lo, fails at hi (or hi = len) *)
    let lo = ref 0 and hi = ref len in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if pred t.data.(mid) then lo := mid else hi := mid
    done;
    Some !lo
  end
