(** Minimal growable vector (append + random access), used for version
    chains and posting lists.  OCaml 5.1 predates [Dynarray].

    Safe for one writer and any number of concurrent reader domains: the
    backing array and length are published together with release/acquire
    semantics, so a reader always observes initialized contents for every
    index below the length it saw.  [set] mutates an element in place and
    is writer-only — it must not race with readers of the same index. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val last : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list

val find_last_index : ?limit:int -> ('a -> bool) -> 'a t -> int option
(** Largest index whose element satisfies the predicate, assuming the
    predicate is monotone (true prefix, false suffix); binary search.
    With [limit], only indices [< limit] are considered — bounded views
    over a growing vector search exactly their frozen prefix. *)
