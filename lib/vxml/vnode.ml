type t =
  | Elem of elem
  | Text of { xid : Xid.t; content : string }

and elem = {
  xid : Xid.t;
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

let xid = function
  | Elem e -> e.xid
  | Text t -> t.xid

let rec of_xml gen node =
  let xid = Xid.Gen.next gen in
  match node with
  | Txq_xml.Xml.Text content -> Text { xid; content }
  | Txq_xml.Xml.Element e ->
    let attrs =
      List.map
        (fun { Txq_xml.Xml.attr_name; attr_value } -> (attr_name, attr_value))
        e.attrs
    in
    Elem { xid; tag = e.tag; attrs; children = List.map (of_xml gen) e.children }

let rec to_xml = function
  | Text { content; _ } -> Txq_xml.Xml.text content
  | Elem e -> Txq_xml.Xml.element ~attrs:e.attrs e.tag (List.map to_xml e.children)

(* Attribute order is insignificant in XML; equality and hashing compare
   attribute lists as sets so that the diff need not express reorders. *)
let sort_attrs attrs =
  List.sort
    (fun (n1, v1) (n2, v2) ->
      match String.compare n1 n2 with
      | 0 -> String.compare v1 v2
      | c -> c)
    attrs

let attrs_equal a b =
  List.compare_lengths a b = 0
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && String.equal v1 v2)
       (sort_attrs a) (sort_attrs b)

let rec deep_equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x.content y.content
  | Elem x, Elem y ->
    String.equal x.tag y.tag
    && attrs_equal x.attrs y.attrs
    && List.compare_lengths x.children y.children = 0
    && List.for_all2 deep_equal x.children y.children
  | Text _, Elem _ | Elem _, Text _ -> false

let rec equal_with_xids a b =
  match (a, b) with
  | Text x, Text y -> Xid.equal x.xid y.xid && String.equal x.content y.content
  | Elem x, Elem y ->
    Xid.equal x.xid y.xid
    && String.equal x.tag y.tag
    && attrs_equal x.attrs y.attrs
    && List.compare_lengths x.children y.children = 0
    && List.for_all2 equal_with_xids x.children y.children
  | Text _, Elem _ | Elem _, Text _ -> false

(* A simple 64-bit-ish polynomial combiner; only structural content feeds
   the hash, never XIDs, so deep_equal trees hash equally. *)
let combine h x = (h * 1_000_003) lxor x

let hash_string h s = combine h (Hashtbl.hash s)

let rec structural_hash = function
  | Text { content; _ } -> hash_string 7 content
  | Elem e ->
    let h = hash_string 11 e.tag in
    let h =
      List.fold_left
        (fun h (n, v) -> hash_string (hash_string h n) v)
        h (sort_attrs e.attrs)
    in
    List.fold_left (fun h c -> combine h (structural_hash c)) h e.children

let rec size = function
  | Text _ -> 1
  | Elem e -> 1 + List.fold_left (fun acc c -> acc + size c) 0 e.children

(* Rough heap footprint: a fixed per-node overhead (block headers, list
   cells, the XID) plus string payloads.  Only used for cache budgeting, so
   consistency matters more than precision. *)
let node_overhead = 64

let rec approx_bytes = function
  | Text { content; _ } -> node_overhead + String.length content
  | Elem e ->
    List.fold_left
      (fun acc c -> acc + approx_bytes c)
      (node_overhead + String.length e.tag
      + List.fold_left
          (fun acc (n, v) -> acc + 32 + String.length n + String.length v)
          0 e.attrs)
      e.children

let rec find node target =
  if Xid.equal (xid node) target then Some node
  else
    match node with
    | Text _ -> None
    | Elem e -> List.find_map (fun c -> find c target) e.children

let xids node =
  let rec go acc = function
    | Text { xid; _ } -> xid :: acc
    | Elem e -> List.fold_left go (e.xid :: acc) e.children
  in
  List.rev (go [] node)

let max_xid node =
  match xids node with
  | [] -> None
  | ids -> Some (List.fold_left (fun m x -> if Xid.compare x m > 0 then x else m)
                   (List.hd ids) ids)

let attr node name =
  match node with
  | Text _ -> None
  | Elem e ->
    List.find_map
      (fun (n, v) -> if String.equal n name then Some v else None)
      e.attrs

let rec text_content = function
  | Text { content; _ } -> content
  | Elem e -> String.concat "" (List.map text_content e.children)

let tag = function
  | Elem e -> Some e.tag
  | Text _ -> None

let children = function
  | Elem e -> e.children
  | Text _ -> []

type occurrence_kind =
  | Tag
  | Word

type occurrence = {
  occ_word : string;
  occ_kind : occurrence_kind;
  occ_path : Xid.t array;
}

let split_words s =
  let is_sep c =
    match c with
    | ' ' | '\t' | '\n' | '\r' | ',' | ';' | '.' | '!' | '?' | '(' | ')' | '"'
      -> true
    | _ -> false
  in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_sep c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let occurrences root =
  let acc = ref [] in
  let emit occ_word occ_kind rev_path =
    acc :=
      { occ_word; occ_kind; occ_path = Array.of_list (List.rev rev_path) }
      :: !acc
  in
  (* [rev_path] is the reversed XID path of the current enclosing element. *)
  let rec go rev_path node =
    match node with
    | Text { content; _ } ->
      List.iter (fun w -> emit w Word rev_path) (split_words content)
    | Elem e ->
      let here = e.xid :: rev_path in
      emit e.tag Tag here;
      List.iter
        (fun (n, v) ->
          emit n Word here;
          List.iter (fun w -> emit w Word here) (split_words v))
        e.attrs;
      List.iter (go here) e.children
  in
  go [] root;
  List.rev !acc

module Occ_set = Set.Make (struct
  type t = string * occurrence_kind * Xid.t array

  let compare (w1, k1, p1) (w2, k2, p2) =
    match String.compare w1 w2 with
    | 0 -> (
      match Stdlib.compare k1 k2 with
      | 0 -> Xidpath.compare p1 p2
      | c -> c)
    | c -> c
end)

let occurrence_set root =
  List.fold_left
    (fun set { occ_word; occ_kind; occ_path } ->
      Occ_set.add (occ_word, occ_kind, occ_path) set)
    Occ_set.empty (occurrences root)

let rec pp ppf = function
  | Text { xid; content } -> Format.fprintf ppf "%a%S" Xid.pp xid content
  | Elem e ->
    Format.fprintf ppf "@[<hv 2><%s%a" e.tag Xid.pp e.xid;
    List.iter (fun (n, v) -> Format.fprintf ppf " %s=%S" n v) e.attrs;
    if e.children = [] then Format.fprintf ppf "/>"
    else begin
      Format.fprintf ppf ">";
      List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) e.children;
      Format.fprintf ppf "@]@,</%s>" e.tag
    end
