(** Versioned XML trees: plain XML plus persistent XIDs on every node.

    This is the in-memory form of a stored document version (Section 4):
    a tree whose elements (and text nodes) carry XIDs that survive from one
    version of the document to the next. *)

type t =
  | Elem of elem
  | Text of { xid : Xid.t; content : string }

and elem = {
  xid : Xid.t;
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

val xid : t -> Xid.t

val of_xml : Xid.Gen.t -> Txq_xml.Xml.t -> t
(** Assigns fresh XIDs to every node, document order. *)

val to_xml : t -> Txq_xml.Xml.t
(** Strips the XIDs. *)

val deep_equal : t -> t -> bool
(** Structural equality {e ignoring} XIDs — the content-based [=] of
    Section 7.4.  Attribute order is insignificant, per the XML
    recommendation. *)

val equal_with_xids : t -> t -> bool
(** Structural equality including XIDs; two reconstructions of the same
    version must satisfy this. *)

val structural_hash : t -> int
(** Hash of the XID-free structure; equal trees (by {!deep_equal}) hash
    equally.  Used by the diff's subtree matching. *)

val size : t -> int

val approx_bytes : t -> int
(** Rough in-memory footprint of the tree, for cache budgeting. *)

val find : t -> Xid.t -> t option
(** Node with the given XID, if present in the tree. *)

val xids : t -> Xid.t list
(** All XIDs in the tree, pre-order. *)

val max_xid : t -> Xid.t option

val attr : t -> string -> string option
val text_content : t -> string
val tag : t -> string option
val children : t -> t list

type occurrence_kind =
  | Tag  (** an element name *)
  | Word  (** a word from text content, an attribute name or value *)

type occurrence = {
  occ_word : string;
  occ_kind : occurrence_kind;
  occ_path : Xid.t array;
      (** XIDs from the root to the occurrence's element: for a [Tag]
          occurrence the path ends with the element's own XID; a [Word]
          occurrence carries the path of its enclosing element.  Parent and
          ancestor tests in the pattern-scan join are prefix tests on these
          paths (Section 7.2's "information that can be used to determine
          hierarchical relationships"). *)
}

val split_words : string -> string list
(** The tokenizer behind {!occurrences}: splits on whitespace and the
    common punctuation separators, dropping empty tokens.  Exposed so every
    index (snapshot FTI, delta FTI) tokenizes text identically. *)

val occurrences : t -> occurrence list
(** All occurrences in the tree, document order, duplicates included. *)

module Occ_set : Set.S with type elt = string * occurrence_kind * Xid.t array

val occurrence_set : t -> Occ_set.t
(** Deduplicated occurrences; the unit of temporal FTI maintenance. *)

val pp : Format.formatter -> t -> unit
(** Debug form showing XIDs. *)
