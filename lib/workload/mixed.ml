module Xml = Txq_xml.Xml
module Print = Txq_xml.Print
module Timestamp = Txq_temporal.Timestamp

type op =
  | Query of string
  | Insert of string * Xml.t
  | Update of string * Xml.t
  | Delete of string

let op_to_string = function
  | Query s -> "query " ^ s
  | Insert (url, xml) ->
    Printf.sprintf "insert %s (%d bytes)" url (String.length (Print.to_string xml))
  | Update (url, xml) ->
    Printf.sprintf "update %s (%d bytes)" url (String.length (Print.to_string xml))
  | Delete url -> "delete " ^ url

let is_write = function
  | Query _ -> false
  | Insert _ | Update _ | Delete _ -> true

type mix = {
  w_query : int;
  w_algebra : int;
  w_insert : int;
  w_update : int;
  w_delete : int;
}

let default_mix =
  { w_query = 55; w_algebra = 10; w_insert = 10; w_update = 20; w_delete = 5 }

let read_only_mix =
  { w_query = 85; w_algebra = 15; w_insert = 0; w_update = 0; w_delete = 0 }

let url_for ~client i = Printf.sprintf "mixed.example.org/c%d/doc-%d.xml" client i

(* One live document owned by the stream: its index and the generator that
   evolves it (so updates are plausible diffs, not full rewrites). *)
type owned = { o_index : int; o_gen : Restaurant.t; mutable o_current : Xml.t }

type gen = {
  rng : Rng.t;
  mix : mix;
  spec : Load.spec;
  client : int;
  vocab : Vocab.t;
  mutable next_index : int;
  mutable live : owned list;
}

let create ?(mix = default_mix) ?(spec = Load.default_spec) ~client ~seed () =
  let rng = Rng.create ~seed:(seed + (client * 7919)) in
  let vocab = Vocab.create (Rng.split rng) in
  { rng; mix; spec; client; vocab; next_index = 0; live = [] }

(* Small documents: the soak test's signal is interleaving, not volume. *)
let owned_params =
  {
    Restaurant.default_params with
    Restaurant.restaurants = 3;
    review_words = 4;
  }

let random_date g =
  (* inside the seeded corpus's history so snapshot queries hit data *)
  let day = 1 + Rng.int g.rng 28 in
  let month = 1 + Rng.int g.rng 3 in
  Printf.sprintf "%d/%d/2001" day month

let corpus_url g = Load.url_of (Rng.int g.rng g.spec.Load.documents)

let target_word g = Vocab.restaurant_names.(Rng.int g.rng 8)

let query_statement g =
  match Rng.int g.rng 6 with
  | 0 ->
    Printf.sprintf "SELECT R FROM doc(\"%s\")//restaurant R WHERE R/name = \"%s\""
      (corpus_url g) (target_word g)
  | 1 ->
    Printf.sprintf "SELECT R/name, R/price FROM doc(\"%s\")[%s]//restaurant R"
      (corpus_url g) (random_date g)
  | 2 ->
    Printf.sprintf
      "SELECT TIME(R), R/price FROM doc(\"%s\")[EVERY]//restaurant R WHERE R/name = \"%s\""
      (corpus_url g) (target_word g)
  | 3 ->
    Printf.sprintf "SELECT COUNT(R) FROM collection(\"guide.example.org/*\")//restaurant R"
  | 4 ->
    Printf.sprintf
      "SELECT DISTINCT R/name FROM doc(\"%s\")//restaurant R, doc(\"%s\")//restaurant S WHERE R/name = S/name"
      (corpus_url g) (corpus_url g)
  | _ ->
    (* the client's own churn, over its whole namespace *)
    Printf.sprintf "SELECT R FROM collection(\"mixed.example.org/c%d/*\")//restaurant R"
      g.client

let algebra_statement g =
  match Rng.int g.rng 3 with
  | 0 ->
    Printf.sprintf "doc(\"%s\")//restaurant/name = \"%s\"" (corpus_url g)
      (target_word g)
  | 1 ->
    Printf.sprintf
      "doc(\"%s\")//restaurant/name = \"%s\" UNION doc(\"%s\")//restaurant/name = \"%s\""
      (corpus_url g) (target_word g) (corpus_url g) (target_word g)
  | _ ->
    Printf.sprintf "COUNT BY DOC (collection(\"guide.example.org/*\")//restaurant)"

let insert_op g =
  let i = g.next_index in
  g.next_index <- i + 1;
  let o_gen =
    Restaurant.create ~params:owned_params ~vocab:g.vocab (Rng.split g.rng)
  in
  let doc = Restaurant.initial o_gen in
  let owned = { o_index = i; o_gen; o_current = doc } in
  g.live <- owned :: g.live;
  Insert (url_for ~client:g.client i, doc)

let pick_live g = List.nth g.live (Rng.int g.rng (List.length g.live))

let update_op g =
  let o = pick_live g in
  let next = Restaurant.evolve o.o_gen o.o_current in
  o.o_current <- next;
  Update (url_for ~client:g.client o.o_index, next)

let delete_op g =
  let o = pick_live g in
  g.live <- List.filter (fun o' -> o'.o_index <> o.o_index) g.live;
  Delete (url_for ~client:g.client o.o_index)

let next_op g =
  let m = g.mix in
  let total = m.w_query + m.w_algebra + m.w_insert + m.w_update + m.w_delete in
  if total <= 0 then invalid_arg "Mixed.next_op: empty mix";
  let r = Rng.int g.rng total in
  if r < m.w_query then Query (query_statement g)
  else if r < m.w_query + m.w_algebra then Query (algebra_statement g)
  else if r < m.w_query + m.w_algebra + m.w_insert then insert_op g
  else if g.live = [] then insert_op g
  else if r < m.w_query + m.w_algebra + m.w_insert + m.w_update then
    update_op g
  else delete_op g

let ops g n = List.init n (fun _ -> next_op g)

let arrivals ~seed ~rate_per_s ~duration_s =
  if rate_per_s <= 0.0 then invalid_arg "Mixed.arrivals: rate must be positive";
  let rng = Rng.create ~seed in
  let rec go acc t =
    (* exponential inter-arrival; 1 - u > 0 since Rng.float < 1 *)
    let u = Rng.float rng in
    let t = t +. (-.Float.log (1.0 -. u) /. rate_per_s) in
    if t >= duration_s then List.rev acc else go (t :: acc) t
  in
  go [] 0.0
