(** Mixed read/write operation streams for multi-client server workloads.

    Each generator is a deterministic function of its seed and client id:
    two runs produce byte-identical operation streams, which is what lets
    the soak test differentially replay a concurrent run against a serial
    oracle.  A client only ever writes URLs in its own namespace
    ({!url_for}), so per-URL state never races between clients; reads
    range over the shared seeded corpus and the client's own documents.

    Generated query statements never mention [NOW]: their results are a
    function of store contents alone, so a replay at different wall-clock
    instants still compares exactly. *)

type op =
  | Query of string  (** a statement: SELECT query or algebra expression *)
  | Insert of string * Txq_xml.Xml.t  (** url, document *)
  | Update of string * Txq_xml.Xml.t
  | Delete of string

val op_to_string : op -> string
(** One-line rendering for logs and failure messages. *)

val is_write : op -> bool

type mix = {
  w_query : int;  (** SELECT statements (current, snapshot and EVERY) *)
  w_algebra : int;  (** algebra statements *)
  w_insert : int;
  w_update : int;
  w_delete : int;
}
(** Relative weights; zero disables an operation class. *)

val default_mix : mix
(** Read-heavy: 55 query / 10 algebra / 10 insert / 20 update / 5 delete. *)

val read_only_mix : mix

type gen

val create :
  ?mix:mix -> ?spec:Load.spec -> client:int -> seed:int -> unit -> gen
(** A per-client stream.  [spec] describes the seeded corpus the reads
    target (defaults to {!Load.default_spec}); [client] namespaces the
    write URLs. *)

val url_for : client:int -> int -> string
(** URL of the [i]-th document client [client] creates. *)

val next_op : gen -> op
(** The next operation.  Write operations are self-consistent: an update
    or delete always names a URL the stream has inserted and not yet
    deleted (when the client owns no live document, an insert is produced
    instead). *)

val ops : gen -> int -> op list
(** The next [n] operations. *)

val arrivals : seed:int -> rate_per_s:float -> duration_s:float -> float list
(** Open-loop (Poisson) arrival schedule: sorted offsets in seconds from
    the start, exponential inter-arrival times with the given mean rate,
    covering [\[0, duration_s)]. *)
