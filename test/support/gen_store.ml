(* QCheck generators for storage-layer artifacts: raw journal payloads and
   typed journal records.  Shared by the journal round-trip properties and
   the recovery tests. *)

module J = Txq_db.Journal_record

(* Payloads from one byte up to several journal pages, so multi-page record
   framing is exercised; the content is arbitrary binary. *)
let gen_payload =
  QCheck.Gen.(
    frequency
      [
        (4, string_size ~gen:char (int_range 1 200));
        (2, string_size ~gen:char (int_range 200 4_060));
        (1, string_size ~gen:char (int_range 4_060 13_000));
      ])

let arb_payload =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%d bytes: %S…" (String.length s)
               (String.sub s 0 (Stdlib.min 32 (String.length s))))
    gen_payload

let arb_payloads =
  QCheck.make
    ~print:(fun l ->
      String.concat ", " (List.map (fun s -> string_of_int (String.length s)) l))
    QCheck.Gen.(list_size (int_range 1 12) gen_payload)

(* --- typed journal records --------------------------------------------- *)

let gen_blob_ref =
  QCheck.Gen.(
    list_size (int_range 1 6) (int_range 0 100_000) >>= fun pages ->
    int_range 0 (4_096 * List.length pages) >>= fun len ->
    return { J.br_pages = pages; br_length = len })

let gen_url =
  QCheck.Gen.(
    frequency
      [
        (4, oneofl [ "a.xml"; "news/today"; "catalog"; "" ]);
        (1, string_size ~gen:printable (int_range 0 60));
      ])

(* Timestamps include negative seconds (instants before the epoch). *)
let gen_seconds = QCheck.Gen.int_range (-1_000_000_000) 4_000_000_000

let gen_record =
  QCheck.Gen.(
    let opt g = frequency [ (1, return None); (2, map Option.some g) ] in
    frequency
      [
        ( 3,
          gen_url >>= fun r_url ->
          int_range 0 10_000 >>= fun r_doc ->
          gen_seconds >>= fun r_ts ->
          opt gen_seconds >>= fun r_doc_time ->
          gen_blob_ref >>= fun r_current ->
          opt gen_blob_ref >>= fun r_snapshot ->
          return (J.Insert { r_doc; r_url; r_ts; r_doc_time; r_current; r_snapshot })
        );
        ( 4,
          int_range 0 10_000 >>= fun r_doc ->
          int_range 1 100_000 >>= fun r_version ->
          gen_seconds >>= fun r_ts ->
          opt gen_seconds >>= fun r_doc_time ->
          gen_blob_ref >>= fun r_delta ->
          gen_blob_ref >>= fun r_current ->
          opt gen_blob_ref >>= fun r_snapshot ->
          list_size (int_range 0 8) (int_range 0 100_000) >>= fun r_freed ->
          return
            (J.Commit
               { r_doc; r_version; r_ts; r_doc_time; r_delta; r_current;
                 r_snapshot; r_freed }) );
        ( 1,
          int_range 0 10_000 >>= fun r_doc ->
          gen_seconds >>= fun r_ts ->
          return (J.Delete { r_doc; r_ts }) );
        ( 2,
          let gen_vacuum_doc =
            int_range 0 10_000 >>= fun vd_doc ->
            bool >>= fun vd_drop ->
            int_range 0 100_000 >>= fun vd_base ->
            opt gen_blob_ref >>= fun vd_snapshot ->
            list_size (int_range 0 8) (int_range 0 100_000) >>= fun vd_freed ->
            int_range 0 1_000_000 >>= fun vd_xid_watermark ->
            return
              { J.vd_doc; vd_base; vd_drop; vd_snapshot; vd_freed;
                vd_xid_watermark }
          in
          gen_seconds >>= fun r_ts ->
          list_size (int_range 0 6) gen_vacuum_doc >>= fun r_docs ->
          return (J.Vacuum { r_ts; r_docs }) );
      ])

let arb_record =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" J.pp r) gen_record
