(* The temporal relational algebra, differentiated against its per-instant
   definition: a hand-built corpus of interval shapes (touching,
   overlapping, nested, open-ended) with exact expected results, then
   qcheck differentials — random operator trees over random stores with
   interleaved edits and deletes, vacuumed stores clipped to the retained
   window, and worker-domain determinism.  Subject and oracle must agree
   byte-for-byte on rendered rows and interval sets. *)

module Xml = Txq_xml.Xml
module Parse = Txq_xml.Parse
module Timestamp = Txq_temporal.Timestamp
module Interval = Txq_temporal.Interval
module Config = Txq_db.Config
module Db = Txq_db.Db
module Docstore = Txq_db.Docstore
module Gen_xml = Txq_test_support.Gen_xml
open Txq_algebra

let ts = Timestamp.of_string
let parse = Parse.parse_exn
let day = 86_400
let base_seconds = Timestamp.to_seconds (ts "01/06/2001")
let op_ts i = Timestamp.of_seconds (base_seconds + ((i + 1) * day))

let scan ?word kind url path =
  Algebra.Scan { Algebra.l_kind = kind; l_url = url; l_path = path; l_word = word }

let d ?word url path = scan ?word Algebra.Doc url path
let coll ?word url path = scan ?word Algebra.Collection url path

(* --- corpus -------------------------------------------------------------- *)

(* Five instants, three documents:
     t0  a: <doc><name>napoli</name></doc>
     t1  b: <doc><item>pizza</item></doc>     c: <doc><name>napoli</name></doc>
     t2  a: + <item>pizza</item>
     t3  b: deleted                           c: name text napoli -> rome
     t4  a: - <item>

   Validities: a//name [t0,UC) open-ended; a//item [t2,t4) bounded and
   overlapping b//item [t1,t3), which nests inside a//name; the word scans
   c//name="napoli" [t1,t3) and ="rome" [t3,UC) touch at t3. *)
let corpus_db () =
  let db = Db.create () in
  ignore
    (Db.insert_document db ~url:"a" ~ts:(op_ts 0)
       (parse "<doc><name>napoli</name></doc>"));
  ignore
    (Db.insert_document db ~url:"b" ~ts:(op_ts 1)
       (parse "<doc><item>pizza</item></doc>"));
  ignore
    (Db.insert_document db ~url:"c" ~ts:(op_ts 1)
       (parse "<doc><name>napoli</name></doc>"));
  ignore
    (Db.update_document db ~url:"a" ~ts:(op_ts 2)
       (parse "<doc><name>napoli</name><item>pizza</item></doc>"));
  Db.delete_document db ~url:"b" ~ts:(op_ts 3) ();
  ignore
    (Db.update_document db ~url:"c" ~ts:(op_ts 3)
       (parse "<doc><name>rome</name></doc>"));
  ignore
    (Db.update_document db ~url:"a" ~ts:(op_ts 4)
       (parse "<doc><name>napoli</name></doc>"));
  db

let iv a b = Interval.to_string (Interval.make ~start:(op_ts a) ~stop:(op_ts b))

let iv_open a =
  Interval.to_string
    (Interval.make ~start:(op_ts a) ~stop:Timestamp.plus_infinity)

let row key ivs = Printf.sprintf "%s @ %s" key (String.concat " " ivs)

let single_key db tl node =
  match Algebra.eval db tl node with
  | [ r ] -> Relation.tuple_key r.Relation.tuple
  | rel ->
    Alcotest.failf "expected one row from %s, got %d" (Algebra.to_string node)
      (List.length rel)

let sorted = List.sort String.compare

let test_corpus () =
  let db = corpus_db () in
  let tl = Timeline.of_db db in
  Alcotest.(check int) "five instants" 5 (Timeline.length tl);
  let a_name = single_key db tl (d "a" "//name") in
  let a_item = single_key db tl (d "a" "//item") in
  let b_item = single_key db tl (d "b" "//item") in
  let a_root = single_key db tl (d "a" "/doc") in
  let b_root = single_key db tl (d "b" "/doc") in
  let check name expected node =
    let got = Relation.render tl (Algebra.eval db tl node) in
    Alcotest.(check (list string)) name (sorted expected) (sorted got);
    (* the corpus fixtures double as oracle fixtures *)
    let got_oracle = Relation.render tl (Oracle.eval db tl node) in
    Alcotest.(check (list string)) (name ^ " (oracle)") (sorted expected)
      (sorted got_oracle)
  in
  check "union of overlapping items"
    [ row a_item [ iv 2 4 ]; row b_item [ iv 1 3 ] ]
    (Algebra.Set (Algebra.Union, d "a" "//item", d "b" "//item"));
  check "intersect keeps the open-ended arm"
    [ row a_name [ iv_open 0 ] ]
    (Algebra.Set (Algebra.Intersect, d "a" "//name", d ~word:"napoli" "a" "//name"));
  check "except drops the nested row exactly"
    [ row a_item [ iv 2 4 ] ]
    (Algebra.Set (Algebra.Except, coll "*" "//item", d "b" "//item"));
  check "join on ancestor intersects validities"
    [ row (a_root ^ " | " ^ a_item) [ iv 2 4 ] ]
    (Algebra.Joinop (Algebra.Join, Algebra.On_ancestor, d "a" "/doc", d "a" "//item"));
  check "left join splits around the match and stays open-ended"
    [
      row (a_root ^ " | " ^ a_item) [ iv 2 4 ];
      row (a_root ^ " | null") [ iv 0 2; iv_open 4 ];
    ]
    (Algebra.Joinop
       (Algebra.Left_join, Algebra.On_ancestor, d "a" "/doc", d "a" "//item"));
  check "semijoin clips to the matched window"
    [ row b_root [ iv 1 3 ] ]
    (Algebra.Joinop
       (Algebra.Semi_join, Algebra.On_ancestor, d "b" "/doc", d "b" "//item"));
  check "antijoin is the complement within the row's validity"
    [ row a_root [ iv 0 2; iv_open 4 ] ]
    (Algebra.Joinop
       (Algebra.Anti_join, Algebra.On_ancestor, d "a" "/doc", d "a" "//item"));
  check "count splits at overlap boundaries"
    [ row "n=1" [ iv 1 2; iv 3 4 ]; row "n=2" [ iv 2 3 ] ]
    (Algebra.Group (Algebra.By_all, coll "*" "//item"));
  check "count by doc"
    [ row "doc=0 | n=1" [ iv 2 4 ]; row "doc=1 | n=1" [ iv 1 3 ] ]
    (Algebra.Group (Algebra.By_doc, coll "*" "//item"));
  (* the two word scans touch at t3: equal counts must coalesce across
     the seam into one open-ended row *)
  check "touching segments coalesce"
    [ row "n=1" [ iv_open 1 ] ]
    (Algebra.Group
       ( Algebra.By_all,
         Algebra.Set
           (Algebra.Union, d ~word:"napoli" "c" "//name", d ~word:"rome" "c" "//name")
       ))

(* --- validation ----------------------------------------------------------- *)

let test_validate () =
  let ok node =
    match Algebra.validate node with
    | Ok () -> ()
    | Error e -> Alcotest.failf "expected valid: %s" e
  in
  let rejects what node =
    match Algebra.validate node with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "expected invalid: %s" what
  in
  ok (Algebra.Set (Algebra.Union, d "a" "//name", d "b" "//name"));
  rejects "wildcard leaf path" (d "a" "/a/*/b");
  rejects "set arity mismatch"
    (Algebra.Set
       ( Algebra.Union,
         Algebra.Joinop (Algebra.Join, Algebra.On_always, d "a" "//name", d "a" "//name"),
         d "a" "//name" ));
  rejects "ancestor join over counts"
    (Algebra.Joinop
       ( Algebra.Join,
         Algebra.On_ancestor,
         Algebra.Group (Algebra.By_all, d "a" "//name"),
         d "a" "//name" ));
  rejects "by-doc over counts"
    (Algebra.Group (Algebra.By_doc, Algebra.Group (Algebra.By_all, d "a" "//name")))

(* --- statements through the query layer ----------------------------------- *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  nl = 0
  || (hl >= nl
      && Seq.exists
           (fun i -> String.equal (String.sub hay i nl) needle)
           (Seq.init (hl - nl + 1) Fun.id))

let test_statements () =
  let db = corpus_db () in
  (match
     Txq_query.Parser.parse_statement
       "doc(\"a\")//name EXCEPT doc(\"b\")//name = \"pizza\""
   with
   | Ok (Txq_query.Ast.S_algebra (Algebra.Set (Algebra.Except, _, Algebra.Scan l)))
     ->
     Alcotest.(check (option string)) "word test parsed" (Some "pizza")
       l.Algebra.l_word
   | Ok s ->
     Alcotest.failf "unexpected parse: %s" (Txq_query.Ast.statement_to_string s)
   | Error e -> Alcotest.failf "parse: %s" e);
  (match Txq_query.Parser.parse_statement "SELECT R FROM doc(\"a\")//name R" with
   | Ok (Txq_query.Ast.S_query _) -> ()
   | Ok _ -> Alcotest.fail "SELECT must parse as a query"
   | Error e -> Alcotest.failf "parse: %s" e);
  let xml =
    Txq_query.Exec.run_string_exn db
      "COUNT BY DOC (collection(\"*\")//item)"
  in
  Alcotest.(check int) "two count rows" 2 (List.length (Xml.children xml));
  (match
     Txq_query.Exec.explain_analyze_string db
       "doc(\"a\")//name INTERSECT doc(\"a\")//name = \"napoli\""
   with
   | Ok report ->
     List.iter
       (fun op ->
         Alcotest.(check bool) (op ^ " in report") true (contains report op))
       [ "algebra.intersect"; "algebra.scan"; "algebra.timeline"; "rows=" ]
   | Error e -> Alcotest.failf "explain analyze: %s" (Txq_query.Exec.error_to_string e));
  match
    Txq_query.Exec.run_string db
      "doc(\"a\")//name JOIN ON ANCESTOR COUNT (doc(\"a\")//name)"
  with
  | Error (Txq_query.Exec.Unsupported _) -> ()
  | Error e ->
    Alcotest.failf "expected Unsupported, got %s"
      (Txq_query.Exec.error_to_string e)
  | Ok _ -> Alcotest.fail "ancestor join over counts must be rejected"

(* --- random stores --------------------------------------------------------- *)

type op = Ins of string * Xml.t | Upd of string * Xml.t | Del of string

let interleave a b =
  let rec go acc = function
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
  in
  go [] (a, b)

let replay config ops =
  let db = Db.create ~config () in
  List.iteri
    (fun i op ->
      match op with
      | Ins (u, x) -> ignore (Db.insert_document db ~url:u ~ts:(op_ts i) x)
      | Upd (u, x) -> ignore (Db.update_document db ~url:u ~ts:(op_ts i) x)
      | Del u -> Db.delete_document db ~url:u ~ts:(op_ts i) ())
    ops;
  db

(* Interleaved histories of documents "a" and "b"; [h] selects which
   documents are deleted at the end. *)
let ops_of ((a0, asuccs), (b0, bsuccs), h) =
  Ins ("a", a0) :: Ins ("b", b0)
  :: interleave
       (List.map (fun x -> Upd ("a", x)) asuccs)
       (List.map (fun x -> Upd ("b", x)) bsuccs)
  @ (if h land 1 = 1 then [ Del "b" ] else [])
  @ if h land 2 = 2 then [ Del "a" ] else []

(* --- random operator trees -------------------------------------------------- *)

(* Valid by construction: [node1] trees keep arity 1 with a node-valued
   leading column, so every set operand pair and every ON predicate is
   well-typed; the top level may widen with a join or aggregate. *)
let gen_leaf =
  QCheck.Gen.(
    let* kind, url =
      oneofl [ (Algebra.Doc, "a"); (Algebra.Doc, "b"); (Algebra.Collection, "*") ]
    in
    let* path = oneofl [ "//name"; "//item"; "//price"; "//review"; "//b" ] in
    let* word =
      frequency
        [ (3, return None); (1, map Option.some (oneofa Gen_xml.words)) ]
    in
    return (scan ?word kind url path))

let gen_set_op = QCheck.Gen.oneofl [ Algebra.Union; Algebra.Intersect; Algebra.Except ]
let gen_on = QCheck.Gen.oneofl [ Algebra.On_doc; Algebra.On_ancestor; Algebra.On_always ]

let rec gen_node1 sz st =
  let open QCheck.Gen in
  if sz <= 0 then gen_leaf st
  else
    frequency
      [
        (2, gen_leaf);
        ( 3,
          map3
            (fun op a b -> Algebra.Set (op, a, b))
            gen_set_op
            (gen_node1 (sz / 2))
            (gen_node1 (sz / 2)) );
        ( 2,
          map3
            (fun (k, on) a b -> Algebra.Joinop (k, on, a, b))
            (pair (oneofl [ Algebra.Semi_join; Algebra.Anti_join ]) gen_on)
            (gen_node1 (sz / 2))
            (gen_node1 (sz / 2)) );
      ]
      st

let gen_alg =
  QCheck.Gen.(
    let* sz = int_range 0 6 in
    frequency
      [
        (3, gen_node1 sz);
        ( 2,
          map3
            (fun (k, on) a b -> Algebra.Joinop (k, on, a, b))
            (pair (oneofl [ Algebra.Join; Algebra.Left_join ]) gen_on)
            (gen_node1 (sz / 2))
            (gen_node1 (sz / 2)) );
        ( 2,
          map2
            (fun key a -> Algebra.Group (key, a))
            (oneofl [ Algebra.By_all; Algebra.By_doc ])
            (gen_node1 sz) );
      ])

let print_case ((a0, asuccs), (b0, bsuccs), h, alg) =
  Printf.sprintf "h=%d\nalgebra: %s\ndoc a:\n%s\ndoc b:\n%s" h
    (Algebra.to_string alg)
    (String.concat "\n---\n" (List.map Txq_xml.Print.to_string (a0 :: asuccs)))
    (String.concat "\n---\n" (List.map Txq_xml.Print.to_string (b0 :: bsuccs)))

let gen_history = Gen_xml.gen_history ~max_versions:4

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(
      map
        (fun (a, b, h, alg) -> (a, b, h, alg))
        (quad gen_history gen_history (int_range 0 3) gen_alg))

(* The tentpole differential: the interval-arithmetic evaluator must equal
   the per-instant naive evaluator on every random store and tree —
   identical rows, identical interval sets. *)
let prop_algebra_matches_oracle =
  QCheck.Test.make ~count:220 ~name:"algebra ≡ per-instant oracle" arb_case
    (fun (a, b, h, alg) ->
      let config = { Config.default with fti_mode = Config.Fti_both } in
      let db = replay config (ops_of (a, b, h)) in
      let tl = Timeline.of_db db in
      (match Algebra.validate alg with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "generated an invalid tree: %s" e);
      let subject = Relation.render tl (Algebra.eval db tl alg) in
      let oracle = Relation.render tl (Oracle.eval db tl alg) in
      if subject <> oracle then
        QCheck.Test.fail_reportf "algebra:\n%s\noracle:\n%s"
          (String.concat "\n" subject) (String.concat "\n" oracle);
      true)

(* Worker-domain determinism: the scan fan-out must not leak into row or
   interval order. *)
let prop_algebra_domains_deterministic =
  QCheck.Test.make ~count:50 ~name:"algebra domains>1 ≡ domains=1" arb_case
    (fun (a, b, h, alg) ->
      let config = { Config.default with domains = 3 } in
      let db = replay config (ops_of (a, b, h)) in
      let tl = Timeline.of_db db in
      Relation.render tl (Algebra.eval ~domains:1 db tl alg)
      = Relation.render tl (Algebra.eval ~domains:4 db tl alg))

(* Vacuumed stores: clipped to the first instant at which every surviving
   chain is complete, the vacuumed subject must answer exactly as an
   unvacuumed oracle over the full history. *)
let prop_algebra_vacuum_clipped =
  let arb =
    QCheck.make
      ~print:(fun (a, b, h, (alg, _)) -> print_case (a, b, h, alg))
      QCheck.Gen.(
        quad gen_history gen_history (int_range 0 14)
          (pair gen_alg (option (int_range 1 4))))
  in
  QCheck.Test.make ~count:50
    ~name:"vacuumed algebra ≡ unvacuumed oracle on the retained window" arb
    (fun (a, b, h, (alg, k)) ->
      let config = { Config.default with fti_mode = Config.Fti_both } in
      let ops = ops_of (a, b, h land 1) in
      let oracle_db = replay config ops in
      let subject_db = replay config ops in
      let retention =
        { Config.keep_newer_than = Some (op_ts (h mod 8)); keep_versions = k }
      in
      ignore (Db.vacuum ~retention subject_db : Db.vacuum_report);
      let safe_from =
        List.fold_left
          (fun acc id ->
            let t =
              if List.mem id (Db.doc_ids subject_db) then
                Docstore.ts_of_version (Db.doc subject_db id)
                  (Docstore.first_version (Db.doc subject_db id))
              else
                match Docstore.deleted_at (Db.doc oracle_db id) with
                | Some t -> t
                | None ->
                  QCheck.Test.fail_reportf "vacuum dropped a live document"
            in
            if Timestamp.(t > acc) then t else acc)
          Timestamp.minus_infinity (Db.doc_ids oracle_db)
      in
      let tl_s = Timeline.of_db subject_db in
      let tl_o = Timeline.of_db oracle_db in
      let subject =
        Relation.render ~clip_from:safe_from tl_s
          (Algebra.eval subject_db tl_s alg)
      in
      let oracle =
        Relation.render ~clip_from:safe_from tl_o
          (Oracle.eval oracle_db tl_o alg)
      in
      if subject <> oracle then
        QCheck.Test.fail_reportf "clip from %s\nvacuumed:\n%s\noracle:\n%s"
          (Timestamp.to_string safe_from)
          (String.concat "\n" subject) (String.concat "\n" oracle);
      true)

let () =
  Alcotest.run "algebra"
    [
      ( "corpus",
        [
          Alcotest.test_case "interval shapes" `Quick test_corpus;
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "statements" `Quick test_statements;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_algebra_matches_oracle;
          QCheck_alcotest.to_alcotest prop_algebra_domains_deterministic;
          QCheck_alcotest.to_alcotest prop_algebra_vacuum_clipped;
        ] );
    ]
